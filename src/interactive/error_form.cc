#include "interactive/error_form.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/distributions.h"

namespace svt {

ErrorThresholdChecker::ErrorThresholdChecker(const SvtOptions& options,
                                             ErrorQueryForm form, Rng* rng)
    : options_(options), form_(form), rng_(rng) {
  SVT_CHECK_OK(options.Validate());
  SVT_CHECK(rng != nullptr);
  const BudgetSplit split = options.allocation.Split(options.epsilon);
  rho_ = SampleLaplace(*rng_, options.sensitivity / split.epsilon1);
  const double k = options.monotonic ? 1.0 : 2.0;
  nu_scale_ =
      k * options.cutoff * options.sensitivity / split.epsilon2;
}

Response ErrorThresholdChecker::Check(double estimate, double true_answer,
                                      double threshold) {
  SVT_CHECK(!exhausted_) << "Check called after cutoff abort";
  const double nu = SampleLaplace(*rng_, nu_scale_);
  bool positive = false;
  switch (form_) {
    case ErrorQueryForm::kCorrect:
      positive = std::abs(estimate - true_answer) + nu >= threshold + rho_;
      break;
    case ErrorQueryForm::kBroken:
      positive = std::abs(estimate - true_answer + nu) >= threshold + rho_;
      break;
  }
  if (!positive) return Response::Below();

  ++positives_;
  if (positives_ >= options_.cutoff) exhausted_ = true;
  if (form_ == ErrorQueryForm::kBroken) {
    // LHS of the broken comparison is non-negative, so a positive outcome
    // proves T + ρ ≤ LHS ⇒ ρ ≥ ... at minimum ρ ≥ −T. (An adversary
    // choosing q̃ = q would even pin |ν| ≥ T + ρ.)
    const double bound = -threshold;
    certified_rho_lower_ = certified_rho_lower_.has_value()
                               ? std::max(*certified_rho_lower_, bound)
                               : bound;
  }
  return Response::Above();
}

std::optional<double> ErrorThresholdChecker::CertifiedRhoLowerBound() const {
  return certified_rho_lower_;
}

}  // namespace svt
