// AboveThresholdSession: a budget-managed, long-lived SVT service.
//
// A single SparseVector instance answers at most c positives and then
// aborts. Real interactive deployments (the paper's §1 setting) want a
// session that keeps serving: when one SVT run exhausts, start another —
// each run is ε_round-DP, and sequential composition bounds the total. The
// session owns a PrivacyAccountant, charges ε_round at the start of every
// run, and refuses queries once the remaining budget cannot fund another
// round.

#ifndef SPARSEVEC_INTERACTIVE_SESSION_H_
#define SPARSEVEC_INTERACTIVE_SESSION_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/svt.h"

namespace svt {

/// Configuration of an AboveThresholdSession.
struct SessionOptions {
  /// Lifetime privacy budget of the session (> 0).
  double total_epsilon = 1.0;
  /// Per-SVT-run budget (> 0, <= total). Each run answers up to
  /// `round.cutoff` positives. Boundary rounding follows
  /// PrivacyAccountant::CanCharge's 1e-9 relative slack on the total, so a
  /// schedule whose rounds sum exactly to total_epsilon (10 × 0.1 in a 1.0
  /// budget, say) funds every round, and exhausted() agrees with what
  /// Process()/RunAppend() will actually do.
  double epsilon_per_round = 0.25;
  /// Template for each round's SVT (its epsilon field is ignored and
  /// replaced by epsilon_per_round).
  SvtOptions round;

  Status Validate() const;
};

class AboveThresholdSession {
 public:
  /// `rng` must outlive the session.
  static Result<std::unique_ptr<AboveThresholdSession>> Create(
      const SessionOptions& options, Rng* rng);

  /// Tests one query. Starts a fresh SVT round (consuming
  /// epsilon_per_round) transparently when the current one has aborted.
  /// Fails with kExhausted once the lifetime budget cannot fund the round
  /// a positive-capable query needs.
  Result<Response> Process(double query_answer, double threshold);

  /// Batch path: appends one Response per processed query to *out, rolling
  /// over rounds (each charged epsilon_per_round) exactly as a Process()
  /// loop would, but executing each round through the vectorized batch
  /// engine. Stops early — possibly before the first query — once the
  /// budget cannot fund the next round; returns the number appended (check
  /// exhausted() to distinguish). The Response sequence is bitwise equal to
  /// the streaming loop for the same seed. Appends only; callers may
  /// clear() and reuse one buffer across calls to keep its capacity.
  size_t RunAppend(std::span<const double> answers, double threshold,
                   std::vector<Response>* out);

  /// Per-query-threshold overload.
  size_t RunAppend(std::span<const double> answers,
                   std::span<const double> thresholds,
                   std::vector<Response>* out);

  /// True when no further queries can be answered: the current round has
  /// aborted and the accountant cannot fund another (shares
  /// PrivacyAccountant::CanCharge with Charge, so this never disagrees
  /// with the next Process()).
  bool exhausted() const;

  int rounds_started() const { return rounds_started_; }
  int64_t queries_processed() const { return queries_processed_; }
  int64_t positives_emitted() const { return positives_emitted_; }
  const PrivacyAccountant& accountant() const { return accountant_; }

 private:
  AboveThresholdSession(const SessionOptions& options, Rng* rng);

  Status EnsureActiveRound();

  /// Shared round-rollover loop behind both RunAppend overloads:
  /// `run_round` feeds `consumed`-offset queries of the current round into
  /// *out and returns how many it processed. Updates the session counters
  /// from the appended range and returns the total appended.
  size_t RunRounds(
      size_t num_queries,
      const std::function<size_t(size_t consumed, std::vector<Response>* out)>&
          run_round,
      std::vector<Response>* out);

  SessionOptions options_;
  Rng* rng_;
  PrivacyAccountant accountant_;
  std::unique_ptr<SparseVector> current_;
  int rounds_started_ = 0;
  int64_t queries_processed_ = 0;
  int64_t positives_emitted_ = 0;
};

}  // namespace svt

#endif  // SPARSEVEC_INTERACTIVE_SESSION_H_
