// AboveThresholdSession: a budget-managed, long-lived SVT service.
//
// A single SparseVector instance answers at most c positives and then
// aborts. Real interactive deployments (the paper's §1 setting) want a
// session that keeps serving: when one SVT run exhausts, start another —
// each run is ε_round-DP, and sequential composition bounds the total. The
// session owns a PrivacyAccountant, charges ε_round at the start of every
// run, and refuses queries once the remaining budget cannot fund another
// round.

#ifndef SPARSEVEC_INTERACTIVE_SESSION_H_
#define SPARSEVEC_INTERACTIVE_SESSION_H_

#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/svt.h"

namespace svt {

/// Configuration of an AboveThresholdSession.
struct SessionOptions {
  /// Lifetime privacy budget of the session (> 0).
  double total_epsilon = 1.0;
  /// Per-SVT-run budget (> 0, <= total). Each run answers up to
  /// `round.cutoff` positives.
  double epsilon_per_round = 0.25;
  /// Template for each round's SVT (its epsilon field is ignored and
  /// replaced by epsilon_per_round).
  SvtOptions round;

  Status Validate() const;
};

class AboveThresholdSession {
 public:
  /// `rng` must outlive the session.
  static Result<std::unique_ptr<AboveThresholdSession>> Create(
      const SessionOptions& options, Rng* rng);

  /// Tests one query. Starts a fresh SVT round (consuming
  /// epsilon_per_round) transparently when the current one has aborted.
  /// Fails with kExhausted once the lifetime budget cannot fund the round
  /// a positive-capable query needs.
  Result<Response> Process(double query_answer, double threshold);

  /// True when no further queries can be answered.
  bool exhausted() const;

  int rounds_started() const { return rounds_started_; }
  int64_t queries_processed() const { return queries_processed_; }
  int64_t positives_emitted() const { return positives_emitted_; }
  const PrivacyAccountant& accountant() const { return accountant_; }

 private:
  AboveThresholdSession(const SessionOptions& options, Rng* rng);

  Status EnsureActiveRound();

  SessionOptions options_;
  Rng* rng_;
  PrivacyAccountant accountant_;
  std::unique_ptr<SparseVector> current_;
  int rounds_started_ = 0;
  int64_t queries_processed_ = 0;
  int64_t positives_emitted_ = 0;
};

}  // namespace svt

#endif  // SPARSEVEC_INTERACTIVE_SESSION_H_
