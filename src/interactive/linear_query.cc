#include "interactive/linear_query.h"

#include "common/check.h"
#include "common/math_util.h"

namespace svt {

LinearQuery::LinearQuery(std::vector<double> coefficients)
    : coefficients_(std::move(coefficients)) {
  SVT_CHECK(!coefficients_.empty());
  for (double c : coefficients_) {
    SVT_CHECK(c >= 0.0 && c <= 1.0)
        << "linear query coefficients must be in [0,1], got " << c;
  }
}

double LinearQuery::Evaluate(const Histogram& histogram) const {
  SVT_CHECK(histogram.domain_size() == coefficients_.size())
      << "domain mismatch: query " << coefficients_.size() << ", histogram "
      << histogram.domain_size();
  KahanAccumulator acc;
  const std::span<const double> counts = histogram.counts();
  for (size_t i = 0; i < coefficients_.size(); ++i) {
    acc.Add(coefficients_[i] * counts[i]);
  }
  return acc.sum();
}

LinearQuery LinearQuery::RandomSubset(size_t domain_size, Rng& rng) {
  std::vector<double> coeffs(domain_size);
  for (double& c : coeffs) c = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  return LinearQuery(std::move(coeffs));
}

LinearQuery LinearQuery::RandomFractional(size_t domain_size, Rng& rng) {
  std::vector<double> coeffs(domain_size);
  for (double& c : coeffs) c = rng.NextDouble();
  return LinearQuery(std::move(coeffs));
}

LinearQuery LinearQuery::Interval(size_t domain_size, size_t lo, size_t hi) {
  SVT_CHECK(lo <= hi && hi <= domain_size);
  std::vector<double> coeffs(domain_size, 0.0);
  for (size_t i = lo; i < hi; ++i) coeffs[i] = 1.0;
  return LinearQuery(std::move(coeffs));
}

}  // namespace svt
