// Linear queries over a histogram: q(x) = Σ_j coeff_j · x_j with
// coefficients in [0, 1], so the sensitivity under add/remove-one-record
// neighbors is at most 1. This is the query class of the iterative
// constructions ([11, 12, 16]) that motivate SVT's interactive use (§1).

#ifndef SPARSEVEC_INTERACTIVE_LINEAR_QUERY_H_
#define SPARSEVEC_INTERACTIVE_LINEAR_QUERY_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "interactive/histogram.h"

namespace svt {

class LinearQuery {
 public:
  /// Coefficients must lie in [0, 1] (checked); size fixes the domain.
  explicit LinearQuery(std::vector<double> coefficients);

  /// True answer on a histogram (domain sizes must match).
  double Evaluate(const Histogram& histogram) const;

  size_t domain_size() const { return coefficients_.size(); }
  std::span<const double> coefficients() const { return coefficients_; }

  /// Sensitivity bound: max |coefficient| <= 1.
  double sensitivity() const { return 1.0; }

  /// A random subset-counting query: each bin included with prob 1/2.
  static LinearQuery RandomSubset(size_t domain_size, Rng& rng);

  /// A random fractional query with i.i.d. U[0,1] coefficients.
  static LinearQuery RandomFractional(size_t domain_size, Rng& rng);

  /// An interval query counting bins [lo, hi).
  static LinearQuery Interval(size_t domain_size, size_t lo, size_t hi);

 private:
  std::vector<double> coefficients_;
};

}  // namespace svt

#endif  // SPARSEVEC_INTERACTIVE_LINEAR_QUERY_H_
