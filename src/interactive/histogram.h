// Histogram: counts over a discrete domain — the data representation used
// by the interactive (iterative-construction) substrate.

#ifndef SPARSEVEC_INTERACTIVE_HISTOGRAM_H_
#define SPARSEVEC_INTERACTIVE_HISTOGRAM_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace svt {

class Histogram {
 public:
  /// Zero histogram over `domain_size` bins.
  explicit Histogram(size_t domain_size);
  /// Takes ownership of counts (all must be >= 0).
  explicit Histogram(std::vector<double> counts);

  size_t domain_size() const { return counts_.size(); }
  double count(size_t bin) const;
  void set_count(size_t bin, double value);
  void increment(size_t bin, double by = 1.0);
  std::span<const double> counts() const { return counts_; }

  /// Sum of all counts.
  double total() const;

  /// Returns a copy normalized to sum `target_total` (> 0). Total must be
  /// positive.
  Histogram NormalizedTo(double target_total) const;

  /// Uniform histogram over the same domain with the same total.
  Histogram UniformLike() const;

  /// Random histogram: `num_records` unit records dropped into bins with
  /// probability proportional to `weights` (or uniformly if empty).
  static Histogram Random(size_t domain_size, size_t num_records, Rng& rng,
                          std::span<const double> weights = {});

 private:
  std::vector<double> counts_;
};

}  // namespace svt

#endif  // SPARSEVEC_INTERACTIVE_HISTOGRAM_H_
