// §3.4's error-query forms: correct vs. broken.
//
// The iterative constructions in [12, 16] test whether a derived answer q̃
// is accurate with
//
//     broken:   |q̃ − q(D) + ν| ≥ T + ρ      (noise INSIDE the |·|)
//
// which is flawed: the left-hand side is always ≥ 0, so the moment any ⊤ is
// output, the observer learns ρ ≥ −T — the threshold noise has leaked and
// "the ability to answer each negative query for free disappears."
// The fix is
//
//     correct:  |q̃ − q(D)| + ν ≥ T + ρ      (noise OUTSIDE the |·|),
//
// which is a standard SVT over the derived queries r_i = |q̃_i − q_i(D)|.
//
// This module implements both forms so the difference can be demonstrated
// (tests, the §3.4 example) and audited: for the broken form, observing a
// positive certifies a hard lower bound on ρ; for the correct form no such
// certificate exists.

#ifndef SPARSEVEC_INTERACTIVE_ERROR_FORM_H_
#define SPARSEVEC_INTERACTIVE_ERROR_FORM_H_

#include <optional>

#include "common/rng.h"
#include "core/response.h"
#include "core/svt.h"

namespace svt {

/// Which §3.4 comparison to use.
enum class ErrorQueryForm {
  kCorrect,  ///< |q̃ − q(D)| + ν ≥ T + ρ
  kBroken,   ///< |q̃ − q(D) + ν| ≥ T + ρ  (leaks ρ; for demonstration only)
};

/// An SVT-style error checker over (estimate, true answer) pairs.
class ErrorThresholdChecker {
 public:
  /// Draws ρ ~ Lap(Δ/ε₁); per-test ν ~ Lap(2cΔ/ε₂) per `options`.
  ErrorThresholdChecker(const SvtOptions& options, ErrorQueryForm form,
                        Rng* rng);

  /// Tests whether the derived answer's error exceeds the (noisy)
  /// threshold. Counts positives against the cutoff like standard SVT.
  Response Check(double estimate, double true_answer, double threshold);

  bool exhausted() const { return exhausted_; }
  int positives_emitted() const { return positives_; }
  ErrorQueryForm form() const { return form_; }

  /// What an adversary can certify about ρ from the outputs so far.
  /// For the broken form, after any positive with threshold T the LHS ≥ 0
  /// forces ρ ≥ −T; the bound returned is the tightest such certificate.
  /// For the correct form this always returns nullopt: any ρ remains
  /// possible because ν is unbounded.
  std::optional<double> CertifiedRhoLowerBound() const;

 private:
  SvtOptions options_;
  ErrorQueryForm form_;
  Rng* rng_;
  double rho_;
  double nu_scale_;
  int positives_ = 0;
  bool exhausted_ = false;
  std::optional<double> certified_rho_lower_;
};

}  // namespace svt

#endif  // SPARSEVEC_INTERACTIVE_ERROR_FORM_H_
