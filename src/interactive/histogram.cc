#include "interactive/histogram.h"

#include "common/check.h"
#include "common/distributions.h"
#include "common/math_util.h"

namespace svt {

Histogram::Histogram(size_t domain_size) : counts_(domain_size, 0.0) {
  SVT_CHECK(domain_size >= 1);
}

Histogram::Histogram(std::vector<double> counts)
    : counts_(std::move(counts)) {
  SVT_CHECK(!counts_.empty());
  for (double c : counts_) SVT_CHECK(c >= 0.0);
}

double Histogram::count(size_t bin) const {
  SVT_CHECK(bin < counts_.size());
  return counts_[bin];
}

void Histogram::set_count(size_t bin, double value) {
  SVT_CHECK(bin < counts_.size());
  SVT_CHECK(value >= 0.0);
  counts_[bin] = value;
}

void Histogram::increment(size_t bin, double by) {
  SVT_CHECK(bin < counts_.size());
  counts_[bin] += by;
  SVT_CHECK(counts_[bin] >= 0.0);
}

double Histogram::total() const {
  KahanAccumulator acc;
  for (double c : counts_) acc.Add(c);
  return acc.sum();
}

Histogram Histogram::NormalizedTo(double target_total) const {
  SVT_CHECK(target_total > 0.0);
  const double t = total();
  SVT_CHECK(t > 0.0) << "cannot normalize an all-zero histogram";
  std::vector<double> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i] / t * target_total;
  }
  return Histogram(std::move(out));
}

Histogram Histogram::UniformLike() const {
  const double t = total();
  std::vector<double> out(counts_.size(),
                          t / static_cast<double>(counts_.size()));
  return Histogram(std::move(out));
}

Histogram Histogram::Random(size_t domain_size, size_t num_records, Rng& rng,
                            std::span<const double> weights) {
  SVT_CHECK(domain_size >= 1);
  Histogram h(domain_size);
  if (weights.empty()) {
    for (size_t r = 0; r < num_records; ++r) {
      h.increment(static_cast<size_t>(rng.NextBounded(domain_size)));
    }
    return h;
  }
  SVT_CHECK(weights.size() == domain_size);
  AliasSampler sampler(std::vector<double>(weights.begin(), weights.end()));
  for (size_t r = 0; r < num_records; ++r) {
    h.increment(sampler.Sample(rng));
  }
  return h;
}

}  // namespace svt
