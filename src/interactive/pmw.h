// Private Multiplicative Weights driven by streaming SVT — the "iterative
// construction" of Hardt & Rothblum / Gupta, Roth & Ullman that §1 of the
// paper gives as the motivating interactive application:
//
//   "one maintains a history of past queries and answers. For each new
//    query, one first uses this history to derive an answer ... and then
//    uses SVT to check whether the error of this derived answer is below a
//    threshold. If it is, then one can use this derived answer ... without
//    consuming any privacy budget."
//
// The derived answer comes from a synthetic histogram updated by
// multiplicative weights whenever SVT flags the error as large. The error
// query fed to SVT is r_i = |q_i(D) − q_i(x̂)| with the noise *added
// outside the absolute value* — the correct form from §3.4 (the variants in
// [12, 16] put ν inside the |·| and leak the threshold noise; see
// error_form.h for a demonstration of that leak).

#ifndef SPARSEVEC_INTERACTIVE_PMW_H_
#define SPARSEVEC_INTERACTIVE_PMW_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "core/budget.h"
#include "core/laplace_mechanism.h"
#include "core/svt.h"
#include "interactive/histogram.h"
#include "interactive/linear_query.h"

namespace svt {

/// Configuration of the PMW mechanism.
struct PmwOptions {
  /// Total privacy budget across the whole interaction.
  double epsilon = 1.0;
  /// Fraction of the budget given to the SVT error tests; the rest funds
  /// the Laplace answers for hard (above-threshold) queries.
  double svt_fraction = 0.5;
  /// Error threshold T: estimated answers whose (noisy) error exceeds this
  /// trigger an update. Scale it like the data total times target accuracy.
  double error_threshold = 0.0;
  /// Maximum number of updates (SVT cutoff c).
  int max_updates = 10;
  /// Multiplicative-weights learning rate η.
  double learning_rate = 0.05;
  /// Budget allocation for the SVT instance (§4.2 optimal by default — the
  /// interactive setting is exactly where the paper's improvements apply).
  bool use_optimal_allocation = true;

  Status Validate() const;
};

/// Outcome of one query.
struct PmwAnswer {
  double value = 0.0;
  /// True when the synthetic-histogram estimate was used (no budget spent).
  bool answered_from_synthetic = false;
  /// True when this query triggered a multiplicative-weights update.
  bool triggered_update = false;
};

class PrivateMultiplicativeWeights {
 public:
  /// `data` is the sensitive histogram; its total count is treated as
  /// public (standard for MW-style mechanisms). `rng` must outlive this.
  static Result<std::unique_ptr<PrivateMultiplicativeWeights>> Create(
      const PmwOptions& options, const Histogram& data, Rng* rng);

  /// Answers one linear query. Returns the synthetic estimate for free when
  /// SVT reports the error below threshold; otherwise answers with the
  /// Laplace mechanism and folds the answer into the synthetic histogram.
  /// After the update budget is exhausted, always answers from synthetic.
  PmwAnswer AnswerQuery(const LinearQuery& query);

  /// Current synthetic approximation of the data.
  const Histogram& synthetic() const { return synthetic_; }

  int updates_used() const { return updates_used_; }
  int64_t queries_answered() const { return queries_answered_; }
  int64_t free_answers() const { return free_answers_; }
  const PrivacyAccountant& accountant() const { return accountant_; }
  /// True once all max_updates updates are spent (all further answers are
  /// free but the synthetic histogram is frozen).
  bool exhausted() const { return svt_->exhausted(); }

 private:
  PrivateMultiplicativeWeights(const PmwOptions& options,
                               const Histogram& data,
                               std::unique_ptr<SparseVector> svt,
                               LaplaceMechanism laplace, Rng* rng);

  void MultiplicativeWeightsUpdate(const LinearQuery& query,
                                   double noisy_true, double estimate);

  PmwOptions options_;
  Histogram data_;
  Histogram synthetic_;
  std::unique_ptr<SparseVector> svt_;
  LaplaceMechanism laplace_;
  PrivacyAccountant accountant_;
  Rng* rng_;

  int updates_used_ = 0;
  int64_t queries_answered_ = 0;
  int64_t free_answers_ = 0;
};

}  // namespace svt

#endif  // SPARSEVEC_INTERACTIVE_PMW_H_
