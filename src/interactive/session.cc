#include "interactive/session.h"

#include "common/check.h"

namespace svt {

Status SessionOptions::Validate() const {
  if (!(total_epsilon > 0.0)) {
    return Status::InvalidArgument("total_epsilon must be positive");
  }
  if (!(epsilon_per_round > 0.0)) {
    return Status::InvalidArgument("epsilon_per_round must be positive");
  }
  if (epsilon_per_round > total_epsilon) {
    return Status::InvalidArgument(
        "epsilon_per_round exceeds total_epsilon");
  }
  SvtOptions round_check = round;
  round_check.epsilon = epsilon_per_round;
  return round_check.Validate();
}

Result<std::unique_ptr<AboveThresholdSession>> AboveThresholdSession::Create(
    const SessionOptions& options, Rng* rng) {
  SVT_RETURN_NOT_OK(options.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  return std::unique_ptr<AboveThresholdSession>(
      new AboveThresholdSession(options, rng));
}

AboveThresholdSession::AboveThresholdSession(const SessionOptions& options,
                                             Rng* rng)
    : options_(options), rng_(rng), accountant_(options.total_epsilon) {}

Status AboveThresholdSession::EnsureActiveRound() {
  if (current_ != nullptr && !current_->exhausted()) return Status::OK();
  // Fund a fresh round; the whole run costs epsilon_per_round upfront
  // (that is what the SVT privacy proof accounts for).
  SVT_RETURN_NOT_OK(accountant_.Charge(options_.epsilon_per_round));
  SvtOptions round = options_.round;
  round.epsilon = options_.epsilon_per_round;
  SVT_ASSIGN_OR_RETURN(std::unique_ptr<SparseVector> mech,
                       SparseVector::Create(round, rng_));
  current_ = std::move(mech);
  ++rounds_started_;
  return Status::OK();
}

Result<Response> AboveThresholdSession::Process(double query_answer,
                                                double threshold) {
  SVT_RETURN_NOT_OK(EnsureActiveRound());
  const Response r = current_->Process(query_answer, threshold);
  ++queries_processed_;
  if (r.is_positive()) ++positives_emitted_;
  return r;
}

bool AboveThresholdSession::exhausted() const {
  if (current_ != nullptr && !current_->exhausted()) return false;
  // Next query would need a new round.
  return accountant_.remaining() <
         options_.epsilon_per_round * (1.0 - 1e-12);
}

}  // namespace svt
