#include "interactive/session.h"

#include "common/check.h"

namespace svt {

Status SessionOptions::Validate() const {
  if (!(total_epsilon > 0.0)) {
    return Status::InvalidArgument("total_epsilon must be positive");
  }
  if (!(epsilon_per_round > 0.0)) {
    return Status::InvalidArgument("epsilon_per_round must be positive");
  }
  if (epsilon_per_round > total_epsilon) {
    return Status::InvalidArgument(
        "epsilon_per_round exceeds total_epsilon");
  }
  SvtOptions round_check = round;
  round_check.epsilon = epsilon_per_round;
  return round_check.Validate();
}

Result<std::unique_ptr<AboveThresholdSession>> AboveThresholdSession::Create(
    const SessionOptions& options, Rng* rng) {
  SVT_RETURN_NOT_OK(options.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  return std::unique_ptr<AboveThresholdSession>(
      new AboveThresholdSession(options, rng));
}

AboveThresholdSession::AboveThresholdSession(const SessionOptions& options,
                                             Rng* rng)
    : options_(options), rng_(rng), accountant_(options.total_epsilon) {}

Status AboveThresholdSession::EnsureActiveRound() {
  if (current_ != nullptr && !current_->exhausted()) return Status::OK();
  // Fund a fresh round; the whole run costs epsilon_per_round upfront
  // (that is what the SVT privacy proof accounts for).
  SVT_RETURN_NOT_OK(accountant_.Charge(options_.epsilon_per_round));
  SvtOptions round = options_.round;
  round.epsilon = options_.epsilon_per_round;
  SVT_ASSIGN_OR_RETURN(std::unique_ptr<SparseVector> mech,
                       SparseVector::Create(round, rng_));
  current_ = std::move(mech);
  ++rounds_started_;
  return Status::OK();
}

Result<Response> AboveThresholdSession::Process(double query_answer,
                                                double threshold) {
  SVT_RETURN_NOT_OK(EnsureActiveRound());
  const Response r = current_->Process(query_answer, threshold);
  ++queries_processed_;
  if (r.is_positive()) ++positives_emitted_;
  return r;
}

size_t AboveThresholdSession::RunRounds(
    size_t num_queries,
    const std::function<size_t(size_t consumed, std::vector<Response>* out)>&
        run_round,
    std::vector<Response>* out) {
  const size_t start = out->size();
  size_t consumed = 0;
  while (consumed < num_queries) {
    if (!EnsureActiveRound().ok()) break;  // budget cannot fund the round
    consumed += run_round(consumed, out);
  }
  for (size_t i = start; i < out->size(); ++i) {
    if ((*out)[i].is_positive()) ++positives_emitted_;
  }
  queries_processed_ += static_cast<int64_t>(out->size() - start);
  return out->size() - start;
}

size_t AboveThresholdSession::RunAppend(std::span<const double> answers,
                                        double threshold,
                                        std::vector<Response>* out) {
  return RunRounds(
      answers.size(),
      [&](size_t consumed, std::vector<Response>* o) {
        return current_->RunAppend(answers.subspan(consumed), threshold, o);
      },
      out);
}

size_t AboveThresholdSession::RunAppend(std::span<const double> answers,
                                        std::span<const double> thresholds,
                                        std::vector<Response>* out) {
  SVT_CHECK(answers.size() == thresholds.size())
      << "answers/thresholds size mismatch: " << answers.size() << " vs "
      << thresholds.size();
  return RunRounds(
      answers.size(),
      [&](size_t consumed, std::vector<Response>* o) {
        return current_->RunAppend(answers.subspan(consumed),
                                   thresholds.subspan(consumed), o);
      },
      out);
}

bool AboveThresholdSession::exhausted() const {
  if (current_ != nullptr && !current_->exhausted()) return false;
  // Next query would need a new round; ask the accountant itself (the old
  // re-derived 1e-12 tolerance could disagree with Charge's 1e-9 slack at
  // the boundary, refusing fundable rounds or promising unfundable ones).
  return !accountant_.CanCharge(options_.epsilon_per_round);
}

}  // namespace svt
