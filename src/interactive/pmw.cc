#include "interactive/pmw.h"

#include <cmath>

#include "common/check.h"

namespace svt {

Status PmwOptions::Validate() const {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (!(svt_fraction > 0.0) || !(svt_fraction < 1.0)) {
    return Status::InvalidArgument("svt_fraction must be in (0,1)");
  }
  if (!(error_threshold > 0.0)) {
    return Status::InvalidArgument("error_threshold must be positive");
  }
  if (max_updates < 1) {
    return Status::InvalidArgument("max_updates must be >= 1");
  }
  if (!(learning_rate > 0.0)) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  return Status::OK();
}

Result<std::unique_ptr<PrivateMultiplicativeWeights>>
PrivateMultiplicativeWeights::Create(const PmwOptions& options,
                                     const Histogram& data, Rng* rng) {
  SVT_RETURN_NOT_OK(options.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  if (data.total() <= 0.0) {
    return Status::InvalidArgument("data histogram must be non-empty");
  }

  SvtOptions svt_options;
  svt_options.epsilon = options.epsilon * options.svt_fraction;
  svt_options.sensitivity = 1.0;  // |q(D) − q(D')| ≤ 1; q(x̂) is constant
  svt_options.cutoff = options.max_updates;
  // Error queries contain an absolute value, so they are NOT monotonic;
  // the general 2cΔ/ε₂ noise is required (§4.3 applies only to monotone
  // streams).
  svt_options.monotonic = false;
  svt_options.allocation =
      options.use_optimal_allocation
          ? BudgetAllocation::Optimal(options.max_updates,
                                      /*monotonic=*/false)
          : BudgetAllocation::Halves();
  SVT_ASSIGN_OR_RETURN(std::unique_ptr<SparseVector> svt,
                       SparseVector::Create(svt_options, rng));

  // Laplace budget funds at most max_updates numeric answers.
  const double laplace_epsilon = options.epsilon * (1.0 - options.svt_fraction) /
                                 static_cast<double>(options.max_updates);
  LaplaceMechanism laplace(laplace_epsilon, /*sensitivity=*/1.0);

  return std::unique_ptr<PrivateMultiplicativeWeights>(
      new PrivateMultiplicativeWeights(options, data, std::move(svt),
                                       laplace, rng));
}

PrivateMultiplicativeWeights::PrivateMultiplicativeWeights(
    const PmwOptions& options, const Histogram& data,
    std::unique_ptr<SparseVector> svt, LaplaceMechanism laplace, Rng* rng)
    : options_(options),
      data_(data),
      synthetic_(data.UniformLike()),
      svt_(std::move(svt)),
      laplace_(laplace),
      accountant_(options.epsilon),
      rng_(rng) {
  // Reserve the SVT share upfront: the indicator vector costs ε·svt_fraction
  // regardless of how many queries end up free.
  SVT_CHECK_OK(accountant_.Charge(options.epsilon * options.svt_fraction));
}

PmwAnswer PrivateMultiplicativeWeights::AnswerQuery(
    const LinearQuery& query) {
  ++queries_answered_;
  const double estimate = query.Evaluate(synthetic_);

  PmwAnswer answer;
  answer.value = estimate;

  if (svt_->exhausted()) {
    // Update budget exhausted: synthetic answers forever, still free.
    answer.answered_from_synthetic = true;
    ++free_answers_;
    return answer;
  }

  // §3.4's correct form: the error |q(D) − q(x̂)| is itself the query fed
  // to SVT; the noise ν is added by SVT *outside* the absolute value.
  const double true_answer = query.Evaluate(data_);
  const double error = std::abs(true_answer - estimate);
  const Response r = svt_->Process(error, options_.error_threshold);

  if (!r.is_positive()) {
    answer.answered_from_synthetic = true;
    ++free_answers_;
    return answer;
  }

  // Hard query: buy a fresh Laplace answer and fold it into the synthetic
  // histogram.
  SVT_CHECK_OK(accountant_.Charge(laplace_.epsilon()));
  const double noisy_true = laplace_.Answer(true_answer, *rng_);
  MultiplicativeWeightsUpdate(query, noisy_true, estimate);
  ++updates_used_;

  answer.value = noisy_true;
  answer.answered_from_synthetic = false;
  answer.triggered_update = true;
  return answer;
}

void PrivateMultiplicativeWeights::MultiplicativeWeightsUpdate(
    const LinearQuery& query, double noisy_true, double estimate) {
  // Standard MW step on the normalized synthetic distribution:
  //   x̂_j ∝ x̂_j · exp(η · sign · coeff_j),
  // pushing mass toward (away from) the query's support when the synthetic
  // under- (over-) estimates.
  const double sign = noisy_true > estimate ? 1.0 : -1.0;
  const double eta = options_.learning_rate;
  const double total = synthetic_.total();

  std::vector<double> updated(synthetic_.domain_size());
  const std::span<const double> coeffs = query.coefficients();
  for (size_t j = 0; j < updated.size(); ++j) {
    updated[j] = synthetic_.count(j) * std::exp(eta * sign * coeffs[j]);
  }
  synthetic_ = Histogram(std::move(updated)).NormalizedTo(total);
}

}  // namespace svt
