// Streaming summary statistics (Welford) for experiment aggregation.

#ifndef SPARSEVEC_COMMON_STATS_H_
#define SPARSEVEC_COMMON_STATS_H_

#include <cstdint>
#include <span>
#include <string>

namespace svt {

/// Accumulates count/mean/variance/min/max in one pass (Welford's update),
/// numerically stable for long experiment sweeps.
class RunningStats {
 public:
  void Add(double value);

  /// Merges another accumulator (parallel runs).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// "mean±stddev" with fixed precision, for table cells.
  std::string ToString(int precision = 3) const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot helpers.
double Mean(std::span<const double> values);
double SampleStddev(std::span<const double> values);

/// Two-sided binomial (Clopper-Pearson style via normal approx + continuity)
/// upper bound on a probability given `successes` out of `trials` at level
/// `confidence` (e.g. 0.999). Used by the Monte-Carlo privacy auditor to
/// report conservative empirical-epsilon intervals.
double BinomialUpperBound(int64_t successes, int64_t trials,
                          double confidence);

/// Matching lower bound.
double BinomialLowerBound(int64_t successes, int64_t trials,
                          double confidence);

}  // namespace svt

#endif  // SPARSEVEC_COMMON_STATS_H_
