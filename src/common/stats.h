// Streaming summary statistics (Welford) for experiment aggregation.

#ifndef SPARSEVEC_COMMON_STATS_H_
#define SPARSEVEC_COMMON_STATS_H_

#include <cstdint>
#include <span>
#include <string>

namespace svt {

/// Accumulates count/mean/variance/min/max in one pass (Welford's update),
/// numerically stable for long experiment sweeps.
class RunningStats {
 public:
  void Add(double value);

  /// Merges another accumulator (parallel runs).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// "mean±stddev" with fixed precision, for table cells.
  std::string ToString(int precision = 3) const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket latency histogram: log2 buckets keyed by the bit width of
/// the nanosecond value, so Add is one branch-free bucket computation and
/// the whole accumulator is a flat copyable array — cheap enough to sit in
/// per-shard serving stats and be snapshotted/merged under a lock. Driven
/// by the injectable Clock, so tests with a VirtualClock get deterministic
/// percentiles. Quantile answers are bucket UPPER edges: the reported
/// p-quantile is >= the true one, never under — overload shows up, never
/// hides (within the 2x bucket resolution).
class LatencyHistogram {
 public:
  void Add(int64_t nanos);

  /// Merges another histogram (cross-shard aggregation).
  void Merge(const LatencyHistogram& other);

  int64_t count() const { return count_; }

  /// Upper edge of the bucket holding the p-quantile (p in [0, 1]) of the
  /// recorded values; 0 when empty. PercentileUpperNanos(0.5) is the p50
  /// upper bound, (0.99) the p99.
  int64_t PercentileUpperNanos(double p) const;

 private:
  /// One bucket per possible bit width of a non-negative int64 (0..63):
  /// bucket b holds values in [2^(b-1), 2^b - 1], bucket 0 holds 0.
  static constexpr int kBuckets = 64;
  int64_t counts_[kBuckets] = {};
  int64_t count_ = 0;
};

/// One-shot helpers.
double Mean(std::span<const double> values);
double SampleStddev(std::span<const double> values);

/// Two-sided binomial (Clopper-Pearson style via normal approx + continuity)
/// upper bound on a probability given `successes` out of `trials` at level
/// `confidence` (e.g. 0.999). Used by the Monte-Carlo privacy auditor to
/// report conservative empirical-epsilon intervals.
double BinomialUpperBound(int64_t successes, int64_t trials,
                          double confidence);

/// Matching lower bound.
double BinomialLowerBound(int64_t successes, int64_t trials,
                          double confidence);

}  // namespace svt

#endif  // SPARSEVEC_COMMON_STATS_H_
