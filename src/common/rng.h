// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through svt::Rng so that (a) every
// mechanism is reproducible from a seed, and (b) results are identical
// across platforms and standard libraries. The std::* distribution classes
// are explicitly avoided because the C++ standard does not pin down their
// algorithms; the samplers in distributions.h are hand-written inverse-CDF
// transforms over Rng's 53-bit uniforms.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64 so that low-entropy seeds (0, 1, 2, ...) still produce
// well-separated streams.

#ifndef SPARSEVEC_COMMON_RNG_H_
#define SPARSEVEC_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace svt {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
/// Advances `state` and returns the next 64-bit output.
uint64_t SplitMix64Next(uint64_t& state);

/// xoshiro256++ generator with convenience draws used by the samplers.
///
/// Not thread-safe; use one Rng per thread (Fork() produces independent
/// streams for parallel experiment runs).
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0xdeadbeefcafef00dULL);

  /// Constructs directly from internal state (used by Fork()).
  explicit Rng(const std::array<uint64_t, 4>& state);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1]; never returns 0 (safe for log()).
  double NextDoublePositive();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool NextBernoulli(double p);

  /// Returns a new Rng whose stream is independent of (and does not
  /// advance) subsequent draws from this one in any correlated way.
  /// Implemented as the xoshiro long-jump applied to a copy.
  Rng Fork();

  /// Fisher-Yates shuffles indices [0, n) into `out` (resized to n).
  /// Convenience for randomized query orders in the experiments.
  template <typename Container>
  void ShuffleIndices(size_t n, Container* out) {
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = static_cast<uint32_t>(i);
    for (size_t i = n; i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*out)[i - 1], (*out)[j]);
    }
  }

  /// In-place Fisher-Yates shuffle of an arbitrary random-access container.
  template <typename Container>
  void Shuffle(Container* c) {
    for (size_t i = c->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*c)[i - 1], (*c)[j]);
    }
  }

  /// Internal state snapshot (for tests and serialization).
  const std::array<uint64_t, 4>& state() const { return state_; }

 private:
  void LongJump();

  std::array<uint64_t, 4> state_;
};

}  // namespace svt

#endif  // SPARSEVEC_COMMON_RNG_H_
