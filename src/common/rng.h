// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through svt::Rng so that (a) every
// mechanism is reproducible from a seed, and (b) results are identical
// across platforms and standard libraries. The std::* distribution classes
// are explicitly avoided because the C++ standard does not pin down their
// algorithms; the samplers in distributions.h are hand-written inverse-CDF
// transforms over Rng's 53-bit uniforms.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64 so that low-entropy seeds (0, 1, 2, ...) still produce
// well-separated streams.

#ifndef SPARSEVEC_COMMON_RNG_H_
#define SPARSEVEC_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

namespace svt {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
/// Advances `state` and returns the next 64-bit output.
uint64_t SplitMix64Next(uint64_t& state);

/// xoshiro256++ generator with convenience draws used by the samplers.
///
/// Not thread-safe; use one Rng per thread (Fork() produces independent
/// streams for parallel experiment runs).
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0xdeadbeefcafef00dULL);

  /// Constructs directly from internal state (used by Fork()).
  explicit Rng(const std::array<uint64_t, 4>& state);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// The uint64 -> double mappings behind NextDouble/NextDoublePositive,
  /// exposed so every bulk transform (Fill*, the samplers' *Block paths,
  /// the batch engine's bound computation) shares the one definition — the
  /// bitwise batch/streaming equivalence contract depends on these never
  /// diverging between call sites.
  ///
  /// [0, 1): top 53 bits scaled onto the 53-bit lattice.
  static double ToUnitDouble(uint64_t word) {
    return static_cast<double>(word >> 11) * 0x1.0p-53;
  }
  /// (0, 1]: the [0,1) lattice shifted up by one ulp of the 53-bit grid
  /// (never 0, safe for log()).
  static double ToUnitDoublePositive(uint64_t word) {
    return (static_cast<double>(word >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1]; never returns 0 (safe for log()).
  double NextDoublePositive();

  /// Fills `out` with the next out.size() NextUint64() outputs. Block
  /// kernel: the state lives in registers for the whole span instead of
  /// being loaded/stored around every draw, and the loop is unrolled. The
  /// sequence is identical to calling NextUint64() out.size() times.
  void FillUint64(std::span<uint64_t> out);

  /// Fills `out` with the next out.size() NextDouble() outputs.
  void FillDouble(std::span<double> out);

  /// Fills `out` with the next out.size() NextDoublePositive() outputs.
  void FillDoublePositive(std::span<double> out);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool NextBernoulli(double p);

  /// Returns a new Rng seeded (via SplitMix64) from one draw of this
  /// stream — JAX-style key splitting. Safe for arbitrarily *nested*
  /// forking (per-run, then per-method, then per-worker): every stream in
  /// the fork tree is well separated with overwhelming probability.
  /// Deterministic: same parent state, same children. Advances this
  /// generator by exactly one draw.
  Rng Fork();

  /// Fisher-Yates shuffles indices [0, n) into `out` (resized to n).
  /// Convenience for randomized query orders in the experiments.
  template <typename Container>
  void ShuffleIndices(size_t n, Container* out) {
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = static_cast<uint32_t>(i);
    for (size_t i = n; i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*out)[i - 1], (*out)[j]);
    }
  }

  /// In-place Fisher-Yates shuffle of an arbitrary random-access container.
  template <typename Container>
  void Shuffle(Container* c) {
    for (size_t i = c->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*c)[i - 1], (*c)[j]);
    }
  }

  /// Internal state snapshot (for tests and serialization).
  const std::array<uint64_t, 4>& state() const { return state_; }

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace svt

#endif  // SPARSEVEC_COMMON_RNG_H_
