// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through svt::Rng so that (a) every
// mechanism is reproducible from a seed, and (b) results are identical
// across platforms and standard libraries. The std::* distribution classes
// are explicitly avoided because the C++ standard does not pin down their
// algorithms; the samplers in distributions.h are hand-written inverse-CDF
// transforms over Rng's 53-bit uniforms.
//
// The generator is a four-lane lockstep xoshiro256++ (Blackman & Vigna)
// block generator (BlockRng below): the output stream is the round-robin
// interleave of four independent xoshiro256++ lanes, each seeded through
// SplitMix64 key-splitting. The interleaved definition is what lets the
// bulk Fill* paths run all four lanes in SIMD registers (AVX2 / AVX-512
// behind the vecmath runtime dispatch) while the scalar Next* calls walk
// the exact same stream one word at a time — block and scalar draws are
// interchangeable draw for draw at every dispatch level.

#ifndef SPARSEVEC_COMMON_RNG_H_
#define SPARSEVEC_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

namespace svt {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
/// Advances `state` and returns the next 64-bit output.
uint64_t SplitMix64Next(uint64_t& state);

/// Four xoshiro256++ lanes run in lockstep, emitting one interleaved
/// stream. This is the engine behind Rng; it is exposed separately so the
/// stream definition — the draw-order contract's step 5 — has one named
/// owner, and so tests can pin the lane layout directly.
///
/// Stream definition (pinned; golden-tested in common_rng_block_test.cc):
///
///   * Seeding: a SplitMix64 sequence started at `seed` emits one 64-bit
///     key per lane, in lane order 0..3; lane j's four state words are the
///     first four outputs of a fresh SplitMix64 sequence started at key_j
///     (identical to the pre-PR-4 single-lane seeding applied per lane).
///   * Output k of the stream is lane (k mod 4)'s xoshiro256++ output at
///     step floor(k / 4) — lane-interleaved, so four consecutive outputs
///     at a lane-aligned position are one step of all four lanes.
///
/// Next() and Fill() walk this one stream; Fill() executes lane-aligned
/// spans as SIMD lockstep steps (AVX2, or AVX-512's native 64-bit rotate,
/// per vecmath's runtime dispatch level) and is bit-identical to a Next()
/// loop at every level — xoshiro is pure integer arithmetic, so lanes
/// cannot diverge by rounding.
class BlockRng {
 public:
  /// Lane count. Fixed by the stream definition: changing it changes every
  /// stream (a golden re-record), not just performance.
  static constexpr size_t kLanes = 4;

  /// Full state snapshot: the 16 xoshiro words in lane-interleaved order
  /// (words[w * kLanes + lane] is state word w of lane `lane`) plus the
  /// lane that emits the next output.
  struct State {
    std::array<uint64_t, 4 * kLanes> words{};
    uint32_t phase = 0;
  };

  /// Seeds all four lanes from `seed` per the stream definition above.
  explicit BlockRng(uint64_t seed);

  /// Restores a snapshot (every lane must have a nonzero state; checked).
  explicit BlockRng(const State& state);

  /// Next output of the interleaved stream.
  uint64_t Next();

  /// Fills `out` with the next out.size() Next() outputs. Lane-aligned
  /// interior spans run as SIMD lockstep blocks at the active vecmath
  /// dispatch level; leading (phase != 0) and trailing partial steps run
  /// scalar. The sequence is identical to calling Next() out.size() times
  /// at every dispatch level.
  void Fill(std::span<uint64_t> out);

  /// Bounded fill for fused single-pass consumers (the batch engine's
  /// sub-block loop): fills the largest prefix of `out` that leaves the
  /// stream at a lane-aligned position — any phase catch-up words followed
  /// by whole lockstep steps — so repeated bounded fills always execute
  /// the SIMD lockstep kernel and never strand the generator mid-step.
  /// Returns the number of words written; they are exactly the next k
  /// outputs of Next(). When the rule would write nothing (out smaller
  /// than one step at an aligned position) the whole span is filled
  /// scalar instead, so callers looping to a byte budget always progress.
  size_t FillBounded(std::span<uint64_t> out);

  /// Snapshot for serialization and tests. Together with Restore() this is
  /// the checkpoint seam the lane-resident megakernels (vecmath's Mega*
  /// family) use: State::words is the SoA state flattened in the same
  /// order, so a kernel can load the lanes into registers, advance them
  /// in-kernel, and hand back a State that Restore() accepts — leaving
  /// this generator exactly where a FillUint64 of the consumed words
  /// would have.
  State state() const;

  /// Restores a snapshot in place (same validation as the State
  /// constructor: phase < kLanes, every lane nonzero; checked).
  void Restore(const State& state);

 private:
  uint64_t StepLane(size_t lane);

  /// Shared core of Fill/FillBounded: phase catch-up words, then whole
  /// lockstep steps; returns how many words were written (stops at the
  /// last lane-aligned position within `out`).
  size_t FillAlignedPrefix(std::span<uint64_t> out);

  // Structure-of-arrays across lanes: s_[w][lane] is state word w of lane
  // `lane`, so the SIMD kernels load state word w of all lanes with one
  // 256-bit load.
  std::array<std::array<uint64_t, kLanes>, 4> s_;
  uint32_t phase_ = 0;
};

/// Interleaved four-lane xoshiro256++ generator (see BlockRng) with the
/// convenience draws used by the samplers.
///
/// Not thread-safe; use one Rng per thread (Fork() produces independent
/// streams for parallel experiment runs).
class Rng {
 public:
  /// Full state snapshot type (BlockRng::State).
  using State = BlockRng::State;

  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0xdeadbeefcafef00dULL);

  /// Constructs directly from a state snapshot (round-trips state()).
  explicit Rng(const State& state);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0
  /// (checked: bound == 0 would divide by zero in the rejection threshold).
  uint64_t NextBounded(uint64_t bound);

  /// The uint64 -> double mappings behind NextDouble/NextDoublePositive,
  /// exposed so every bulk transform (Fill*, the samplers' *Block paths,
  /// the batch engine's bound computation) shares the one definition — the
  /// bitwise batch/streaming equivalence contract depends on these never
  /// diverging between call sites.
  ///
  /// [0, 1): top 53 bits scaled onto the 53-bit lattice.
  static double ToUnitDouble(uint64_t word) {
    return static_cast<double>(word >> 11) * 0x1.0p-53;
  }
  /// (0, 1]: the [0,1) lattice shifted up by one ulp of the 53-bit grid
  /// (never 0, safe for log()).
  static double ToUnitDoublePositive(uint64_t word) {
    return (static_cast<double>(word >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1]; never returns 0 (safe for log()).
  double NextDoublePositive();

  /// Fills `out` with the next out.size() NextUint64() outputs, running
  /// the four xoshiro lanes in SIMD lockstep where the span is
  /// lane-aligned (see BlockRng::Fill). The sequence is identical to
  /// calling NextUint64() out.size() times, at every dispatch level.
  void FillUint64(std::span<uint64_t> out);

  /// Bounded variant (BlockRng::FillBounded): fills a lane-aligned prefix
  /// of `out` and returns its length — the hook the batch engine's fused
  /// scan paths pull L1-resident word sub-blocks through. Looping until a
  /// target count is reached consumes exactly the FillUint64 stream.
  size_t FillUint64Bounded(std::span<uint64_t> out);

  /// Fills `out` with the next out.size() NextDouble() outputs.
  void FillDouble(std::span<double> out);

  /// Fills `out` with the next out.size() NextDoublePositive() outputs.
  void FillDoublePositive(std::span<double> out);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool NextBernoulli(double p);

  /// Returns a new Rng seeded (via the BlockRng seeding expansion) from
  /// one draw of this stream — JAX-style key splitting. Safe for
  /// arbitrarily *nested* forking (per-run, then per-method, then
  /// per-worker): every stream in the fork tree is well separated with
  /// overwhelming probability. Deterministic: same parent state, same
  /// children. Advances this generator by exactly one draw.
  Rng Fork();

  /// Fisher-Yates shuffles indices [0, n) into `out` (resized to n).
  /// Convenience for randomized query orders in the experiments.
  template <typename Container>
  void ShuffleIndices(size_t n, Container* out) {
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = static_cast<uint32_t>(i);
    for (size_t i = n; i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*out)[i - 1], (*out)[j]);
    }
  }

  /// In-place Fisher-Yates shuffle of an arbitrary random-access container.
  template <typename Container>
  void Shuffle(Container* c) {
    for (size_t i = c->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*c)[i - 1], (*c)[j]);
    }
  }

  /// Internal state snapshot (for tests and serialization).
  State state() const { return core_.state(); }

  /// Restores a snapshot in place (BlockRng::Restore) — the return half of
  /// the megakernel checkpoint seam: the batch engine snapshots state(),
  /// lets an in-register kernel consume stream words, and restores the
  /// kernel's final state here so subsequent draws continue the one
  /// stream exactly.
  void RestoreState(const State& state) { core_.Restore(state); }

 private:
  BlockRng core_;
};

}  // namespace svt

#endif  // SPARSEVEC_COMMON_RNG_H_
