// Implementation notes
// --------------------
// Both kernels are the classic fdlibm reductions with the polynomial
// evaluated in one fixed Horner order:
//
//   Log: decompose x = 2^k * m with m in [sqrt(1/2), sqrt(2)) by integer
//   bit manipulation (exact), then with s = f/(2+f), f = m-1:
//     log(m) = f - (hfsq - s*(hfsq + R(s^2))),  R a degree-7 minimax poly,
//   recombined with k*ln2 in hi/lo parts. Subnormals are prescaled by
//   2^54 (exact) first.
//
//   Exp: k = round(x/ln2) via the 1.5*2^52 magic-add (exact for |x| in
//   range), r = (x - k*ln2_hi) - k*ln2_lo, then fdlibm's rational form
//     exp(r) = 1 - ((lo - r*c/(2-c)) - hi),  c = r - r^2*P(r^2),
//   scaled by 2^k as two exact power-of-two multiplies (k split in halves)
//   so deep underflow rounds once, into the subnormal range, correctly.
//
// The AVX2 and AVX-512 lanes mirror the scalar lane operation for
// operation: every step is a correctly-rounded IEEE double op (+ - * /) or
// an exact integer manipulation, and no FMA contraction can occur
// (explicit non-fused intrinsics here; -ffp-contract=off for the scalar
// lane, set in CMakeLists.txt). Lanes holding operands outside the fast
// path's domain (zero/subnormal/negative/non-finite for Log, |x| > 700 or
// NaN for Exp) are patched with the scalar kernel after the vector store,
// so every special case has exactly one implementation. The AVX-512 lane
// additionally uses the exact integer<->double conversions AVX-512DQ
// provides (cvtepu64_pd / cvtepi64_pd / cvtpd_epi64) where the AVX2 lane
// rebuilds them from 32-bit halves — both are exact for the magnitudes
// involved, so the lanes agree bit for bit.

#include "common/vecmath.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "common/rng_lockstep.h"

#if (defined(__x86_64__) || defined(_M_X64)) && !defined(SVT_DISABLE_AVX2) && \
    (defined(__GNUC__) || defined(__clang__))
#define SVT_VECMATH_HAVE_AVX2 1
#include <immintrin.h>
#else
#define SVT_VECMATH_HAVE_AVX2 0
#endif

// The AVX-512 lane rides on the same toolchain requirements as AVX2 (and
// is pointless without it: dispatch is ordered). -DSVT_DISABLE_AVX512
// compiles just this lane out, for -mno-avx512f-style CI legs.
#if SVT_VECMATH_HAVE_AVX2 && !defined(SVT_DISABLE_AVX512)
#define SVT_VECMATH_HAVE_AVX512 1
#else
#define SVT_VECMATH_HAVE_AVX512 0
#endif

namespace svt {
namespace vec {

namespace {

// --- shared constants (bit-exact fdlibm values, written as hex floats) ---

constexpr double kLn2Hi = 0x1.62e42fee00000p-1;   // 6.93147180369123816490e-01
constexpr double kLn2Lo = 0x1.a39ef35793c76p-33;  // 1.90821492927058770002e-10

// log: reciprocal-free correction polynomial. fdlibm evaluates the
// compensated recombination around X = log(1+f) - f + f^2/2 but reaches X
// through s = f/(2+f) — a divider-latency chain that caps the vector
// lanes' throughput. We instead expand X = f^3 * R(f) directly, with R a
// degree-20 minimax fit (Chebyshev nodes, long-double fit) of
// (log(1+f) - f + f^2/2) / f^3 on f in [sqrt(1/2)-1, sqrt(2)-1]. Max
// absolute fit error ~9.7e-18 over the interval (R itself is ~0.26-0.43),
// i.e. far below one ulp of X's contribution; the measured end-to-end
// error of the full kernel stays under 1 ulp vs the infinitely precise
// log. Evaluated as an even/odd Horner split in w = f^2 (two independent
// chains, no division). Coefficient k is the f^k term of R.
constexpr double kQ0 = 0x1.5555555555555p-2;
constexpr double kQ1 = -0x1.0000000000007p-2;
constexpr double kQ2 = 0x1.99999999998d7p-3;
constexpr double kQ3 = -0x1.5555555553457p-3;
constexpr double kQ4 = 0x1.249249249e4a9p-3;
constexpr double kQ5 = -0x1.000000017c4eap-3;
constexpr double kQ6 = 0x1.c71c71bf5db12p-4;
constexpr double kQ7 = -0x1.9999989e9f8b5p-4;
constexpr double kQ8 = 0x1.745d1806bdea4p-4;
constexpr double kQ9 = -0x1.555582293998ep-4;
constexpr double kQ10 = 0x1.3b13c73c82083p-4;
constexpr double kQ11 = -0x1.248da6617d7e1p-4;
constexpr double kQ12 = 0x1.110a3cb814e7cp-4;
constexpr double kQ13 = -0x1.00471d25a052ap-4;
constexpr double kQ14 = 0x1.e3351b0b8a06ap-5;
constexpr double kQ15 = -0x1.c29e22cde6a1cp-5;
constexpr double kQ16 = 0x1.9ef55712af986p-5;
constexpr double kQ17 = -0x1.a4f2cb642aed7p-5;
constexpr double kQ18 = 0x1.e4de09bbb15acp-5;
constexpr double kQ19 = -0x1.ba0db7c5ec460p-5;
constexpr double kQ20 = 0x1.7d29370356709p-6;

// exp: c = r - r^2*(P1 + r^2*(P2 + ...)), |r| <= ln2/2.
constexpr double kP1 = 0x1.5555555555553p-3;
constexpr double kP2 = -0x1.6c16c16bebd93p-9;
constexpr double kP3 = 0x1.1566aaf25de2cp-14;
constexpr double kP4 = -0x1.bbd41c5d26bf1p-20;
constexpr double kP5 = 0x1.6376972bea4d0p-25;
constexpr double kLog2e = 0x1.71547652b82fep+0;
// 1.5 * 2^52: adding and subtracting rounds to the nearest integer
// (ties-to-even) for |t| < 2^51, entirely in double arithmetic.
constexpr double kRoundMagic = 6755399441055744.0;
// exp() overflows above this (largest x with exp(x) finite).
constexpr double kExpOverflow = 709.782712893383973096;

// 2^k for k in [-1022, 1023], built exactly from the exponent field.
inline double Pow2(int64_t k) {
  return std::bit_cast<double>(static_cast<uint64_t>(k + 1023) << 52);
}

// The SVT_MAX_DISPATCH cap, read once per process. Folded into
// DispatchLevelSupported() below so a capped level is indistinguishable
// from a missing one everywhere: auto-detection never picks it AND
// SetDispatchLevel() refuses it — a CI leg running with
// SVT_MAX_DISPATCH=avx2 on AVX-512 hardware therefore exercises the AVX2
// lane even through tests that iterate kAllDispatchLevels themselves.
DispatchLevel EnvDispatchCap() {
  static const DispatchLevel cap =
      ParseDispatchCap(std::getenv("SVT_MAX_DISPATCH"));
  return cap;
}

DispatchLevel DetectDispatchLevel() {
  const char* force = std::getenv("SVT_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return DispatchLevel::kScalar;
  }
  // DispatchLevelSupported embeds the SVT_MAX_DISPATCH cap.
  DispatchLevel best = DispatchLevel::kScalar;
  if (DispatchLevelSupported(DispatchLevel::kAvx2)) {
    best = DispatchLevel::kAvx2;
  }
  if (DispatchLevelSupported(DispatchLevel::kAvx512)) {
    best = DispatchLevel::kAvx512;
  }
  return best;
}

std::atomic<int>& ActiveLevelVar() {
  static std::atomic<int> level{static_cast<int>(DetectDispatchLevel())};
  return level;
}

}  // namespace

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kAvx2:
      return "avx2";
    case DispatchLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool DispatchLevelSupported(DispatchLevel level) {
  // A level above the SVT_MAX_DISPATCH cap reads as unsupported, so both
  // auto-detection and SetDispatchLevel() honor the cap and capped-out
  // halves of cross-dispatch tests skip cleanly.
  if (level > EnvDispatchCap()) return false;
  switch (level) {
    case DispatchLevel::kScalar:
      return true;
    case DispatchLevel::kAvx2:
#if SVT_VECMATH_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case DispatchLevel::kAvx512:
#if SVT_VECMATH_HAVE_AVX512
      // F for the 512-bit kernels, DQ for the exact 64-bit int<->double
      // conversions and the 512-bit pd logic ops, VL for BlockRng's
      // 256-bit rotate variant. One predicate for the whole level keeps
      // "kAvx512 is active" meaning the same thing everywhere.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
  }
  return false;
}

DispatchLevel ParseDispatchCap(const char* value) {
  // Unset/empty means "no cap" (the widest level is the cap).
  if (value == nullptr || value[0] == '\0') return DispatchLevel::kAvx512;
  std::string v(value);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "scalar" || v == "0") return DispatchLevel::kScalar;
  if (v == "avx2" || v == "1") return DispatchLevel::kAvx2;
  if (v == "avx512" || v == "2") return DispatchLevel::kAvx512;
  // A present-but-unrecognized cap must fail loudly: treating a typo
  // ("avx-2", "AVX 2") as "no cap" would silently run the CI dispatch
  // legs uncapped while reporting green.
  SVT_CHECK(false) << "unrecognized SVT_MAX_DISPATCH value \"" << value
                   << "\" (expected scalar/avx2/avx512 or 0/1/2)";
  return DispatchLevel::kAvx512;  // unreachable
}

DispatchLevel ActiveDispatchLevel() {
  return static_cast<DispatchLevel>(
      ActiveLevelVar().load(std::memory_order_relaxed));
}

bool SetDispatchLevel(DispatchLevel level) {
  if (!DispatchLevelSupported(level)) return false;
  ActiveLevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

double Log(double x) {
  uint64_t bits = std::bit_cast<uint64_t>(x);
  int64_t k = 0;
  if (bits < 0x0010000000000000ull || bits >= 0x7FF0000000000000ull) {
    if (bits << 1 == 0) {  // ±0
      return -std::numeric_limits<double>::infinity();
    }
    if (bits >> 63) {  // negative (incl. -inf): domain error
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (bits >= 0x7FF0000000000000ull) {  // +inf, NaN: propagate
      return x;
    }
    // Positive subnormal: prescale exactly into the normal range.
    x *= 0x1p54;
    k = -54;
    bits = std::bit_cast<uint64_t>(x);
  }
  // Normalize the significand into m in [sqrt(1/2), sqrt(2)): adding
  // 0x95F62 to the top of the mantissa field carries into the exponent
  // exactly when the significand is >= sqrt(2), in which case m takes the
  // halved binade (fdlibm's high-word trick, done on the full 64 bits —
  // the constant's low 32 bits are zero, so mantissa bits pass through).
  const uint64_t adj = bits + 0x0009'5F62'0000'0000ull;
  k += static_cast<int64_t>(adj >> 52) - 1023;
  const uint64_t mbits =
      (adj & 0x000F'FFFF'FFFF'FFFFull) + 0x3FE6'A09E'0000'0000ull;
  const double m = std::bit_cast<double>(mbits);

  // Reciprocal-free tail (see the kQ* block): X = f^3 * R(f) replaces
  // fdlibm's s = f/(2+f) chain; the compensated recombination around X is
  // unchanged. Even/odd Horner split in w = f^2 — the operation order
  // below is the pinned cross-lane contract (the SIMD lanes replay it
  // lane-wise with non-fused intrinsics; vecmath.cc builds with
  // -ffp-contract=off so no FMA contraction can split the lanes).
  const double f = m - 1.0;
  const double w = f * f;
  double re = kQ20;
  re = re * w + kQ18;
  re = re * w + kQ16;
  re = re * w + kQ14;
  re = re * w + kQ12;
  re = re * w + kQ10;
  re = re * w + kQ8;
  re = re * w + kQ6;
  re = re * w + kQ4;
  re = re * w + kQ2;
  re = re * w + kQ0;
  double ro = kQ19;
  ro = ro * w + kQ17;
  ro = ro * w + kQ15;
  ro = ro * w + kQ13;
  ro = ro * w + kQ11;
  ro = ro * w + kQ9;
  ro = ro * w + kQ7;
  ro = ro * w + kQ5;
  ro = ro * w + kQ3;
  ro = ro * w + kQ1;
  const double q = re + f * ro;
  const double x3r = (w * f) * q;
  const double hfsq = (0.5 * f) * f;
  const double dk = static_cast<double>(k);
  return dk * kLn2Hi - ((hfsq - (x3r + dk * kLn2Lo)) - f);
}

double Exp(double x) {
  // Outside these bounds the k-split scaling below would leave the double
  // exponent range; the results are exactly +inf / 0 anyway.
  if (std::isnan(x)) return x + x;
  if (x > kExpOverflow) return std::numeric_limits<double>::infinity();
  if (x < -1000.0) return 0.0;  // exp(-745.14) already underflows to 0

  const double t = x * kLog2e;
  const double kd = (t + kRoundMagic) - kRoundMagic;
  const int64_t k = static_cast<int64_t>(kd);
  const double hi = x - kd * kLn2Hi;
  const double lo = kd * kLn2Lo;
  const double r = hi - lo;
  const double z = r * r;
  const double c =
      r - z * (kP1 + z * (kP2 + z * (kP3 + z * (kP4 + z * kP5))));
  const double y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
  // Scale by 2^k in two halves: the first multiply is exact (y ~ 1, k1
  // never reaches the exponent limits), so the second rounds once —
  // correctly — even when the final result is subnormal.
  const int64_t k1 = k >> 1;
  const int64_t k2 = k - k1;
  return y * Pow2(k1) * Pow2(k2);
}

double NegLogUnitPositive(uint64_t word) {
  return -Log(Rng::ToUnitDoublePositive(word));
}

namespace {

// The word-pair → Laplace(mu, b) transform of one element, shared by the
// fused scan kernels' scalar lane and every SIMD lane's sub-width tail.
// Operation for operation the scalar body of LaplaceTransformBlock — the
// fused kernels are *defined* by this composition.
inline double LaplaceNuScalar(uint64_t w_mag, uint64_t w_sign, double mu,
                              double b) {
  const double e = -Log(Rng::ToUnitDoublePositive(w_mag));
  const double be = b * e;
  const uint64_t flip = ~w_sign & 0x8000'0000'0000'0000ull;
  return mu + std::bit_cast<double>(std::bit_cast<uint64_t>(be) ^ flip);
}

// The word → Exponential(b) transform of one element: one raw word per
// variate (no sign word; support [0, +inf)). Operation for operation the
// scalar body of ExponentialTransformBlock — the fused exponential scans
// are *defined* by this composition.
inline double ExpNuScalar(uint64_t word, double b) {
  return b * NegLogUnitPositive(word);
}

// Scalar reference lanes of the four fused sample-and-scan kernels. Each
// starts at element `from` (0 for the dispatch entry points; the SIMD
// lanes delegate their < width tails here, the same rule the unfused
// kernels use). The positive tests are literal transcriptions of the
// streaming comparisons, so hit indices are bit-identical across lanes.

FusedScanHit FusedScanGeScalar(const uint64_t* words, double mu, double b,
                               double bar, size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = LaplaceNuScalar(words[2 * i], words[2 * i + 1], mu, b);
    if (nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedScanSumGeScalar(const uint64_t* words, double mu, double b,
                                  const double* a, double bar, size_t n,
                                  size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = LaplaceNuScalar(words[2 * i], words[2 * i + 1], mu, b);
    if (a[i] + nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedScanGePairwiseScalar(const uint64_t* words, double mu,
                                       double b, const double* bars,
                                       double rho, size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = LaplaceNuScalar(words[2 * i], words[2 * i + 1], mu, b);
    if (nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedScanSumGePairwiseScalar(const uint64_t* words, double mu,
                                          double b, const double* a,
                                          const double* bars, double rho,
                                          size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = LaplaceNuScalar(words[2 * i], words[2 * i + 1], mu, b);
    if (a[i] + nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

// Scalar reference lanes of the exponential-noise fused scans: identical
// structure to the Laplace family above, but one word per variate.

FusedScanHit FusedExpScanGeScalar(const uint64_t* words, double b, double bar,
                                  size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(words[i], b);
    if (nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedExpScanSumGeScalar(const uint64_t* words, double b,
                                     const double* a, double bar, size_t n,
                                     size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(words[i], b);
    if (a[i] + nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedExpScanGePairwiseScalar(const uint64_t* words, double b,
                                          const double* bars, double rho,
                                          size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(words[i], b);
    if (nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedExpScanSumGePairwiseScalar(const uint64_t* words, double b,
                                             const double* a,
                                             const double* bars, double rho,
                                             size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(words[i], b);
    if (a[i] + nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

// --- megakernels: scalar lanes --------------------------------------------
//
// The megakernels generate their words in-kernel from a BlockRng::State.
// State::words is the generator's SoA state flattened (words[w * 4 + lane]
// is state word w of lane `lane`), so the shared lockstep step primitives
// walk it directly. MegaNextWord is the scalar stream walker — operation
// for operation BlockRng::Next() on the snapshot, which is what makes the
// in-kernel stream bit-identical to FillUint64 (stream-neutrality).

inline uint64_t MegaNextWord(BlockRng::State* st) {
  const uint64_t r = lockstep::StepLaneSoA(st->words.data(), st->phase);
  st->phase = (st->phase + 1) & (BlockRng::kLanes - 1);
  return r;
}

// Scalar reference lanes of the four megakernel scans. Each starts at
// element `from` with `st` positioned at that element's first word (0 for
// the dispatch entry points; the SIMD lanes delegate their sub-width
// tails here after spilling their registers). The transform and the
// positive test are the same LaplaceNuScalar / ExpNuScalar compositions
// the fused kernels run, so hit indices and ν payloads are bit-identical
// to FillUint64 + fused scan.

FusedScanHit MegaScanSumGeScalar(BlockRng::State* st, double mu, double b,
                                 const double* a, double bar, size_t n,
                                 size_t from) {
  for (size_t i = from; i < n; ++i) {
    const uint64_t w_mag = MegaNextWord(st);
    const uint64_t w_sign = MegaNextWord(st);
    const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
    if (a[i] + nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit MegaScanSumGePairwiseScalar(BlockRng::State* st, double mu,
                                         double b, const double* a,
                                         const double* bars, double rho,
                                         size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const uint64_t w_mag = MegaNextWord(st);
    const uint64_t w_sign = MegaNextWord(st);
    const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
    if (a[i] + nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit MegaExpScanSumGeScalar(BlockRng::State* st, double b,
                                    const double* a, double bar, size_t n,
                                    size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(MegaNextWord(st), b);
    if (a[i] + nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit MegaExpScanSumGePairwiseScalar(BlockRng::State* st, double b,
                                            const double* a,
                                            const double* bars, double rho,
                                            size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(MegaNextWord(st), b);
    if (a[i] + nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

// Scalar reference lanes of the bounded megakernel scans. An element
// whose magnitude word's top 53 bits reach skip_word is provably unable
// to fire the computed positive test (MegaSkipWordThreshold contract),
// so its transform is skipped; the stream advance is unchanged, and
// since skipped elements cannot hit, results and end states are
// bit-identical to the unbounded walkers above.

FusedScanHit MegaScanSumGeBoundedScalar(BlockRng::State* st, double mu,
                                        double b, const double* a, double bar,
                                        uint64_t skip_word, size_t n,
                                        size_t from) {
  for (size_t i = from; i < n; ++i) {
    const uint64_t w_mag = MegaNextWord(st);
    const uint64_t w_sign = MegaNextWord(st);
    if ((w_mag >> 11) >= skip_word) continue;
    const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
    if (a[i] + nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit MegaExpScanSumGeBoundedScalar(BlockRng::State* st, double b,
                                           const double* a, double bar,
                                           uint64_t skip_word, size_t n,
                                           size_t from) {
  for (size_t i = from; i < n; ++i) {
    const uint64_t word = MegaNextWord(st);
    if ((word >> 11) >= skip_word) continue;
    const double nu = ExpNuScalar(word, b);
    if (a[i] + nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

// Scalar lane of the generate-and-bound pass.
uint64_t MegaFillMinSpansScalar(BlockRng::State* st, size_t count, size_t wpv,
                                size_t span_elems, uint64_t* span_min,
                                BlockRng::State* span_states) {
  uint64_t total = UINT64_MAX;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) span_states[span] = *st;
    uint64_t m = UINT64_MAX;
    for (; e < span_end; ++e) {
      const uint64_t mag = MegaNextWord(st);
      for (size_t w = 1; w < wpv; ++w) MegaNextWord(st);
      m = std::min(m, mag);
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  return total;
}

// Scalar lanes of the fused generate-bound-and-scan pass: the
// generate-and-bound walk above plus the bounded positive test inline,
// recording every firing element instead of stopping at the first.
// Consumes the full count regardless of hits, so the end state is the
// generate-and-bound end state.

size_t MegaLaplaceFillMinScanSpansScalar(BlockRng::State* st, double mu,
                                         double b, const double* a, double bar,
                                         uint64_t skip_word, size_t count,
                                         size_t span_elems, uint64_t* span_min,
                                         BlockRng::State* span_states,
                                         FusedScanHit* hits, size_t max_hits,
                                         uint64_t* min_out) {
  uint64_t total = UINT64_MAX;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) span_states[span] = *st;
    uint64_t m = UINT64_MAX;
    for (; e < span_end; ++e) {
      const uint64_t w_mag = MegaNextWord(st);
      const uint64_t w_sign = MegaNextWord(st);
      m = std::min(m, w_mag);
      if ((w_mag >> 11) >= skip_word) continue;
      const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
      if (a[e] + nu >= bar) {
        if (found < max_hits) hits[found] = {e, nu};
        ++found;
      }
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  *min_out = total;
  return found;
}

size_t MegaExpFillMinScanSpansScalar(BlockRng::State* st, double b,
                                     const double* a, double bar,
                                     uint64_t skip_word, size_t count,
                                     size_t span_elems, uint64_t* span_min,
                                     BlockRng::State* span_states,
                                     FusedScanHit* hits, size_t max_hits,
                                     uint64_t* min_out) {
  uint64_t total = UINT64_MAX;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) span_states[span] = *st;
    uint64_t m = UINT64_MAX;
    for (; e < span_end; ++e) {
      const uint64_t word = MegaNextWord(st);
      m = std::min(m, word);
      if ((word >> 11) >= skip_word) continue;
      const double nu = ExpNuScalar(word, b);
      if (a[e] + nu >= bar) {
        if (found < max_hits) hits[found] = {e, nu};
        ++found;
      }
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  *min_out = total;
  return found;
}

// Scalar reference lanes of the pairwise bounded scans: the pairwise
// walkers with the skip-word discharge inline. Stream advance unchanged,
// and skipped elements provably cannot fire any pairwise test covered by
// the skip word, so results and end states are bit-identical to the
// unbounded pairwise walkers.

FusedScanHit MegaScanSumGePairwiseBoundedScalar(BlockRng::State* st, double mu,
                                                double b, const double* a,
                                                const double* bars, double rho,
                                                uint64_t skip_word, size_t n,
                                                size_t from) {
  for (size_t i = from; i < n; ++i) {
    const uint64_t w_mag = MegaNextWord(st);
    const uint64_t w_sign = MegaNextWord(st);
    if ((w_mag >> 11) >= skip_word) continue;
    const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
    if (a[i] + nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit MegaExpScanSumGePairwiseBoundedScalar(BlockRng::State* st,
                                                   double b, const double* a,
                                                   const double* bars,
                                                   double rho,
                                                   uint64_t skip_word,
                                                   size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const uint64_t word = MegaNextWord(st);
    if ((word >> 11) >= skip_word) continue;
    const double nu = ExpNuScalar(word, b);
    if (a[i] + nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

// Scalar lanes of the per-query fused generate-bound-and-scan pass: the
// generate-and-bound walk with the pairwise bounded test riding along,
// the skip threshold reloaded from the per-span vector at every span
// boundary, and the skipped-element count accumulated per element (a
// pure function of words and vector — dispatch-level-independent).

size_t MegaLaplaceFillMinScanSpansPairwiseScalar(
    BlockRng::State* st, double mu, double b, const double* a,
    const double* bars, double rho, const uint64_t* skip_words, size_t count,
    size_t span_elems, uint64_t* span_min, BlockRng::State* span_states,
    FusedScanHit* hits, size_t max_hits, uint64_t* skipped_out) {
  uint64_t skipped = 0;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    const uint64_t skip_word = skip_words[span];
    if (span_states != nullptr) span_states[span] = *st;
    uint64_t m = UINT64_MAX;
    for (; e < span_end; ++e) {
      const uint64_t w_mag = MegaNextWord(st);
      const uint64_t w_sign = MegaNextWord(st);
      m = std::min(m, w_mag);
      if ((w_mag >> 11) >= skip_word) {
        ++skipped;
        continue;
      }
      const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
      if (a[e] + nu >= bars[e] + rho) {
        if (found < max_hits) hits[found] = {e, nu};
        ++found;
      }
    }
    span_min[span] = m;
    ++span;
  }
  *skipped_out = skipped;
  return found;
}

size_t MegaExpFillMinScanSpansPairwiseScalar(
    BlockRng::State* st, double b, const double* a, const double* bars,
    double rho, const uint64_t* skip_words, size_t count, size_t span_elems,
    uint64_t* span_min, BlockRng::State* span_states, FusedScanHit* hits,
    size_t max_hits, uint64_t* skipped_out) {
  uint64_t skipped = 0;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    const uint64_t skip_word = skip_words[span];
    if (span_states != nullptr) span_states[span] = *st;
    uint64_t m = UINT64_MAX;
    for (; e < span_end; ++e) {
      const uint64_t word = MegaNextWord(st);
      m = std::min(m, word);
      if ((word >> 11) >= skip_word) {
        ++skipped;
        continue;
      }
      const double nu = ExpNuScalar(word, b);
      if (a[e] + nu >= bars[e] + rho) {
        if (found < max_hits) hits[found] = {e, nu};
        ++found;
      }
    }
    span_min[span] = m;
    ++span;
  }
  *skipped_out = skipped;
  return found;
}

}  // namespace

#if SVT_VECMATH_HAVE_AVX2

namespace {

// 4-wide mirrors of Log()/Exp(). Operand order and association replicate
// the scalar lane exactly; _mm256_{add,sub,mul,div}_pd are the same
// correctly-rounded IEEE operations, and no fused ops are used.

// The normal-path log body, shared by LogBlockAvx2 (which adds the
// special-lane patching) and the fused sampling kernel (whose inputs are
// always normal by construction). Inlined into same-target callers.
__attribute__((target("avx2"))) inline __m256d Log4Normal(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d ln2hi = _mm256_set1_pd(kLn2Hi), ln2lo = _mm256_set1_pd(kLn2Lo);

  const __m256i bits = _mm256_castpd_si256(x);
  const __m256i adj =
      _mm256_add_epi64(bits, _mm256_set1_epi64x(0x0009'5F62'0000'0000ll));
  const __m256i k64 = _mm256_sub_epi64(_mm256_srli_epi64(adj, 52),
                                       _mm256_set1_epi64x(1023));
  const __m256i mbits = _mm256_add_epi64(
      _mm256_and_si256(adj, _mm256_set1_epi64x(0x000F'FFFF'FFFF'FFFFll)),
      _mm256_set1_epi64x(0x3FE6'A09E'0000'0000ll));
  const __m256d m = _mm256_castsi256_pd(mbits);

  // Reciprocal-free tail: the scalar lane's even/odd Horner split in
  // w = f^2, replayed operation for operation (see Log() and the kQ*
  // block). No division anywhere — the two Horner chains are mul/add only
  // and run in parallel.
  const __m256d f = _mm256_sub_pd(m, one);
  const __m256d w = _mm256_mul_pd(f, f);
  __m256d re = _mm256_set1_pd(kQ20);
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ18));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ16));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ14));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ12));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ10));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ8));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ6));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ4));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ2));
  re = _mm256_add_pd(_mm256_mul_pd(re, w), _mm256_set1_pd(kQ0));
  __m256d ro = _mm256_set1_pd(kQ19);
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ17));
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ15));
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ13));
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ11));
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ9));
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ7));
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ5));
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ3));
  ro = _mm256_add_pd(_mm256_mul_pd(ro, w), _mm256_set1_pd(kQ1));
  const __m256d q = _mm256_add_pd(re, _mm256_mul_pd(f, ro));
  const __m256d x3r = _mm256_mul_pd(_mm256_mul_pd(w, f), q);
  const __m256d hfsq = _mm256_mul_pd(_mm256_mul_pd(half, f), f);

  // k64 -> packed int32 -> double (k fits in 32 bits).
  const __m256i klo = _mm256_shuffle_epi32(k64, 0xE8);  // [q.lo32 pairs]
  const __m128i k32 =
      _mm256_castsi256_si128(_mm256_permute4x64_epi64(klo, 0x08));
  const __m256d dk = _mm256_cvtepi32_pd(k32);

  // dk*ln2hi - ((hfsq - (x3r + dk*ln2lo)) - f)
  const __m256d inner = _mm256_add_pd(x3r, _mm256_mul_pd(dk, ln2lo));
  return _mm256_sub_pd(_mm256_mul_pd(dk, ln2hi),
                       _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f));
}

__attribute__((target("avx2"))) void LogBlockAvx2(const double* in,
                                                  double* out, size_t n) {
  const __m256d min_normal = _mm256_set1_pd(0x1p-1022);
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(in + i);
    // Fast-path lanes: normal positive finite. Ordered compares reject NaN.
    const __m256d ok = _mm256_and_pd(_mm256_cmp_pd(x, min_normal, _CMP_GE_OQ),
                                     _mm256_cmp_pd(x, inf, _CMP_LT_OQ));
    const __m256d res = Log4Normal(x);
    const int good = _mm256_movemask_pd(ok);
    if (good == 0xF) {
      _mm256_storeu_pd(out + i, res);
    } else {
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, res);
      for (int lane = 0; lane < 4; ++lane) {
        if (!(good & (1 << lane))) tmp[lane] = Log(in[i + lane]);
      }
      _mm256_storeu_pd(out + i, _mm256_load_pd(tmp));
    }
  }
  for (; i < n; ++i) out[i] = Log(in[i]);
}

// (double)v for v < 2^53, lane-wise, without AVX-512's cvtepu64_pd: split
// into 32-bit halves and rebuild through the 2^52 / 2^84 magic constants.
// Every step is exact, so the result is bit-identical to a scalar
// static_cast<double>(v).
__attribute__((target("avx2"))) inline __m256d U53ToDouble(__m256i v) {
  const __m256i lo = _mm256_and_si256(v, _mm256_set1_epi64x(0xFFFFFFFFll));
  const __m256i hi = _mm256_srli_epi64(v, 32);
  const __m256d dlo = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(lo, _mm256_set1_epi64x(0x4330'0000'0000'0000ll))),
      _mm256_set1_pd(0x1p52));
  const __m256d dhi = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(hi, _mm256_set1_epi64x(0x4530'0000'0000'0000ll))),
      _mm256_set1_pd(0x1p84));
  return _mm256_add_pd(dhi, dlo);
}

__attribute__((target("avx2"))) void NegLogUnitPositiveAvx2(
    const uint64_t* words, size_t stride, double* out, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lattice = _mm256_set1_pd(0x1p-53);
  const __m256d neg = _mm256_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i w;
    if (stride == 1) {
      w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    } else {
      // Gather the even qwords of two consecutive vectors: unpacklo pairs
      // them as [w0 w4 w2 w6]; the permute restores index order.
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + 2 * i));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + 2 * i + 4));
      w = _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(v0, v1), 0xD8);
    }
    // u = ((double)(w >> 11) + 1) * 2^-53, the ToUnitDoublePositive map:
    // u in (0, 1], always normal, so the log fast path covers every lane.
    const __m256d d = U53ToDouble(_mm256_srli_epi64(w, 11));
    const __m256d u = _mm256_mul_pd(_mm256_add_pd(d, one), lattice);
    _mm256_storeu_pd(out + i, _mm256_xor_pd(Log4Normal(u), neg));
  }
  for (; i < n; ++i) {
    out[i] = -Log(Rng::ToUnitDoublePositive(words[i * stride]));
  }
}

__attribute__((target("avx2"))) void LaplaceTransformAvx2(
    const uint64_t* words, double mu, double b, double* out, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lattice = _mm256_set1_pd(0x1p-53);
  const __m256d neg = _mm256_set1_pd(-0.0);
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vb = _mm256_set1_pd(b);
  const __m256i sign_bit = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Two loads cover 4 (magnitude, sign) word pairs; unpack + permute
    // split them into index order.
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + 2 * i));
    const __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + 2 * i + 4));
    const __m256i even =
        _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(v0, v1), 0xD8);
    const __m256i odd =
        _mm256_permute4x64_epi64(_mm256_unpackhi_epi64(v0, v1), 0xD8);

    const __m256d d = U53ToDouble(_mm256_srli_epi64(even, 11));
    const __m256d u = _mm256_mul_pd(_mm256_add_pd(d, one), lattice);
    const __m256d e = _mm256_xor_pd(Log4Normal(u), neg);
    const __m256d be = _mm256_mul_pd(vb, e);
    // Sign select: flip be's sign bit where the sign word's bit 63 is 0.
    const __m256d flip =
        _mm256_castsi256_pd(_mm256_andnot_si256(odd, sign_bit));
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(vmu, _mm256_xor_pd(be, flip)));
  }
  for (; i < n; ++i) {
    const double e = -Log(Rng::ToUnitDoublePositive(words[2 * i]));
    const double be = b * e;
    const uint64_t flip = ~words[2 * i + 1] & 0x8000'0000'0000'0000ull;
    out[i] = mu + std::bit_cast<double>(std::bit_cast<uint64_t>(be) ^ flip);
  }
}

__attribute__((target("avx2"))) double MaxBlockAvx2(const double* in,
                                                    size_t n) {
  __m256d acc = _mm256_set1_pd(in[0]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(in + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m = std::max(std::max(lanes[0], lanes[1]),
                      std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::max(m, in[i]);
  return m;
}

__attribute__((target("avx2"))) uint64_t MinWordBlockAvx2(
    const uint64_t* words, size_t stride, size_t n) {
  // Unsigned 64-bit min via the sign-flip trick over cmpgt_epi64.
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  __m256i acc = _mm256_set1_epi64x(static_cast<int64_t>(words[0]));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i w;
    if (stride == 1) {
      w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    } else {
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + 2 * i));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + 2 * i + 4));
      // Min is order-free: no need to restore index order after unpack.
      w = _mm256_unpacklo_epi64(v0, v1);
    }
    const __m256i gt =
        _mm256_cmpgt_epi64(_mm256_xor_si256(acc, flip),
                           _mm256_xor_si256(w, flip));
    acc = _mm256_blendv_epi8(acc, w, gt);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t m = std::min(std::min(lanes[0], lanes[1]),
                        std::min(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::min(m, words[i * stride]);
  return m;
}

__attribute__((target("avx2"))) double MinBlockAvx2(const double* in,
                                                    size_t n) {
  __m256d acc = _mm256_set1_pd(in[0]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_min_pd(acc, _mm256_loadu_pd(in + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m = std::min(std::min(lanes[0], lanes[1]),
                      std::min(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::min(m, in[i]);
  return m;
}

// Quantized bound-code reductions: exact unsigned integer max/min, 16 (u16)
// or 32 (u8) codes per 256-bit op. Association-free, so the accumulator
// seeding with codes[0] (the MaxBlock idiom above) is harmless.
__attribute__((target("avx2"))) uint16_t QuantizedSpanMaxU16Avx2(
    const uint16_t* codes, size_t n) {
  __m256i acc = _mm256_set1_epi16(static_cast<short>(codes[0]));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm256_max_epu16(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i)));
  }
  alignas(32) uint16_t lanes[16];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint16_t m = lanes[0];
  for (int lane = 1; lane < 16; ++lane) m = std::max(m, lanes[lane]);
  for (; i < n; ++i) m = std::max(m, codes[i]);
  return m;
}

__attribute__((target("avx2"))) uint16_t QuantizedSpanMinU16Avx2(
    const uint16_t* codes, size_t n) {
  __m256i acc = _mm256_set1_epi16(static_cast<short>(codes[0]));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm256_min_epu16(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i)));
  }
  alignas(32) uint16_t lanes[16];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint16_t m = lanes[0];
  for (int lane = 1; lane < 16; ++lane) m = std::min(m, lanes[lane]);
  for (; i < n; ++i) m = std::min(m, codes[i]);
  return m;
}

__attribute__((target("avx2"))) uint8_t QuantizedSpanMaxU8Avx2(
    const uint8_t* codes, size_t n) {
  __m256i acc = _mm256_set1_epi8(static_cast<char>(codes[0]));
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc = _mm256_max_epu8(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i)));
  }
  alignas(32) uint8_t lanes[32];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint8_t m = lanes[0];
  for (int lane = 1; lane < 32; ++lane) m = std::max(m, lanes[lane]);
  for (; i < n; ++i) m = std::max(m, codes[i]);
  return m;
}

__attribute__((target("avx2"))) uint8_t QuantizedSpanMinU8Avx2(
    const uint8_t* codes, size_t n) {
  __m256i acc = _mm256_set1_epi8(static_cast<char>(codes[0]));
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc = _mm256_min_epu8(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i)));
  }
  alignas(32) uint8_t lanes[32];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint8_t m = lanes[0];
  for (int lane = 1; lane < 32; ++lane) m = std::min(m, lanes[lane]);
  for (; i < n; ++i) m = std::min(m, codes[i]);
  return m;
}

__attribute__((target("avx2"))) size_t FindFirstSumGeAvx2(const double* a,
                                                          const double* b,
                                                          double bar,
                                                          size_t n) {
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum =
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (a[i] + b[i] >= bar) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t FindFirstGeAvx2(const double* a,
                                                       double bar, size_t n) {
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(a + i), vbar, _CMP_GE_OQ));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (a[i] >= bar) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t FindFirstGePairwiseAvx2(
    const double* a, const double* bars, double rho, size_t n) {
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(a + i), bar, _CMP_GE_OQ));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (a[i] >= bars[i] + rho) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t FindFirstSumGePairwiseAvx2(
    const double* a, const double* b, const double* bars, double rho,
    size_t n) {
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum =
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (a[i] + b[i] >= bars[i] + rho) return i;
  }
  return n;
}

// One fused transform step: 4 consecutive (magnitude, sign) word pairs →
// 4 ν values, bit-identical to the operation sequence of
// LaplaceTransformAvx2 — that identity is what makes the fused scans
// bit-identical to the unfused FillUint64 + TransformBlock + FindFirst*
// pipeline. One deliberate register-pressure optimization: `vnb` carries
// -b, so be = (-b)·log(u) replaces the reference's b·(-log(u)) — IEEE
// multiplication computes the sign as the XOR of the operand signs and
// the magnitude independently, so the product is bit-identical while the
// -0.0 constant and its xor drop out of the loop.
__attribute__((target("avx2"))) inline __m256d LaplaceNu4Avx2Reg(
    __m256i v0, __m256i v1, __m256d vmu, __m256d vnb) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lattice = _mm256_set1_pd(0x1p-53);
  const __m256i sign_bit = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  const __m256i even =
      _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(v0, v1), 0xD8);
  const __m256i odd =
      _mm256_permute4x64_epi64(_mm256_unpackhi_epi64(v0, v1), 0xD8);
  const __m256d d = U53ToDouble(_mm256_srli_epi64(even, 11));
  const __m256d u = _mm256_mul_pd(_mm256_add_pd(d, one), lattice);
  const __m256d be = _mm256_mul_pd(vnb, Log4Normal(u));
  const __m256d flip = _mm256_castsi256_pd(_mm256_andnot_si256(odd, sign_bit));
  return _mm256_add_pd(vmu, _mm256_xor_pd(be, flip));
}

__attribute__((target("avx2"))) inline __m256d LaplaceNu4Avx2(
    const uint64_t* word_pairs, __m256d vmu, __m256d vnb) {
  // The transform body lives in the Reg variant so the megakernels can
  // feed it words straight from the lockstep step registers; this loading
  // form is what the scratch-buffer fused scans use.
  const __m256i v0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(word_pairs));
  const __m256i v1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(word_pairs + 4));
  return LaplaceNu4Avx2Reg(v0, v1, vmu, vnb);
}

// Extracts the hit from a nonzero compare mask: lane index + that lane's ν.
__attribute__((target("avx2"))) inline FusedScanHit FusedHitAvx2(
    size_t i, int mask, __m256d nu) {
  const int lane = __builtin_ctz(static_cast<unsigned>(mask));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, nu);
  return {i + static_cast<size_t>(lane), lanes[lane]};
}

__attribute__((target("avx2"))) FusedScanHit FusedLaplaceScanGeAvx2(
    const uint64_t* words, double mu, double b, double bar, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = LaplaceNu4Avx2(words + 2 * i, vmu, vnb);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(nu, vbar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedScanGeScalar(words, mu, b, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedLaplaceScanSumGeAvx2(
    const uint64_t* words, double mu, double b, const double* a, double bar,
    size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = LaplaceNu4Avx2(words + 2 * i, vmu, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedScanSumGeScalar(words, mu, b, a, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedLaplaceScanGePairwiseAvx2(
    const uint64_t* words, double mu, double b, const double* bars,
    double rho, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = LaplaceNu4Avx2(words + 2 * i, vmu, vnb);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(nu, bar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedScanGePairwiseScalar(words, mu, b, bars, rho, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedLaplaceScanSumGePairwiseAvx2(
    const uint64_t* words, double mu, double b, const double* a,
    const double* bars, double rho, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = LaplaceNu4Avx2(words + 2 * i, vmu, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedScanSumGePairwiseScalar(words, mu, b, a, bars, rho, n, i);
}

// One fused exponential transform step: 4 consecutive raw words → 4 ν
// values, ν = b·(-log u). `vnb` carries -b so the body computes
// (-b)·log(u), bit-identical to the reference's b·(-log(u)) for the same
// reason as LaplaceNu4Avx2 (IEEE multiply: sign = xor of operand signs,
// magnitude independent of them). One word per variate, so the load is a
// plain stride-1 vector load — no unpack/permute.
__attribute__((target("avx2"))) inline __m256d ExpNu4Avx2Reg(__m256i w,
                                                             __m256d vnb) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lattice = _mm256_set1_pd(0x1p-53);
  const __m256d d = U53ToDouble(_mm256_srli_epi64(w, 11));
  const __m256d u = _mm256_mul_pd(_mm256_add_pd(d, one), lattice);
  return _mm256_mul_pd(vnb, Log4Normal(u));
}

__attribute__((target("avx2"))) inline __m256d ExpNu4Avx2(
    const uint64_t* words, __m256d vnb) {
  return ExpNu4Avx2Reg(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words)), vnb);
}

__attribute__((target("avx2"))) void ExponentialTransformAvx2(
    const uint64_t* words, double b, double* out, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, ExpNu4Avx2(words + i, vnb));
  }
  for (; i < n; ++i) out[i] = ExpNuScalar(words[i], b);
}

__attribute__((target("avx2"))) FusedScanHit FusedExpScanGeAvx2(
    const uint64_t* words, double b, double bar, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = ExpNu4Avx2(words + i, vnb);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(nu, vbar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedExpScanGeScalar(words, b, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedExpScanSumGeAvx2(
    const uint64_t* words, double b, const double* a, double bar, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = ExpNu4Avx2(words + i, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedExpScanSumGeScalar(words, b, a, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedExpScanGePairwiseAvx2(
    const uint64_t* words, double b, const double* bars, double rho,
    size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = ExpNu4Avx2(words + i, vnb);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(nu, bar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedExpScanGePairwiseScalar(words, b, bars, rho, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedExpScanSumGePairwiseAvx2(
    const uint64_t* words, double b, const double* a, const double* bars,
    double rho, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = ExpNu4Avx2(words + i, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedExpScanSumGePairwiseScalar(words, b, a, bars, rho, n, i);
}

__attribute__((target("avx2"))) void ExpBlockAvx2(const double* in,
                                                  double* out, size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF'FFFF'FFFF'FFFFll));
  const __m256d dom = _mm256_set1_pd(700.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d log2e = _mm256_set1_pd(kLog2e);
  const __m256d magic = _mm256_set1_pd(kRoundMagic);
  const __m256d ln2hi = _mm256_set1_pd(kLn2Hi), ln2lo = _mm256_set1_pd(kLn2Lo);
  const __m256d p1 = _mm256_set1_pd(kP1), p2 = _mm256_set1_pd(kP2),
                p3 = _mm256_set1_pd(kP3), p4 = _mm256_set1_pd(kP4),
                p5 = _mm256_set1_pd(kP5);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(in + i);
    // Fast path: |x| <= 700 (k-split scaling stays in the exponent range,
    // results stay clear of overflow/underflow). NaN fails the compare.
    const __m256d ok =
        _mm256_cmp_pd(_mm256_and_pd(x, abs_mask), dom, _CMP_LE_OQ);

    const __m256d t = _mm256_mul_pd(x, log2e);
    const __m256d kd =
        _mm256_sub_pd(_mm256_add_pd(t, magic), magic);
    const __m128i ki = _mm256_cvtpd_epi32(kd);  // exact: kd is integral

    const __m256d hi = _mm256_sub_pd(x, _mm256_mul_pd(kd, ln2hi));
    const __m256d lo = _mm256_mul_pd(kd, ln2lo);
    const __m256d r = _mm256_sub_pd(hi, lo);
    const __m256d z = _mm256_mul_pd(r, r);
    const __m256d c = _mm256_sub_pd(
        r,
        _mm256_mul_pd(
            z,
            _mm256_add_pd(
                p1,
                _mm256_mul_pd(
                    z,
                    _mm256_add_pd(
                        p2,
                        _mm256_mul_pd(
                            z, _mm256_add_pd(
                                   p3, _mm256_mul_pd(
                                           z, _mm256_add_pd(
                                                  p4,
                                                  _mm256_mul_pd(z, p5))))))))));
    // y = 1 - ((lo - (r*c)/(2-c)) - hi)
    const __m256d y = _mm256_sub_pd(
        one,
        _mm256_sub_pd(
            _mm256_sub_pd(
                lo, _mm256_div_pd(_mm256_mul_pd(r, c), _mm256_sub_pd(two, c))),
            hi));

    // Scale by 2^k1 * 2^k2, k1 = k>>1 (arithmetic), k2 = k - k1.
    const __m128i k1 = _mm_srai_epi32(ki, 1);
    const __m128i k2 = _mm_sub_epi32(ki, k1);
    const __m256i e1 = _mm256_slli_epi64(
        _mm256_add_epi64(_mm256_cvtepi32_epi64(k1),
                         _mm256_set1_epi64x(1023)),
        52);
    const __m256i e2 = _mm256_slli_epi64(
        _mm256_add_epi64(_mm256_cvtepi32_epi64(k2),
                         _mm256_set1_epi64x(1023)),
        52);
    const __m256d res = _mm256_mul_pd(
        _mm256_mul_pd(y, _mm256_castsi256_pd(e1)), _mm256_castsi256_pd(e2));

    const int good = _mm256_movemask_pd(ok);
    if (good == 0xF) {
      _mm256_storeu_pd(out + i, res);
    } else {
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, res);
      for (int lane = 0; lane < 4; ++lane) {
        if (!(good & (1 << lane))) tmp[lane] = Exp(in[i + lane]);
      }
      _mm256_storeu_pd(out + i, _mm256_load_pd(tmp));
    }
  }
  for (; i < n; ++i) out[i] = Exp(in[i]);
}

// --- megakernels: AVX2 lanes ----------------------------------------------
//
// Structure shared by all four scans: the four xoshiro lanes live in
// registers (one lockstep::Step4Avx2 call advances all four and yields the
// next four stream words), each group of 4 elements consumes wpv steps,
// and the freshly stepped words feed the same Reg transform bodies the
// scratch-buffer fused scans use — words never touch memory. Entry
// requires a lane-aligned stream position (phase == 0; the dispatch entry
// points delegate the whole call to the scalar lane otherwise). On a
// group hit the state must end at (index + 1) * wpv consumed words, not
// the full group the registers already stepped past: the kernel rewinds
// to the group-entry checkpoint and re-consumes the exact word count with
// the scalar walker — bit-identical by construction, and hits are rare.

__attribute__((target("avx2"))) inline void MegaStoreAvx2(
    BlockRng::State* st, __m256i s0, __m256i s1, __m256i s2, __m256i s3) {
  uint64_t* w = st->words.data();
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(w), s0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + 4), s1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + 8), s2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + 12), s3);
  st->phase = 0;
}

__attribute__((target("avx2"))) inline FusedScanHit MegaHitAvx2(
    BlockRng::State* st, size_t i, int mask, __m256d nu, size_t wpv,
    __m256i c0, __m256i c1, __m256i c2, __m256i c3) {
  const int lane = __builtin_ctz(static_cast<unsigned>(mask));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, nu);
  MegaStoreAvx2(st, c0, c1, c2, c3);
  const size_t consume = (static_cast<size_t>(lane) + 1) * wpv;
  for (size_t k = 0; k < consume; ++k) MegaNextWord(st);
  return {i + static_cast<size_t>(lane), lanes[lane]};
}

__attribute__((target("avx2"))) FusedScanHit MegaLaplaceScanSumGeAvx2(
    BlockRng::State* st, double mu, double b, const double* a, double bar,
    size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i v0 = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256i v1 = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256d nu = LaplaceNu4Avx2Reg(v0, v1, vmu, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) return MegaHitAvx2(st, i, mask, nu, 2, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaScanSumGeScalar(st, mu, b, a, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit MegaLaplaceScanSumGePairwiseAvx2(
    BlockRng::State* st, double mu, double b, const double* a,
    const double* bars, double rho, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i v0 = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256i v1 = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256d nu = LaplaceNu4Avx2Reg(v0, v1, vmu, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) return MegaHitAvx2(st, i, mask, nu, 2, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaScanSumGePairwiseScalar(st, mu, b, a, bars, rho, n, i);
}

__attribute__((target("avx2"))) FusedScanHit MegaExpScanSumGeAvx2(
    BlockRng::State* st, double b, const double* a, double bar, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i v = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256d nu = ExpNu4Avx2Reg(v, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) return MegaHitAvx2(st, i, mask, nu, 1, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaExpScanSumGeScalar(st, b, a, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit MegaExpScanSumGePairwiseAvx2(
    BlockRng::State* st, double b, const double* a, const double* bars,
    double rho, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i v = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256d nu = ExpNu4Avx2Reg(v, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) return MegaHitAvx2(st, i, mask, nu, 1, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaExpScanSumGePairwiseScalar(st, b, a, bars, rho, n, i);
}

__attribute__((target("avx2"))) inline __m256i MinU64Avx2(__m256i a,
                                                          __m256i b) {
  // Unsigned 64-bit min via the sign-flip trick over cmpgt_epi64, as in
  // MinWordBlockAvx2.
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, flip),
                                        _mm256_xor_si256(b, flip));
  return _mm256_blendv_epi8(a, b, gt);
}

__attribute__((target("avx2"))) uint64_t MegaFillMinSpansAvx2(
    BlockRng::State* st, size_t count, size_t wpv, size_t span_elems,
    uint64_t* span_min, BlockRng::State* span_states) {
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t total = UINT64_MAX;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m256i acc = _mm256_set1_epi64x(-1);
    for (; e + 4 <= span_end; e += 4) {
      if (wpv == 2) {
        const __m256i v0 = lockstep::Step4Avx2(s0, s1, s2, s3);
        const __m256i v1 = lockstep::Step4Avx2(s0, s1, s2, s3);
        // The magnitude words are the even-indexed stream words; min is
        // order-free, so the unpack need not restore index order.
        acc = MinU64Avx2(acc, _mm256_unpacklo_epi64(v0, v1));
      } else {
        acc = MinU64Avx2(acc, lockstep::Step4Avx2(s0, s1, s2, s3));
      }
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    uint64_t m = std::min(std::min(lanes[0], lanes[1]),
                          std::min(lanes[2], lanes[3]));
    if (e < span_end) {
      // Sub-group span tail: only the final span can be short (the
      // dispatch entry point guarantees span_elems is a group multiple
      // whenever there is more than one span), so spilling to the scalar
      // walker here ends the call.
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t mag = MegaNextWord(st);
        for (size_t k = 1; k < wpv; ++k) MegaNextWord(st);
        m = std::min(m, mag);
      }
      span_min[span] = m;
      return std::min(total, m);
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return total;
}

// Bounded scan lanes: identical to the unbounded lanes except that each
// group's magnitude words are tested against the skip threshold first —
// one shift, one compare, one movemask — and the whole transform-and-test
// body is bypassed when no word is below it. The threshold never exceeds
// 2^53 + 1 (MegaSkipWordThreshold contract) and the shifted words are at
// most 2^53 - 1, so both sides are non-negative as signed 64-bit values
// and cmpgt_epi64 is an unsigned compare. Mixed groups run the full
// body: above-threshold lanes provably cannot satisfy the computed
// positive test, so the group result matches the unbounded lane bit for
// bit.

__attribute__((target("avx2"))) FusedScanHit MegaLaplaceScanSumGeBoundedAvx2(
    BlockRng::State* st, double mu, double b, const double* a, double bar,
    uint64_t skip_word, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i v0 = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256i v1 = lockstep::Step4Avx2(s0, s1, s2, s3);
    // Magnitude words (order-free for the any-live test), top 53 bits.
    const __m256i mag53 = _mm256_srli_epi64(_mm256_unpacklo_epi64(v0, v1), 11);
    const __m256i live = _mm256_cmpgt_epi64(vskip, mag53);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(live)) == 0) continue;
    const __m256d nu = LaplaceNu4Avx2Reg(v0, v1, vmu, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) return MegaHitAvx2(st, i, mask, nu, 2, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaScanSumGeBoundedScalar(st, mu, b, a, bar, skip_word, n, i);
}

__attribute__((target("avx2"))) FusedScanHit MegaExpScanSumGeBoundedAvx2(
    BlockRng::State* st, double b, const double* a, double bar,
    uint64_t skip_word, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i v = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256i mag53 = _mm256_srli_epi64(v, 11);
    const __m256i live = _mm256_cmpgt_epi64(vskip, mag53);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(live)) == 0) continue;
    const __m256d nu = ExpNu4Avx2Reg(v, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) return MegaHitAvx2(st, i, mask, nu, 1, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaExpScanSumGeBoundedScalar(st, b, a, bar, skip_word, n, i);
}

// Fused generate-bound-and-scan lanes: MegaFillMinSpansAvx2's walk with
// the bounded positive test riding along. No checkpoint/rewind is needed
// — every hit lane's ν is already in the group's nu vector, and the walk
// never stops early, so the stream advance is exactly the
// generate-and-bound pass's.

__attribute__((target("avx2"))) size_t MegaLaplaceFillMinScanSpansAvx2(
    BlockRng::State* st, double mu, double b, const double* a, double bar,
    uint64_t skip_word, size_t count, size_t span_elems, uint64_t* span_min,
    BlockRng::State* span_states, FusedScanHit* hits, size_t max_hits,
    uint64_t* min_out) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t total = UINT64_MAX;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m256i acc = _mm256_set1_epi64x(-1);
    for (; e + 4 <= span_end; e += 4) {
      const __m256i v0 = lockstep::Step4Avx2(s0, s1, s2, s3);
      const __m256i v1 = lockstep::Step4Avx2(s0, s1, s2, s3);
      // Magnitude words (order-free for min and the any-live test).
      const __m256i mags = _mm256_unpacklo_epi64(v0, v1);
      acc = MinU64Avx2(acc, mags);
      const __m256i live =
          _mm256_cmpgt_epi64(vskip, _mm256_srli_epi64(mags, 11));
      if (_mm256_movemask_pd(_mm256_castsi256_pd(live)) == 0) continue;
      const __m256d nu = LaplaceNu4Avx2Reg(v0, v1, vmu, vnb);
      const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + e), nu);
      int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
      if (mask != 0) {
        alignas(32) double nus[4];
        _mm256_store_pd(nus, nu);
        do {
          const int lane = __builtin_ctz(static_cast<unsigned>(mask));
          if (found < max_hits) {
            hits[found] = {e + static_cast<size_t>(lane), nus[lane]};
          }
          ++found;
          mask &= mask - 1;
        } while (mask != 0);
      }
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    uint64_t m = std::min(std::min(lanes[0], lanes[1]),
                          std::min(lanes[2], lanes[3]));
    if (e < span_end) {
      // Sub-group span tail: only the final span can be short (dispatch
      // entry point guarantee), so spilling to scalar ends the call.
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t w_mag = MegaNextWord(st);
        const uint64_t w_sign = MegaNextWord(st);
        m = std::min(m, w_mag);
        if ((w_mag >> 11) >= skip_word) continue;
        const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
        if (a[e] + nu >= bar) {
          if (found < max_hits) hits[found] = {e, nu};
          ++found;
        }
      }
      span_min[span] = m;
      *min_out = std::min(total, m);
      return found;
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  *min_out = total;
  return found;
}

__attribute__((target("avx2"))) size_t MegaExpFillMinScanSpansAvx2(
    BlockRng::State* st, double b, const double* a, double bar,
    uint64_t skip_word, size_t count, size_t span_elems, uint64_t* span_min,
    BlockRng::State* span_states, FusedScanHit* hits, size_t max_hits,
    uint64_t* min_out) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t total = UINT64_MAX;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m256i acc = _mm256_set1_epi64x(-1);
    for (; e + 4 <= span_end; e += 4) {
      const __m256i v = lockstep::Step4Avx2(s0, s1, s2, s3);
      acc = MinU64Avx2(acc, v);
      const __m256i live = _mm256_cmpgt_epi64(vskip, _mm256_srli_epi64(v, 11));
      if (_mm256_movemask_pd(_mm256_castsi256_pd(live)) == 0) continue;
      const __m256d nu = ExpNu4Avx2Reg(v, vnb);
      const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + e), nu);
      int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
      if (mask != 0) {
        alignas(32) double nus[4];
        _mm256_store_pd(nus, nu);
        do {
          const int lane = __builtin_ctz(static_cast<unsigned>(mask));
          if (found < max_hits) {
            hits[found] = {e + static_cast<size_t>(lane), nus[lane]};
          }
          ++found;
          mask &= mask - 1;
        } while (mask != 0);
      }
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    uint64_t m = std::min(std::min(lanes[0], lanes[1]),
                          std::min(lanes[2], lanes[3]));
    if (e < span_end) {
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t word = MegaNextWord(st);
        m = std::min(m, word);
        if ((word >> 11) >= skip_word) continue;
        const double nu = ExpNuScalar(word, b);
        if (a[e] + nu >= bar) {
          if (found < max_hits) hits[found] = {e, nu};
          ++found;
        }
      }
      span_min[span] = m;
      *min_out = std::min(total, m);
      return found;
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  *min_out = total;
  return found;
}

// Pairwise bounded scan lanes: the pairwise scan bodies with the bounded
// lanes' group skip test in front (per-group shift/compare/movemask; a
// dead group bypasses the whole transform-and-test body). Same signed-
// compare validity argument as the common-bar bounded lanes.

__attribute__((target("avx2"))) FusedScanHit
MegaLaplaceScanSumGePairwiseBoundedAvx2(BlockRng::State* st, double mu,
                                        double b, const double* a,
                                        const double* bars, double rho,
                                        uint64_t skip_word, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i v0 = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256i v1 = lockstep::Step4Avx2(s0, s1, s2, s3);
    // Magnitude words (order-free for the any-live test), top 53 bits.
    const __m256i mag53 = _mm256_srli_epi64(_mm256_unpacklo_epi64(v0, v1), 11);
    const __m256i live = _mm256_cmpgt_epi64(vskip, mag53);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(live)) == 0) continue;
    const __m256d nu = LaplaceNu4Avx2Reg(v0, v1, vmu, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) return MegaHitAvx2(st, i, mask, nu, 2, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaScanSumGePairwiseBoundedScalar(st, mu, b, a, bars, rho, skip_word,
                                            n, i);
}

__attribute__((target("avx2"))) FusedScanHit
MegaExpScanSumGePairwiseBoundedAvx2(BlockRng::State* st, double b,
                                    const double* a, const double* bars,
                                    double rho, uint64_t skip_word, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i v = lockstep::Step4Avx2(s0, s1, s2, s3);
    const __m256i live = _mm256_cmpgt_epi64(vskip, _mm256_srli_epi64(v, 11));
    if (_mm256_movemask_pd(_mm256_castsi256_pd(live)) == 0) continue;
    const __m256d nu = ExpNu4Avx2Reg(v, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) return MegaHitAvx2(st, i, mask, nu, 1, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaExpScanSumGePairwiseBoundedScalar(st, b, a, bars, rho, skip_word,
                                               n, i);
}

// Per-query fused generate-bound-and-scan lanes: the FillMinScanSpans
// walk with the pairwise bounded test, the skip threshold reloaded from
// the per-span vector at each span entry, and the skipped-element count
// accumulated from the group live masks (element-granular — the count is
// what the scalar lane's per-element test produces, whatever the lane
// width, so it stays dispatch-level-independent).

__attribute__((target("avx2"))) size_t
MegaLaplaceFillMinScanSpansPairwiseAvx2(
    BlockRng::State* st, double mu, double b, const double* a,
    const double* bars, double rho, const uint64_t* skip_words, size_t count,
    size_t span_elems, uint64_t* span_min, BlockRng::State* span_states,
    FusedScanHit* hits, size_t max_hits, uint64_t* skipped_out) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t skipped = 0;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    const uint64_t skip_word = skip_words[span];
    const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m256i acc = _mm256_set1_epi64x(-1);
    for (; e + 4 <= span_end; e += 4) {
      const __m256i v0 = lockstep::Step4Avx2(s0, s1, s2, s3);
      const __m256i v1 = lockstep::Step4Avx2(s0, s1, s2, s3);
      // Magnitude words (order-free for min, any-live, and the count).
      const __m256i mags = _mm256_unpacklo_epi64(v0, v1);
      acc = MinU64Avx2(acc, mags);
      const __m256i live =
          _mm256_cmpgt_epi64(vskip, _mm256_srli_epi64(mags, 11));
      const int lmask = _mm256_movemask_pd(_mm256_castsi256_pd(live));
      skipped += 4 - static_cast<unsigned>(
                         __builtin_popcount(static_cast<unsigned>(lmask)));
      if (lmask == 0) continue;
      const __m256d nu = LaplaceNu4Avx2Reg(v0, v1, vmu, vnb);
      const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + e), nu);
      const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + e), vrho);
      int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
      if (mask != 0) {
        alignas(32) double nus[4];
        _mm256_store_pd(nus, nu);
        do {
          const int lane = __builtin_ctz(static_cast<unsigned>(mask));
          if (found < max_hits) {
            hits[found] = {e + static_cast<size_t>(lane), nus[lane]};
          }
          ++found;
          mask &= mask - 1;
        } while (mask != 0);
      }
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    uint64_t m = std::min(std::min(lanes[0], lanes[1]),
                          std::min(lanes[2], lanes[3]));
    if (e < span_end) {
      // Sub-group span tail: only the final span can be short (dispatch
      // entry point guarantee), so spilling to scalar ends the call.
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t w_mag = MegaNextWord(st);
        const uint64_t w_sign = MegaNextWord(st);
        m = std::min(m, w_mag);
        if ((w_mag >> 11) >= skip_word) {
          ++skipped;
          continue;
        }
        const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
        if (a[e] + nu >= bars[e] + rho) {
          if (found < max_hits) hits[found] = {e, nu};
          ++found;
        }
      }
      span_min[span] = m;
      *skipped_out = skipped;
      return found;
    }
    span_min[span] = m;
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  *skipped_out = skipped;
  return found;
}

__attribute__((target("avx2"))) size_t MegaExpFillMinScanSpansPairwiseAvx2(
    BlockRng::State* st, double b, const double* a, const double* bars,
    double rho, const uint64_t* skip_words, size_t count, size_t span_elems,
    uint64_t* span_min, BlockRng::State* span_states, FusedScanHit* hits,
    size_t max_hits, uint64_t* skipped_out) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t skipped = 0;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    const uint64_t skip_word = skip_words[span];
    const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m256i acc = _mm256_set1_epi64x(-1);
    for (; e + 4 <= span_end; e += 4) {
      const __m256i v = lockstep::Step4Avx2(s0, s1, s2, s3);
      acc = MinU64Avx2(acc, v);
      const __m256i live = _mm256_cmpgt_epi64(vskip, _mm256_srli_epi64(v, 11));
      const int lmask = _mm256_movemask_pd(_mm256_castsi256_pd(live));
      skipped += 4 - static_cast<unsigned>(
                         __builtin_popcount(static_cast<unsigned>(lmask)));
      if (lmask == 0) continue;
      const __m256d nu = ExpNu4Avx2Reg(v, vnb);
      const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + e), nu);
      const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + e), vrho);
      int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
      if (mask != 0) {
        alignas(32) double nus[4];
        _mm256_store_pd(nus, nu);
        do {
          const int lane = __builtin_ctz(static_cast<unsigned>(mask));
          if (found < max_hits) {
            hits[found] = {e + static_cast<size_t>(lane), nus[lane]};
          }
          ++found;
          mask &= mask - 1;
        } while (mask != 0);
      }
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    uint64_t m = std::min(std::min(lanes[0], lanes[1]),
                          std::min(lanes[2], lanes[3]));
    if (e < span_end) {
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t word = MegaNextWord(st);
        m = std::min(m, word);
        if ((word >> 11) >= skip_word) {
          ++skipped;
          continue;
        }
        const double nu = ExpNuScalar(word, b);
        if (a[e] + nu >= bars[e] + rho) {
          if (found < max_hits) hits[found] = {e, nu};
          ++found;
        }
      }
      span_min[span] = m;
      *skipped_out = skipped;
      return found;
    }
    span_min[span] = m;
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  *skipped_out = skipped;
  return found;
}

// Scratch-buffer skipped-word count for the composition mode: same
// shift/compare/popcount as the fused lanes, over the already-filled word
// buffer (element words are every wpv-th, starting at the first; the
// wpv == 2 unpack is order-free for counting).

__attribute__((target("avx2"))) size_t SkipWordCountBlockAvx2(
    const uint64_t* words, size_t n, size_t wpv, uint64_t skip_word) {
  const __m256i vskip = _mm256_set1_epi64x(static_cast<int64_t>(skip_word));
  size_t c = 0;
  size_t i = 0;
  if (wpv == 2) {
    for (; i + 8 <= n; i += 8) {
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i + 4));
      const __m256i mag53 =
          _mm256_srli_epi64(_mm256_unpacklo_epi64(v0, v1), 11);
      const __m256i live = _mm256_cmpgt_epi64(vskip, mag53);
      const int lmask = _mm256_movemask_pd(_mm256_castsi256_pd(live));
      c += 4 - static_cast<unsigned>(
                   __builtin_popcount(static_cast<unsigned>(lmask)));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
      const __m256i live = _mm256_cmpgt_epi64(vskip, _mm256_srli_epi64(v, 11));
      const int lmask = _mm256_movemask_pd(_mm256_castsi256_pd(live));
      c += 4 - static_cast<unsigned>(
                   __builtin_popcount(static_cast<unsigned>(lmask)));
    }
  }
  for (; i < n; i += wpv) c += (words[i] >> 11) >= skip_word;
  return c;
}

}  // namespace

#endif  // SVT_VECMATH_HAVE_AVX2

#if SVT_VECMATH_HAVE_AVX512

// GCC's AVX-512 intrinsic headers initialize "undefined" vectors with a
// self-read (`__m512i __Y = __Y;`), which -Wmaybe-uninitialized flags
// through inlining on GCC 12 — and which surfaces as plain -Wuninitialized
// when a helper grows past the inlining budget and gets a standalone body.
// Header-internal false positive; silence both for this lane only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

namespace {

// 8-wide mirrors of Log()/Exp() and the fused kernels. Operand order and
// association replicate the scalar lane exactly; _mm512_{add,sub,mul,div}_pd
// are the same correctly-rounded IEEE operations, and no fused ops are
// used. Integer<->double conversions go through AVX-512DQ's exact
// instructions (the values involved always fit in 53 bits).

__attribute__((target("avx512f,avx512dq"))) inline __m512d Log8Normal(
    __m512d x) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d ln2hi = _mm512_set1_pd(kLn2Hi), ln2lo = _mm512_set1_pd(kLn2Lo);

  const __m512i bits = _mm512_castpd_si512(x);
  const __m512i adj =
      _mm512_add_epi64(bits, _mm512_set1_epi64(0x0009'5F62'0000'0000ll));
  const __m512i k64 = _mm512_sub_epi64(_mm512_srli_epi64(adj, 52),
                                       _mm512_set1_epi64(1023));
  const __m512i mbits = _mm512_add_epi64(
      _mm512_and_si512(adj, _mm512_set1_epi64(0x000F'FFFF'FFFF'FFFFll)),
      _mm512_set1_epi64(0x3FE6'A09E'0000'0000ll));
  const __m512d m = _mm512_castsi512_pd(mbits);

  // Reciprocal-free tail: the scalar lane's even/odd Horner split in
  // w = f^2, replayed operation for operation (see Log() and the kQ*
  // block). The divider dependency this removes was the throughput cap on
  // this lane — vdivpd on a 512-bit vector is unpipelined for most of its
  // latency, while the two Horner chains below are pure mul/add.
  const __m512d f = _mm512_sub_pd(m, one);
  const __m512d w = _mm512_mul_pd(f, f);
  __m512d re = _mm512_set1_pd(kQ20);
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ18));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ16));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ14));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ12));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ10));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ8));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ6));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ4));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ2));
  re = _mm512_add_pd(_mm512_mul_pd(re, w), _mm512_set1_pd(kQ0));
  __m512d ro = _mm512_set1_pd(kQ19);
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ17));
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ15));
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ13));
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ11));
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ9));
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ7));
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ5));
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ3));
  ro = _mm512_add_pd(_mm512_mul_pd(ro, w), _mm512_set1_pd(kQ1));
  const __m512d q = _mm512_add_pd(re, _mm512_mul_pd(f, ro));
  const __m512d x3r = _mm512_mul_pd(_mm512_mul_pd(w, f), q);
  const __m512d hfsq = _mm512_mul_pd(_mm512_mul_pd(half, f), f);
  // Exact int64 -> double (|k| <= ~1100): same value the AVX2 lane builds
  // from 32-bit halves.
  const __m512d dk = _mm512_cvtepi64_pd(k64);

  // dk*ln2hi - ((hfsq - (x3r + dk*ln2lo)) - f)
  const __m512d inner = _mm512_add_pd(x3r, _mm512_mul_pd(dk, ln2lo));
  return _mm512_sub_pd(_mm512_mul_pd(dk, ln2hi),
                       _mm512_sub_pd(_mm512_sub_pd(hfsq, inner), f));
}

__attribute__((target("avx512f,avx512dq"))) void LogBlockAvx512(
    const double* in, double* out, size_t n) {
  const __m512d min_normal = _mm512_set1_pd(0x1p-1022);
  const __m512d inf = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(in + i);
    // Fast-path lanes: normal positive finite. Ordered compares reject NaN.
    const __mmask8 good =
        _mm512_cmp_pd_mask(x, min_normal, _CMP_GE_OQ) &
        _mm512_cmp_pd_mask(x, inf, _CMP_LT_OQ);
    const __m512d res = Log8Normal(x);
    if (good == 0xFF) {
      _mm512_storeu_pd(out + i, res);
    } else {
      alignas(64) double tmp[8];
      _mm512_store_pd(tmp, res);
      for (int lane = 0; lane < 8; ++lane) {
        if (!(good & (1 << lane))) tmp[lane] = Log(in[i + lane]);
      }
      _mm512_storeu_pd(out + i, _mm512_load_pd(tmp));
    }
  }
  for (; i < n; ++i) out[i] = Log(in[i]);
}

// Gather indices for splitting 4 consecutive (even, odd) qword pairs
// spread over two 512-bit vectors back into index order.
__attribute__((target("avx512f,avx512dq"))) inline __m512i EvenIdx512() {
  return _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
}
__attribute__((target("avx512f,avx512dq"))) inline __m512i OddIdx512() {
  return _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
}

__attribute__((target("avx512f,avx512dq"))) void NegLogUnitPositiveAvx512(
    const uint64_t* words, size_t stride, double* out, size_t n) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d lattice = _mm512_set1_pd(0x1p-53);
  const __m512d neg = _mm512_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w;
    if (stride == 1) {
      w = _mm512_loadu_si512(words + i);
    } else {
      const __m512i v0 = _mm512_loadu_si512(words + 2 * i);
      const __m512i v1 = _mm512_loadu_si512(words + 2 * i + 8);
      w = _mm512_permutex2var_epi64(v0, EvenIdx512(), v1);
    }
    // u = ((double)(w >> 11) + 1) * 2^-53, the ToUnitDoublePositive map:
    // u in (0, 1], always normal, so the log fast path covers every lane.
    const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(w, 11));
    const __m512d u = _mm512_mul_pd(_mm512_add_pd(d, one), lattice);
    _mm512_storeu_pd(out + i, _mm512_xor_pd(Log8Normal(u), neg));
  }
  for (; i < n; ++i) {
    out[i] = -Log(Rng::ToUnitDoublePositive(words[i * stride]));
  }
}

__attribute__((target("avx512f,avx512dq"))) void LaplaceTransformAvx512(
    const uint64_t* words, double mu, double b, double* out, size_t n) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d lattice = _mm512_set1_pd(0x1p-53);
  const __m512d neg = _mm512_set1_pd(-0.0);
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vb = _mm512_set1_pd(b);
  const __m512i sign_bit = _mm512_set1_epi64(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v0 = _mm512_loadu_si512(words + 2 * i);
    const __m512i v1 = _mm512_loadu_si512(words + 2 * i + 8);
    const __m512i even = _mm512_permutex2var_epi64(v0, EvenIdx512(), v1);
    const __m512i odd = _mm512_permutex2var_epi64(v0, OddIdx512(), v1);

    const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(even, 11));
    const __m512d u = _mm512_mul_pd(_mm512_add_pd(d, one), lattice);
    const __m512d e = _mm512_xor_pd(Log8Normal(u), neg);
    const __m512d be = _mm512_mul_pd(vb, e);
    // Sign select: flip be's sign bit where the sign word's bit 63 is 0.
    const __m512d flip =
        _mm512_castsi512_pd(_mm512_andnot_si512(odd, sign_bit));
    _mm512_storeu_pd(out + i,
                     _mm512_add_pd(vmu, _mm512_xor_pd(be, flip)));
  }
  for (; i < n; ++i) {
    const double e = -Log(Rng::ToUnitDoublePositive(words[2 * i]));
    const double be = b * e;
    const uint64_t flip = ~words[2 * i + 1] & 0x8000'0000'0000'0000ull;
    out[i] = mu + std::bit_cast<double>(std::bit_cast<uint64_t>(be) ^ flip);
  }
}

__attribute__((target("avx512f,avx512dq"))) double MaxBlockAvx512(
    const double* in, size_t n) {
  __m512d acc = _mm512_set1_pd(in[0]);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_max_pd(acc, _mm512_loadu_pd(in + i));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double m = lanes[0];
  for (int lane = 1; lane < 8; ++lane) m = std::max(m, lanes[lane]);
  for (; i < n; ++i) m = std::max(m, in[i]);
  return m;
}

__attribute__((target("avx512f,avx512dq"))) uint64_t MinWordBlockAvx512(
    const uint64_t* words, size_t stride, size_t n) {
  __m512i acc = _mm512_set1_epi64(static_cast<int64_t>(words[0]));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w;
    if (stride == 1) {
      w = _mm512_loadu_si512(words + i);
    } else {
      const __m512i v0 = _mm512_loadu_si512(words + 2 * i);
      const __m512i v1 = _mm512_loadu_si512(words + 2 * i + 8);
      w = _mm512_permutex2var_epi64(v0, EvenIdx512(), v1);
    }
    acc = _mm512_min_epu64(acc, w);
  }
  alignas(64) uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  uint64_t m = lanes[0];
  for (int lane = 1; lane < 8; ++lane) m = std::min(m, lanes[lane]);
  for (; i < n; ++i) m = std::min(m, words[i * stride]);
  return m;
}

__attribute__((target("avx512f,avx512dq"))) double MinBlockAvx512(
    const double* in, size_t n) {
  __m512d acc = _mm512_set1_pd(in[0]);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_min_pd(acc, _mm512_loadu_pd(in + i));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double m = lanes[0];
  for (int lane = 1; lane < 8; ++lane) m = std::min(m, lanes[lane]);
  for (; i < n; ++i) m = std::min(m, in[i]);
  return m;
}

__attribute__((target("avx512f,avx512dq"))) size_t FindFirstSumGeAvx512(
    const double* a, const double* b, double bar, size_t n) {
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d sum =
        _mm512_add_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] + b[i] >= bar) return i;
  }
  return n;
}

__attribute__((target("avx512f,avx512dq"))) size_t FindFirstGeAvx512(
    const double* a, double bar, size_t n) {
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 mask =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(a + i), vbar, _CMP_GE_OQ);
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] >= bar) return i;
  }
  return n;
}

__attribute__((target("avx512f,avx512dq"))) size_t FindFirstGePairwiseAvx512(
    const double* a, const double* bars, double rho, size_t n) {
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(a + i), bar, _CMP_GE_OQ);
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] >= bars[i] + rho) return i;
  }
  return n;
}

__attribute__((target("avx512f,avx512dq"))) size_t
FindFirstSumGePairwiseAvx512(const double* a, const double* b,
                             const double* bars, double rho, size_t n) {
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d sum =
        _mm512_add_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] + b[i] >= bars[i] + rho) return i;
  }
  return n;
}

// 8-wide fused transform step, mirroring LaplaceTransformAvx512 operation
// for operation, with the same bit-identical (-b)·log(u) fold as
// LaplaceNu4Avx2 (see there for why both identities hold).
__attribute__((target("avx512f,avx512dq"))) inline __m512d LaplaceNu8Avx512Reg(
    __m512i v0, __m512i v1, __m512d vmu, __m512d vnb) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d lattice = _mm512_set1_pd(0x1p-53);
  const __m512i sign_bit = _mm512_set1_epi64(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  const __m512i even = _mm512_permutex2var_epi64(v0, EvenIdx512(), v1);
  const __m512i odd = _mm512_permutex2var_epi64(v0, OddIdx512(), v1);
  const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(even, 11));
  const __m512d u = _mm512_mul_pd(_mm512_add_pd(d, one), lattice);
  const __m512d be = _mm512_mul_pd(vnb, Log8Normal(u));
  const __m512d flip = _mm512_castsi512_pd(_mm512_andnot_si512(odd, sign_bit));
  return _mm512_add_pd(vmu, _mm512_xor_pd(be, flip));
}

__attribute__((target("avx512f,avx512dq"))) inline __m512d LaplaceNu8Avx512(
    const uint64_t* word_pairs, __m512d vmu, __m512d vnb) {
  // The transform body lives in the Reg variant so the megakernels can
  // feed it words straight from the lockstep step registers.
  return LaplaceNu8Avx512Reg(_mm512_loadu_si512(word_pairs),
                             _mm512_loadu_si512(word_pairs + 8), vmu, vnb);
}

__attribute__((target("avx512f,avx512dq"))) inline FusedScanHit FusedHitAvx512(
    size_t i, __mmask8 mask, __m512d nu) {
  const int lane = __builtin_ctz(static_cast<unsigned>(mask));
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, nu);
  return {i + static_cast<size_t>(lane), lanes[lane]};
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedLaplaceScanGeAvx512(const uint64_t* words, double mu, double b,
                         double bar, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = LaplaceNu8Avx512(words + 2 * i, vmu, vnb);
    const __mmask8 mask = _mm512_cmp_pd_mask(nu, vbar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedScanGeScalar(words, mu, b, bar, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedLaplaceScanSumGeAvx512(const uint64_t* words, double mu, double b,
                            const double* a, double bar, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  // Deliberately not unrolled: the single 8-wide body keeps every
  // polynomial constant register-resident — a 2× unroll was measured to
  // push GCC into re-broadcasting ~15 constants per iteration, costing
  // more than the second div chain bought.
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = LaplaceNu8Avx512(words + 2 * i, vmu, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedScanSumGeScalar(words, mu, b, a, bar, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedLaplaceScanGePairwiseAvx512(const uint64_t* words, double mu, double b,
                                 const double* bars, double rho, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = LaplaceNu8Avx512(words + 2 * i, vmu, vnb);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(nu, bar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedScanGePairwiseScalar(words, mu, b, bars, rho, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedLaplaceScanSumGePairwiseAvx512(const uint64_t* words, double mu,
                                    double b, const double* a,
                                    const double* bars, double rho,
                                    size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  // Not unrolled — see FusedLaplaceScanSumGeAvx512 (register pressure).
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = LaplaceNu8Avx512(words + 2 * i, vmu, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedScanSumGePairwiseScalar(words, mu, b, a, bars, rho, n, i);
}

// 8-wide fused exponential transform step, mirroring ExpNu4Avx2 (see there
// for the bit-identical (-b)·log(u) fold). Stride-1 word load.
__attribute__((target("avx512f,avx512dq"))) inline __m512d ExpNu8Avx512Reg(
    __m512i w, __m512d vnb) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d lattice = _mm512_set1_pd(0x1p-53);
  const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(w, 11));
  const __m512d u = _mm512_mul_pd(_mm512_add_pd(d, one), lattice);
  return _mm512_mul_pd(vnb, Log8Normal(u));
}

__attribute__((target("avx512f,avx512dq"))) inline __m512d ExpNu8Avx512(
    const uint64_t* words, __m512d vnb) {
  return ExpNu8Avx512Reg(_mm512_loadu_si512(words), vnb);
}

__attribute__((target("avx512f,avx512dq"))) void ExponentialTransformAvx512(
    const uint64_t* words, double b, double* out, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i, ExpNu8Avx512(words + i, vnb));
  }
  for (; i < n; ++i) out[i] = ExpNuScalar(words[i], b);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit FusedExpScanGeAvx512(
    const uint64_t* words, double b, double bar, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = ExpNu8Avx512(words + i, vnb);
    const __mmask8 mask = _mm512_cmp_pd_mask(nu, vbar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedExpScanGeScalar(words, b, bar, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedExpScanSumGeAvx512(const uint64_t* words, double b, const double* a,
                        double bar, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  // Not unrolled — see FusedLaplaceScanSumGeAvx512 (register pressure).
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = ExpNu8Avx512(words + i, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedExpScanSumGeScalar(words, b, a, bar, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedExpScanGePairwiseAvx512(const uint64_t* words, double b,
                             const double* bars, double rho, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = ExpNu8Avx512(words + i, vnb);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(nu, bar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedExpScanGePairwiseScalar(words, b, bars, rho, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedExpScanSumGePairwiseAvx512(const uint64_t* words, double b,
                                const double* a, const double* bars,
                                double rho, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  // Not unrolled — see FusedLaplaceScanSumGeAvx512 (register pressure).
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = ExpNu8Avx512(words + i, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedExpScanSumGePairwiseScalar(words, b, a, bars, rho, n, i);
}

__attribute__((target("avx512f,avx512dq"))) void ExpBlockAvx512(
    const double* in, double* out, size_t n) {
  const __m512d abs_mask =
      _mm512_castsi512_pd(_mm512_set1_epi64(0x7FFF'FFFF'FFFF'FFFFll));
  const __m512d dom = _mm512_set1_pd(700.0);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d two = _mm512_set1_pd(2.0);
  const __m512d log2e = _mm512_set1_pd(kLog2e);
  const __m512d magic = _mm512_set1_pd(kRoundMagic);
  const __m512d ln2hi = _mm512_set1_pd(kLn2Hi), ln2lo = _mm512_set1_pd(kLn2Lo);
  const __m512d p1 = _mm512_set1_pd(kP1), p2 = _mm512_set1_pd(kP2),
                p3 = _mm512_set1_pd(kP3), p4 = _mm512_set1_pd(kP4),
                p5 = _mm512_set1_pd(kP5);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(in + i);
    // Fast path: |x| <= 700 (k-split scaling stays in the exponent range,
    // results stay clear of overflow/underflow). NaN fails the compare.
    const __mmask8 good =
        _mm512_cmp_pd_mask(_mm512_and_pd(x, abs_mask), dom, _CMP_LE_OQ);

    const __m512d t = _mm512_mul_pd(x, log2e);
    const __m512d kd = _mm512_sub_pd(_mm512_add_pd(t, magic), magic);
    const __m512i ki = _mm512_cvtpd_epi64(kd);  // exact: kd is integral

    const __m512d hi = _mm512_sub_pd(x, _mm512_mul_pd(kd, ln2hi));
    const __m512d lo = _mm512_mul_pd(kd, ln2lo);
    const __m512d r = _mm512_sub_pd(hi, lo);
    const __m512d z = _mm512_mul_pd(r, r);
    const __m512d c = _mm512_sub_pd(
        r,
        _mm512_mul_pd(
            z,
            _mm512_add_pd(
                p1,
                _mm512_mul_pd(
                    z,
                    _mm512_add_pd(
                        p2,
                        _mm512_mul_pd(
                            z, _mm512_add_pd(
                                   p3, _mm512_mul_pd(
                                           z, _mm512_add_pd(
                                                  p4,
                                                  _mm512_mul_pd(z, p5))))))))));
    // y = 1 - ((lo - (r*c)/(2-c)) - hi)
    const __m512d y = _mm512_sub_pd(
        one,
        _mm512_sub_pd(
            _mm512_sub_pd(
                lo, _mm512_div_pd(_mm512_mul_pd(r, c), _mm512_sub_pd(two, c))),
            hi));

    // Scale by 2^k1 * 2^k2, k1 = k>>1 (arithmetic), k2 = k - k1.
    const __m512i k1 = _mm512_srai_epi64(ki, 1);
    const __m512i k2 = _mm512_sub_epi64(ki, k1);
    const __m512i e1 = _mm512_slli_epi64(
        _mm512_add_epi64(k1, _mm512_set1_epi64(1023)), 52);
    const __m512i e2 = _mm512_slli_epi64(
        _mm512_add_epi64(k2, _mm512_set1_epi64(1023)), 52);
    const __m512d res = _mm512_mul_pd(
        _mm512_mul_pd(y, _mm512_castsi512_pd(e1)), _mm512_castsi512_pd(e2));

    if (good == 0xFF) {
      _mm512_storeu_pd(out + i, res);
    } else {
      alignas(64) double tmp[8];
      _mm512_store_pd(tmp, res);
      for (int lane = 0; lane < 8; ++lane) {
        if (!(good & (1 << lane))) tmp[lane] = Exp(in[i + lane]);
      }
      _mm512_storeu_pd(out + i, _mm512_load_pd(tmp));
    }
  }
  for (; i < n; ++i) out[i] = Exp(in[i]);
}

// --- megakernels: AVX-512 lanes -------------------------------------------
//
// Same structure as the AVX2 megakernel lanes: the four xoshiro lanes
// live in 256-bit registers (lockstep::Step4Avx512 — needs AVX-512VL for
// the native rotate, hence the extended target), each group of 8 elements
// consumes 2*wpv steps, and two step results are concatenated into the
// 512-bit word vectors the Reg transform bodies expect — word order
// matches the scratch-buffer loads exactly (step k's four outputs are
// stream words 4k..4k+3). Entry requires phase == 0; group hits rewind
// to the checkpoint and re-consume scalar, as in the AVX2 lanes.

__attribute__((target("avx512f,avx512dq,avx512vl"))) inline FusedScanHit
MegaHitAvx512(BlockRng::State* st, size_t i, __mmask8 mask, __m512d nu,
              size_t wpv, __m256i c0, __m256i c1, __m256i c2, __m256i c3) {
  const int lane = __builtin_ctz(static_cast<unsigned>(mask));
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, nu);
  MegaStoreAvx2(st, c0, c1, c2, c3);
  const size_t consume = (static_cast<size_t>(lane) + 1) * wpv;
  for (size_t k = 0; k < consume; ++k) MegaNextWord(st);
  return {i + static_cast<size_t>(lane), lanes[lane]};
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) FusedScanHit
MegaLaplaceScanSumGeAvx512(BlockRng::State* st, double mu, double b,
                           const double* a, double bar, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  // Deliberately not unrolled, for the same constant-pressure reason as
  // FusedLaplaceScanSumGeAvx512.
  for (; i + 8 <= n; i += 8) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r2 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r3 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m512i v0 =
        _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
    const __m512i v1 =
        _mm512_inserti64x4(_mm512_castsi256_si512(r2), r3, 1);
    const __m512d nu = LaplaceNu8Avx512Reg(v0, v1, vmu, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) return MegaHitAvx512(st, i, mask, nu, 2, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaScanSumGeScalar(st, mu, b, a, bar, n, i);
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) FusedScanHit
MegaLaplaceScanSumGePairwiseAvx512(BlockRng::State* st, double mu, double b,
                                   const double* a, const double* bars,
                                   double rho, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r2 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r3 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m512i v0 =
        _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
    const __m512i v1 =
        _mm512_inserti64x4(_mm512_castsi256_si512(r2), r3, 1);
    const __m512d nu = LaplaceNu8Avx512Reg(v0, v1, vmu, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) return MegaHitAvx512(st, i, mask, nu, 2, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaScanSumGePairwiseScalar(st, mu, b, a, bars, rho, n, i);
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) FusedScanHit
MegaExpScanSumGeAvx512(BlockRng::State* st, double b, const double* a,
                       double bar, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m512i v = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
    const __m512d nu = ExpNu8Avx512Reg(v, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) return MegaHitAvx512(st, i, mask, nu, 1, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaExpScanSumGeScalar(st, b, a, bar, n, i);
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) FusedScanHit
MegaExpScanSumGePairwiseAvx512(BlockRng::State* st, double b, const double* a,
                               const double* bars, double rho, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m512i v = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
    const __m512d nu = ExpNu8Avx512Reg(v, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) return MegaHitAvx512(st, i, mask, nu, 1, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaExpScanSumGePairwiseScalar(st, b, a, bars, rho, n, i);
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) uint64_t
MegaFillMinSpansAvx512(BlockRng::State* st, size_t count, size_t wpv,
                       size_t span_elems, uint64_t* span_min,
                       BlockRng::State* span_states) {
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t total = UINT64_MAX;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m512i acc = _mm512_set1_epi64(-1);
    for (; e + 8 <= span_end; e += 8) {
      if (wpv == 2) {
        const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
        const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
        const __m256i r2 = lockstep::Step4Avx512(s0, s1, s2, s3);
        const __m256i r3 = lockstep::Step4Avx512(s0, s1, s2, s3);
        const __m512i v0 =
            _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
        const __m512i v1 =
            _mm512_inserti64x4(_mm512_castsi256_si512(r2), r3, 1);
        // The magnitude words are the even-indexed stream words; min is
        // order-free, so the unpack need not restore index order.
        acc = _mm512_min_epu64(acc, _mm512_unpacklo_epi64(v0, v1));
      } else {
        const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
        const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
        acc = _mm512_min_epu64(
            acc, _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1));
      }
    }
    alignas(64) uint64_t lanes[8];
    _mm512_store_si512(lanes, acc);
    uint64_t m = lanes[0];
    for (int lane = 1; lane < 8; ++lane) m = std::min(m, lanes[lane]);
    if (e < span_end) {
      // Sub-group span tail: only the final span can be short (dispatch
      // entry point guarantee), so spilling to the scalar walker ends
      // the call.
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t mag = MegaNextWord(st);
        for (size_t k = 1; k < wpv; ++k) MegaNextWord(st);
        m = std::min(m, mag);
      }
      span_min[span] = m;
      return std::min(total, m);
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return total;
}

// Bounded scan lanes: the AVX2 bounded lanes' group-skip test at 8-wide —
// top 53 bits of the group's magnitude words against the skip threshold
// with one unsigned compare mask; a zero mask bypasses the whole
// transform-and-test body. Mixed groups run the full body and match the
// unbounded lane bit for bit (above-threshold lanes provably cannot
// fire the computed positive test).

__attribute__((target("avx512f,avx512dq,avx512vl"))) FusedScanHit
MegaLaplaceScanSumGeBoundedAvx512(BlockRng::State* st, double mu, double b,
                                  const double* a, double bar,
                                  uint64_t skip_word, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r2 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r3 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m512i v0 = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
    const __m512i v1 = _mm512_inserti64x4(_mm512_castsi256_si512(r2), r3, 1);
    // Magnitude words (order-free for the any-live test), top 53 bits.
    const __m512i mag53 = _mm512_srli_epi64(_mm512_unpacklo_epi64(v0, v1), 11);
    if (_mm512_cmplt_epu64_mask(mag53, vskip) == 0) continue;
    const __m512d nu = LaplaceNu8Avx512Reg(v0, v1, vmu, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) return MegaHitAvx512(st, i, mask, nu, 2, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaScanSumGeBoundedScalar(st, mu, b, a, bar, skip_word, n, i);
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) FusedScanHit
MegaExpScanSumGeBoundedAvx512(BlockRng::State* st, double b, const double* a,
                              double bar, uint64_t skip_word, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m512i v = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
    const __m512i mag53 = _mm512_srli_epi64(v, 11);
    if (_mm512_cmplt_epu64_mask(mag53, vskip) == 0) continue;
    const __m512d nu = ExpNu8Avx512Reg(v, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) return MegaHitAvx512(st, i, mask, nu, 1, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaExpScanSumGeBoundedScalar(st, b, a, bar, skip_word, n, i);
}

// Fused generate-bound-and-scan lanes at 8-wide: MegaFillMinSpansAvx512's
// walk with the bounded positive test riding along; hit lanes' ν values
// come straight out of the group's nu vector, and the walk never stops
// early, so the stream advance is exactly the generate-and-bound pass's.

__attribute__((target("avx512f,avx512dq,avx512vl"))) size_t
MegaLaplaceFillMinScanSpansAvx512(BlockRng::State* st, double mu, double b,
                                  const double* a, double bar,
                                  uint64_t skip_word, size_t count,
                                  size_t span_elems, uint64_t* span_min,
                                  BlockRng::State* span_states,
                                  FusedScanHit* hits, size_t max_hits,
                                  uint64_t* min_out) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t total = UINT64_MAX;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m512i acc = _mm512_set1_epi64(-1);
    for (; e + 8 <= span_end; e += 8) {
      const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m256i r2 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m256i r3 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m512i v0 = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
      const __m512i v1 = _mm512_inserti64x4(_mm512_castsi256_si512(r2), r3, 1);
      // Magnitude words (order-free for min and the any-live test).
      const __m512i mags = _mm512_unpacklo_epi64(v0, v1);
      acc = _mm512_min_epu64(acc, mags);
      if (_mm512_cmplt_epu64_mask(_mm512_srli_epi64(mags, 11), vskip) == 0) {
        continue;
      }
      const __m512d nu = LaplaceNu8Avx512Reg(v0, v1, vmu, vnb);
      const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + e), nu);
      unsigned mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
      if (mask != 0) {
        alignas(64) double nus[8];
        _mm512_store_pd(nus, nu);
        do {
          const int lane = __builtin_ctz(mask);
          if (found < max_hits) {
            hits[found] = {e + static_cast<size_t>(lane), nus[lane]};
          }
          ++found;
          mask &= mask - 1;
        } while (mask != 0);
      }
    }
    alignas(64) uint64_t lanes[8];
    _mm512_store_si512(lanes, acc);
    uint64_t m = lanes[0];
    for (int lane = 1; lane < 8; ++lane) m = std::min(m, lanes[lane]);
    if (e < span_end) {
      // Sub-group span tail: only the final span can be short (dispatch
      // entry point guarantee), so spilling to scalar ends the call.
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t w_mag = MegaNextWord(st);
        const uint64_t w_sign = MegaNextWord(st);
        m = std::min(m, w_mag);
        if ((w_mag >> 11) >= skip_word) continue;
        const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
        if (a[e] + nu >= bar) {
          if (found < max_hits) hits[found] = {e, nu};
          ++found;
        }
      }
      span_min[span] = m;
      *min_out = std::min(total, m);
      return found;
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  *min_out = total;
  return found;
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) size_t
MegaExpFillMinScanSpansAvx512(BlockRng::State* st, double b, const double* a,
                              double bar, uint64_t skip_word, size_t count,
                              size_t span_elems, uint64_t* span_min,
                              BlockRng::State* span_states, FusedScanHit* hits,
                              size_t max_hits, uint64_t* min_out) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t total = UINT64_MAX;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m512i acc = _mm512_set1_epi64(-1);
    for (; e + 8 <= span_end; e += 8) {
      const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m512i v = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
      acc = _mm512_min_epu64(acc, v);
      if (_mm512_cmplt_epu64_mask(_mm512_srli_epi64(v, 11), vskip) == 0) {
        continue;
      }
      const __m512d nu = ExpNu8Avx512Reg(v, vnb);
      const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + e), nu);
      unsigned mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
      if (mask != 0) {
        alignas(64) double nus[8];
        _mm512_store_pd(nus, nu);
        do {
          const int lane = __builtin_ctz(mask);
          if (found < max_hits) {
            hits[found] = {e + static_cast<size_t>(lane), nus[lane]};
          }
          ++found;
          mask &= mask - 1;
        } while (mask != 0);
      }
    }
    alignas(64) uint64_t lanes[8];
    _mm512_store_si512(lanes, acc);
    uint64_t m = lanes[0];
    for (int lane = 1; lane < 8; ++lane) m = std::min(m, lanes[lane]);
    if (e < span_end) {
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t word = MegaNextWord(st);
        m = std::min(m, word);
        if ((word >> 11) >= skip_word) continue;
        const double nu = ExpNuScalar(word, b);
        if (a[e] + nu >= bar) {
          if (found < max_hits) hits[found] = {e, nu};
          ++found;
        }
      }
      span_min[span] = m;
      *min_out = std::min(total, m);
      return found;
    }
    span_min[span] = m;
    total = std::min(total, m);
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  *min_out = total;
  return found;
}

// Pairwise bounded scan lanes at 8-wide: the pairwise scan bodies with
// the bounded lanes' group skip test in front.

__attribute__((target("avx512f,avx512dq,avx512vl"))) FusedScanHit
MegaLaplaceScanSumGePairwiseBoundedAvx512(BlockRng::State* st, double mu,
                                          double b, const double* a,
                                          const double* bars, double rho,
                                          uint64_t skip_word, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r2 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r3 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m512i v0 = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
    const __m512i v1 = _mm512_inserti64x4(_mm512_castsi256_si512(r2), r3, 1);
    // Magnitude words (order-free for the any-live test), top 53 bits.
    const __m512i mag53 = _mm512_srli_epi64(_mm512_unpacklo_epi64(v0, v1), 11);
    if (_mm512_cmplt_epu64_mask(mag53, vskip) == 0) continue;
    const __m512d nu = LaplaceNu8Avx512Reg(v0, v1, vmu, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) return MegaHitAvx512(st, i, mask, nu, 2, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaScanSumGePairwiseBoundedScalar(st, mu, b, a, bars, rho, skip_word,
                                            n, i);
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) FusedScanHit
MegaExpScanSumGePairwiseBoundedAvx512(BlockRng::State* st, double b,
                                      const double* a, const double* bars,
                                      double rho, uint64_t skip_word,
                                      size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c0 = s0, c1 = s1, c2 = s2, c3 = s3;
    const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
    const __m512i v = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
    if (_mm512_cmplt_epu64_mask(_mm512_srli_epi64(v, 11), vskip) == 0) {
      continue;
    }
    const __m512d nu = ExpNu8Avx512Reg(v, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) return MegaHitAvx512(st, i, mask, nu, 1, c0, c1, c2, c3);
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  return MegaExpScanSumGePairwiseBoundedScalar(st, b, a, bars, rho, skip_word,
                                               n, i);
}

// Per-query fused generate-bound-and-scan lanes at 8-wide: the span skip
// threshold reloads from the per-span vector at each span entry and the
// group live masks feed the element-granular skipped count.

__attribute__((target("avx512f,avx512dq,avx512vl"))) size_t
MegaLaplaceFillMinScanSpansPairwiseAvx512(
    BlockRng::State* st, double mu, double b, const double* a,
    const double* bars, double rho, const uint64_t* skip_words, size_t count,
    size_t span_elems, uint64_t* span_min, BlockRng::State* span_states,
    FusedScanHit* hits, size_t max_hits, uint64_t* skipped_out) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t skipped = 0;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    const uint64_t skip_word = skip_words[span];
    const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m512i acc = _mm512_set1_epi64(-1);
    for (; e + 8 <= span_end; e += 8) {
      const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m256i r2 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m256i r3 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m512i v0 = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
      const __m512i v1 = _mm512_inserti64x4(_mm512_castsi256_si512(r2), r3, 1);
      // Magnitude words (order-free for min, any-live, and the count).
      const __m512i mags = _mm512_unpacklo_epi64(v0, v1);
      acc = _mm512_min_epu64(acc, mags);
      const __mmask8 live =
          _mm512_cmplt_epu64_mask(_mm512_srli_epi64(mags, 11), vskip);
      skipped += 8 - static_cast<unsigned>(
                         __builtin_popcount(static_cast<unsigned>(live)));
      if (live == 0) continue;
      const __m512d nu = LaplaceNu8Avx512Reg(v0, v1, vmu, vnb);
      const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + e), nu);
      const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + e), vrho);
      unsigned mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
      if (mask != 0) {
        alignas(64) double nus[8];
        _mm512_store_pd(nus, nu);
        do {
          const int lane = __builtin_ctz(mask);
          if (found < max_hits) {
            hits[found] = {e + static_cast<size_t>(lane), nus[lane]};
          }
          ++found;
          mask &= mask - 1;
        } while (mask != 0);
      }
    }
    alignas(64) uint64_t lanes[8];
    _mm512_store_si512(lanes, acc);
    uint64_t m = lanes[0];
    for (int lane = 1; lane < 8; ++lane) m = std::min(m, lanes[lane]);
    if (e < span_end) {
      // Sub-group span tail: only the final span can be short (dispatch
      // entry point guarantee), so spilling to scalar ends the call.
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t w_mag = MegaNextWord(st);
        const uint64_t w_sign = MegaNextWord(st);
        m = std::min(m, w_mag);
        if ((w_mag >> 11) >= skip_word) {
          ++skipped;
          continue;
        }
        const double nu = LaplaceNuScalar(w_mag, w_sign, mu, b);
        if (a[e] + nu >= bars[e] + rho) {
          if (found < max_hits) hits[found] = {e, nu};
          ++found;
        }
      }
      span_min[span] = m;
      *skipped_out = skipped;
      return found;
    }
    span_min[span] = m;
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  *skipped_out = skipped;
  return found;
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) size_t
MegaExpFillMinScanSpansPairwiseAvx512(
    BlockRng::State* st, double b, const double* a, const double* bars,
    double rho, const uint64_t* skip_words, size_t count, size_t span_elems,
    uint64_t* span_min, BlockRng::State* span_states, FusedScanHit* hits,
    size_t max_hits, uint64_t* skipped_out) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  uint64_t* w = st->words.data();
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 12));
  uint64_t skipped = 0;
  size_t found = 0;
  size_t e = 0;
  size_t span = 0;
  while (e < count) {
    const size_t span_end = std::min(count, e + span_elems);
    const uint64_t skip_word = skip_words[span];
    const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
    if (span_states != nullptr) {
      MegaStoreAvx2(&span_states[span], s0, s1, s2, s3);
    }
    __m512i acc = _mm512_set1_epi64(-1);
    for (; e + 8 <= span_end; e += 8) {
      const __m256i r0 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m256i r1 = lockstep::Step4Avx512(s0, s1, s2, s3);
      const __m512i v = _mm512_inserti64x4(_mm512_castsi256_si512(r0), r1, 1);
      acc = _mm512_min_epu64(acc, v);
      const __mmask8 live =
          _mm512_cmplt_epu64_mask(_mm512_srli_epi64(v, 11), vskip);
      skipped += 8 - static_cast<unsigned>(
                         __builtin_popcount(static_cast<unsigned>(live)));
      if (live == 0) continue;
      const __m512d nu = ExpNu8Avx512Reg(v, vnb);
      const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + e), nu);
      const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + e), vrho);
      unsigned mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
      if (mask != 0) {
        alignas(64) double nus[8];
        _mm512_store_pd(nus, nu);
        do {
          const int lane = __builtin_ctz(mask);
          if (found < max_hits) {
            hits[found] = {e + static_cast<size_t>(lane), nus[lane]};
          }
          ++found;
          mask &= mask - 1;
        } while (mask != 0);
      }
    }
    alignas(64) uint64_t lanes[8];
    _mm512_store_si512(lanes, acc);
    uint64_t m = lanes[0];
    for (int lane = 1; lane < 8; ++lane) m = std::min(m, lanes[lane]);
    if (e < span_end) {
      MegaStoreAvx2(st, s0, s1, s2, s3);
      for (; e < span_end; ++e) {
        const uint64_t word = MegaNextWord(st);
        m = std::min(m, word);
        if ((word >> 11) >= skip_word) {
          ++skipped;
          continue;
        }
        const double nu = ExpNuScalar(word, b);
        if (a[e] + nu >= bars[e] + rho) {
          if (found < max_hits) hits[found] = {e, nu};
          ++found;
        }
      }
      span_min[span] = m;
      *skipped_out = skipped;
      return found;
    }
    span_min[span] = m;
    ++span;
  }
  MegaStoreAvx2(st, s0, s1, s2, s3);
  *skipped_out = skipped;
  return found;
}

// Scratch-buffer skipped-word count at 8-wide for the composition mode.

__attribute__((target("avx512f,avx512dq,avx512vl"))) size_t
SkipWordCountBlockAvx512(const uint64_t* words, size_t n, size_t wpv,
                         uint64_t skip_word) {
  const __m512i vskip = _mm512_set1_epi64(static_cast<int64_t>(skip_word));
  size_t c = 0;
  size_t i = 0;
  if (wpv == 2) {
    for (; i + 16 <= n; i += 16) {
      const __m512i v0 = _mm512_loadu_si512(words + i);
      const __m512i v1 = _mm512_loadu_si512(words + i + 8);
      const __m512i mag53 =
          _mm512_srli_epi64(_mm512_unpacklo_epi64(v0, v1), 11);
      const __mmask8 live = _mm512_cmplt_epu64_mask(mag53, vskip);
      c += 8 - static_cast<unsigned>(
                   __builtin_popcount(static_cast<unsigned>(live)));
    }
  } else {
    for (; i + 8 <= n; i += 8) {
      const __m512i v = _mm512_loadu_si512(words + i);
      const __mmask8 live =
          _mm512_cmplt_epu64_mask(_mm512_srli_epi64(v, 11), vskip);
      c += 8 - static_cast<unsigned>(
                   __builtin_popcount(static_cast<unsigned>(live)));
    }
  }
  for (; i < n; i += wpv) c += (words[i] >> 11) >= skip_word;
  return c;
}

}  // namespace

#pragma GCC diagnostic pop

#endif  // SVT_VECMATH_HAVE_AVX512

void LogBlock(std::span<const double> in, std::span<double> out) {
  SVT_CHECK(in.size() == out.size())
      << "LogBlock size mismatch: " << in.size() << " vs " << out.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    LogBlockAvx512(in.data(), out.data(), in.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    LogBlockAvx2(in.data(), out.data(), in.size());
    return;
  }
#endif
  for (size_t i = 0; i < in.size(); ++i) out[i] = Log(in[i]);
}

void ExpBlock(std::span<const double> in, std::span<double> out) {
  SVT_CHECK(in.size() == out.size())
      << "ExpBlock size mismatch: " << in.size() << " vs " << out.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    ExpBlockAvx512(in.data(), out.data(), in.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    ExpBlockAvx2(in.data(), out.data(), in.size());
    return;
  }
#endif
  for (size_t i = 0; i < in.size(); ++i) out[i] = Exp(in[i]);
}

void NegLogUnitPositiveBlock(std::span<const uint64_t> words, size_t stride,
                             std::span<double> out) {
  SVT_CHECK(stride == 1 || stride == 2)
      << "NegLogUnitPositiveBlock stride must be 1 or 2, got " << stride;
  SVT_CHECK(words.size() == stride * out.size())
      << "NegLogUnitPositiveBlock size mismatch: " << words.size()
      << " words for " << out.size() << " outputs at stride " << stride;
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    NegLogUnitPositiveAvx512(words.data(), stride, out.data(), out.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    NegLogUnitPositiveAvx2(words.data(), stride, out.data(), out.size());
    return;
  }
#endif
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = -Log(Rng::ToUnitDoublePositive(words[i * stride]));
  }
}

void LaplaceTransformBlock(std::span<const uint64_t> words, double mu,
                           double b, std::span<double> out) {
  SVT_CHECK(words.size() == 2 * out.size())
      << "LaplaceTransformBlock size mismatch: " << words.size()
      << " words for " << out.size() << " outputs";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    LaplaceTransformAvx512(words.data(), mu, b, out.data(), out.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    LaplaceTransformAvx2(words.data(), mu, b, out.data(), out.size());
    return;
  }
#endif
  for (size_t i = 0; i < out.size(); ++i) {
    const double e = -Log(Rng::ToUnitDoublePositive(words[2 * i]));
    const double be = b * e;
    const uint64_t flip = ~words[2 * i + 1] & 0x8000'0000'0000'0000ull;
    out[i] = mu + std::bit_cast<double>(std::bit_cast<uint64_t>(be) ^ flip);
  }
}

double MaxBlock(std::span<const double> in) {
  SVT_CHECK(!in.empty()) << "MaxBlock requires at least one element";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return MaxBlockAvx512(in.data(), in.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return MaxBlockAvx2(in.data(), in.size());
  }
#endif
  double m = in[0];
  for (double x : in) m = std::max(m, x);
  return m;
}

uint64_t MinWordBlock(std::span<const uint64_t> words, size_t stride) {
  SVT_CHECK(stride == 1 || stride == 2)
      << "MinWordBlock stride must be 1 or 2, got " << stride;
  SVT_CHECK(!words.empty() && words.size() % stride == 0)
      << "MinWordBlock needs a non-empty multiple of stride, got "
      << words.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return MinWordBlockAvx512(words.data(), stride, words.size() / stride);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return MinWordBlockAvx2(words.data(), stride, words.size() / stride);
  }
#endif
  uint64_t m = words[0];
  for (size_t i = 0; i < words.size(); i += stride) {
    m = std::min(m, words[i]);
  }
  return m;
}

double MinBlock(std::span<const double> in) {
  SVT_CHECK(!in.empty()) << "MinBlock requires at least one element";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return MinBlockAvx512(in.data(), in.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return MinBlockAvx2(in.data(), in.size());
  }
#endif
  double m = in[0];
  for (double x : in) m = std::min(m, x);
  return m;
}

// The quantized reductions dispatch the AVX2 lane at every SIMD level:
// 512-bit byte/word max needs AVX-512BW (outside the library's F+DQ+VL
// gate), and the reduction is exact at any width, so the AVX-512 level
// simply reuses the 256-bit lane (see vecmath.h).
uint16_t QuantizedSpanMax(std::span<const uint16_t> codes) {
  SVT_CHECK(!codes.empty()) << "QuantizedSpanMax requires an element";
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return QuantizedSpanMaxU16Avx2(codes.data(), codes.size());
  }
#endif
  uint16_t m = codes[0];
  for (uint16_t c : codes) m = std::max(m, c);
  return m;
}

uint16_t QuantizedSpanMin(std::span<const uint16_t> codes) {
  SVT_CHECK(!codes.empty()) << "QuantizedSpanMin requires an element";
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return QuantizedSpanMinU16Avx2(codes.data(), codes.size());
  }
#endif
  uint16_t m = codes[0];
  for (uint16_t c : codes) m = std::min(m, c);
  return m;
}

uint8_t QuantizedSpanMax(std::span<const uint8_t> codes) {
  SVT_CHECK(!codes.empty()) << "QuantizedSpanMax requires an element";
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return QuantizedSpanMaxU8Avx2(codes.data(), codes.size());
  }
#endif
  uint8_t m = codes[0];
  for (uint8_t c : codes) m = std::max(m, c);
  return m;
}

uint8_t QuantizedSpanMin(std::span<const uint8_t> codes) {
  SVT_CHECK(!codes.empty()) << "QuantizedSpanMin requires an element";
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return QuantizedSpanMinU8Avx2(codes.data(), codes.size());
  }
#endif
  uint8_t m = codes[0];
  for (uint8_t c : codes) m = std::min(m, c);
  return m;
}

size_t FindFirstSumGe(std::span<const double> a, std::span<const double> b,
                      double bar) {
  SVT_CHECK(a.size() == b.size())
      << "FindFirstSumGe size mismatch: " << a.size() << " vs " << b.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FindFirstSumGeAvx512(a.data(), b.data(), bar, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FindFirstSumGeAvx2(a.data(), b.data(), bar, a.size());
  }
#endif
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] + b[i] >= bar) return i;
  }
  return a.size();
}

size_t FindFirstGe(std::span<const double> a, double bar) {
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FindFirstGeAvx512(a.data(), bar, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FindFirstGeAvx2(a.data(), bar, a.size());
  }
#endif
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= bar) return i;
  }
  return a.size();
}


size_t FindFirstGePairwise(std::span<const double> a,
                           std::span<const double> bars, double rho) {
  SVT_CHECK(a.size() == bars.size())
      << "FindFirstGePairwise size mismatch: " << a.size() << " vs "
      << bars.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FindFirstGePairwiseAvx512(a.data(), bars.data(), rho, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FindFirstGePairwiseAvx2(a.data(), bars.data(), rho, a.size());
  }
#endif
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= bars[i] + rho) return i;
  }
  return a.size();
}

size_t FindFirstSumGePairwise(std::span<const double> a,
                              std::span<const double> b,
                              std::span<const double> bars, double rho) {
  SVT_CHECK(a.size() == b.size() && a.size() == bars.size())
      << "FindFirstSumGePairwise size mismatch: " << a.size() << " vs "
      << b.size() << " vs " << bars.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FindFirstSumGePairwiseAvx512(a.data(), b.data(), bars.data(), rho,
                                        a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FindFirstSumGePairwiseAvx2(a.data(), b.data(), bars.data(), rho,
                                      a.size());
  }
#endif
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] + b[i] >= bars[i] + rho) return i;
  }
  return a.size();
}

FusedScanHit FusedLaplaceScanGe(std::span<const uint64_t> words, double mu,
                                double b, double bar) {
  SVT_CHECK(words.size() % 2 == 0)
      << "FusedLaplaceScanGe needs (magnitude, sign) word pairs, got "
      << words.size() << " words";
  const size_t n = words.size() / 2;
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedLaplaceScanGeAvx512(words.data(), mu, b, bar, n);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedLaplaceScanGeAvx2(words.data(), mu, b, bar, n);
  }
#endif
  return FusedScanGeScalar(words.data(), mu, b, bar, n, 0);
}

FusedScanHit FusedLaplaceScanSumGe(std::span<const uint64_t> words, double mu,
                                   double b, std::span<const double> a,
                                   double bar) {
  SVT_CHECK(words.size() == 2 * a.size())
      << "FusedLaplaceScanSumGe size mismatch: " << words.size()
      << " words for " << a.size() << " answers";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedLaplaceScanSumGeAvx512(words.data(), mu, b, a.data(), bar,
                                       a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedLaplaceScanSumGeAvx2(words.data(), mu, b, a.data(), bar,
                                     a.size());
  }
#endif
  return FusedScanSumGeScalar(words.data(), mu, b, a.data(), bar, a.size(),
                              0);
}

FusedScanHit FusedLaplaceScanGePairwise(std::span<const uint64_t> words,
                                        double mu, double b,
                                        std::span<const double> bars,
                                        double rho) {
  SVT_CHECK(words.size() == 2 * bars.size())
      << "FusedLaplaceScanGePairwise size mismatch: " << words.size()
      << " words for " << bars.size() << " bars";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedLaplaceScanGePairwiseAvx512(words.data(), mu, b, bars.data(),
                                            rho, bars.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedLaplaceScanGePairwiseAvx2(words.data(), mu, b, bars.data(),
                                          rho, bars.size());
  }
#endif
  return FusedScanGePairwiseScalar(words.data(), mu, b, bars.data(), rho,
                                   bars.size(), 0);
}

FusedScanHit FusedLaplaceScanSumGePairwise(std::span<const uint64_t> words,
                                           double mu, double b,
                                           std::span<const double> a,
                                           std::span<const double> bars,
                                           double rho) {
  SVT_CHECK(words.size() == 2 * a.size() && a.size() == bars.size())
      << "FusedLaplaceScanSumGePairwise size mismatch: " << words.size()
      << " words for " << a.size() << " answers and " << bars.size()
      << " bars";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedLaplaceScanSumGePairwiseAvx512(
        words.data(), mu, b, a.data(), bars.data(), rho, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedLaplaceScanSumGePairwiseAvx2(words.data(), mu, b, a.data(),
                                             bars.data(), rho, a.size());
  }
#endif
  return FusedScanSumGePairwiseScalar(words.data(), mu, b, a.data(),
                                      bars.data(), rho, a.size(), 0);
}

void ExponentialTransformBlock(std::span<const uint64_t> words, double b,
                               std::span<double> out) {
  SVT_CHECK(words.size() == out.size())
      << "ExponentialTransformBlock size mismatch: " << words.size()
      << " words for " << out.size() << " outputs";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    ExponentialTransformAvx512(words.data(), b, out.data(), out.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    ExponentialTransformAvx2(words.data(), b, out.data(), out.size());
    return;
  }
#endif
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = ExpNuScalar(words[i], b);
  }
}

FusedScanHit FusedExpScanGe(std::span<const uint64_t> words, double b,
                            double bar) {
  const size_t n = words.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedExpScanGeAvx512(words.data(), b, bar, n);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedExpScanGeAvx2(words.data(), b, bar, n);
  }
#endif
  return FusedExpScanGeScalar(words.data(), b, bar, n, 0);
}

FusedScanHit FusedExpScanSumGe(std::span<const uint64_t> words, double b,
                               std::span<const double> a, double bar) {
  SVT_CHECK(words.size() == a.size())
      << "FusedExpScanSumGe size mismatch: " << words.size() << " words for "
      << a.size() << " answers";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedExpScanSumGeAvx512(words.data(), b, a.data(), bar, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedExpScanSumGeAvx2(words.data(), b, a.data(), bar, a.size());
  }
#endif
  return FusedExpScanSumGeScalar(words.data(), b, a.data(), bar, a.size(), 0);
}

FusedScanHit FusedExpScanGePairwise(std::span<const uint64_t> words, double b,
                                    std::span<const double> bars, double rho) {
  SVT_CHECK(words.size() == bars.size())
      << "FusedExpScanGePairwise size mismatch: " << words.size()
      << " words for " << bars.size() << " bars";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedExpScanGePairwiseAvx512(words.data(), b, bars.data(), rho,
                                        bars.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedExpScanGePairwiseAvx2(words.data(), b, bars.data(), rho,
                                      bars.size());
  }
#endif
  return FusedExpScanGePairwiseScalar(words.data(), b, bars.data(), rho,
                                      bars.size(), 0);
}

FusedScanHit FusedExpScanSumGePairwise(std::span<const uint64_t> words,
                                       double b, std::span<const double> a,
                                       std::span<const double> bars,
                                       double rho) {
  SVT_CHECK(words.size() == a.size() && a.size() == bars.size())
      << "FusedExpScanSumGePairwise size mismatch: " << words.size()
      << " words for " << a.size() << " answers and " << bars.size()
      << " bars";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedExpScanSumGePairwiseAvx512(words.data(), b, a.data(),
                                           bars.data(), rho, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedExpScanSumGePairwiseAvx2(words.data(), b, a.data(),
                                         bars.data(), rho, a.size());
  }
#endif
  return FusedExpScanSumGePairwiseScalar(words.data(), b, a.data(),
                                         bars.data(), rho, a.size(), 0);
}

// --- megakernel dispatch entry points -------------------------------------
//
// The SIMD megakernel lanes step whole lockstep groups in registers, so
// they require a lane-aligned entry position (phase == 0). Unaligned
// entries are common in resume segments — a Laplace hit at an odd span
// offset leaves the stream two words into a lockstep step — so each
// entry point realigns with a short scalar prologue (at most three
// elements) and hands the rest to the SIMD lane, rather than demoting
// the whole call to the scalar walker. A wpv == 2 stream entered at an
// odd phase can never realign; only that corner (which no engine path
// produces) runs fully scalar. MegaFillMinSpans additionally needs every
// span start group-aligned to keep its span states lane-aligned; with
// one span there is no interior boundary, so only the multi-span case is
// gated on span_elems.

namespace {

// Elements the scalar lane must consume from an unaligned entry before
// the stream returns to a lane-aligned position (phase 0); SIZE_MAX when
// it never realigns (odd phase, two words per variate).
inline size_t MegaRealignElems(uint32_t phase, size_t wpv) {
  for (size_t p = 1; p < BlockRng::kLanes; ++p) {
    if ((phase + p * wpv) % BlockRng::kLanes == 0) return p;
  }
  return SIZE_MAX;
}

}  // namespace

uint64_t MegaFillMinSpans(BlockRng::State* state, size_t count, size_t wpv,
                          size_t span_elems, uint64_t* span_min,
                          BlockRng::State* span_states) {
  SVT_CHECK(wpv == 1 || wpv == 2)
      << "MegaFillMinSpans words-per-variate must be 1 or 2, got " << wpv;
  SVT_CHECK(span_elems > 0) << "MegaFillMinSpans requires span_elems > 0";
  if (state->phase != 0 && count <= span_elems &&
      ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    // One-span unaligned entry (a post-positive shifted span): realign
    // scalar, then bound the remainder on the SIMD lane. The span-entry
    // state is the pre-prologue state — the span starts at element 0.
    const size_t p = MegaRealignElems(state->phase, wpv);
    if (p < count) {
      if (span_states != nullptr) *span_states = *state;
      uint64_t m = UINT64_MAX;
      for (size_t i = 0; i < p; ++i) {
        const uint64_t mag = MegaNextWord(state);
        for (size_t k = 1; k < wpv; ++k) MegaNextWord(state);
        m = std::min(m, mag);
      }
      uint64_t rest_min;
      MegaFillMinSpans(state, count - p, wpv, count - p, &rest_min, nullptr);
      span_min[0] = std::min(m, rest_min);
      return span_min[0];
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0 &&
      (span_elems % 8 == 0 || count <= span_elems)) {
    return MegaFillMinSpansAvx512(state, count, wpv, span_elems, span_min,
                                  span_states);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0 &&
      (span_elems % 4 == 0 || count <= span_elems)) {
    return MegaFillMinSpansAvx2(state, count, wpv, span_elems, span_min,
                                span_states);
  }
#endif
  return MegaFillMinSpansScalar(state, count, wpv, span_elems, span_min,
                                span_states);
}

FusedScanHit MegaLaplaceScanSumGe(BlockRng::State* state, double mu, double b,
                                  std::span<const double> a, double bar) {
  if (state->phase != 0 && ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    const size_t p = MegaRealignElems(state->phase, 2);
    if (p < a.size()) {
      const FusedScanHit pre =
          MegaScanSumGeScalar(state, mu, b, a.data(), bar, p, 0);
      if (pre.index < p) return pre;
      const FusedScanHit hit =
          MegaLaplaceScanSumGe(state, mu, b, a.subspan(p), bar);
      return {p + hit.index, hit.nu};
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0) {
    return MegaLaplaceScanSumGeAvx512(state, mu, b, a.data(), bar, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0) {
    return MegaLaplaceScanSumGeAvx2(state, mu, b, a.data(), bar, a.size());
  }
#endif
  return MegaScanSumGeScalar(state, mu, b, a.data(), bar, a.size(), 0);
}

FusedScanHit MegaLaplaceScanSumGePairwise(BlockRng::State* state, double mu,
                                          double b, std::span<const double> a,
                                          std::span<const double> bars,
                                          double rho) {
  SVT_CHECK(a.size() == bars.size())
      << "MegaLaplaceScanSumGePairwise size mismatch: " << a.size() << " vs "
      << bars.size();
  if (state->phase != 0 && ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    const size_t p = MegaRealignElems(state->phase, 2);
    if (p < a.size()) {
      const FusedScanHit pre = MegaScanSumGePairwiseScalar(
          state, mu, b, a.data(), bars.data(), rho, p, 0);
      if (pre.index < p) return pre;
      const FusedScanHit hit = MegaLaplaceScanSumGePairwise(
          state, mu, b, a.subspan(p), bars.subspan(p), rho);
      return {p + hit.index, hit.nu};
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0) {
    return MegaLaplaceScanSumGePairwiseAvx512(state, mu, b, a.data(),
                                              bars.data(), rho, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0) {
    return MegaLaplaceScanSumGePairwiseAvx2(state, mu, b, a.data(),
                                            bars.data(), rho, a.size());
  }
#endif
  return MegaScanSumGePairwiseScalar(state, mu, b, a.data(), bars.data(), rho,
                                     a.size(), 0);
}

FusedScanHit MegaExpScanSumGe(BlockRng::State* state, double b,
                              std::span<const double> a, double bar) {
  if (state->phase != 0 && ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    const size_t p = MegaRealignElems(state->phase, 1);
    if (p < a.size()) {
      const FusedScanHit pre =
          MegaExpScanSumGeScalar(state, b, a.data(), bar, p, 0);
      if (pre.index < p) return pre;
      const FusedScanHit hit = MegaExpScanSumGe(state, b, a.subspan(p), bar);
      return {p + hit.index, hit.nu};
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0) {
    return MegaExpScanSumGeAvx512(state, b, a.data(), bar, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0) {
    return MegaExpScanSumGeAvx2(state, b, a.data(), bar, a.size());
  }
#endif
  return MegaExpScanSumGeScalar(state, b, a.data(), bar, a.size(), 0);
}

FusedScanHit MegaExpScanSumGePairwise(BlockRng::State* state, double b,
                                      std::span<const double> a,
                                      std::span<const double> bars,
                                      double rho) {
  SVT_CHECK(a.size() == bars.size())
      << "MegaExpScanSumGePairwise size mismatch: " << a.size() << " vs "
      << bars.size();
  if (state->phase != 0 && ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    const size_t p = MegaRealignElems(state->phase, 1);
    if (p < a.size()) {
      const FusedScanHit pre = MegaExpScanSumGePairwiseScalar(
          state, b, a.data(), bars.data(), rho, p, 0);
      if (pre.index < p) return pre;
      const FusedScanHit hit = MegaExpScanSumGePairwise(
          state, b, a.subspan(p), bars.subspan(p), rho);
      return {p + hit.index, hit.nu};
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0) {
    return MegaExpScanSumGePairwiseAvx512(state, b, a.data(), bars.data(),
                                          rho, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0) {
    return MegaExpScanSumGePairwiseAvx2(state, b, a.data(), bars.data(), rho,
                                        a.size());
  }
#endif
  return MegaExpScanSumGePairwiseScalar(state, b, a.data(), bars.data(), rho,
                                        a.size(), 0);
}

namespace {

// Together with the +2 below, kMegaNeverSkipWord (declared in the
// header) caps every returned threshold at 2^53 + 1 — small enough that
// the AVX2 lanes' signed 64-bit compare behaves unsigned.
constexpr uint64_t kMegaNeverSkip = kMegaNeverSkipWord;

// Pads for the soundness check: the absolute pad dominates the Log
// kernel's ≤ 2-ulp error (at most ~8e-15 absolute over the unit range,
// magnitudes capped by -log(2^-53) ≈ 36.74), making the padded value an
// upper bound on the computed -Log(u) of *every* skipped word even
// where the polynomial wiggles non-monotonically; the multiplicative
// slack absorbs the roundings of the ν = fl(b · e) product chain.
constexpr double kMegaSkipLogPad = 1e-13;
constexpr double kMegaSkipSlack = 1.0 + 1e-12;

// True when skipping every element with (w_mag >> 11) >= skip_word is
// provably sound against the computed positive test for answers <= a_max:
// u_W = (skip_word + 1) * 2^-53 is the smallest unit double among
// skipped words (ToUnitDoublePositive is monotone in w >> 11), the
// padded production-Log bound caps every skipped |ν| as a real, and
// rounding monotonicity then caps every skipped fl(a[i] + ν) by
// fl(a_max + bound) < bar — the same bound-chain argument the tier-1 and
// span bounds rest on.
bool MegaSkipSound(uint64_t skip_word, double a_max, double bar, double b) {
  if (skip_word >= kMegaNeverSkip) return true;
  const double u = (static_cast<double>(skip_word) + 1.0) * 0x1.0p-53;
  const double bound = b * (-Log(u) + kMegaSkipLogPad) * kMegaSkipSlack;
  return a_max + bound < bar;
}

}  // namespace

uint64_t MegaSkipWordThreshold(double a_max, double bar, double b) {
  const double gap = bar - a_max;
  if (!(gap > 0.0) || !(b > 0.0) || !std::isfinite(gap)) {
    return kMegaNeverSkip;
  }
  // Candidate from the exact inverse u = exp(-gap / b), nudged up ~1e-9
  // so the first soundness check normally passes (its own pads sit two
  // orders of magnitude below the nudge); +2 covers the floor and the
  // half-open word-to-unit offset. The checked-then-nudged loop makes
  // the exp inversion a pure performance guess: an unsound candidate
  // near the boundary is pushed ~1e-6 relative past it, and a workload
  // outside the pads' regime (e.g. |bar| astronomically larger than b)
  // just degrades to never-skip.
  const double u_t = std::exp(-gap / b) * (1.0 + 1e-9);
  uint64_t w = u_t >= 1.0 ? kMegaNeverSkip
                          : static_cast<uint64_t>(u_t * 0x1.0p53) + 2;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (w >= kMegaNeverSkip) return kMegaNeverSkip;
    if (MegaSkipSound(w, a_max, bar, b)) return w;
    w += (w >> 20) + 16;
  }
  return kMegaNeverSkip;
}

FusedScanHit MegaLaplaceScanSumGeBounded(BlockRng::State* state, double mu,
                                         double b, std::span<const double> a,
                                         double bar, uint64_t skip_word) {
  SVT_DCHECK(skip_word <= kMegaNeverSkip + 1);
  if (state->phase != 0 && ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    const size_t p = MegaRealignElems(state->phase, 2);
    if (p < a.size()) {
      const FusedScanHit pre = MegaScanSumGeBoundedScalar(
          state, mu, b, a.data(), bar, skip_word, p, 0);
      if (pre.index < p) return pre;
      const FusedScanHit hit =
          MegaLaplaceScanSumGeBounded(state, mu, b, a.subspan(p), bar,
                                      skip_word);
      return {p + hit.index, hit.nu};
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0) {
    return MegaLaplaceScanSumGeBoundedAvx512(state, mu, b, a.data(), bar,
                                             skip_word, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0) {
    return MegaLaplaceScanSumGeBoundedAvx2(state, mu, b, a.data(), bar,
                                           skip_word, a.size());
  }
#endif
  return MegaScanSumGeBoundedScalar(state, mu, b, a.data(), bar, skip_word,
                                    a.size(), 0);
}

FusedScanHit MegaExpScanSumGeBounded(BlockRng::State* state, double b,
                                     std::span<const double> a, double bar,
                                     uint64_t skip_word) {
  SVT_DCHECK(skip_word <= kMegaNeverSkip + 1);
  if (state->phase != 0 && ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    const size_t p = MegaRealignElems(state->phase, 1);
    if (p < a.size()) {
      const FusedScanHit pre = MegaExpScanSumGeBoundedScalar(
          state, b, a.data(), bar, skip_word, p, 0);
      if (pre.index < p) return pre;
      const FusedScanHit hit =
          MegaExpScanSumGeBounded(state, b, a.subspan(p), bar, skip_word);
      return {p + hit.index, hit.nu};
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0) {
    return MegaExpScanSumGeBoundedAvx512(state, b, a.data(), bar, skip_word,
                                         a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0) {
    return MegaExpScanSumGeBoundedAvx2(state, b, a.data(), bar, skip_word,
                                       a.size());
  }
#endif
  return MegaExpScanSumGeBoundedScalar(state, b, a.data(), bar, skip_word,
                                       a.size(), 0);
}

// Fused generate-bound-and-scan entries. These run whole chunks from the
// chunk-entry stream position, which is always lane-aligned (chunks
// consume lane-multiple word counts), so an unaligned entry only needs
// the correctness fallback, not a realignment prologue: the scalar lane
// handles it exactly.

size_t MegaLaplaceFillMinScanSpans(BlockRng::State* state, double mu, double b,
                                   std::span<const double> a, double bar,
                                   uint64_t skip_word, size_t span_elems,
                                   uint64_t* span_min,
                                   BlockRng::State* span_states,
                                   FusedScanHit* hits, size_t max_hits,
                                   uint64_t* min_out) {
  SVT_CHECK(span_elems > 0)
      << "MegaLaplaceFillMinScanSpans requires span_elems > 0";
  SVT_DCHECK(skip_word <= kMegaNeverSkip + 1);
  const size_t n = a.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0 &&
      (span_elems % 8 == 0 || n <= span_elems)) {
    return MegaLaplaceFillMinScanSpansAvx512(state, mu, b, a.data(), bar,
                                             skip_word, n, span_elems,
                                             span_min, span_states, hits,
                                             max_hits, min_out);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0 &&
      (span_elems % 4 == 0 || n <= span_elems)) {
    return MegaLaplaceFillMinScanSpansAvx2(state, mu, b, a.data(), bar,
                                           skip_word, n, span_elems, span_min,
                                           span_states, hits, max_hits,
                                           min_out);
  }
#endif
  return MegaLaplaceFillMinScanSpansScalar(state, mu, b, a.data(), bar,
                                           skip_word, n, span_elems, span_min,
                                           span_states, hits, max_hits,
                                           min_out);
}

size_t MegaExpFillMinScanSpans(BlockRng::State* state, double b,
                               std::span<const double> a, double bar,
                               uint64_t skip_word, size_t span_elems,
                               uint64_t* span_min, BlockRng::State* span_states,
                               FusedScanHit* hits, size_t max_hits,
                               uint64_t* min_out) {
  SVT_CHECK(span_elems > 0)
      << "MegaExpFillMinScanSpans requires span_elems > 0";
  SVT_DCHECK(skip_word <= kMegaNeverSkip + 1);
  const size_t n = a.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0 &&
      (span_elems % 8 == 0 || n <= span_elems)) {
    return MegaExpFillMinScanSpansAvx512(state, b, a.data(), bar, skip_word, n,
                                         span_elems, span_min, span_states,
                                         hits, max_hits, min_out);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0 &&
      (span_elems % 4 == 0 || n <= span_elems)) {
    return MegaExpFillMinScanSpansAvx2(state, b, a.data(), bar, skip_word, n,
                                       span_elems, span_min, span_states, hits,
                                       max_hits, min_out);
  }
#endif
  return MegaExpFillMinScanSpansScalar(state, b, a.data(), bar, skip_word, n,
                                       span_elems, span_min, span_states, hits,
                                       max_hits, min_out);
}

// Per-query (pairwise) bounded entries. The scan entries realign like
// their unbounded pairwise counterparts (resume segments enter
// mid-group); the realignment prologue reuses the span's skip word —
// sound, since the word bound is positional-context-free.

FusedScanHit MegaLaplaceScanSumGePairwiseBounded(
    BlockRng::State* state, double mu, double b, std::span<const double> a,
    std::span<const double> bars, double rho, uint64_t skip_word) {
  SVT_CHECK(a.size() == bars.size())
      << "MegaLaplaceScanSumGePairwiseBounded size mismatch: " << a.size()
      << " vs " << bars.size();
  SVT_DCHECK(skip_word <= kMegaNeverSkip + 1);
  if (state->phase != 0 && ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    const size_t p = MegaRealignElems(state->phase, 2);
    if (p < a.size()) {
      const FusedScanHit pre = MegaScanSumGePairwiseBoundedScalar(
          state, mu, b, a.data(), bars.data(), rho, skip_word, p, 0);
      if (pre.index < p) return pre;
      const FusedScanHit hit = MegaLaplaceScanSumGePairwiseBounded(
          state, mu, b, a.subspan(p), bars.subspan(p), rho, skip_word);
      return {p + hit.index, hit.nu};
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0) {
    return MegaLaplaceScanSumGePairwiseBoundedAvx512(
        state, mu, b, a.data(), bars.data(), rho, skip_word, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0) {
    return MegaLaplaceScanSumGePairwiseBoundedAvx2(
        state, mu, b, a.data(), bars.data(), rho, skip_word, a.size());
  }
#endif
  return MegaScanSumGePairwiseBoundedScalar(state, mu, b, a.data(),
                                            bars.data(), rho, skip_word,
                                            a.size(), 0);
}

FusedScanHit MegaExpScanSumGePairwiseBounded(BlockRng::State* state, double b,
                                             std::span<const double> a,
                                             std::span<const double> bars,
                                             double rho, uint64_t skip_word) {
  SVT_CHECK(a.size() == bars.size())
      << "MegaExpScanSumGePairwiseBounded size mismatch: " << a.size()
      << " vs " << bars.size();
  SVT_DCHECK(skip_word <= kMegaNeverSkip + 1);
  if (state->phase != 0 && ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    const size_t p = MegaRealignElems(state->phase, 1);
    if (p < a.size()) {
      const FusedScanHit pre = MegaExpScanSumGePairwiseBoundedScalar(
          state, b, a.data(), bars.data(), rho, skip_word, p, 0);
      if (pre.index < p) return pre;
      const FusedScanHit hit = MegaExpScanSumGePairwiseBounded(
          state, b, a.subspan(p), bars.subspan(p), rho, skip_word);
      return {p + hit.index, hit.nu};
    }
  }
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0) {
    return MegaExpScanSumGePairwiseBoundedAvx512(
        state, b, a.data(), bars.data(), rho, skip_word, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0) {
    return MegaExpScanSumGePairwiseBoundedAvx2(state, b, a.data(), bars.data(),
                                               rho, skip_word, a.size());
  }
#endif
  return MegaExpScanSumGePairwiseBoundedScalar(state, b, a.data(), bars.data(),
                                               rho, skip_word, a.size(), 0);
}

size_t MegaLaplaceFillMinScanSpansPairwise(
    BlockRng::State* state, double mu, double b, std::span<const double> a,
    std::span<const double> bars, double rho, const uint64_t* skip_words,
    size_t span_elems, uint64_t* span_min, BlockRng::State* span_states,
    FusedScanHit* hits, size_t max_hits, uint64_t* skipped_out) {
  SVT_CHECK(a.size() == bars.size())
      << "MegaLaplaceFillMinScanSpansPairwise size mismatch: " << a.size()
      << " vs " << bars.size();
  SVT_CHECK(span_elems > 0)
      << "MegaLaplaceFillMinScanSpansPairwise requires span_elems > 0";
  const size_t n = a.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0 &&
      (span_elems % 8 == 0 || n <= span_elems)) {
    return MegaLaplaceFillMinScanSpansPairwiseAvx512(
        state, mu, b, a.data(), bars.data(), rho, skip_words, n, span_elems,
        span_min, span_states, hits, max_hits, skipped_out);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0 &&
      (span_elems % 4 == 0 || n <= span_elems)) {
    return MegaLaplaceFillMinScanSpansPairwiseAvx2(
        state, mu, b, a.data(), bars.data(), rho, skip_words, n, span_elems,
        span_min, span_states, hits, max_hits, skipped_out);
  }
#endif
  return MegaLaplaceFillMinScanSpansPairwiseScalar(
      state, mu, b, a.data(), bars.data(), rho, skip_words, n, span_elems,
      span_min, span_states, hits, max_hits, skipped_out);
}

size_t MegaExpFillMinScanSpansPairwise(
    BlockRng::State* state, double b, std::span<const double> a,
    std::span<const double> bars, double rho, const uint64_t* skip_words,
    size_t span_elems, uint64_t* span_min, BlockRng::State* span_states,
    FusedScanHit* hits, size_t max_hits, uint64_t* skipped_out) {
  SVT_CHECK(a.size() == bars.size())
      << "MegaExpFillMinScanSpansPairwise size mismatch: " << a.size()
      << " vs " << bars.size();
  SVT_CHECK(span_elems > 0)
      << "MegaExpFillMinScanSpansPairwise requires span_elems > 0";
  const size_t n = a.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512 && state->phase == 0 &&
      (span_elems % 8 == 0 || n <= span_elems)) {
    return MegaExpFillMinScanSpansPairwiseAvx512(
        state, b, a.data(), bars.data(), rho, skip_words, n, span_elems,
        span_min, span_states, hits, max_hits, skipped_out);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2 && state->phase == 0 &&
      (span_elems % 4 == 0 || n <= span_elems)) {
    return MegaExpFillMinScanSpansPairwiseAvx2(
        state, b, a.data(), bars.data(), rho, skip_words, n, span_elems,
        span_min, span_states, hits, max_hits, skipped_out);
  }
#endif
  return MegaExpFillMinScanSpansPairwiseScalar(
      state, b, a.data(), bars.data(), rho, skip_words, n, span_elems,
      span_min, span_states, hits, max_hits, skipped_out);
}

size_t SkipWordCountBlock(std::span<const std::uint64_t> words, size_t wpv,
                          uint64_t skip_word) {
  SVT_CHECK(wpv == 1 || wpv == 2)
      << "SkipWordCountBlock words-per-variate must be 1 or 2, got " << wpv;
  SVT_CHECK(words.size() % wpv == 0)
      << "SkipWordCountBlock size not a words-per-variate multiple: "
      << words.size();
  if (skip_word >= kMegaNeverSkip) return 0;
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return SkipWordCountBlockAvx512(words.data(), words.size(), wpv,
                                    skip_word);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return SkipWordCountBlockAvx2(words.data(), words.size(), wpv, skip_word);
  }
#endif
  size_t c = 0;
  for (size_t i = 0; i < words.size(); i += wpv) {
    c += (words[i] >> 11) >= skip_word;
  }
  return c;
}

}  // namespace vec
}  // namespace svt
