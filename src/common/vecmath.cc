// Implementation notes
// --------------------
// Both kernels are the classic fdlibm reductions with the polynomial
// evaluated in one fixed Horner order:
//
//   Log: decompose x = 2^k * m with m in [sqrt(1/2), sqrt(2)) by integer
//   bit manipulation (exact), then with s = f/(2+f), f = m-1:
//     log(m) = f - (hfsq - s*(hfsq + R(s^2))),  R a degree-7 minimax poly,
//   recombined with k*ln2 in hi/lo parts. Subnormals are prescaled by
//   2^54 (exact) first.
//
//   Exp: k = round(x/ln2) via the 1.5*2^52 magic-add (exact for |x| in
//   range), r = (x - k*ln2_hi) - k*ln2_lo, then fdlibm's rational form
//     exp(r) = 1 - ((lo - r*c/(2-c)) - hi),  c = r - r^2*P(r^2),
//   scaled by 2^k as two exact power-of-two multiplies (k split in halves)
//   so deep underflow rounds once, into the subnormal range, correctly.
//
// The AVX2 and AVX-512 lanes mirror the scalar lane operation for
// operation: every step is a correctly-rounded IEEE double op (+ - * /) or
// an exact integer manipulation, and no FMA contraction can occur
// (explicit non-fused intrinsics here; -ffp-contract=off for the scalar
// lane, set in CMakeLists.txt). Lanes holding operands outside the fast
// path's domain (zero/subnormal/negative/non-finite for Log, |x| > 700 or
// NaN for Exp) are patched with the scalar kernel after the vector store,
// so every special case has exactly one implementation. The AVX-512 lane
// additionally uses the exact integer<->double conversions AVX-512DQ
// provides (cvtepu64_pd / cvtepi64_pd / cvtpd_epi64) where the AVX2 lane
// rebuilds them from 32-bit halves — both are exact for the magnitudes
// involved, so the lanes agree bit for bit.

#include "common/vecmath.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/rng.h"

#if (defined(__x86_64__) || defined(_M_X64)) && !defined(SVT_DISABLE_AVX2) && \
    (defined(__GNUC__) || defined(__clang__))
#define SVT_VECMATH_HAVE_AVX2 1
#include <immintrin.h>
#else
#define SVT_VECMATH_HAVE_AVX2 0
#endif

// The AVX-512 lane rides on the same toolchain requirements as AVX2 (and
// is pointless without it: dispatch is ordered). -DSVT_DISABLE_AVX512
// compiles just this lane out, for -mno-avx512f-style CI legs.
#if SVT_VECMATH_HAVE_AVX2 && !defined(SVT_DISABLE_AVX512)
#define SVT_VECMATH_HAVE_AVX512 1
#else
#define SVT_VECMATH_HAVE_AVX512 0
#endif

namespace svt {
namespace vec {

namespace {

// --- shared constants (bit-exact fdlibm values, written as hex floats) ---

constexpr double kLn2Hi = 0x1.62e42fee00000p-1;   // 6.93147180369123816490e-01
constexpr double kLn2Lo = 0x1.a39ef35793c76p-33;  // 1.90821492927058770002e-10

// log: R(z) ~= z*Lg1 + z^2*Lg2 + ... + z^7*Lg7 on z = s^2, |s| <= 0.1716.
constexpr double kLg1 = 0x1.5555555555593p-1;
constexpr double kLg2 = 0x1.999999997fa04p-2;
constexpr double kLg3 = 0x1.2492494229359p-2;
constexpr double kLg4 = 0x1.c71c51d8e78afp-3;
constexpr double kLg5 = 0x1.7466496cb03dep-3;
constexpr double kLg6 = 0x1.39a09d078c69fp-3;
constexpr double kLg7 = 0x1.2f112df3e5244p-3;

// exp: c = r - r^2*(P1 + r^2*(P2 + ...)), |r| <= ln2/2.
constexpr double kP1 = 0x1.5555555555553p-3;
constexpr double kP2 = -0x1.6c16c16bebd93p-9;
constexpr double kP3 = 0x1.1566aaf25de2cp-14;
constexpr double kP4 = -0x1.bbd41c5d26bf1p-20;
constexpr double kP5 = 0x1.6376972bea4d0p-25;
constexpr double kLog2e = 0x1.71547652b82fep+0;
// 1.5 * 2^52: adding and subtracting rounds to the nearest integer
// (ties-to-even) for |t| < 2^51, entirely in double arithmetic.
constexpr double kRoundMagic = 6755399441055744.0;
// exp() overflows above this (largest x with exp(x) finite).
constexpr double kExpOverflow = 709.782712893383973096;

// 2^k for k in [-1022, 1023], built exactly from the exponent field.
inline double Pow2(int64_t k) {
  return std::bit_cast<double>(static_cast<uint64_t>(k + 1023) << 52);
}

// The SVT_MAX_DISPATCH cap, read once per process. Folded into
// DispatchLevelSupported() below so a capped level is indistinguishable
// from a missing one everywhere: auto-detection never picks it AND
// SetDispatchLevel() refuses it — a CI leg running with
// SVT_MAX_DISPATCH=avx2 on AVX-512 hardware therefore exercises the AVX2
// lane even through tests that iterate kAllDispatchLevels themselves.
DispatchLevel EnvDispatchCap() {
  static const DispatchLevel cap =
      ParseDispatchCap(std::getenv("SVT_MAX_DISPATCH"));
  return cap;
}

DispatchLevel DetectDispatchLevel() {
  const char* force = std::getenv("SVT_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return DispatchLevel::kScalar;
  }
  // DispatchLevelSupported embeds the SVT_MAX_DISPATCH cap.
  DispatchLevel best = DispatchLevel::kScalar;
  if (DispatchLevelSupported(DispatchLevel::kAvx2)) {
    best = DispatchLevel::kAvx2;
  }
  if (DispatchLevelSupported(DispatchLevel::kAvx512)) {
    best = DispatchLevel::kAvx512;
  }
  return best;
}

std::atomic<int>& ActiveLevelVar() {
  static std::atomic<int> level{static_cast<int>(DetectDispatchLevel())};
  return level;
}

}  // namespace

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kAvx2:
      return "avx2";
    case DispatchLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool DispatchLevelSupported(DispatchLevel level) {
  // A level above the SVT_MAX_DISPATCH cap reads as unsupported, so both
  // auto-detection and SetDispatchLevel() honor the cap and capped-out
  // halves of cross-dispatch tests skip cleanly.
  if (level > EnvDispatchCap()) return false;
  switch (level) {
    case DispatchLevel::kScalar:
      return true;
    case DispatchLevel::kAvx2:
#if SVT_VECMATH_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case DispatchLevel::kAvx512:
#if SVT_VECMATH_HAVE_AVX512
      // F for the 512-bit kernels, DQ for the exact 64-bit int<->double
      // conversions and the 512-bit pd logic ops, VL for BlockRng's
      // 256-bit rotate variant. One predicate for the whole level keeps
      // "kAvx512 is active" meaning the same thing everywhere.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
  }
  return false;
}

DispatchLevel ParseDispatchCap(const char* value) {
  // Unset/empty means "no cap" (the widest level is the cap).
  if (value == nullptr || value[0] == '\0') return DispatchLevel::kAvx512;
  std::string v(value);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "scalar" || v == "0") return DispatchLevel::kScalar;
  if (v == "avx2" || v == "1") return DispatchLevel::kAvx2;
  if (v == "avx512" || v == "2") return DispatchLevel::kAvx512;
  // A present-but-unrecognized cap must fail loudly: treating a typo
  // ("avx-2", "AVX 2") as "no cap" would silently run the CI dispatch
  // legs uncapped while reporting green.
  SVT_CHECK(false) << "unrecognized SVT_MAX_DISPATCH value \"" << value
                   << "\" (expected scalar/avx2/avx512 or 0/1/2)";
  return DispatchLevel::kAvx512;  // unreachable
}

DispatchLevel ActiveDispatchLevel() {
  return static_cast<DispatchLevel>(
      ActiveLevelVar().load(std::memory_order_relaxed));
}

bool SetDispatchLevel(DispatchLevel level) {
  if (!DispatchLevelSupported(level)) return false;
  ActiveLevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

double Log(double x) {
  uint64_t bits = std::bit_cast<uint64_t>(x);
  int64_t k = 0;
  if (bits < 0x0010000000000000ull || bits >= 0x7FF0000000000000ull) {
    if (bits << 1 == 0) {  // ±0
      return -std::numeric_limits<double>::infinity();
    }
    if (bits >> 63) {  // negative (incl. -inf): domain error
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (bits >= 0x7FF0000000000000ull) {  // +inf, NaN: propagate
      return x;
    }
    // Positive subnormal: prescale exactly into the normal range.
    x *= 0x1p54;
    k = -54;
    bits = std::bit_cast<uint64_t>(x);
  }
  // Normalize the significand into m in [sqrt(1/2), sqrt(2)): adding
  // 0x95F62 to the top of the mantissa field carries into the exponent
  // exactly when the significand is >= sqrt(2), in which case m takes the
  // halved binade (fdlibm's high-word trick, done on the full 64 bits —
  // the constant's low 32 bits are zero, so mantissa bits pass through).
  const uint64_t adj = bits + 0x0009'5F62'0000'0000ull;
  k += static_cast<int64_t>(adj >> 52) - 1023;
  const uint64_t mbits =
      (adj & 0x000F'FFFF'FFFF'FFFFull) + 0x3FE6'A09E'0000'0000ull;
  const double m = std::bit_cast<double>(mbits);

  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t2 + t1;
  const double hfsq = (0.5 * f) * f;
  const double dk = static_cast<double>(k);
  return dk * kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * kLn2Lo)) - f);
}

double Exp(double x) {
  // Outside these bounds the k-split scaling below would leave the double
  // exponent range; the results are exactly +inf / 0 anyway.
  if (std::isnan(x)) return x + x;
  if (x > kExpOverflow) return std::numeric_limits<double>::infinity();
  if (x < -1000.0) return 0.0;  // exp(-745.14) already underflows to 0

  const double t = x * kLog2e;
  const double kd = (t + kRoundMagic) - kRoundMagic;
  const int64_t k = static_cast<int64_t>(kd);
  const double hi = x - kd * kLn2Hi;
  const double lo = kd * kLn2Lo;
  const double r = hi - lo;
  const double z = r * r;
  const double c =
      r - z * (kP1 + z * (kP2 + z * (kP3 + z * (kP4 + z * kP5))));
  const double y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
  // Scale by 2^k in two halves: the first multiply is exact (y ~ 1, k1
  // never reaches the exponent limits), so the second rounds once —
  // correctly — even when the final result is subnormal.
  const int64_t k1 = k >> 1;
  const int64_t k2 = k - k1;
  return y * Pow2(k1) * Pow2(k2);
}

double NegLogUnitPositive(uint64_t word) {
  return -Log(Rng::ToUnitDoublePositive(word));
}

namespace {

// The word-pair → Laplace(mu, b) transform of one element, shared by the
// fused scan kernels' scalar lane and every SIMD lane's sub-width tail.
// Operation for operation the scalar body of LaplaceTransformBlock — the
// fused kernels are *defined* by this composition.
inline double LaplaceNuScalar(uint64_t w_mag, uint64_t w_sign, double mu,
                              double b) {
  const double e = -Log(Rng::ToUnitDoublePositive(w_mag));
  const double be = b * e;
  const uint64_t flip = ~w_sign & 0x8000'0000'0000'0000ull;
  return mu + std::bit_cast<double>(std::bit_cast<uint64_t>(be) ^ flip);
}

// The word → Exponential(b) transform of one element: one raw word per
// variate (no sign word; support [0, +inf)). Operation for operation the
// scalar body of ExponentialTransformBlock — the fused exponential scans
// are *defined* by this composition.
inline double ExpNuScalar(uint64_t word, double b) {
  return b * NegLogUnitPositive(word);
}

// Scalar reference lanes of the four fused sample-and-scan kernels. Each
// starts at element `from` (0 for the dispatch entry points; the SIMD
// lanes delegate their < width tails here, the same rule the unfused
// kernels use). The positive tests are literal transcriptions of the
// streaming comparisons, so hit indices are bit-identical across lanes.

FusedScanHit FusedScanGeScalar(const uint64_t* words, double mu, double b,
                               double bar, size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = LaplaceNuScalar(words[2 * i], words[2 * i + 1], mu, b);
    if (nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedScanSumGeScalar(const uint64_t* words, double mu, double b,
                                  const double* a, double bar, size_t n,
                                  size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = LaplaceNuScalar(words[2 * i], words[2 * i + 1], mu, b);
    if (a[i] + nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedScanGePairwiseScalar(const uint64_t* words, double mu,
                                       double b, const double* bars,
                                       double rho, size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = LaplaceNuScalar(words[2 * i], words[2 * i + 1], mu, b);
    if (nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedScanSumGePairwiseScalar(const uint64_t* words, double mu,
                                          double b, const double* a,
                                          const double* bars, double rho,
                                          size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = LaplaceNuScalar(words[2 * i], words[2 * i + 1], mu, b);
    if (a[i] + nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

// Scalar reference lanes of the exponential-noise fused scans: identical
// structure to the Laplace family above, but one word per variate.

FusedScanHit FusedExpScanGeScalar(const uint64_t* words, double b, double bar,
                                  size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(words[i], b);
    if (nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedExpScanSumGeScalar(const uint64_t* words, double b,
                                     const double* a, double bar, size_t n,
                                     size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(words[i], b);
    if (a[i] + nu >= bar) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedExpScanGePairwiseScalar(const uint64_t* words, double b,
                                          const double* bars, double rho,
                                          size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(words[i], b);
    if (nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

FusedScanHit FusedExpScanSumGePairwiseScalar(const uint64_t* words, double b,
                                             const double* a,
                                             const double* bars, double rho,
                                             size_t n, size_t from) {
  for (size_t i = from; i < n; ++i) {
    const double nu = ExpNuScalar(words[i], b);
    if (a[i] + nu >= bars[i] + rho) return {i, nu};
  }
  return {n, 0.0};
}

}  // namespace

#if SVT_VECMATH_HAVE_AVX2

namespace {

// 4-wide mirrors of Log()/Exp(). Operand order and association replicate
// the scalar lane exactly; _mm256_{add,sub,mul,div}_pd are the same
// correctly-rounded IEEE operations, and no fused ops are used.

// The normal-path log body, shared by LogBlockAvx2 (which adds the
// special-lane patching) and the fused sampling kernel (whose inputs are
// always normal by construction). Inlined into same-target callers.
__attribute__((target("avx2"))) inline __m256d Log4Normal(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d lg1 = _mm256_set1_pd(kLg1), lg2 = _mm256_set1_pd(kLg2),
                lg3 = _mm256_set1_pd(kLg3), lg4 = _mm256_set1_pd(kLg4),
                lg5 = _mm256_set1_pd(kLg5), lg6 = _mm256_set1_pd(kLg6),
                lg7 = _mm256_set1_pd(kLg7);
  const __m256d ln2hi = _mm256_set1_pd(kLn2Hi), ln2lo = _mm256_set1_pd(kLn2Lo);

  const __m256i bits = _mm256_castpd_si256(x);
  const __m256i adj =
      _mm256_add_epi64(bits, _mm256_set1_epi64x(0x0009'5F62'0000'0000ll));
  const __m256i k64 = _mm256_sub_epi64(_mm256_srli_epi64(adj, 52),
                                       _mm256_set1_epi64x(1023));
  const __m256i mbits = _mm256_add_epi64(
      _mm256_and_si256(adj, _mm256_set1_epi64x(0x000F'FFFF'FFFF'FFFFll)),
      _mm256_set1_epi64x(0x3FE6'A09E'0000'0000ll));
  const __m256d m = _mm256_castsi256_pd(mbits);

  const __m256d f = _mm256_sub_pd(m, one);
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(two, f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  const __m256d t1 = _mm256_mul_pd(
      w, _mm256_add_pd(
             lg2, _mm256_mul_pd(w, _mm256_add_pd(lg4, _mm256_mul_pd(w, lg6)))));
  const __m256d t2 = _mm256_mul_pd(
      z, _mm256_add_pd(
             lg1,
             _mm256_mul_pd(
                 w, _mm256_add_pd(
                        lg3, _mm256_mul_pd(
                                 w, _mm256_add_pd(
                                        lg5, _mm256_mul_pd(w, lg7)))))));
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq = _mm256_mul_pd(_mm256_mul_pd(half, f), f);

  // k64 -> packed int32 -> double (k fits in 32 bits).
  const __m256i klo = _mm256_shuffle_epi32(k64, 0xE8);  // [q.lo32 pairs]
  const __m128i k32 =
      _mm256_castsi256_si128(_mm256_permute4x64_epi64(klo, 0x08));
  const __m256d dk = _mm256_cvtepi32_pd(k32);

  // dk*ln2hi - ((hfsq - (s*(hfsq+r) + dk*ln2lo)) - f)
  const __m256d inner = _mm256_add_pd(
      _mm256_mul_pd(s, _mm256_add_pd(hfsq, r)), _mm256_mul_pd(dk, ln2lo));
  return _mm256_sub_pd(_mm256_mul_pd(dk, ln2hi),
                       _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f));
}

__attribute__((target("avx2"))) void LogBlockAvx2(const double* in,
                                                  double* out, size_t n) {
  const __m256d min_normal = _mm256_set1_pd(0x1p-1022);
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(in + i);
    // Fast-path lanes: normal positive finite. Ordered compares reject NaN.
    const __m256d ok = _mm256_and_pd(_mm256_cmp_pd(x, min_normal, _CMP_GE_OQ),
                                     _mm256_cmp_pd(x, inf, _CMP_LT_OQ));
    const __m256d res = Log4Normal(x);
    const int good = _mm256_movemask_pd(ok);
    if (good == 0xF) {
      _mm256_storeu_pd(out + i, res);
    } else {
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, res);
      for (int lane = 0; lane < 4; ++lane) {
        if (!(good & (1 << lane))) tmp[lane] = Log(in[i + lane]);
      }
      _mm256_storeu_pd(out + i, _mm256_load_pd(tmp));
    }
  }
  for (; i < n; ++i) out[i] = Log(in[i]);
}

// (double)v for v < 2^53, lane-wise, without AVX-512's cvtepu64_pd: split
// into 32-bit halves and rebuild through the 2^52 / 2^84 magic constants.
// Every step is exact, so the result is bit-identical to a scalar
// static_cast<double>(v).
__attribute__((target("avx2"))) inline __m256d U53ToDouble(__m256i v) {
  const __m256i lo = _mm256_and_si256(v, _mm256_set1_epi64x(0xFFFFFFFFll));
  const __m256i hi = _mm256_srli_epi64(v, 32);
  const __m256d dlo = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(lo, _mm256_set1_epi64x(0x4330'0000'0000'0000ll))),
      _mm256_set1_pd(0x1p52));
  const __m256d dhi = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(hi, _mm256_set1_epi64x(0x4530'0000'0000'0000ll))),
      _mm256_set1_pd(0x1p84));
  return _mm256_add_pd(dhi, dlo);
}

__attribute__((target("avx2"))) void NegLogUnitPositiveAvx2(
    const uint64_t* words, size_t stride, double* out, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lattice = _mm256_set1_pd(0x1p-53);
  const __m256d neg = _mm256_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i w;
    if (stride == 1) {
      w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    } else {
      // Gather the even qwords of two consecutive vectors: unpacklo pairs
      // them as [w0 w4 w2 w6]; the permute restores index order.
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + 2 * i));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + 2 * i + 4));
      w = _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(v0, v1), 0xD8);
    }
    // u = ((double)(w >> 11) + 1) * 2^-53, the ToUnitDoublePositive map:
    // u in (0, 1], always normal, so the log fast path covers every lane.
    const __m256d d = U53ToDouble(_mm256_srli_epi64(w, 11));
    const __m256d u = _mm256_mul_pd(_mm256_add_pd(d, one), lattice);
    _mm256_storeu_pd(out + i, _mm256_xor_pd(Log4Normal(u), neg));
  }
  for (; i < n; ++i) {
    out[i] = -Log(Rng::ToUnitDoublePositive(words[i * stride]));
  }
}

__attribute__((target("avx2"))) void LaplaceTransformAvx2(
    const uint64_t* words, double mu, double b, double* out, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lattice = _mm256_set1_pd(0x1p-53);
  const __m256d neg = _mm256_set1_pd(-0.0);
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vb = _mm256_set1_pd(b);
  const __m256i sign_bit = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Two loads cover 4 (magnitude, sign) word pairs; unpack + permute
    // split them into index order.
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + 2 * i));
    const __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + 2 * i + 4));
    const __m256i even =
        _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(v0, v1), 0xD8);
    const __m256i odd =
        _mm256_permute4x64_epi64(_mm256_unpackhi_epi64(v0, v1), 0xD8);

    const __m256d d = U53ToDouble(_mm256_srli_epi64(even, 11));
    const __m256d u = _mm256_mul_pd(_mm256_add_pd(d, one), lattice);
    const __m256d e = _mm256_xor_pd(Log4Normal(u), neg);
    const __m256d be = _mm256_mul_pd(vb, e);
    // Sign select: flip be's sign bit where the sign word's bit 63 is 0.
    const __m256d flip =
        _mm256_castsi256_pd(_mm256_andnot_si256(odd, sign_bit));
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(vmu, _mm256_xor_pd(be, flip)));
  }
  for (; i < n; ++i) {
    const double e = -Log(Rng::ToUnitDoublePositive(words[2 * i]));
    const double be = b * e;
    const uint64_t flip = ~words[2 * i + 1] & 0x8000'0000'0000'0000ull;
    out[i] = mu + std::bit_cast<double>(std::bit_cast<uint64_t>(be) ^ flip);
  }
}

__attribute__((target("avx2"))) double MaxBlockAvx2(const double* in,
                                                    size_t n) {
  __m256d acc = _mm256_set1_pd(in[0]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(in + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m = std::max(std::max(lanes[0], lanes[1]),
                      std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::max(m, in[i]);
  return m;
}

__attribute__((target("avx2"))) uint64_t MinWordBlockAvx2(
    const uint64_t* words, size_t stride, size_t n) {
  // Unsigned 64-bit min via the sign-flip trick over cmpgt_epi64.
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  __m256i acc = _mm256_set1_epi64x(static_cast<int64_t>(words[0]));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i w;
    if (stride == 1) {
      w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    } else {
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + 2 * i));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + 2 * i + 4));
      // Min is order-free: no need to restore index order after unpack.
      w = _mm256_unpacklo_epi64(v0, v1);
    }
    const __m256i gt =
        _mm256_cmpgt_epi64(_mm256_xor_si256(acc, flip),
                           _mm256_xor_si256(w, flip));
    acc = _mm256_blendv_epi8(acc, w, gt);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t m = std::min(std::min(lanes[0], lanes[1]),
                        std::min(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::min(m, words[i * stride]);
  return m;
}

__attribute__((target("avx2"))) size_t FindFirstSumGeAvx2(const double* a,
                                                          const double* b,
                                                          double bar,
                                                          size_t n) {
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum =
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (a[i] + b[i] >= bar) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t FindFirstGeAvx2(const double* a,
                                                       double bar, size_t n) {
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(a + i), vbar, _CMP_GE_OQ));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (a[i] >= bar) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t FindFirstGePairwiseAvx2(
    const double* a, const double* bars, double rho, size_t n) {
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(a + i), bar, _CMP_GE_OQ));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (a[i] >= bars[i] + rho) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t FindFirstSumGePairwiseAvx2(
    const double* a, const double* b, const double* bars, double rho,
    size_t n) {
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum =
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if (a[i] + b[i] >= bars[i] + rho) return i;
  }
  return n;
}

// One fused transform step: 4 consecutive (magnitude, sign) word pairs →
// 4 ν values, bit-identical to the operation sequence of
// LaplaceTransformAvx2 — that identity is what makes the fused scans
// bit-identical to the unfused FillUint64 + TransformBlock + FindFirst*
// pipeline. One deliberate register-pressure optimization: `vnb` carries
// -b, so be = (-b)·log(u) replaces the reference's b·(-log(u)) — IEEE
// multiplication computes the sign as the XOR of the operand signs and
// the magnitude independently, so the product is bit-identical while the
// -0.0 constant and its xor drop out of the loop.
__attribute__((target("avx2"))) inline __m256d LaplaceNu4Avx2(
    const uint64_t* word_pairs, __m256d vmu, __m256d vnb) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lattice = _mm256_set1_pd(0x1p-53);
  const __m256i sign_bit = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  const __m256i v0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(word_pairs));
  const __m256i v1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(word_pairs + 4));
  const __m256i even =
      _mm256_permute4x64_epi64(_mm256_unpacklo_epi64(v0, v1), 0xD8);
  const __m256i odd =
      _mm256_permute4x64_epi64(_mm256_unpackhi_epi64(v0, v1), 0xD8);
  const __m256d d = U53ToDouble(_mm256_srli_epi64(even, 11));
  const __m256d u = _mm256_mul_pd(_mm256_add_pd(d, one), lattice);
  const __m256d be = _mm256_mul_pd(vnb, Log4Normal(u));
  const __m256d flip = _mm256_castsi256_pd(_mm256_andnot_si256(odd, sign_bit));
  return _mm256_add_pd(vmu, _mm256_xor_pd(be, flip));
}

// Extracts the hit from a nonzero compare mask: lane index + that lane's ν.
__attribute__((target("avx2"))) inline FusedScanHit FusedHitAvx2(
    size_t i, int mask, __m256d nu) {
  const int lane = __builtin_ctz(static_cast<unsigned>(mask));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, nu);
  return {i + static_cast<size_t>(lane), lanes[lane]};
}

__attribute__((target("avx2"))) FusedScanHit FusedLaplaceScanGeAvx2(
    const uint64_t* words, double mu, double b, double bar, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = LaplaceNu4Avx2(words + 2 * i, vmu, vnb);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(nu, vbar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedScanGeScalar(words, mu, b, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedLaplaceScanSumGeAvx2(
    const uint64_t* words, double mu, double b, const double* a, double bar,
    size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = LaplaceNu4Avx2(words + 2 * i, vmu, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedScanSumGeScalar(words, mu, b, a, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedLaplaceScanGePairwiseAvx2(
    const uint64_t* words, double mu, double b, const double* bars,
    double rho, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = LaplaceNu4Avx2(words + 2 * i, vmu, vnb);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(nu, bar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedScanGePairwiseScalar(words, mu, b, bars, rho, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedLaplaceScanSumGePairwiseAvx2(
    const uint64_t* words, double mu, double b, const double* a,
    const double* bars, double rho, size_t n) {
  const __m256d vmu = _mm256_set1_pd(mu);
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = LaplaceNu4Avx2(words + 2 * i, vmu, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedScanSumGePairwiseScalar(words, mu, b, a, bars, rho, n, i);
}

// One fused exponential transform step: 4 consecutive raw words → 4 ν
// values, ν = b·(-log u). `vnb` carries -b so the body computes
// (-b)·log(u), bit-identical to the reference's b·(-log(u)) for the same
// reason as LaplaceNu4Avx2 (IEEE multiply: sign = xor of operand signs,
// magnitude independent of them). One word per variate, so the load is a
// plain stride-1 vector load — no unpack/permute.
__attribute__((target("avx2"))) inline __m256d ExpNu4Avx2(
    const uint64_t* words, __m256d vnb) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d lattice = _mm256_set1_pd(0x1p-53);
  const __m256i w =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words));
  const __m256d d = U53ToDouble(_mm256_srli_epi64(w, 11));
  const __m256d u = _mm256_mul_pd(_mm256_add_pd(d, one), lattice);
  return _mm256_mul_pd(vnb, Log4Normal(u));
}

__attribute__((target("avx2"))) void ExponentialTransformAvx2(
    const uint64_t* words, double b, double* out, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, ExpNu4Avx2(words + i, vnb));
  }
  for (; i < n; ++i) out[i] = ExpNuScalar(words[i], b);
}

__attribute__((target("avx2"))) FusedScanHit FusedExpScanGeAvx2(
    const uint64_t* words, double b, double bar, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = ExpNu4Avx2(words + i, vnb);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(nu, vbar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedExpScanGeScalar(words, b, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedExpScanSumGeAvx2(
    const uint64_t* words, double b, const double* a, double bar, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vbar = _mm256_set1_pd(bar);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = ExpNu4Avx2(words + i, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, vbar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedExpScanSumGeScalar(words, b, a, bar, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedExpScanGePairwiseAvx2(
    const uint64_t* words, double b, const double* bars, double rho,
    size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = ExpNu4Avx2(words + i, vnb);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(nu, bar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedExpScanGePairwiseScalar(words, b, bars, rho, n, i);
}

__attribute__((target("avx2"))) FusedScanHit FusedExpScanSumGePairwiseAvx2(
    const uint64_t* words, double b, const double* a, const double* bars,
    double rho, size_t n) {
  const __m256d vnb = _mm256_set1_pd(-b);
  const __m256d vrho = _mm256_set1_pd(rho);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nu = ExpNu4Avx2(words + i, vnb);
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(a + i), nu);
    const __m256d bar = _mm256_add_pd(_mm256_loadu_pd(bars + i), vrho);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(sum, bar, _CMP_GE_OQ));
    if (mask != 0) return FusedHitAvx2(i, mask, nu);
  }
  return FusedExpScanSumGePairwiseScalar(words, b, a, bars, rho, n, i);
}

__attribute__((target("avx2"))) void ExpBlockAvx2(const double* in,
                                                  double* out, size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF'FFFF'FFFF'FFFFll));
  const __m256d dom = _mm256_set1_pd(700.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d log2e = _mm256_set1_pd(kLog2e);
  const __m256d magic = _mm256_set1_pd(kRoundMagic);
  const __m256d ln2hi = _mm256_set1_pd(kLn2Hi), ln2lo = _mm256_set1_pd(kLn2Lo);
  const __m256d p1 = _mm256_set1_pd(kP1), p2 = _mm256_set1_pd(kP2),
                p3 = _mm256_set1_pd(kP3), p4 = _mm256_set1_pd(kP4),
                p5 = _mm256_set1_pd(kP5);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(in + i);
    // Fast path: |x| <= 700 (k-split scaling stays in the exponent range,
    // results stay clear of overflow/underflow). NaN fails the compare.
    const __m256d ok =
        _mm256_cmp_pd(_mm256_and_pd(x, abs_mask), dom, _CMP_LE_OQ);

    const __m256d t = _mm256_mul_pd(x, log2e);
    const __m256d kd =
        _mm256_sub_pd(_mm256_add_pd(t, magic), magic);
    const __m128i ki = _mm256_cvtpd_epi32(kd);  // exact: kd is integral

    const __m256d hi = _mm256_sub_pd(x, _mm256_mul_pd(kd, ln2hi));
    const __m256d lo = _mm256_mul_pd(kd, ln2lo);
    const __m256d r = _mm256_sub_pd(hi, lo);
    const __m256d z = _mm256_mul_pd(r, r);
    const __m256d c = _mm256_sub_pd(
        r,
        _mm256_mul_pd(
            z,
            _mm256_add_pd(
                p1,
                _mm256_mul_pd(
                    z,
                    _mm256_add_pd(
                        p2,
                        _mm256_mul_pd(
                            z, _mm256_add_pd(
                                   p3, _mm256_mul_pd(
                                           z, _mm256_add_pd(
                                                  p4,
                                                  _mm256_mul_pd(z, p5))))))))));
    // y = 1 - ((lo - (r*c)/(2-c)) - hi)
    const __m256d y = _mm256_sub_pd(
        one,
        _mm256_sub_pd(
            _mm256_sub_pd(
                lo, _mm256_div_pd(_mm256_mul_pd(r, c), _mm256_sub_pd(two, c))),
            hi));

    // Scale by 2^k1 * 2^k2, k1 = k>>1 (arithmetic), k2 = k - k1.
    const __m128i k1 = _mm_srai_epi32(ki, 1);
    const __m128i k2 = _mm_sub_epi32(ki, k1);
    const __m256i e1 = _mm256_slli_epi64(
        _mm256_add_epi64(_mm256_cvtepi32_epi64(k1),
                         _mm256_set1_epi64x(1023)),
        52);
    const __m256i e2 = _mm256_slli_epi64(
        _mm256_add_epi64(_mm256_cvtepi32_epi64(k2),
                         _mm256_set1_epi64x(1023)),
        52);
    const __m256d res = _mm256_mul_pd(
        _mm256_mul_pd(y, _mm256_castsi256_pd(e1)), _mm256_castsi256_pd(e2));

    const int good = _mm256_movemask_pd(ok);
    if (good == 0xF) {
      _mm256_storeu_pd(out + i, res);
    } else {
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, res);
      for (int lane = 0; lane < 4; ++lane) {
        if (!(good & (1 << lane))) tmp[lane] = Exp(in[i + lane]);
      }
      _mm256_storeu_pd(out + i, _mm256_load_pd(tmp));
    }
  }
  for (; i < n; ++i) out[i] = Exp(in[i]);
}

}  // namespace

#endif  // SVT_VECMATH_HAVE_AVX2

#if SVT_VECMATH_HAVE_AVX512

// GCC's AVX-512 intrinsic headers initialize "undefined" vectors with a
// self-read (`__m512i __Y = __Y;`), which -Wmaybe-uninitialized flags
// through inlining on GCC 12. Header-internal false positive; silence it
// for this lane only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace {

// 8-wide mirrors of Log()/Exp() and the fused kernels. Operand order and
// association replicate the scalar lane exactly; _mm512_{add,sub,mul,div}_pd
// are the same correctly-rounded IEEE operations, and no fused ops are
// used. Integer<->double conversions go through AVX-512DQ's exact
// instructions (the values involved always fit in 53 bits).

__attribute__((target("avx512f,avx512dq"))) inline __m512d Log8Normal(
    __m512d x) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d two = _mm512_set1_pd(2.0);
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d lg1 = _mm512_set1_pd(kLg1), lg2 = _mm512_set1_pd(kLg2),
                lg3 = _mm512_set1_pd(kLg3), lg4 = _mm512_set1_pd(kLg4),
                lg5 = _mm512_set1_pd(kLg5), lg6 = _mm512_set1_pd(kLg6),
                lg7 = _mm512_set1_pd(kLg7);
  const __m512d ln2hi = _mm512_set1_pd(kLn2Hi), ln2lo = _mm512_set1_pd(kLn2Lo);

  const __m512i bits = _mm512_castpd_si512(x);
  const __m512i adj =
      _mm512_add_epi64(bits, _mm512_set1_epi64(0x0009'5F62'0000'0000ll));
  const __m512i k64 = _mm512_sub_epi64(_mm512_srli_epi64(adj, 52),
                                       _mm512_set1_epi64(1023));
  const __m512i mbits = _mm512_add_epi64(
      _mm512_and_si512(adj, _mm512_set1_epi64(0x000F'FFFF'FFFF'FFFFll)),
      _mm512_set1_epi64(0x3FE6'A09E'0000'0000ll));
  const __m512d m = _mm512_castsi512_pd(mbits);

  const __m512d f = _mm512_sub_pd(m, one);
  const __m512d s = _mm512_div_pd(f, _mm512_add_pd(two, f));
  const __m512d z = _mm512_mul_pd(s, s);
  const __m512d w = _mm512_mul_pd(z, z);
  const __m512d t1 = _mm512_mul_pd(
      w, _mm512_add_pd(
             lg2, _mm512_mul_pd(w, _mm512_add_pd(lg4, _mm512_mul_pd(w, lg6)))));
  const __m512d t2 = _mm512_mul_pd(
      z, _mm512_add_pd(
             lg1,
             _mm512_mul_pd(
                 w, _mm512_add_pd(
                        lg3, _mm512_mul_pd(
                                 w, _mm512_add_pd(
                                        lg5, _mm512_mul_pd(w, lg7)))))));
  const __m512d r = _mm512_add_pd(t2, t1);
  const __m512d hfsq = _mm512_mul_pd(_mm512_mul_pd(half, f), f);
  // Exact int64 -> double (|k| <= ~1100): same value the AVX2 lane builds
  // from 32-bit halves.
  const __m512d dk = _mm512_cvtepi64_pd(k64);

  // dk*ln2hi - ((hfsq - (s*(hfsq+r) + dk*ln2lo)) - f)
  const __m512d inner = _mm512_add_pd(
      _mm512_mul_pd(s, _mm512_add_pd(hfsq, r)), _mm512_mul_pd(dk, ln2lo));
  return _mm512_sub_pd(_mm512_mul_pd(dk, ln2hi),
                       _mm512_sub_pd(_mm512_sub_pd(hfsq, inner), f));
}

__attribute__((target("avx512f,avx512dq"))) void LogBlockAvx512(
    const double* in, double* out, size_t n) {
  const __m512d min_normal = _mm512_set1_pd(0x1p-1022);
  const __m512d inf = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(in + i);
    // Fast-path lanes: normal positive finite. Ordered compares reject NaN.
    const __mmask8 good =
        _mm512_cmp_pd_mask(x, min_normal, _CMP_GE_OQ) &
        _mm512_cmp_pd_mask(x, inf, _CMP_LT_OQ);
    const __m512d res = Log8Normal(x);
    if (good == 0xFF) {
      _mm512_storeu_pd(out + i, res);
    } else {
      alignas(64) double tmp[8];
      _mm512_store_pd(tmp, res);
      for (int lane = 0; lane < 8; ++lane) {
        if (!(good & (1 << lane))) tmp[lane] = Log(in[i + lane]);
      }
      _mm512_storeu_pd(out + i, _mm512_load_pd(tmp));
    }
  }
  for (; i < n; ++i) out[i] = Log(in[i]);
}

// Gather indices for splitting 4 consecutive (even, odd) qword pairs
// spread over two 512-bit vectors back into index order.
__attribute__((target("avx512f,avx512dq"))) inline __m512i EvenIdx512() {
  return _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
}
__attribute__((target("avx512f,avx512dq"))) inline __m512i OddIdx512() {
  return _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
}

__attribute__((target("avx512f,avx512dq"))) void NegLogUnitPositiveAvx512(
    const uint64_t* words, size_t stride, double* out, size_t n) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d lattice = _mm512_set1_pd(0x1p-53);
  const __m512d neg = _mm512_set1_pd(-0.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w;
    if (stride == 1) {
      w = _mm512_loadu_si512(words + i);
    } else {
      const __m512i v0 = _mm512_loadu_si512(words + 2 * i);
      const __m512i v1 = _mm512_loadu_si512(words + 2 * i + 8);
      w = _mm512_permutex2var_epi64(v0, EvenIdx512(), v1);
    }
    // u = ((double)(w >> 11) + 1) * 2^-53, the ToUnitDoublePositive map:
    // u in (0, 1], always normal, so the log fast path covers every lane.
    const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(w, 11));
    const __m512d u = _mm512_mul_pd(_mm512_add_pd(d, one), lattice);
    _mm512_storeu_pd(out + i, _mm512_xor_pd(Log8Normal(u), neg));
  }
  for (; i < n; ++i) {
    out[i] = -Log(Rng::ToUnitDoublePositive(words[i * stride]));
  }
}

__attribute__((target("avx512f,avx512dq"))) void LaplaceTransformAvx512(
    const uint64_t* words, double mu, double b, double* out, size_t n) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d lattice = _mm512_set1_pd(0x1p-53);
  const __m512d neg = _mm512_set1_pd(-0.0);
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vb = _mm512_set1_pd(b);
  const __m512i sign_bit = _mm512_set1_epi64(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v0 = _mm512_loadu_si512(words + 2 * i);
    const __m512i v1 = _mm512_loadu_si512(words + 2 * i + 8);
    const __m512i even = _mm512_permutex2var_epi64(v0, EvenIdx512(), v1);
    const __m512i odd = _mm512_permutex2var_epi64(v0, OddIdx512(), v1);

    const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(even, 11));
    const __m512d u = _mm512_mul_pd(_mm512_add_pd(d, one), lattice);
    const __m512d e = _mm512_xor_pd(Log8Normal(u), neg);
    const __m512d be = _mm512_mul_pd(vb, e);
    // Sign select: flip be's sign bit where the sign word's bit 63 is 0.
    const __m512d flip =
        _mm512_castsi512_pd(_mm512_andnot_si512(odd, sign_bit));
    _mm512_storeu_pd(out + i,
                     _mm512_add_pd(vmu, _mm512_xor_pd(be, flip)));
  }
  for (; i < n; ++i) {
    const double e = -Log(Rng::ToUnitDoublePositive(words[2 * i]));
    const double be = b * e;
    const uint64_t flip = ~words[2 * i + 1] & 0x8000'0000'0000'0000ull;
    out[i] = mu + std::bit_cast<double>(std::bit_cast<uint64_t>(be) ^ flip);
  }
}

__attribute__((target("avx512f,avx512dq"))) double MaxBlockAvx512(
    const double* in, size_t n) {
  __m512d acc = _mm512_set1_pd(in[0]);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_max_pd(acc, _mm512_loadu_pd(in + i));
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double m = lanes[0];
  for (int lane = 1; lane < 8; ++lane) m = std::max(m, lanes[lane]);
  for (; i < n; ++i) m = std::max(m, in[i]);
  return m;
}

__attribute__((target("avx512f,avx512dq"))) uint64_t MinWordBlockAvx512(
    const uint64_t* words, size_t stride, size_t n) {
  __m512i acc = _mm512_set1_epi64(static_cast<int64_t>(words[0]));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i w;
    if (stride == 1) {
      w = _mm512_loadu_si512(words + i);
    } else {
      const __m512i v0 = _mm512_loadu_si512(words + 2 * i);
      const __m512i v1 = _mm512_loadu_si512(words + 2 * i + 8);
      w = _mm512_permutex2var_epi64(v0, EvenIdx512(), v1);
    }
    acc = _mm512_min_epu64(acc, w);
  }
  alignas(64) uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  uint64_t m = lanes[0];
  for (int lane = 1; lane < 8; ++lane) m = std::min(m, lanes[lane]);
  for (; i < n; ++i) m = std::min(m, words[i * stride]);
  return m;
}

__attribute__((target("avx512f,avx512dq"))) size_t FindFirstSumGeAvx512(
    const double* a, const double* b, double bar, size_t n) {
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d sum =
        _mm512_add_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] + b[i] >= bar) return i;
  }
  return n;
}

__attribute__((target("avx512f,avx512dq"))) size_t FindFirstGeAvx512(
    const double* a, double bar, size_t n) {
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 mask =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(a + i), vbar, _CMP_GE_OQ);
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] >= bar) return i;
  }
  return n;
}

__attribute__((target("avx512f,avx512dq"))) size_t FindFirstGePairwiseAvx512(
    const double* a, const double* bars, double rho, size_t n) {
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(a + i), bar, _CMP_GE_OQ);
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] >= bars[i] + rho) return i;
  }
  return n;
}

__attribute__((target("avx512f,avx512dq"))) size_t
FindFirstSumGePairwiseAvx512(const double* a, const double* b,
                             const double* bars, double rho, size_t n) {
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d sum =
        _mm512_add_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (a[i] + b[i] >= bars[i] + rho) return i;
  }
  return n;
}

// 8-wide fused transform step, mirroring LaplaceTransformAvx512 operation
// for operation, with the same bit-identical (-b)·log(u) fold as
// LaplaceNu4Avx2 (see there for why both identities hold).
__attribute__((target("avx512f,avx512dq"))) inline __m512d LaplaceNu8Avx512(
    const uint64_t* word_pairs, __m512d vmu, __m512d vnb) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d lattice = _mm512_set1_pd(0x1p-53);
  const __m512i sign_bit = _mm512_set1_epi64(
      static_cast<int64_t>(0x8000'0000'0000'0000ull));
  const __m512i v0 = _mm512_loadu_si512(word_pairs);
  const __m512i v1 = _mm512_loadu_si512(word_pairs + 8);
  const __m512i even = _mm512_permutex2var_epi64(v0, EvenIdx512(), v1);
  const __m512i odd = _mm512_permutex2var_epi64(v0, OddIdx512(), v1);
  const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(even, 11));
  const __m512d u = _mm512_mul_pd(_mm512_add_pd(d, one), lattice);
  const __m512d be = _mm512_mul_pd(vnb, Log8Normal(u));
  const __m512d flip = _mm512_castsi512_pd(_mm512_andnot_si512(odd, sign_bit));
  return _mm512_add_pd(vmu, _mm512_xor_pd(be, flip));
}

__attribute__((target("avx512f,avx512dq"))) inline FusedScanHit FusedHitAvx512(
    size_t i, __mmask8 mask, __m512d nu) {
  const int lane = __builtin_ctz(static_cast<unsigned>(mask));
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, nu);
  return {i + static_cast<size_t>(lane), lanes[lane]};
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedLaplaceScanGeAvx512(const uint64_t* words, double mu, double b,
                         double bar, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = LaplaceNu8Avx512(words + 2 * i, vmu, vnb);
    const __mmask8 mask = _mm512_cmp_pd_mask(nu, vbar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedScanGeScalar(words, mu, b, bar, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedLaplaceScanSumGeAvx512(const uint64_t* words, double mu, double b,
                            const double* a, double bar, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  // Deliberately not unrolled: the single 8-wide body keeps every
  // polynomial constant register-resident — a 2× unroll was measured to
  // push GCC into re-broadcasting ~15 constants per iteration, costing
  // more than the second div chain bought.
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = LaplaceNu8Avx512(words + 2 * i, vmu, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedScanSumGeScalar(words, mu, b, a, bar, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedLaplaceScanGePairwiseAvx512(const uint64_t* words, double mu, double b,
                                 const double* bars, double rho, size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = LaplaceNu8Avx512(words + 2 * i, vmu, vnb);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(nu, bar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedScanGePairwiseScalar(words, mu, b, bars, rho, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedLaplaceScanSumGePairwiseAvx512(const uint64_t* words, double mu,
                                    double b, const double* a,
                                    const double* bars, double rho,
                                    size_t n) {
  const __m512d vmu = _mm512_set1_pd(mu);
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  // Not unrolled — see FusedLaplaceScanSumGeAvx512 (register pressure).
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = LaplaceNu8Avx512(words + 2 * i, vmu, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedScanSumGePairwiseScalar(words, mu, b, a, bars, rho, n, i);
}

// 8-wide fused exponential transform step, mirroring ExpNu4Avx2 (see there
// for the bit-identical (-b)·log(u) fold). Stride-1 word load.
__attribute__((target("avx512f,avx512dq"))) inline __m512d ExpNu8Avx512(
    const uint64_t* words, __m512d vnb) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d lattice = _mm512_set1_pd(0x1p-53);
  const __m512i w = _mm512_loadu_si512(words);
  const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(w, 11));
  const __m512d u = _mm512_mul_pd(_mm512_add_pd(d, one), lattice);
  return _mm512_mul_pd(vnb, Log8Normal(u));
}

__attribute__((target("avx512f,avx512dq"))) void ExponentialTransformAvx512(
    const uint64_t* words, double b, double* out, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i, ExpNu8Avx512(words + i, vnb));
  }
  for (; i < n; ++i) out[i] = ExpNuScalar(words[i], b);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit FusedExpScanGeAvx512(
    const uint64_t* words, double b, double bar, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = ExpNu8Avx512(words + i, vnb);
    const __mmask8 mask = _mm512_cmp_pd_mask(nu, vbar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedExpScanGeScalar(words, b, bar, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedExpScanSumGeAvx512(const uint64_t* words, double b, const double* a,
                        double bar, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vbar = _mm512_set1_pd(bar);
  size_t i = 0;
  // Not unrolled — see FusedLaplaceScanSumGeAvx512 (register pressure).
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = ExpNu8Avx512(words + i, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, vbar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedExpScanSumGeScalar(words, b, a, bar, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedExpScanGePairwiseAvx512(const uint64_t* words, double b,
                             const double* bars, double rho, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = ExpNu8Avx512(words + i, vnb);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(nu, bar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedExpScanGePairwiseScalar(words, b, bars, rho, n, i);
}

__attribute__((target("avx512f,avx512dq"))) FusedScanHit
FusedExpScanSumGePairwiseAvx512(const uint64_t* words, double b,
                                const double* a, const double* bars,
                                double rho, size_t n) {
  const __m512d vnb = _mm512_set1_pd(-b);
  const __m512d vrho = _mm512_set1_pd(rho);
  size_t i = 0;
  // Not unrolled — see FusedLaplaceScanSumGeAvx512 (register pressure).
  for (; i + 8 <= n; i += 8) {
    const __m512d nu = ExpNu8Avx512(words + i, vnb);
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(a + i), nu);
    const __m512d bar = _mm512_add_pd(_mm512_loadu_pd(bars + i), vrho);
    const __mmask8 mask = _mm512_cmp_pd_mask(sum, bar, _CMP_GE_OQ);
    if (mask != 0) return FusedHitAvx512(i, mask, nu);
  }
  return FusedExpScanSumGePairwiseScalar(words, b, a, bars, rho, n, i);
}

__attribute__((target("avx512f,avx512dq"))) void ExpBlockAvx512(
    const double* in, double* out, size_t n) {
  const __m512d abs_mask =
      _mm512_castsi512_pd(_mm512_set1_epi64(0x7FFF'FFFF'FFFF'FFFFll));
  const __m512d dom = _mm512_set1_pd(700.0);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d two = _mm512_set1_pd(2.0);
  const __m512d log2e = _mm512_set1_pd(kLog2e);
  const __m512d magic = _mm512_set1_pd(kRoundMagic);
  const __m512d ln2hi = _mm512_set1_pd(kLn2Hi), ln2lo = _mm512_set1_pd(kLn2Lo);
  const __m512d p1 = _mm512_set1_pd(kP1), p2 = _mm512_set1_pd(kP2),
                p3 = _mm512_set1_pd(kP3), p4 = _mm512_set1_pd(kP4),
                p5 = _mm512_set1_pd(kP5);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(in + i);
    // Fast path: |x| <= 700 (k-split scaling stays in the exponent range,
    // results stay clear of overflow/underflow). NaN fails the compare.
    const __mmask8 good =
        _mm512_cmp_pd_mask(_mm512_and_pd(x, abs_mask), dom, _CMP_LE_OQ);

    const __m512d t = _mm512_mul_pd(x, log2e);
    const __m512d kd = _mm512_sub_pd(_mm512_add_pd(t, magic), magic);
    const __m512i ki = _mm512_cvtpd_epi64(kd);  // exact: kd is integral

    const __m512d hi = _mm512_sub_pd(x, _mm512_mul_pd(kd, ln2hi));
    const __m512d lo = _mm512_mul_pd(kd, ln2lo);
    const __m512d r = _mm512_sub_pd(hi, lo);
    const __m512d z = _mm512_mul_pd(r, r);
    const __m512d c = _mm512_sub_pd(
        r,
        _mm512_mul_pd(
            z,
            _mm512_add_pd(
                p1,
                _mm512_mul_pd(
                    z,
                    _mm512_add_pd(
                        p2,
                        _mm512_mul_pd(
                            z, _mm512_add_pd(
                                   p3, _mm512_mul_pd(
                                           z, _mm512_add_pd(
                                                  p4,
                                                  _mm512_mul_pd(z, p5))))))))));
    // y = 1 - ((lo - (r*c)/(2-c)) - hi)
    const __m512d y = _mm512_sub_pd(
        one,
        _mm512_sub_pd(
            _mm512_sub_pd(
                lo, _mm512_div_pd(_mm512_mul_pd(r, c), _mm512_sub_pd(two, c))),
            hi));

    // Scale by 2^k1 * 2^k2, k1 = k>>1 (arithmetic), k2 = k - k1.
    const __m512i k1 = _mm512_srai_epi64(ki, 1);
    const __m512i k2 = _mm512_sub_epi64(ki, k1);
    const __m512i e1 = _mm512_slli_epi64(
        _mm512_add_epi64(k1, _mm512_set1_epi64(1023)), 52);
    const __m512i e2 = _mm512_slli_epi64(
        _mm512_add_epi64(k2, _mm512_set1_epi64(1023)), 52);
    const __m512d res = _mm512_mul_pd(
        _mm512_mul_pd(y, _mm512_castsi512_pd(e1)), _mm512_castsi512_pd(e2));

    if (good == 0xFF) {
      _mm512_storeu_pd(out + i, res);
    } else {
      alignas(64) double tmp[8];
      _mm512_store_pd(tmp, res);
      for (int lane = 0; lane < 8; ++lane) {
        if (!(good & (1 << lane))) tmp[lane] = Exp(in[i + lane]);
      }
      _mm512_storeu_pd(out + i, _mm512_load_pd(tmp));
    }
  }
  for (; i < n; ++i) out[i] = Exp(in[i]);
}

}  // namespace

#pragma GCC diagnostic pop

#endif  // SVT_VECMATH_HAVE_AVX512

void LogBlock(std::span<const double> in, std::span<double> out) {
  SVT_CHECK(in.size() == out.size())
      << "LogBlock size mismatch: " << in.size() << " vs " << out.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    LogBlockAvx512(in.data(), out.data(), in.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    LogBlockAvx2(in.data(), out.data(), in.size());
    return;
  }
#endif
  for (size_t i = 0; i < in.size(); ++i) out[i] = Log(in[i]);
}

void ExpBlock(std::span<const double> in, std::span<double> out) {
  SVT_CHECK(in.size() == out.size())
      << "ExpBlock size mismatch: " << in.size() << " vs " << out.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    ExpBlockAvx512(in.data(), out.data(), in.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    ExpBlockAvx2(in.data(), out.data(), in.size());
    return;
  }
#endif
  for (size_t i = 0; i < in.size(); ++i) out[i] = Exp(in[i]);
}

void NegLogUnitPositiveBlock(std::span<const uint64_t> words, size_t stride,
                             std::span<double> out) {
  SVT_CHECK(stride == 1 || stride == 2)
      << "NegLogUnitPositiveBlock stride must be 1 or 2, got " << stride;
  SVT_CHECK(words.size() == stride * out.size())
      << "NegLogUnitPositiveBlock size mismatch: " << words.size()
      << " words for " << out.size() << " outputs at stride " << stride;
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    NegLogUnitPositiveAvx512(words.data(), stride, out.data(), out.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    NegLogUnitPositiveAvx2(words.data(), stride, out.data(), out.size());
    return;
  }
#endif
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = -Log(Rng::ToUnitDoublePositive(words[i * stride]));
  }
}

void LaplaceTransformBlock(std::span<const uint64_t> words, double mu,
                           double b, std::span<double> out) {
  SVT_CHECK(words.size() == 2 * out.size())
      << "LaplaceTransformBlock size mismatch: " << words.size()
      << " words for " << out.size() << " outputs";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    LaplaceTransformAvx512(words.data(), mu, b, out.data(), out.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    LaplaceTransformAvx2(words.data(), mu, b, out.data(), out.size());
    return;
  }
#endif
  for (size_t i = 0; i < out.size(); ++i) {
    const double e = -Log(Rng::ToUnitDoublePositive(words[2 * i]));
    const double be = b * e;
    const uint64_t flip = ~words[2 * i + 1] & 0x8000'0000'0000'0000ull;
    out[i] = mu + std::bit_cast<double>(std::bit_cast<uint64_t>(be) ^ flip);
  }
}

double MaxBlock(std::span<const double> in) {
  SVT_CHECK(!in.empty()) << "MaxBlock requires at least one element";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return MaxBlockAvx512(in.data(), in.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return MaxBlockAvx2(in.data(), in.size());
  }
#endif
  double m = in[0];
  for (double x : in) m = std::max(m, x);
  return m;
}

uint64_t MinWordBlock(std::span<const uint64_t> words, size_t stride) {
  SVT_CHECK(stride == 1 || stride == 2)
      << "MinWordBlock stride must be 1 or 2, got " << stride;
  SVT_CHECK(!words.empty() && words.size() % stride == 0)
      << "MinWordBlock needs a non-empty multiple of stride, got "
      << words.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return MinWordBlockAvx512(words.data(), stride, words.size() / stride);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return MinWordBlockAvx2(words.data(), stride, words.size() / stride);
  }
#endif
  uint64_t m = words[0];
  for (size_t i = 0; i < words.size(); i += stride) {
    m = std::min(m, words[i]);
  }
  return m;
}

size_t FindFirstSumGe(std::span<const double> a, std::span<const double> b,
                      double bar) {
  SVT_CHECK(a.size() == b.size())
      << "FindFirstSumGe size mismatch: " << a.size() << " vs " << b.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FindFirstSumGeAvx512(a.data(), b.data(), bar, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FindFirstSumGeAvx2(a.data(), b.data(), bar, a.size());
  }
#endif
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] + b[i] >= bar) return i;
  }
  return a.size();
}

size_t FindFirstGe(std::span<const double> a, double bar) {
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FindFirstGeAvx512(a.data(), bar, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FindFirstGeAvx2(a.data(), bar, a.size());
  }
#endif
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= bar) return i;
  }
  return a.size();
}


size_t FindFirstGePairwise(std::span<const double> a,
                           std::span<const double> bars, double rho) {
  SVT_CHECK(a.size() == bars.size())
      << "FindFirstGePairwise size mismatch: " << a.size() << " vs "
      << bars.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FindFirstGePairwiseAvx512(a.data(), bars.data(), rho, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FindFirstGePairwiseAvx2(a.data(), bars.data(), rho, a.size());
  }
#endif
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= bars[i] + rho) return i;
  }
  return a.size();
}

size_t FindFirstSumGePairwise(std::span<const double> a,
                              std::span<const double> b,
                              std::span<const double> bars, double rho) {
  SVT_CHECK(a.size() == b.size() && a.size() == bars.size())
      << "FindFirstSumGePairwise size mismatch: " << a.size() << " vs "
      << b.size() << " vs " << bars.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FindFirstSumGePairwiseAvx512(a.data(), b.data(), bars.data(), rho,
                                        a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FindFirstSumGePairwiseAvx2(a.data(), b.data(), bars.data(), rho,
                                      a.size());
  }
#endif
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] + b[i] >= bars[i] + rho) return i;
  }
  return a.size();
}

FusedScanHit FusedLaplaceScanGe(std::span<const uint64_t> words, double mu,
                                double b, double bar) {
  SVT_CHECK(words.size() % 2 == 0)
      << "FusedLaplaceScanGe needs (magnitude, sign) word pairs, got "
      << words.size() << " words";
  const size_t n = words.size() / 2;
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedLaplaceScanGeAvx512(words.data(), mu, b, bar, n);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedLaplaceScanGeAvx2(words.data(), mu, b, bar, n);
  }
#endif
  return FusedScanGeScalar(words.data(), mu, b, bar, n, 0);
}

FusedScanHit FusedLaplaceScanSumGe(std::span<const uint64_t> words, double mu,
                                   double b, std::span<const double> a,
                                   double bar) {
  SVT_CHECK(words.size() == 2 * a.size())
      << "FusedLaplaceScanSumGe size mismatch: " << words.size()
      << " words for " << a.size() << " answers";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedLaplaceScanSumGeAvx512(words.data(), mu, b, a.data(), bar,
                                       a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedLaplaceScanSumGeAvx2(words.data(), mu, b, a.data(), bar,
                                     a.size());
  }
#endif
  return FusedScanSumGeScalar(words.data(), mu, b, a.data(), bar, a.size(),
                              0);
}

FusedScanHit FusedLaplaceScanGePairwise(std::span<const uint64_t> words,
                                        double mu, double b,
                                        std::span<const double> bars,
                                        double rho) {
  SVT_CHECK(words.size() == 2 * bars.size())
      << "FusedLaplaceScanGePairwise size mismatch: " << words.size()
      << " words for " << bars.size() << " bars";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedLaplaceScanGePairwiseAvx512(words.data(), mu, b, bars.data(),
                                            rho, bars.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedLaplaceScanGePairwiseAvx2(words.data(), mu, b, bars.data(),
                                          rho, bars.size());
  }
#endif
  return FusedScanGePairwiseScalar(words.data(), mu, b, bars.data(), rho,
                                   bars.size(), 0);
}

FusedScanHit FusedLaplaceScanSumGePairwise(std::span<const uint64_t> words,
                                           double mu, double b,
                                           std::span<const double> a,
                                           std::span<const double> bars,
                                           double rho) {
  SVT_CHECK(words.size() == 2 * a.size() && a.size() == bars.size())
      << "FusedLaplaceScanSumGePairwise size mismatch: " << words.size()
      << " words for " << a.size() << " answers and " << bars.size()
      << " bars";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedLaplaceScanSumGePairwiseAvx512(
        words.data(), mu, b, a.data(), bars.data(), rho, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedLaplaceScanSumGePairwiseAvx2(words.data(), mu, b, a.data(),
                                             bars.data(), rho, a.size());
  }
#endif
  return FusedScanSumGePairwiseScalar(words.data(), mu, b, a.data(),
                                      bars.data(), rho, a.size(), 0);
}

void ExponentialTransformBlock(std::span<const uint64_t> words, double b,
                               std::span<double> out) {
  SVT_CHECK(words.size() == out.size())
      << "ExponentialTransformBlock size mismatch: " << words.size()
      << " words for " << out.size() << " outputs";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    ExponentialTransformAvx512(words.data(), b, out.data(), out.size());
    return;
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    ExponentialTransformAvx2(words.data(), b, out.data(), out.size());
    return;
  }
#endif
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = ExpNuScalar(words[i], b);
  }
}

FusedScanHit FusedExpScanGe(std::span<const uint64_t> words, double b,
                            double bar) {
  const size_t n = words.size();
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedExpScanGeAvx512(words.data(), b, bar, n);
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedExpScanGeAvx2(words.data(), b, bar, n);
  }
#endif
  return FusedExpScanGeScalar(words.data(), b, bar, n, 0);
}

FusedScanHit FusedExpScanSumGe(std::span<const uint64_t> words, double b,
                               std::span<const double> a, double bar) {
  SVT_CHECK(words.size() == a.size())
      << "FusedExpScanSumGe size mismatch: " << words.size() << " words for "
      << a.size() << " answers";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedExpScanSumGeAvx512(words.data(), b, a.data(), bar, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedExpScanSumGeAvx2(words.data(), b, a.data(), bar, a.size());
  }
#endif
  return FusedExpScanSumGeScalar(words.data(), b, a.data(), bar, a.size(), 0);
}

FusedScanHit FusedExpScanGePairwise(std::span<const uint64_t> words, double b,
                                    std::span<const double> bars, double rho) {
  SVT_CHECK(words.size() == bars.size())
      << "FusedExpScanGePairwise size mismatch: " << words.size()
      << " words for " << bars.size() << " bars";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedExpScanGePairwiseAvx512(words.data(), b, bars.data(), rho,
                                        bars.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedExpScanGePairwiseAvx2(words.data(), b, bars.data(), rho,
                                      bars.size());
  }
#endif
  return FusedExpScanGePairwiseScalar(words.data(), b, bars.data(), rho,
                                      bars.size(), 0);
}

FusedScanHit FusedExpScanSumGePairwise(std::span<const uint64_t> words,
                                       double b, std::span<const double> a,
                                       std::span<const double> bars,
                                       double rho) {
  SVT_CHECK(words.size() == a.size() && a.size() == bars.size())
      << "FusedExpScanSumGePairwise size mismatch: " << words.size()
      << " words for " << a.size() << " answers and " << bars.size()
      << " bars";
#if SVT_VECMATH_HAVE_AVX512
  if (ActiveDispatchLevel() == DispatchLevel::kAvx512) {
    return FusedExpScanSumGePairwiseAvx512(words.data(), b, a.data(),
                                           bars.data(), rho, a.size());
  }
#endif
#if SVT_VECMATH_HAVE_AVX2
  if (ActiveDispatchLevel() >= DispatchLevel::kAvx2) {
    return FusedExpScanSumGePairwiseAvx2(words.data(), b, a.data(),
                                         bars.data(), rho, a.size());
  }
#endif
  return FusedExpScanSumGePairwiseScalar(words.data(), b, a.data(),
                                         bars.data(), rho, a.size(), 0);
}

}  // namespace vec
}  // namespace svt
