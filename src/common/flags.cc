#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace svt {

namespace {

std::string BoolRepr(bool b) { return b ? "true" : "false"; }

}  // namespace

void FlagSet::AddInt64(const std::string& name, int64_t* value,
                       const std::string& help) {
  SVT_CHECK(value != nullptr);
  entries_[name] = Entry{Kind::kInt64, value, help, std::to_string(*value)};
}

void FlagSet::AddDouble(const std::string& name, double* value,
                        const std::string& help) {
  SVT_CHECK(value != nullptr);
  entries_[name] = Entry{Kind::kDouble, value, help, std::to_string(*value)};
}

void FlagSet::AddBool(const std::string& name, bool* value,
                      const std::string& help) {
  SVT_CHECK(value != nullptr);
  entries_[name] = Entry{Kind::kBool, value, help, BoolRepr(*value)};
}

void FlagSet::AddString(const std::string& name, std::string* value,
                        const std::string& help) {
  SVT_CHECK(value != nullptr);
  entries_[name] = Entry{Kind::kString, value, help, *value};
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Entry& entry = it->second;
  char* end = nullptr;
  switch (entry.kind) {
    case Kind::kInt64: {
      errno = 0;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       ": not an integer: " + value);
      }
      *static_cast<int64_t*>(entry.target) = parsed;
      return Status::OK();
    }
    case Kind::kDouble: {
      errno = 0;
      const double parsed = std::strtod(value.c_str(), &end);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       ": not a number: " + value);
      }
      *static_cast<double*>(entry.target) = parsed;
      return Status::OK();
    }
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(entry.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(entry.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       ": not a bool: " + value);
      }
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(entry.target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = entries_.find(name);
      if (it != entries_.end() && it->second.kind == Kind::kBool) {
        value = "true";  // bare --flag enables a bool
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing value");
      }
    }
    SVT_RETURN_NOT_OK(SetValue(name, value));
  }
  return Status::OK();
}

std::string FlagSet::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, entry] : entries_) {
    os << "  --" << name << " (default: " << entry.default_repr << ")\n"
       << "      " << entry.help << "\n";
  }
  return os.str();
}

}  // namespace svt
