// Minimal command-line flag parsing for the bench/example binaries.
//
// Supports `--name=value`, `--name value`, and bare `--bool_flag`.
// Unknown flags are an error so typos in experiment scripts fail loudly.

#ifndef SPARSEVEC_COMMON_FLAGS_H_
#define SPARSEVEC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace svt {

/// A registry of typed flags. Register flags with pointers to defaults, then
/// call Parse(). Example:
///
///   FlagSet flags;
///   int64_t runs = 30;
///   flags.AddInt64("runs", &runs, "number of repetitions");
///   SVT_CHECK_OK(flags.Parse(argc, argv));
class FlagSet {
 public:
  void AddInt64(const std::string& name, int64_t* value,
                const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);

  /// Parses argv; on `--help`, prints usage to stdout and exits(0).
  Status Parse(int argc, char** argv);

  /// Usage text listing all registered flags with defaults.
  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt64, kDouble, kBool, kString };
  struct Entry {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Entry> entries_;
};

}  // namespace svt

#endif  // SPARSEVEC_COMMON_FLAGS_H_
