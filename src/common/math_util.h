// Small numeric helpers shared across modules.

#ifndef SPARSEVEC_COMMON_MATH_UTIL_H_
#define SPARSEVEC_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace svt {

/// Shortest decimal string that parses back to exactly `x` (std::to_chars
/// round-trip form). Error messages about budget boundaries use this:
/// std::to_string's fixed 6 digits can print a genuinely over-budget charge
/// as "1.000000 + 0.100000 > total 1.000000".
std::string FormatDouble(double x);

/// log(exp(a) + exp(b)) without overflow.
double LogAddExp(double a, double b);

/// log(sum_i exp(values[i])) without overflow. Returns -inf for empty input.
double LogSumExp(std::span<const double> values);

/// Kahan compensated summation; keeps long experiment accumulations exact to
/// within a couple of ulps.
class KahanAccumulator {
 public:
  void Add(double value);
  double sum() const { return sum_; }
  void Reset();

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sign of x in {-1, 0, +1}.
int Sgn(double x);

/// x clamped into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Relative difference |a-b| / max(|a|, |b|, floor); 0 if both are ~0.
double RelativeDifference(double a, double b, double floor = 1e-300);

/// Harmonic-like partial sum: sum_{i=1}^{n} i^{-s}. (s = 1 gives H_n.)
double GeneralizedHarmonic(size_t n, double s);

}  // namespace svt

#endif  // SPARSEVEC_COMMON_MATH_UTIL_H_
