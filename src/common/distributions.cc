#include "common/distributions.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/vecmath.h"

namespace svt {

Laplace::Laplace(double mu, double b) : mu_(mu), b_(b) {
  SVT_CHECK(b > 0.0) << "Laplace scale must be positive, got " << b;
  SVT_CHECK(std::isfinite(mu));
}

double Laplace::stddev() const { return std::sqrt(2.0) * b_; }

double Laplace::Pdf(double x) const {
  return 0.5 / b_ * std::exp(-std::abs(x - mu_) / b_);
}

double Laplace::LogPdf(double x) const {
  return -std::log(2.0 * b_) - std::abs(x - mu_) / b_;
}

double Laplace::Cdf(double x) const {
  const double z = (x - mu_) / b_;
  if (z < 0.0) return 0.5 * std::exp(z);
  return 1.0 - 0.5 * std::exp(-z);
}

double Laplace::LogCdf(double x) const {
  const double z = (x - mu_) / b_;
  if (z < 0.0) return std::log(0.5) + z;
  return std::log1p(-0.5 * std::exp(-z));
}

double Laplace::Sf(double x) const {
  const double z = (x - mu_) / b_;
  if (z > 0.0) return 0.5 * std::exp(-z);
  return 1.0 - 0.5 * std::exp(z);
}

double Laplace::LogSf(double x) const {
  const double z = (x - mu_) / b_;
  if (z > 0.0) return std::log(0.5) - z;
  return std::log1p(-0.5 * std::exp(z));
}

double Laplace::Quantile(double p) const {
  SVT_CHECK(p > 0.0 && p < 1.0) << "Laplace quantile requires p in (0,1)";
  if (p < 0.5) return mu_ + b_ * std::log(2.0 * p);
  return mu_ - b_ * std::log(2.0 * (1.0 - p));
}

double Laplace::Sample(Rng& rng) const {
  // Exact two-draw scheme: Laplace = signed Exponential. Avoids the
  // open/closed interval edge cases of the single-uniform inverse CDF.
  // The log is vecmath's polynomial kernel — the same kernel (scalar or
  // SIMD lane, bit-identical) that TransformBlock applies in bulk.
  const double e = -vec::Log(rng.NextDoublePositive());
  const bool negative = rng.NextBernoulli(0.5);
  return negative ? mu_ - b_ * e : mu_ + b_ * e;
}

void Laplace::TransformBlock(std::span<const uint64_t> words,
                             std::span<double> out) const {
  SVT_CHECK(words.size() == 2 * out.size());
  // One fused dispatched pass: even word -> (0,1] uniform -> -log ->
  // scale -> sign select, the exact op-for-op composition Sample()
  // evaluates per draw (see the kernel contract in common/vecmath.h for
  // why the branch-free sign select is IEEE-identical to Sample()'s
  // ternary). Bitwise-equal to a Sample() loop at every dispatch level.
  vec::LaplaceTransformBlock(words, mu_, b_, out);
}

void Laplace::SampleBlock(Rng& rng, std::span<double> out) const {
  constexpr size_t kBlock = 256;
  uint64_t words[2 * kBlock];
  size_t done = 0;
  while (done < out.size()) {
    const size_t n = std::min(kBlock, out.size() - done);
    rng.FillUint64({words, 2 * n});
    TransformBlock({words, 2 * n}, out.subspan(done, n));
    done += n;
  }
}

double SampleLaplace(Rng& rng, double scale) {
  return Laplace::Centered(scale).Sample(rng);
}

void SampleLaplaceBlock(Rng& rng, double scale, std::span<double> out) {
  Laplace::Centered(scale).SampleBlock(rng, out);
}

Exponential::Exponential(double rate) : rate_(rate), scale_(1.0 / rate) {
  SVT_CHECK(rate > 0.0) << "Exponential rate must be positive, got " << rate;
}

Exponential Exponential::FromScale(double scale) {
  SVT_CHECK(scale > 0.0) << "Exponential scale must be positive, got "
                         << scale;
  return Exponential(1.0 / scale, scale);
}

double Exponential::Pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double Exponential::LogPdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(rate_) - rate_ * x;
}

double Exponential::Cdf(double x) const {
  return x < 0.0 ? 0.0 : -std::expm1(-rate_ * x);
}

double Exponential::LogCdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  // log(1 - e^-z), stable for both tails of z = x/b.
  const double z = rate_ * x;
  if (z > 1.0) return std::log1p(-std::exp(-z));
  return std::log(-std::expm1(-z));
}

double Exponential::Sf(double x) const {
  return x < 0.0 ? 1.0 : std::exp(-rate_ * x);
}

double Exponential::LogSf(double x) const {
  return x < 0.0 ? 0.0 : -rate_ * x;
}

double Exponential::Quantile(double p) const {
  SVT_CHECK(p >= 0.0 && p < 1.0);
  return -std::log1p(-p) / rate_;
}

double Exponential::Sample(Rng& rng) const {
  // One draw per variate, evaluated as b * e with e = -log(u) through the
  // shared vecmath lattice map — the exact scalar body of
  // ExponentialTransformBlock, so a Sample() loop is bit-for-bit
  // SampleBlock() for the same rng state (dividing by rate_ would not be:
  // e/r and (1/r)*e differ in the last ulp for general r).
  return scale_ * vec::NegLogUnitPositive(rng.NextUint64());
}

void Exponential::TransformBlock(std::span<const uint64_t> words,
                                 std::span<double> out) const {
  SVT_CHECK(words.size() == out.size());
  vec::ExponentialTransformBlock(words, scale_, out);
}

void Exponential::SampleBlock(Rng& rng, std::span<double> out) const {
  constexpr size_t kBlock = 512;
  uint64_t words[kBlock];
  size_t done = 0;
  while (done < out.size()) {
    const size_t n = std::min(kBlock, out.size() - done);
    rng.FillUint64({words, n});
    TransformBlock({words, n}, out.subspan(done, n));
    done += n;
  }
}

double SampleExponential(Rng& rng, double scale) {
  return Exponential::FromScale(scale).Sample(rng);
}

void SampleExponentialBlock(Rng& rng, double scale, std::span<double> out) {
  Exponential::FromScale(scale).SampleBlock(rng, out);
}

double Gumbel::Pdf(double x) const {
  return std::exp(-(x + std::exp(-x)));
}

double Gumbel::Cdf(double x) const { return std::exp(-std::exp(-x)); }

double Gumbel::Quantile(double p) const {
  SVT_CHECK(p > 0.0 && p < 1.0);
  return -std::log(-std::log(p));
}

double Gumbel::Sample(Rng& rng) const { return SampleGumbel(rng); }

double SampleGumbel(Rng& rng) {
  return -vec::Log(-vec::Log(rng.NextDoublePositive()));
}

void SampleGumbelBlock(Rng& rng, std::span<double> out) {
  // Two fused vecmath passes: t = -log(u) from the raw words, then
  // -log(t) in place — each step the exact op sequence of SampleGumbel(),
  // so the block is bit-for-bit a scalar loop at any dispatch level. The
  // only special inner value is t == -0.0 (u == 1, probability 2^-53),
  // which LogBlock's special handling maps to -inf, negated to +inf —
  // exactly what the scalar composition produces.
  constexpr size_t kBlock = 512;
  uint64_t words[kBlock];
  size_t done = 0;
  while (done < out.size()) {
    const size_t n = std::min(kBlock, out.size() - done);
    rng.FillUint64({words, n});
    std::span<double> chunk = out.subspan(done, n);
    vec::NegLogUnitPositiveBlock({words, n}, 1, chunk);
    vec::LogBlock(chunk, chunk);
    for (double& g : chunk) g = -g;
    done += n;
  }
}

AliasSampler::AliasSampler(std::vector<double> weights) {
  const size_t n = weights.size();
  SVT_CHECK(n >= 1) << "AliasSampler needs at least one weight";
  double total = 0.0;
  for (double w : weights) {
    SVT_CHECK(w >= 0.0) << "AliasSampler weights must be non-negative";
    total += w;
  }
  SVT_CHECK(total > 0.0) << "AliasSampler weights must not all be zero";

  norm_.resize(n);
  for (size_t i = 0; i < n; ++i) norm_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Scaled probabilities; split into under- and over-full columns.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = norm_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are 1 up to rounding.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

uint32_t AliasSampler::Sample(Rng& rng) const {
  const uint32_t column =
      static_cast<uint32_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

double AliasSampler::Probability(uint32_t i) const {
  SVT_CHECK(i < norm_.size());
  return norm_[i];
}

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  SVT_CHECK(n >= 1);
  SVT_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Pmf(uint32_t k) const {
  SVT_CHECK(k >= 1 && k <= cdf_.size());
  if (k == 1) return cdf_[0];
  return cdf_[k - 1] - cdf_[k - 2];
}

}  // namespace svt
