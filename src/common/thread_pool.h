// Minimal worker pool and a deterministic ParallelFor.
//
// The audit layer's Monte-Carlo estimator and the sharded serving layer
// need data parallelism without pulling in a dependency. The design goal is
// *schedule-independent determinism*: ParallelFor splits an index range into
// contiguous slices whose boundaries depend only on (n, num_slices), so any
// per-slice state — in particular one forked Rng per slice — produces
// results that are bitwise-independent of which OS thread runs which slice
// and of how the slices interleave in time.

#ifndef SPARSEVEC_COMMON_THREAD_POOL_H_
#define SPARSEVEC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace svt {

/// Fixed-size pool of worker threads consuming a FIFO task queue. Tasks
/// must not throw (the library does not use exceptions).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing. Must not be
  /// called from a pool worker (checked) — a worker waiting for itself to
  /// go idle would never return. New Submits racing with WaitIdle may or
  /// may not be waited for; quiesce submitters first for a strict drain.
  void WaitIdle();

  /// True when the calling thread is a worker of *any* ThreadPool. Blocking
  /// operations that need pool progress (ParallelFor's barrier, WaitIdle)
  /// use this to avoid deadlocking on a saturated pool.
  static bool OnWorkerThread();

  /// Process-wide pool sized to the hardware concurrency, created on first
  /// use. ParallelFor schedules on this pool.
  static ThreadPool& Global();

  /// max(1, std::thread::hardware_concurrency()).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;  ///< tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(begin, end, slice) for `num_slices` contiguous slices of
/// [0, n): slice s covers [s*n/num_slices, (s+1)*n/num_slices). Slice 0 runs
/// on the calling thread; the rest run on ThreadPool::Global(). Blocks until
/// every slice has finished. num_slices <= 0 means one slice per hardware
/// thread; empty slices (num_slices > n) are still invoked with begin == end
/// so per-slice state stays aligned with the slice index.
///
/// Correct (and deterministic) even when the pool has fewer threads than
/// slices — excess slices just queue. Safe to call from inside a pool task:
/// nested calls detect the worker thread and run every slice inline on the
/// caller, with identical slice boundaries and indices, so per-slice RNG
/// streams and results are bitwise-unchanged (only the parallelism is
/// given up; scheduling nested slices to a saturated pool would deadlock).
void ParallelFor(int64_t n, int num_slices,
                 const std::function<void(int64_t begin, int64_t end,
                                          int slice)>& body);

}  // namespace svt

#endif  // SPARSEVEC_COMMON_THREAD_POOL_H_
