// Probability distributions used by the DP mechanisms.
//
// Each distribution offers density / log-density / CDF / quantile and
// sampling via inverse-CDF over Rng's 53-bit uniforms, so every draw is
// platform-reproducible. The Laplace distribution is the workhorse: both the
// SVT threshold noise rho and the per-query noise nu_i are Laplace, and the
// audit module (src/audit) consumes the pdf/cdf to evaluate output
// probabilities in closed form.
//
// Sampling-side transcendentals route through common/vecmath.h: scalar
// Sample() calls use vec::Log (the polynomial reference lane) and the
// *Block paths use the dispatched SIMD kernels, which are bit-identical to
// it by construction. That keeps the block/scalar draw-for-draw guarantees
// below independent of the host's dispatch level. Density/CDF/quantile
// evaluation (the audit-side math) deliberately stays on libm: it feeds
// closed-form probability computations, not the draw stream, so it has no
// bitwise contract to honor.

#ifndef SPARSEVEC_COMMON_DISTRIBUTIONS_H_
#define SPARSEVEC_COMMON_DISTRIBUTIONS_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace svt {

/// Laplace(mu, b): density (1/2b) exp(-|x-mu|/b).
///
/// In DP terms, `Lap(b)` with b = sensitivity/epsilon satisfies
/// epsilon-indistinguishability under shifts of up to `sensitivity`.
class Laplace {
 public:
  /// Creates a Laplace distribution with location `mu` and scale `b > 0`.
  Laplace(double mu, double b);

  /// Zero-centered convenience, matching the paper's Lap(b) notation.
  static Laplace Centered(double b) { return Laplace(0.0, b); }

  double mu() const { return mu_; }
  double scale() const { return b_; }

  /// Standard deviation: sqrt(2) * b. Used by SVT-ReTr's "kD" threshold
  /// boosts ("1D means adding one standard deviation of the added noises").
  double stddev() const;

  /// Probability density at x.
  double Pdf(double x) const;

  /// Natural log of the density at x.
  double LogPdf(double x) const;

  /// Cumulative distribution function P(X <= x).
  double Cdf(double x) const;

  /// log P(X <= x), stable in the deep lower tail.
  double LogCdf(double x) const;

  /// P(X > x) = 1 - Cdf(x), stable in the deep upper tail.
  double Sf(double x) const;

  /// log P(X > x).
  double LogSf(double x) const;

  /// Inverse CDF; p must lie in (0, 1).
  double Quantile(double p) const;

  /// Draws a sample by inverse-CDF.
  double Sample(Rng& rng) const;

  /// Fills `out` with out.size() i.i.d. draws. Consumes uniforms from `rng`
  /// in exactly the order Sample() would (two 64-bit draws per variate), so
  /// for a given rng state the k-th element is bit-for-bit the k-th scalar
  /// Sample() result — the batch execution engine relies on this. The win
  /// over a Sample() loop is block RNG generation plus a tight transform
  /// whose independent log() calls overlap in the pipeline.
  void SampleBlock(Rng& rng, std::span<double> out) const;

  /// The pure transform behind SampleBlock: out[i] is computed from
  /// words[2i] (magnitude uniform) and words[2i+1] (sign uniform) with the
  /// exact expressions of Sample(). words.size() must be 2 * out.size().
  /// Exposed so the batch engine can pre-fetch raw words, decide per chunk
  /// whether the transform is needed at all, and stay draw-for-draw aligned
  /// with the streaming path either way.
  void TransformBlock(std::span<const uint64_t> words,
                      std::span<double> out) const;

 private:
  double mu_;
  double b_;
};

/// Samples Lap(scale) centered at zero — the paper's `Lap(scale)` notation.
double SampleLaplace(Rng& rng, double scale);

/// Bulk version of SampleLaplace; same draw-for-draw equivalence guarantee
/// as Laplace::SampleBlock.
void SampleLaplaceBlock(Rng& rng, double scale, std::span<double> out);

/// Exponential(rate): density rate * exp(-rate x) on x >= 0.
///
/// In DP terms the scale parameterization b = 1/rate mirrors Lap(b): an
/// Exp(b) threshold perturbation with b = sensitivity/epsilon satisfies the
/// same epsilon-indistinguishability bound the SVT proof needs from the ρ
/// density (the proof only uses p(z + Δ) >= e^-ε p(z), which the one-sided
/// density e^{-x/b}/b satisfies for b = Δ/ε) at half the standard
/// deviation — the accuracy win of the exponential-noise SVT variants.
class Exponential {
 public:
  explicit Exponential(double rate);

  /// Scale parameterization: Exp(b) with density (1/b) e^{-x/b} on x >= 0.
  /// The noise-kind axis of VariantSpec is specified in scales, and the
  /// draw contract below multiplies by the scale — so engine code must use
  /// this factory (1/(1/b) is not always b in IEEE arithmetic).
  static Exponential FromScale(double scale);

  double rate() const { return rate_; }
  double scale() const { return scale_; }
  double Pdf(double x) const;
  /// Natural log of the density at x (-inf for x < 0). Audit-side libm.
  double LogPdf(double x) const;
  double Cdf(double x) const;
  /// log P(X <= x), stable in the deep lower tail.
  double LogCdf(double x) const;
  /// P(X > x) = e^{-x/b} for x >= 0, 1 below the support.
  double Sf(double x) const;
  /// log P(X > x), exact (= -x/b) on the support.
  double LogSf(double x) const;
  double Quantile(double p) const;

  /// Draws a sample as scale * -log(u), with u on Rng's (0, 1] 53-bit
  /// lattice via vec::NegLogUnitPositive — one 64-bit draw per variate, and
  /// the product evaluated as b * e so scalar and block draws are
  /// draw-for-draw bit-identical (the guarantee SampleBlock documents).
  double Sample(Rng& rng) const;

  /// Fills `out` with out.size() i.i.d. draws, consuming one 64-bit draw
  /// per variate in exactly Sample()'s order: for a given rng state the
  /// k-th element is bit-for-bit the k-th scalar Sample() result at every
  /// dispatch level.
  void SampleBlock(Rng& rng, std::span<double> out) const;

  /// The pure transform behind SampleBlock: out[i] is computed from
  /// words[i] with the exact expressions of Sample(). words.size() must
  /// equal out.size(). Exposed for the batch engine, like
  /// Laplace::TransformBlock.
  void TransformBlock(std::span<const uint64_t> words,
                      std::span<double> out) const;

 private:
  Exponential(double rate, double scale) : rate_(rate), scale_(scale) {}

  double rate_;
  double scale_;
};

/// Samples Exp(scale) — one-sided, scale parameterization, zero draws of
/// sign words. Mirrors SampleLaplace.
double SampleExponential(Rng& rng, double scale);

/// Bulk version of SampleExponential; same draw-for-draw equivalence
/// guarantee as Exponential::SampleBlock.
void SampleExponentialBlock(Rng& rng, double scale, std::span<double> out);

/// Standard Gumbel(0, 1): density exp(-(x + exp(-x))).
///
/// Used for the Gumbel-max implementation of the Exponential Mechanism:
/// argmax_i (phi_i + G_i) with i.i.d. standard Gumbel G_i samples exactly
/// from the softmax over phi, and taking the top-c of the perturbed values
/// samples c rounds of EM without replacement (Gumbel-top-k).
class Gumbel {
 public:
  double Pdf(double x) const;
  double Cdf(double x) const;
  double Quantile(double p) const;
  double Sample(Rng& rng) const;
};

/// Draws one standard Gumbel variate: -log(-log(U)).
double SampleGumbel(Rng& rng);

/// Fills `out` with standard Gumbel variates, one 64-bit draw each,
/// bit-for-bit matching a SampleGumbel() loop (used by the bulk
/// Gumbel-top-k path of the Exponential Mechanism).
void SampleGumbelBlock(Rng& rng, std::span<double> out);

/// O(1) sampling from an arbitrary discrete distribution (Walker/Vose alias
/// method). Used by the synthetic transaction generator, where item draws
/// follow a fitted power-law popularity profile over up to millions of
/// items.
class AliasSampler {
 public:
  /// Builds the alias table from non-negative weights (sum > 0). O(n).
  explicit AliasSampler(std::vector<double> weights);

  /// Draws an index in [0, size()) with probability weight_i / sum.
  uint32_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Normalized probability of index i (for tests).
  double Probability(uint32_t i) const;

 private:
  std::vector<double> prob_;      // acceptance probability per column
  std::vector<uint32_t> alias_;   // alias target per column
  std::vector<double> norm_;      // normalized input weights
};

/// Bounded Zipf(s) over ranks {1, ..., n}: P(k) proportional to k^-s.
///
/// Used by the synthetic transaction generator to draw item occurrences
/// matching a target power-law frequency profile. Sampling is inverse-CDF
/// over a precomputed cumulative table (exact, O(log n) per draw).
class ZipfSampler {
 public:
  /// n >= 1 ranks, exponent s >= 0 (s = 0 is uniform).
  ZipfSampler(uint32_t n, double s);

  /// Draws a rank in {1, ..., n}.
  uint32_t Sample(Rng& rng) const;

  /// Probability of rank k (1-based).
  double Pmf(uint32_t k) const;

 private:
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

}  // namespace svt

#endif  // SPARSEVEC_COMMON_DISTRIBUTIONS_H_
