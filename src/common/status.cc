#include "common/status.h"

namespace svt {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kExhausted:
      return "Exhausted";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace svt
