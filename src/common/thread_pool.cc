#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace svt {

namespace {
// Set for the lifetime of every pool worker thread. ParallelFor and
// WaitIdle consult it: blocking on pool progress from a pool worker can
// deadlock once the pool is saturated with blocked tasks.
thread_local bool tls_on_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SVT_CHECK(!stop_) << "Submit() on a stopped ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  SVT_CHECK(!OnWorkerThread())
      << "WaitIdle() from a pool worker would wait for itself";
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::OnWorkerThread() { return tls_on_pool_worker; }

void ThreadPool::WorkerLoop() {
  tls_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(HardwareThreads());
  return pool;
}

int ThreadPool::HardwareThreads() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void ParallelFor(int64_t n, int num_slices,
                 const std::function<void(int64_t begin, int64_t end,
                                          int slice)>& body) {
  SVT_CHECK(n >= 0);
  const int slices =
      num_slices <= 0 ? ThreadPool::HardwareThreads() : num_slices;
  if (slices == 1 || n == 0 || ThreadPool::OnWorkerThread()) {
    // Degenerate cases — and nested calls from a pool task, where waiting
    // on pool-scheduled slices could deadlock a saturated pool — run every
    // slice inline. Slice boundaries and indices are identical to the
    // scheduled path, so per-slice RNG streams line up bitwise.
    for (int s = 0; s < slices; ++s) {
      body(s * n / slices, (s + 1) * n / slices, s);
    }
    return;
  }

  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    int remaining = 0;
  } barrier;
  barrier.remaining = slices - 1;

  ThreadPool& pool = ThreadPool::Global();
  for (int s = 1; s < slices; ++s) {
    pool.Submit([&body, &barrier, n, slices, s] {
      body(s * n / slices, (s + 1) * n / slices, s);
      // Notify while still holding the mutex: the waiter cannot pass its
      // predicate re-check (and destroy the stack Barrier) until this
      // worker has released the lock, so the condition_variable is
      // guaranteed alive for the notify.
      std::lock_guard<std::mutex> lock(barrier.mu);
      --barrier.remaining;
      barrier.cv.notify_one();
    });
  }
  body(0, n / slices, 0);
  std::unique_lock<std::mutex> lock(barrier.mu);
  barrier.cv.wait(lock, [&barrier] { return barrier.remaining == 0; });
}

}  // namespace svt
