// Fatal invariant checks (SVT_CHECK) in the style of glog/absl CHECK.
//
// SVT_CHECK is always on (including release builds): the mechanisms here
// protect privacy guarantees, and a silently violated invariant could mean a
// silently violated privacy proof. SVT_DCHECK compiles out in NDEBUG builds
// and is reserved for hot-loop bounds checks.

#ifndef SPARSEVEC_COMMON_CHECK_H_
#define SPARSEVEC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace svt {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "SVT_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< adapter so the ternary in SVT_CHECK has void
/// type on both branches (the glog "voidify" idiom).
struct Voidify {
  template <typename T>
  void operator&(T&&) {}
};

}  // namespace internal
}  // namespace svt

#define SVT_CHECK(condition)                               \
  (condition) ? (void)0                                    \
              : ::svt::internal::Voidify() &               \
                    ::svt::internal::CheckFailureStream(   \
                        #condition, __FILE__, __LINE__)

#define SVT_CHECK_OK(status_expr)                                      \
  do {                                                                 \
    const ::svt::Status _svt_chk = (status_expr);                      \
    if (!_svt_chk.ok()) {                                              \
      ::svt::internal::CheckFailureStream _svt_chk_stream(             \
          #status_expr, __FILE__, __LINE__);                           \
      _svt_chk_stream << _svt_chk.ToString();                          \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
// Not evaluated, but still compiled, so the condition stays well-formed.
#define SVT_DCHECK(condition) (void)(true || (condition))
#else
#define SVT_DCHECK(condition) SVT_CHECK(condition)
#endif

#endif  // SPARSEVEC_COMMON_CHECK_H_
