#include "common/math_util.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

namespace svt {

std::string FormatDouble(double x) {
  // 32 chars comfortably fits the longest shortest-round-trip double
  // (sign + 17 significand digits + decimal point + "e-308").
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), x);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("?");
}

double LogAddExp(double a, double b) {
  if (std::isinf(a) && a < 0.0) return b;
  if (std::isinf(b) && b < 0.0) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double LogSumExp(std::span<const double> values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) hi = std::max(hi, v);
  if (std::isinf(hi)) return hi;
  double acc = 0.0;
  for (double v : values) acc += std::exp(v - hi);
  return hi + std::log(acc);
}

void KahanAccumulator::Add(double value) {
  const double y = value - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

void KahanAccumulator::Reset() {
  sum_ = 0.0;
  compensation_ = 0.0;
}

int Sgn(double x) {
  if (x > 0.0) return 1;
  if (x < 0.0) return -1;
  return 0;
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

double RelativeDifference(double a, double b, double floor) {
  const double denom = std::max({std::abs(a), std::abs(b), floor});
  return std::abs(a - b) / denom;
}

double GeneralizedHarmonic(size_t n, double s) {
  KahanAccumulator acc;
  for (size_t i = 1; i <= n; ++i) {
    acc.Add(std::pow(static_cast<double>(i), -s));
  }
  return acc.sum();
}

}  // namespace svt
