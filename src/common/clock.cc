#include "common/clock.h"

#include <chrono>
#include <thread>

#include "common/check.h"

namespace svt {
namespace {

class SteadyClock final : public Clock {
 public:
  int64_t NowNanos() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepFor(int64_t nanos) override {
    SVT_DCHECK(nanos >= 0);
    if (nanos > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
    }
  }
};

}  // namespace

Clock* RealClock() {
  // Leaked singleton: serving objects may read the clock from static
  // destructors, so it must never be torn down.
  static SteadyClock* const kClock = new SteadyClock();
  return kClock;
}

}  // namespace svt
