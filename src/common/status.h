// Status / error-code plumbing used throughout the library.
//
// The library follows the RocksDB/Arrow convention of returning a Status (or
// Result<T>, see result.h) instead of throwing exceptions: differential
// privacy mechanisms are frequently embedded in long-running query-serving
// systems where exception propagation across module boundaries is
// undesirable.

#ifndef SPARSEVEC_COMMON_STATUS_H_
#define SPARSEVEC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace svt {

/// Error categories. Mirrors the subset of canonical codes the library needs.
enum class StatusCode : int {
  kOk = 0,
  /// Caller passed a value that violates a documented precondition
  /// (e.g. epsilon <= 0, cutoff < 1).
  kInvalidArgument = 1,
  /// Operation is not valid in the current state (e.g. Process() after the
  /// positive-outcome budget is exhausted).
  kFailedPrecondition = 2,
  /// An index or parameter is outside the valid range.
  kOutOfRange = 3,
  /// An internal invariant failed; indicates a library bug.
  kInternal = 4,
  /// A resource (privacy budget, query stream) is exhausted.
  kExhausted = 5,
  /// Numerical routine failed to converge to the requested tolerance.
  kNumericalError = 6,
  /// The serving layer shed the request: its admission queue is at
  /// capacity (or a blocking submit timed out waiting for space). The
  /// request was NOT executed; callers may retry with backoff.
  kOverloaded = 7,
  /// The request's deadline expired before it could be executed. The
  /// request was NOT executed.
  kDeadlineExceeded = 8,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Exhausted(std::string msg) {
    return Status(StatusCode::kExhausted, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace svt

/// Propagates a non-OK Status to the caller. Mirrors the common
/// RETURN_NOT_OK idiom from Arrow/RocksDB.
#define SVT_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::svt::Status _svt_status = (expr);        \
    if (!_svt_status.ok()) return _svt_status; \
  } while (false)

#endif  // SPARSEVEC_COMMON_STATUS_H_
