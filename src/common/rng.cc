#include "common/rng.h"

#include <algorithm>

#include "common/check.h"

namespace svt {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64Next(sm);
  // xoshiro requires a nonzero state; SplitMix64 outputs four zero words
  // with probability 2^-256, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::Rng(const std::array<uint64_t, 4>& state) : state_(state) {
  SVT_CHECK(state_[0] != 0 || state_[1] != 0 || state_[2] != 0 ||
            state_[3] != 0);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SVT_CHECK(bound > 0);
  // Rejection sampling over the top of the range to avoid modulo bias
  // (Lemire's threshold formulation).
  const uint64_t threshold = (-bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

void Rng::FillUint64(std::span<uint64_t> out) {
  // An empty span may carry a null data(); bail before the pointer
  // arithmetic below (p + 4 on nullptr is UB).
  if (out.empty()) return;
  // The xoshiro recurrence is inherently serial, so the block win comes
  // from keeping the state in registers across the whole span (NextUint64
  // reloads and spills the four state words on every call) and from
  // unrolling away the loop overhead.
  uint64_t s0 = state_[0];
  uint64_t s1 = state_[1];
  uint64_t s2 = state_[2];
  uint64_t s3 = state_[3];
  const auto step = [&]() {
    const uint64_t result = Rotl(s0 + s3, 23) + s0;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
    return result;
  };
  uint64_t* p = out.data();
  uint64_t* const end = p + out.size();
  for (; p + 4 <= end; p += 4) {
    p[0] = step();
    p[1] = step();
    p[2] = step();
    p[3] = step();
  }
  for (; p < end; ++p) *p = step();
  state_ = {s0, s1, s2, s3};
}

namespace {

// Stack block size for the uint64 -> double transforms: 4 KiB, well inside
// L1 alongside the caller's output buffer.
constexpr size_t kFillBlock = 512;

}  // namespace

void Rng::FillDouble(std::span<double> out) {
  uint64_t words[kFillBlock];
  size_t done = 0;
  while (done < out.size()) {
    const size_t n = std::min(kFillBlock, out.size() - done);
    FillUint64({words, n});
    for (size_t i = 0; i < n; ++i) out[done + i] = ToUnitDouble(words[i]);
    done += n;
  }
}

void Rng::FillDoublePositive(std::span<double> out) {
  uint64_t words[kFillBlock];
  size_t done = 0;
  while (done < out.size()) {
    const size_t n = std::min(kFillBlock, out.size() - done);
    FillUint64({words, n});
    for (size_t i = 0; i < n; ++i) {
      out[done + i] = ToUnitDoublePositive(words[i]);
    }
    done += n;
  }
}

double Rng::NextDouble() { return ToUnitDouble(NextUint64()); }

double Rng::NextDoublePositive() {
  return ToUnitDoublePositive(NextUint64());
}

double Rng::NextUniform(double lo, double hi) {
  SVT_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  return NextDouble() < p;
}

Rng Rng::Fork() {
  // Key-splitting: the child is a fresh generator seeded (via the
  // SplitMix64 expansion in the constructor) from one parent draw. Unlike
  // jump-based schemes this is safe for *nested* forks — a tree of forks
  // (eval/experiment.cc forks per run, then per method) lands every leaf
  // at an unrelated state instead of re-entering blocks handed out
  // elsewhere in the tree. Two caveats, both negligible here: separation
  // is probabilistic (xoshiro256++ is a single cycle; SplitMix64 seeding
  // places children ~2^255 draws apart in expectation), and distinct
  // parents that happen to emit the same 64-bit value (p ≈ 2^-64 per
  // pair) would spawn identical children.
  //
  // Long-jumping the *child* is outright wrong (the jump is GF(2)-linear
  // and commutes with the transition, so consecutive children would be
  // one-step-shifted copies of one stream), and long-jumping the *parent*
  // is only flat-safe: a child's own Fork() would jump it straight into
  // the parent's next handout block.
  return Rng(NextUint64());
}

}  // namespace svt
