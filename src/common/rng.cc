#include "common/rng.h"

#include "common/check.h"

namespace svt {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64Next(sm);
  // xoshiro requires a nonzero state; SplitMix64 outputs four zero words
  // with probability 2^-256, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::Rng(const std::array<uint64_t, 4>& state) : state_(state) {
  SVT_CHECK(state_[0] != 0 || state_[1] != 0 || state_[2] != 0 ||
            state_[3] != 0);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SVT_CHECK(bound > 0);
  // Rejection sampling over the top of the range to avoid modulo bias
  // (Lemire's threshold formulation).
  const uint64_t threshold = (-bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // Top 53 bits scaled into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoublePositive() {
  // (0, 1]: shift the [0,1) lattice up by one ulp of the 53-bit grid.
  return (static_cast<double>(NextUint64() >> 11) + 1.0) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  SVT_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  return NextDouble() < p;
}

void Rng::LongJump() {
  static constexpr uint64_t kLongJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<uint64_t, 4> acc = {0, 0, 0, 0};
  for (uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        acc[0] ^= state_[0];
        acc[1] ^= state_[1];
        acc[2] ^= state_[2];
        acc[3] ^= state_[3];
      }
      NextUint64();
    }
  }
  state_ = acc;
}

Rng Rng::Fork() {
  Rng child(state_);
  child.LongJump();
  // Also advance this stream so repeated Fork() calls yield distinct
  // children.
  NextUint64();
  return child;
}

}  // namespace svt
