#include "common/rng.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng_lockstep.h"
#include "common/vecmath.h"

namespace svt {

namespace {

// One lockstep step of all four lanes is pure integer arithmetic, so the
// scalar loop and the SIMD kernels below are bit-identical by construction
// (no rounding anywhere); the kernels differ only in how many lanes one
// instruction advances. The step primitives themselves live in
// common/rng_lockstep.h, shared with the lane-resident megakernels in
// vecmath.cc — one implementation of the stream to audit. `s` points at
// the SoA state block: s[w * 4 + lane] is state word w of lane `lane`, so
// one 256-bit load covers one word of all four lanes.

void FillLockstepScalar(uint64_t* s, uint64_t* p, size_t steps) {
  // Register-resident reference lane: lift the 16 state words out of
  // memory for the whole span, exactly like the pre-lockstep block kernel.
  uint64_t s0[4], s1[4], s2[4], s3[4];
  for (int j = 0; j < 4; ++j) {
    s0[j] = s[j];
    s1[j] = s[4 + j];
    s2[j] = s[8 + j];
    s3[j] = s[12 + j];
  }
  for (size_t step = 0; step < steps; ++step) {
    for (int j = 0; j < 4; ++j) {
      p[j] = lockstep::Rotl(s0[j] + s3[j], 23) + s0[j];
      const uint64_t t = s1[j] << 17;
      s2[j] ^= s0[j];
      s3[j] ^= s1[j];
      s1[j] ^= s2[j];
      s0[j] ^= s3[j];
      s2[j] ^= t;
      s3[j] = lockstep::Rotl(s3[j], 45);
    }
    p += 4;
  }
  for (int j = 0; j < 4; ++j) {
    s[j] = s0[j];
    s[4 + j] = s1[j];
    s[8 + j] = s2[j];
    s[12 + j] = s3[j];
  }
}

#if SVT_LOCKSTEP_HAVE_AVX2

__attribute__((target("avx2"))) void FillLockstepAvx2(uint64_t* s,
                                                      uint64_t* p,
                                                      size_t steps) {
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 12));
  for (size_t step = 0; step < steps; ++step) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                        lockstep::Step4Avx2(s0, s1, s2, s3));
    p += 4;
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s), s0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + 4), s1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + 8), s2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + 12), s3);
}

#endif  // SVT_LOCKSTEP_HAVE_AVX2

#if SVT_LOCKSTEP_HAVE_AVX512

// AVX-512VL variant: same four 256-bit lanes, but the two rotates in the
// shared step use the native 64-bit rotate instruction (vprolq) instead
// of shift+shift+or — the rotation is exact either way, so outputs are
// bit-identical.
__attribute__((target("avx512f,avx512vl"))) void FillLockstepAvx512(
    uint64_t* s, uint64_t* p, size_t steps) {
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 8));
  __m256i s3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 12));
  for (size_t step = 0; step < steps; ++step) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                        lockstep::Step4Avx512(s0, s1, s2, s3));
    p += 4;
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s), s0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + 4), s1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + 8), s2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s + 12), s3);
}

#endif  // SVT_LOCKSTEP_HAVE_AVX512

void FillLockstep(uint64_t* s, uint64_t* p, size_t steps) {
#if SVT_LOCKSTEP_HAVE_AVX512
  if (vec::ActiveDispatchLevel() >= vec::DispatchLevel::kAvx512) {
    FillLockstepAvx512(s, p, steps);
    return;
  }
#endif
#if SVT_LOCKSTEP_HAVE_AVX2
  if (vec::ActiveDispatchLevel() >= vec::DispatchLevel::kAvx2) {
    FillLockstepAvx2(s, p, steps);
    return;
  }
#endif
  FillLockstepScalar(s, p, steps);
}

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

BlockRng::BlockRng(uint64_t seed) {
  // Stream definition, seeding half: one SplitMix64 key per lane in lane
  // order, each key expanded by its own SplitMix64 sequence into the
  // lane's four state words.
  uint64_t sm = seed;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    uint64_t lane_sm = SplitMix64Next(sm);
    for (int w = 0; w < 4; ++w) s_[w][lane] = SplitMix64Next(lane_sm);
    // xoshiro requires a nonzero state; SplitMix64 emits four zero words
    // with probability 2^-256 per lane, but guard anyway.
    if (s_[0][lane] == 0 && s_[1][lane] == 0 && s_[2][lane] == 0 &&
        s_[3][lane] == 0) {
      s_[0][lane] = 0x9e3779b97f4a7c15ULL;
    }
  }
}

BlockRng::BlockRng(const State& state) { Restore(state); }

void BlockRng::Restore(const State& state) {
  SVT_CHECK(state.phase < kLanes)
      << "BlockRng state phase out of range: " << state.phase;
  phase_ = state.phase;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    for (int w = 0; w < 4; ++w) s_[w][lane] = state.words[w * kLanes + lane];
    SVT_CHECK(s_[0][lane] != 0 || s_[1][lane] != 0 || s_[2][lane] != 0 ||
              s_[3][lane] != 0)
        << "BlockRng lane " << lane << " restored to the all-zero state";
  }
}

uint64_t BlockRng::StepLane(size_t lane) {
  return lockstep::StepLaneSoA(&s_[0][0], lane);
}

uint64_t BlockRng::Next() {
  const uint64_t result = StepLane(phase_);
  phase_ = (phase_ + 1) & (kLanes - 1);
  return result;
}

size_t BlockRng::FillAlignedPrefix(std::span<uint64_t> out) {
  // The stream-walking core shared by Fill and FillBounded: scalar until
  // the next output is lane 0's (a lane-aligned stream position), then
  // lockstep whole steps — never a partial step. Lives exactly once so
  // the "one identical stream at every level" contract has one
  // implementation to audit.
  uint64_t* p = out.data();
  uint64_t* const end = p + out.size();
  while (phase_ != 0 && p < end) *p++ = Next();
  const size_t steps = static_cast<size_t>(end - p) / kLanes;
  if (steps > 0) {
    FillLockstep(&s_[0][0], p, steps);
    p += steps * kLanes;
  }
  return static_cast<size_t>(p - out.data());
}

void BlockRng::Fill(std::span<uint64_t> out) {
  // An empty span may carry a null data(); bail before the pointer
  // arithmetic below.
  if (out.empty()) return;
  // Aligned prefix, then a scalar tail for the trailing partial step.
  uint64_t* p = out.data() + FillAlignedPrefix(out);
  uint64_t* const end = out.data() + out.size();
  while (p < end) *p++ = Next();
}

size_t BlockRng::FillBounded(std::span<uint64_t> out) {
  if (out.empty()) return 0;
  const size_t filled = FillAlignedPrefix(out);
  if (filled > 0) return filled;
  // The span is smaller than one step at an aligned position: fill it all
  // scalar so a caller looping toward a fixed word count terminates.
  for (uint64_t& w : out) w = Next();
  return out.size();
}

BlockRng::State BlockRng::state() const {
  State st;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    for (int w = 0; w < 4; ++w) st.words[w * kLanes + lane] = s_[w][lane];
  }
  st.phase = phase_;
  return st;
}

Rng::Rng(uint64_t seed) : core_(seed) {}

Rng::Rng(const State& state) : core_(state) {}

uint64_t Rng::NextUint64() { return core_.Next(); }

uint64_t Rng::NextBounded(uint64_t bound) {
  // bound == 0 would make the threshold computation below divide by zero;
  // fail loudly instead of raising SIGFPE (regression-tested).
  SVT_CHECK(bound > 0) << "NextBounded requires bound > 0";
  // Rejection sampling over the top of the range to avoid modulo bias
  // (Lemire's threshold formulation).
  const uint64_t threshold = (-bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

void Rng::FillUint64(std::span<uint64_t> out) { core_.Fill(out); }

size_t Rng::FillUint64Bounded(std::span<uint64_t> out) {
  return core_.FillBounded(out);
}

namespace {

// Stack block size for the uint64 -> double transforms: 4 KiB, well inside
// L1 alongside the caller's output buffer.
constexpr size_t kFillBlock = 512;

}  // namespace

void Rng::FillDouble(std::span<double> out) {
  uint64_t words[kFillBlock];
  size_t done = 0;
  while (done < out.size()) {
    const size_t n = std::min(kFillBlock, out.size() - done);
    FillUint64({words, n});
    for (size_t i = 0; i < n; ++i) out[done + i] = ToUnitDouble(words[i]);
    done += n;
  }
}

void Rng::FillDoublePositive(std::span<double> out) {
  uint64_t words[kFillBlock];
  size_t done = 0;
  while (done < out.size()) {
    const size_t n = std::min(kFillBlock, out.size() - done);
    FillUint64({words, n});
    for (size_t i = 0; i < n; ++i) {
      out[done + i] = ToUnitDoublePositive(words[i]);
    }
    done += n;
  }
}

double Rng::NextDouble() { return ToUnitDouble(NextUint64()); }

double Rng::NextDoublePositive() {
  return ToUnitDoublePositive(NextUint64());
}

double Rng::NextUniform(double lo, double hi) {
  SVT_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  return NextDouble() < p;
}

Rng Rng::Fork() {
  // Key-splitting: the child is a fresh generator seeded (via the
  // BlockRng seeding expansion) from one parent draw. Unlike jump-based
  // schemes this is safe for *nested* forks — a tree of forks
  // (eval/experiment.cc forks per run, then per method) lands every leaf
  // at an unrelated state instead of re-entering blocks handed out
  // elsewhere in the tree. Two caveats, both negligible here: separation
  // is probabilistic (each xoshiro lane is a single cycle; SplitMix64
  // seeding places children ~2^255 draws apart in expectation), and
  // distinct parents that happen to emit the same 64-bit value
  // (p ≈ 2^-64 per pair) would spawn identical children.
  //
  // Long-jumping the *child* is outright wrong (the jump is GF(2)-linear
  // and commutes with the transition, so consecutive children would be
  // one-step-shifted copies of one stream), and long-jumping the *parent*
  // is only flat-safe: a child's own Fork() would jump it straight into
  // the parent's next handout block.
  return Rng(NextUint64());
}

}  // namespace svt
