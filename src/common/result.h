// Result<T>: a value-or-Status container (a small StatusOr).

#ifndef SPARSEVEC_COMMON_RESULT_H_
#define SPARSEVEC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace svt {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result is a checked fatal error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SVT_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the contained value; fatal if !ok().
  const T& value() const& {
    SVT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SVT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SVT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace svt

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
#define SVT_ASSIGN_OR_RETURN(lhs, expr)           \
  auto _svt_result_tmp = (expr);                  \
  if (!_svt_result_tmp.ok()) {                    \
    return _svt_result_tmp.status();              \
  }                                               \
  lhs = std::move(_svt_result_tmp).value()

#endif  // SPARSEVEC_COMMON_RESULT_H_
