// Shared four-lane lockstep xoshiro256++ step primitives.
//
// BlockRng (common/rng.{h,cc}) owns the stream definition: the output
// stream is the round-robin interleave of four xoshiro256++ lanes, and a
// lane-aligned position advances by whole lockstep steps of all four
// lanes. The lane-resident megakernels in common/vecmath.cc must advance
// the exact same stream from inside their scan loops — words never touch
// memory there — so both sides share these per-ISA step primitives. One
// step advances all four lanes and yields their four outputs: the next
// four words of the interleaved stream at a lane-aligned position.
//
// Everything here is pure integer arithmetic, so the scalar walker and
// the SIMD steps are bit-identical by construction; the variants differ
// only in how many lanes one instruction advances (and the AVX-512VL one
// in using the native 64-bit rotate). State is passed as the SoA block
// BlockRng keeps: s[w * 4 + lane] is state word w of lane `lane`, so one
// 256-bit load covers one word of all four lanes. BlockRng::State::words
// uses the identical flat layout, which is what makes the checkpoint /
// restore seam between the engine and the megakernels a plain copy.

#ifndef SPARSEVEC_COMMON_RNG_LOCKSTEP_H_
#define SPARSEVEC_COMMON_RNG_LOCKSTEP_H_

#include <cstddef>
#include <cstdint>

#if (defined(__x86_64__) || defined(_M_X64)) && !defined(SVT_DISABLE_AVX2) && \
    (defined(__GNUC__) || defined(__clang__))
#define SVT_LOCKSTEP_HAVE_AVX2 1
#include <immintrin.h>
#else
#define SVT_LOCKSTEP_HAVE_AVX2 0
#endif

// The AVX-512 variant rides on the same toolchain requirements as AVX2;
// -DSVT_DISABLE_AVX512 compiles just it out (matching vecmath's lanes).
#if SVT_LOCKSTEP_HAVE_AVX2 && !defined(SVT_DISABLE_AVX512)
#define SVT_LOCKSTEP_HAVE_AVX512 1
#else
#define SVT_LOCKSTEP_HAVE_AVX512 0
#endif

namespace svt {
namespace lockstep {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// One xoshiro256++ output-and-advance of lane `lane` of an SoA state
/// block — the scalar stream walker behind BlockRng::Next(), the fill
/// kernels' phase catch-up, and the megakernels' tails and resumes.
inline uint64_t StepLaneSoA(uint64_t* s, size_t lane) {
  uint64_t s0 = s[lane];
  uint64_t s1 = s[4 + lane];
  uint64_t s2 = s[8 + lane];
  uint64_t s3 = s[12 + lane];
  const uint64_t result = Rotl(s0 + s3, 23) + s0;
  const uint64_t t = s1 << 17;
  s2 ^= s0;
  s3 ^= s1;
  s1 ^= s2;
  s0 ^= s3;
  s2 ^= t;
  s3 = Rotl(s3, 45);
  s[lane] = s0;
  s[4 + lane] = s1;
  s[8 + lane] = s2;
  s[12 + lane] = s3;
  return result;
}

#if SVT_LOCKSTEP_HAVE_AVX2

__attribute__((target("avx2"))) inline __m256i Rotl4Avx2(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k),
                         _mm256_srli_epi64(x, 64 - k));
}

/// One lockstep step of all four lanes held in registers: returns their
/// four outputs (stream words, lane order) and advances the state.
__attribute__((target("avx2"))) inline __m256i Step4Avx2(__m256i& s0,
                                                         __m256i& s1,
                                                         __m256i& s2,
                                                         __m256i& s3) {
  const __m256i result =
      _mm256_add_epi64(Rotl4Avx2(_mm256_add_epi64(s0, s3), 23), s0);
  const __m256i t = _mm256_slli_epi64(s1, 17);
  s2 = _mm256_xor_si256(s2, s0);
  s3 = _mm256_xor_si256(s3, s1);
  s1 = _mm256_xor_si256(s1, s2);
  s0 = _mm256_xor_si256(s0, s3);
  s2 = _mm256_xor_si256(s2, t);
  s3 = Rotl4Avx2(s3, 45);
  return result;
}

#endif  // SVT_LOCKSTEP_HAVE_AVX2

#if SVT_LOCKSTEP_HAVE_AVX512

/// AVX-512VL variant of Step4Avx2: the two rotates use the native 64-bit
/// rotate instruction (vprolq) instead of shift+shift+or — the rotation
/// is exact either way, so outputs are bit-identical.
__attribute__((target("avx512f,avx512vl"))) inline __m256i Step4Avx512(
    __m256i& s0, __m256i& s1, __m256i& s2, __m256i& s3) {
  const __m256i result =
      _mm256_add_epi64(_mm256_rol_epi64(_mm256_add_epi64(s0, s3), 23), s0);
  const __m256i t = _mm256_slli_epi64(s1, 17);
  s2 = _mm256_xor_si256(s2, s0);
  s3 = _mm256_xor_si256(s3, s1);
  s1 = _mm256_xor_si256(s1, s2);
  s0 = _mm256_xor_si256(s0, s3);
  s2 = _mm256_xor_si256(s2, t);
  s3 = _mm256_rol_epi64(s3, 45);
  return result;
}

#endif  // SVT_LOCKSTEP_HAVE_AVX512

}  // namespace lockstep
}  // namespace svt

#endif  // SPARSEVEC_COMMON_RNG_LOCKSTEP_H_
