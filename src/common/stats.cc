#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace svt {

void LatencyHistogram::Add(int64_t nanos) {
  // Negative durations can only come from a skewed clock source; clamp
  // into bucket 0 rather than index out of range.
  const uint64_t v = nanos > 0 ? static_cast<uint64_t>(nanos) : 0;
  counts_[std::bit_width(v)] += 1;
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
}

int64_t LatencyHistogram::PercentileUpperNanos(double p) const {
  SVT_CHECK(p >= 0.0 && p <= 1.0) << "percentile must be in [0, 1], got "
                                  << p;
  if (count_ == 0) return 0;
  // Smallest bucket whose cumulative count covers p of the total
  // (nearest-rank, ranks 1..count_): its upper edge bounds the true
  // quantile from above.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(
                               std::ceil(p * static_cast<double>(count_))));
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      return b == 0 ? 0
                    : static_cast<int64_t>((uint64_t{1} << b) - 1);
    }
  }
  return std::numeric_limits<int64_t>::max();
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  SVT_CHECK(count_ > 0) << "min() of empty RunningStats";
  return min_;
}

double RunningStats::max() const {
  SVT_CHECK(count_ > 0) << "max() of empty RunningStats";
  return max_;
}

std::string RunningStats::ToString(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << mean() << "±" << stddev();
  return os.str();
}

double Mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.mean();
}

double SampleStddev(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.stddev();
}

namespace {

// Inverse standard normal CDF (Acklam's rational approximation), accurate to
// ~1e-9 over (0,1); plenty for confidence bounds on audit counts.
double NormalQuantile(double p) {
  SVT_CHECK(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1.0 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double BinomialUpperBound(int64_t successes, int64_t trials,
                          double confidence) {
  SVT_CHECK(trials > 0);
  SVT_CHECK(successes >= 0 && successes <= trials);
  SVT_CHECK(confidence > 0.5 && confidence < 1.0);
  // With every trial a success the true p may be 1; the continuity
  // correction below would spuriously exclude it.
  if (successes == trials) return 1.0;
  // Wilson score interval upper limit with continuity correction; this is a
  // conservative, closed-form stand-in for exact Clopper-Pearson that is
  // accurate enough for the audit's order-of-magnitude claims.
  const double n = static_cast<double>(trials);
  const double phat =
      (static_cast<double>(successes) + 0.5) / (n + 1.0);  // continuity
  const double z = NormalQuantile(confidence);
  const double z2 = z * z;
  const double center = phat + z2 / (2.0 * n);
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  const double denom = 1.0 + z2 / n;
  return std::min(1.0, (center + half) / denom);
}

double BinomialLowerBound(int64_t successes, int64_t trials,
                          double confidence) {
  SVT_CHECK(trials > 0);
  SVT_CHECK(successes >= 0 && successes <= trials);
  SVT_CHECK(confidence > 0.5 && confidence < 1.0);
  const double n = static_cast<double>(trials);
  const double phat = (static_cast<double>(successes) - 0.5) / (n + 1.0);
  if (phat <= 0.0) return 0.0;
  const double z = NormalQuantile(confidence);
  const double z2 = z * z;
  const double center = phat + z2 / (2.0 * n);
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  const double denom = 1.0 + z2 / n;
  return std::max(0.0, (center - half) / denom);
}

}  // namespace svt
