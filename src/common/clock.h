// Injectable monotonic time source.
//
// The serving layer (admission control, deadlines, per-shard latency) needs
// a notion of time, but wall-clock reads would make every overload and
// deadline test nondeterministic. All time in src/serving flows through
// this interface instead: production uses RealClock() (steady_clock),
// tests and the fault-injection harness use a VirtualClock they advance by
// hand, so "a shard stalled for 50ms" or "this deadline expired" are exact,
// reproducible events rather than sleeps and races.
//
// Times are nanoseconds on an arbitrary monotonic epoch (steady_clock's
// for RealClock, 0 for a fresh VirtualClock). Deadlines are absolute
// values in the same domain: callers compute them as NowNanos() + budget.

#ifndef SPARSEVEC_COMMON_CLOCK_H_
#define SPARSEVEC_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace svt {

/// Abstract monotonic clock. Implementations must be thread-safe: serving
/// reads the clock concurrently from every shard slice.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since the clock's epoch. Monotonic
  /// non-decreasing across threads.
  virtual int64_t NowNanos() = 0;

  /// Blocks (or, for virtual clocks, advances time) for `nanos` >= 0.
  /// This is what an injected shard stall calls, so a VirtualClock turns
  /// "the shard hung for 50ms" into a deterministic time jump while
  /// RealClock actually sleeps the thread.
  virtual void SleepFor(int64_t nanos) = 0;
};

/// Process-wide std::chrono::steady_clock adapter; never destroyed.
Clock* RealClock();

/// Deterministic test clock: time moves only when told to. SleepFor()
/// advances the shared time instead of blocking, so a "stalled" shard
/// finishes instantly in real time while everything downstream observes
/// the stall through NowNanos().
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() override {
    return now_.load(std::memory_order_relaxed);
  }

  void SleepFor(int64_t nanos) override { Advance(nanos); }

  /// Moves time forward by `nanos` >= 0.
  void Advance(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace svt

#endif  // SPARSEVEC_COMMON_CLOCK_H_
