// Pluggable vectorized math layer: the polynomial log/exp kernel family
// behind every noise draw in the library.
//
// Motivation: the batch engine's tier-2 path (and every bulk sampler) was
// bound by scalar libm log() at ~15-20 ns/draw — the dominant cost exactly
// in near-threshold SVT workloads, where chunks cannot be proven all-below
// and every ν must be materialized. This layer replaces libm on the
// sampling side with a fixed polynomial kernel that exists in three lanes:
//
//   * a scalar reference (Log/Exp below),
//   * an AVX2 4-wide implementation, and
//   * an AVX-512 8-wide implementation (AVX-512F+DQ+VL),
//
// selected by runtime CPUID dispatch and defined to produce *bit-identical*
// doubles. That guarantee is what lets
// the batch engine stay bitwise-equal to the streaming path (the pinned
// per-role draw-order contract on SpecDrivenSvt, core/svt.h) while being
// free to change dispatch level per host — results depend on the seed, not
// on the CPU the process landed on.
//
// How bit-identity is achieved:
//   * all lanes evaluate the same fdlibm-derived polynomials in the same
//     fixed Horner order, step for step;
//   * every step is an IEEE-754 correctly-rounded primitive (+ - * /),
//     identical scalar and per-SIMD-lane;
//   * no FMA is emitted in any lane: the SIMD paths use explicit
//     non-fused mul/add intrinsics, and vecmath.cc is compiled with
//     -ffp-contract=off so the compiler cannot contract the scalar lane
//     (see CMakeLists.txt);
//   * special operands (zero, subnormal, negative, ±inf, NaN, and for Exp
//     magnitudes beyond ±700) are detected per SIMD lane and delegated to
//     the scalar reference kernel.
//
// Accuracy: the kernels track libm to within a few ULP (the bound is
// asserted in tests/common_vecmath_test.cc); they are *not* bit-equal to
// libm, which is why switching the samplers onto this layer was a one-time
// golden re-record (see README "Performance").
//
// Dispatch: resolved once per process from CPUID; the SVT_FORCE_SCALAR
// environment variable (set to anything but "0"/"") pins the scalar lane,
// SVT_MAX_DISPATCH ("scalar"/"avx2"/"avx512", or the enum value 0/1/2)
// caps the available levels — a capped level reads as unsupported
// everywhere, for auto-detection AND SetDispatchLevel(), so e.g.
// SVT_MAX_DISPATCH=avx2 on an AVX-512 host exercises the AVX2 lane even
// through tests that flip levels themselves — and SetDispatchLevel()
// lets tests and benches flip levels at runtime to assert cross-dispatch
// equality in one binary. Compiling with -DSVT_DISABLE_AVX2 removes every
// SIMD lane (for -mno-avx2 CI legs and non-x86 hosts); -DSVT_DISABLE_AVX512
// removes only the AVX-512 lane.

#ifndef SPARSEVEC_COMMON_VECMATH_H_
#define SPARSEVEC_COMMON_VECMATH_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace svt {
namespace vec {

/// Available kernel implementations, in increasing width.
enum class DispatchLevel {
  kScalar = 0,  ///< portable reference lane (always available)
  kAvx2 = 1,    ///< 4-wide AVX2 lane (x86-64 with AVX2, unless compiled out)
  kAvx512 = 2,  ///< 8-wide AVX-512 lane (needs AVX-512F+DQ+VL)
};

/// All levels, widest last — the canonical iteration order for
/// cross-dispatch tests and benches.
inline constexpr DispatchLevel kAllDispatchLevels[] = {
    DispatchLevel::kScalar, DispatchLevel::kAvx2, DispatchLevel::kAvx512};

/// Human-readable name ("scalar", "avx2", "avx512") for logs and benches.
const char* DispatchLevelName(DispatchLevel level);

/// True if `level` can execute on this host, was compiled in, and lies
/// within the SVT_MAX_DISPATCH cap (capped levels read as unsupported, so
/// the cap binds SetDispatchLevel() too).
bool DispatchLevelSupported(DispatchLevel level);

/// The level the Block kernels currently run at. Resolved on first use:
/// the widest supported level, unless SVT_FORCE_SCALAR is set in the
/// environment (then kScalar) or SVT_MAX_DISPATCH caps it lower.
DispatchLevel ActiveDispatchLevel();

/// Parses an SVT_MAX_DISPATCH value ("scalar"/"avx2"/"avx512" or "0"/"1"/
/// "2", case-insensitive) into the cap it denotes. Unset/empty means "no
/// cap" and returns the widest level; a present-but-unrecognized value is
/// a fatal SVT_CHECK (a typo must not silently uncap a CI leg). Exposed
/// for tests; the environment is read once at dispatch-resolution time.
DispatchLevel ParseDispatchCap(const char* value);

/// Overrides the active level (tests/benches). Returns false — leaving the
/// level unchanged — if `level` is unsupported on this host. Thread-safe.
bool SetDispatchLevel(DispatchLevel level);

/// Natural log, scalar reference lane. Full domain: ±0 → -inf, negative →
/// NaN, +inf → +inf, NaN → NaN, subnormals exact via prescaling.
double Log(double x);

/// Natural exponential, scalar reference lane. Full domain: overflows to
/// +inf, underflows through the subnormal range to 0, NaN → NaN.
double Exp(double x);

/// The scalar word→exponential-magnitude map behind every draw in the
/// library: -Log(u) where u is `word` on the (0, 1] 53-bit lattice exactly
/// as Rng::ToUnitDoublePositive. This is the single-element form of
/// NegLogUnitPositiveBlock — streaming samplers call it so that scalar and
/// block draws are draw-for-draw bit-identical (same word, same double).
double NegLogUnitPositive(std::uint64_t word);

/// out[i] = Log(in[i]) at the active dispatch level. Bit-identical to a
/// scalar Log() loop at every level. In-place operation (out == in) is
/// allowed; other overlap is not. in.size() must equal out.size().
void LogBlock(std::span<const double> in, std::span<double> out);

/// out[i] = Exp(in[i]) at the active dispatch level; same aliasing and
/// bit-identity contract as LogBlock.
void ExpBlock(std::span<const double> in, std::span<double> out);

/// Fused sampling kernel: out[i] = -Log(u) where u is words[i * stride]
/// mapped onto the (0, 1] 53-bit lattice exactly as
/// Rng::ToUnitDoublePositive — i.e. the exponential magnitude behind every
/// Laplace/Gumbel draw, straight from the raw RNG words with no
/// intermediate pass. stride is 1 (Gumbel: every word) or 2 (Laplace: the
/// even words are magnitudes, the odd words signs). words.size() must be
/// stride * out.size(). Dispatched; bit-identical to the scalar
/// composition -Log(Rng::ToUnitDoublePositive(w)) at every level.
void NegLogUnitPositiveBlock(std::span<const std::uint64_t> words,
                             std::size_t stride, std::span<double> out);

/// The complete Laplace(mu, b) inverse-CDF transform, fused into one
/// dispatched pass over the raw word pairs: with e_i =
/// -Log(ToUnitDoublePositive(words[2i])) and be_i = b * e_i,
///   out[i] = mu + be_i   if bit 63 of words[2i+1] is set
///            mu + (-be_i) otherwise,
/// where -be_i is a sign-bit flip — IEEE-identical to the streaming
/// sampler's `sign-uniform < 0.5 ? mu - be : mu + be` (the sign uniform is
/// < 0.5 exactly when bit 63 of its word is 0, and a - b == a + (-b)
/// exactly). words.size() must be 2 * out.size(). This is the hottest
/// kernel in the system: the batch engine's tier-2 ν materialization.
void LaplaceTransformBlock(std::span<const std::uint64_t> words, double mu,
                           double b, std::span<double> out);

/// The complete one-sided Exponential(b) inverse-CDF transform, fused into
/// one dispatched pass over raw words:
///   out[i] = b * -Log(ToUnitDoublePositive(words[i])).
/// One word per variate (exponential noise carries no sign word), support
/// [0, +inf). Defined as the composition b * NegLogUnitPositiveBlock(words,
/// /*stride=*/1) and bit-identical to it at every dispatch level; the
/// scalar form is NegLogUnitPositive(word) * b with the product computed as
/// b * e in that operand order (one correctly-rounded multiply — the order
/// is pinned so streaming and batch agree bitwise). words.size() must equal
/// out.size().
void ExponentialTransformBlock(std::span<const std::uint64_t> words, double b,
                               std::span<double> out);

/// Reduction: max over in (in.size() >= 1), dispatched. Exact and
/// association-independent when no element is NaN (the tier-1 bound's
/// input); with NaNs the result is unspecified — some levels drop them —
/// so callers must already be conservative under NaN (the chunk bound is:
/// a NaN max fails its comparison and falls through to the exact scan).
double MaxBlock(std::span<const double> in);

/// Reduction: minimum of words[0], words[stride], words[2*stride], ...
/// (words.size() must be a multiple of stride; at least one element).
/// Exact at every dispatch level. stride 2 is the batch engine's bound on
/// the magnitude uniforms (the even words of a ν chunk).
std::uint64_t MinWordBlock(std::span<const std::uint64_t> words,
                           std::size_t stride);

/// Returns the smallest i with a[i] + b[i] >= bar — the SVT positive test
/// of the batch engine's tier-2 compare-scan — or a.size() if no element
/// passes. One correctly-rounded add and one ordered >= per element, so
/// the index is bit-identical at every dispatch level (NaN sums never
/// match, as in the scalar loop). a.size() must equal b.size().
std::size_t FindFirstSumGe(std::span<const double> a,
                           std::span<const double> b, double bar);

/// As FindFirstSumGe without the addend: smallest i with a[i] >= bar.
std::size_t FindFirstGe(std::span<const double> a, double bar);

/// Per-query-threshold compare-scan: smallest i with a[i] >= bars[i] + rho
/// — the SVT positive test when every query carries its own threshold
/// (Alg. 7's general form; the bar varies per element, so the common-
/// threshold kernels above don't apply). The bar sum bars[i] + rho is one
/// correctly-rounded add and the compare is ordered >=, exactly the
/// streaming test, so the index is bit-identical at every dispatch level
/// (NaN operands never match, as in the scalar loop). a.size() must equal
/// bars.size(); returns a.size() if no element passes.
std::size_t FindFirstGePairwise(std::span<const double> a,
                                std::span<const double> bars, double rho);

/// The general per-query positive test with query noise: smallest i with
/// a[i] + b[i] >= bars[i] + rho (each side one rounded add, ordered >=).
/// Sizes must match; returns a.size() if no element passes.
std::size_t FindFirstSumGePairwise(std::span<const double> a,
                                   std::span<const double> b,
                                   std::span<const double> bars, double rho);

// --- Fused single-pass sample-and-scan kernels ----------------------------
//
// The batch engine's tier-2 scans used to be three passes over L1-sized
// scratch per chunk: FillUint64 → words, LaplaceTransformBlock → ν block,
// FindFirst* over the ν block. The FusedLaplaceScan* family collapses the
// last two: it reads the raw word pairs, applies the complete Laplace
// inverse-CDF transform in registers, and tests the SVT positive condition
// in the same pass — the ν block is never materialized. The transform is
// operation-for-operation the one LaplaceTransformBlock runs (the kernels
// are *defined* by that composition, which the tests diff against at every
// dispatch level), so the hit index, the returned ν, and the word→ν
// lattice are bit-identical to the unfused sequence — fusion is
// draw-order-neutral and needed no golden re-record.
//
// Chunk tails shorter than one SIMD width delegate to the scalar lane,
// the same rule as every other kernel in the family (regression-tested on
// odd tails and empty spans).

/// Result of a fused sample-and-scan pass.
struct FusedScanHit {
  /// First passing element, or the element count when none passes.
  std::size_t index = 0;
  /// The transformed ν at `index` — exactly the value the unfused
  /// LaplaceTransformBlock would have written there (the caller needs it
  /// for Alg. 3's q+ν output and as the comparison noise of the positive).
  /// 0.0 when there is no hit.
  double nu = 0.0;
};

/// Pure-noise scan: smallest i with ν_i >= bar, where ν_i is the
/// Laplace(mu, b) transform of the word pair (words[2i], words[2i+1]) —
/// magnitude word even, sign word odd, as in LaplaceTransformBlock.
/// words.size() must be even; the element count is words.size() / 2.
FusedScanHit FusedLaplaceScanGe(std::span<const std::uint64_t> words,
                                double mu, double b, double bar);

/// The common-threshold tier-2 positive test, fused: smallest i with
/// a[i] + ν_i >= bar (one rounded add, ordered >=, exactly the streaming
/// test). words.size() must be 2 * a.size().
FusedScanHit FusedLaplaceScanSumGe(std::span<const std::uint64_t> words,
                                   double mu, double b,
                                   std::span<const double> a, double bar);

/// Per-query-bar pure-noise scan: smallest i with ν_i >= bars[i] + rho.
/// words.size() must be 2 * bars.size().
FusedScanHit FusedLaplaceScanGePairwise(std::span<const std::uint64_t> words,
                                        double mu, double b,
                                        std::span<const double> bars,
                                        double rho);

/// The per-query-threshold tier-2 positive test, fused: smallest i with
/// a[i] + ν_i >= bars[i] + rho (each side one rounded add, ordered >=).
/// words.size() must be 2 * a.size(); a.size() must equal bars.size().
FusedScanHit FusedLaplaceScanSumGePairwise(
    std::span<const std::uint64_t> words, double mu, double b,
    std::span<const double> a, std::span<const double> bars, double rho);

// --- Fused exponential-noise sample-and-scan kernels ----------------------
//
// The exponential-noise counterparts of the FusedLaplaceScan* family, for
// variants whose query noise ν is one-sided Exponential(b) rather than
// Laplace. One raw word per variate (no sign word), so words.size() equals
// the element count — not twice it. Each kernel is *defined* as the
// composition ExponentialTransformBlock + FindFirst* (the tests diff fused
// against unfused at every dispatch level), so hit index, returned ν, and
// the word→ν lattice are bit-identical to the unfused sequence. Tails
// shorter than one SIMD width delegate to the scalar lane.

/// Pure-noise scan: smallest i with ν_i >= bar, where
/// ν_i = b * -Log(ToUnitDoublePositive(words[i])). The element count is
/// words.size().
FusedScanHit FusedExpScanGe(std::span<const std::uint64_t> words, double b,
                            double bar);

/// The common-threshold tier-2 positive test, fused: smallest i with
/// a[i] + ν_i >= bar (one rounded add, ordered >=, exactly the streaming
/// test). words.size() must equal a.size().
FusedScanHit FusedExpScanSumGe(std::span<const std::uint64_t> words, double b,
                               std::span<const double> a, double bar);

/// Per-query-bar pure-noise scan: smallest i with ν_i >= bars[i] + rho.
/// words.size() must equal bars.size().
FusedScanHit FusedExpScanGePairwise(std::span<const std::uint64_t> words,
                                    double b, std::span<const double> bars,
                                    double rho);

/// The per-query-threshold tier-2 positive test, fused: smallest i with
/// a[i] + ν_i >= bars[i] + rho (each side one rounded add, ordered >=).
/// words.size() must equal a.size(); a.size() must equal bars.size().
FusedScanHit FusedExpScanSumGePairwise(std::span<const std::uint64_t> words,
                                       double b, std::span<const double> a,
                                       std::span<const double> bars,
                                       double rho);

}  // namespace vec
}  // namespace svt

#endif  // SPARSEVEC_COMMON_VECMATH_H_
