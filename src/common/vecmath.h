// Pluggable vectorized math layer: the polynomial log/exp kernel family
// behind every noise draw in the library.
//
// Motivation: the batch engine's tier-2 path (and every bulk sampler) was
// bound by scalar libm log() at ~15-20 ns/draw — the dominant cost exactly
// in near-threshold SVT workloads, where chunks cannot be proven all-below
// and every ν must be materialized. This layer replaces libm on the
// sampling side with a fixed polynomial kernel that exists in three lanes:
//
//   * a scalar reference (Log/Exp below),
//   * an AVX2 4-wide implementation, and
//   * an AVX-512 8-wide implementation (AVX-512F+DQ+VL),
//
// selected by runtime CPUID dispatch and defined to produce *bit-identical*
// doubles. That guarantee is what lets
// the batch engine stay bitwise-equal to the streaming path (the pinned
// per-role draw-order contract on SpecDrivenSvt, core/svt.h) while being
// free to change dispatch level per host — results depend on the seed, not
// on the CPU the process landed on.
//
// How bit-identity is achieved:
//   * all lanes evaluate the same fdlibm-derived polynomials in the same
//     fixed Horner order, step for step;
//   * every step is an IEEE-754 correctly-rounded primitive (+ - * /),
//     identical scalar and per-SIMD-lane;
//   * no FMA is emitted in any lane: the SIMD paths use explicit
//     non-fused mul/add intrinsics, and vecmath.cc is compiled with
//     -ffp-contract=off so the compiler cannot contract the scalar lane
//     (see CMakeLists.txt);
//   * special operands (zero, subnormal, negative, ±inf, NaN, and for Exp
//     magnitudes beyond ±700) are detected per SIMD lane and delegated to
//     the scalar reference kernel.
//
// Accuracy: the kernels track libm to within a few ULP (the bound is
// asserted in tests/common_vecmath_test.cc); they are *not* bit-equal to
// libm, which is why switching the samplers onto this layer was a one-time
// golden re-record (see README "Performance").
//
// Dispatch: resolved once per process from CPUID; the SVT_FORCE_SCALAR
// environment variable (set to anything but "0"/"") pins the scalar lane,
// SVT_MAX_DISPATCH ("scalar"/"avx2"/"avx512", or the enum value 0/1/2)
// caps the available levels — a capped level reads as unsupported
// everywhere, for auto-detection AND SetDispatchLevel(), so e.g.
// SVT_MAX_DISPATCH=avx2 on an AVX-512 host exercises the AVX2 lane even
// through tests that flip levels themselves — and SetDispatchLevel()
// lets tests and benches flip levels at runtime to assert cross-dispatch
// equality in one binary. Compiling with -DSVT_DISABLE_AVX2 removes every
// SIMD lane (for -mno-avx2 CI legs and non-x86 hosts); -DSVT_DISABLE_AVX512
// removes only the AVX-512 lane.

#ifndef SPARSEVEC_COMMON_VECMATH_H_
#define SPARSEVEC_COMMON_VECMATH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/rng.h"

namespace svt {
namespace vec {

/// Available kernel implementations, in increasing width.
enum class DispatchLevel {
  kScalar = 0,  ///< portable reference lane (always available)
  kAvx2 = 1,    ///< 4-wide AVX2 lane (x86-64 with AVX2, unless compiled out)
  kAvx512 = 2,  ///< 8-wide AVX-512 lane (needs AVX-512F+DQ+VL)
};

/// All levels, widest last — the canonical iteration order for
/// cross-dispatch tests and benches.
inline constexpr DispatchLevel kAllDispatchLevels[] = {
    DispatchLevel::kScalar, DispatchLevel::kAvx2, DispatchLevel::kAvx512};

/// Human-readable name ("scalar", "avx2", "avx512") for logs and benches.
const char* DispatchLevelName(DispatchLevel level);

/// True if `level` can execute on this host, was compiled in, and lies
/// within the SVT_MAX_DISPATCH cap (capped levels read as unsupported, so
/// the cap binds SetDispatchLevel() too).
bool DispatchLevelSupported(DispatchLevel level);

/// The level the Block kernels currently run at. Resolved on first use:
/// the widest supported level, unless SVT_FORCE_SCALAR is set in the
/// environment (then kScalar) or SVT_MAX_DISPATCH caps it lower.
DispatchLevel ActiveDispatchLevel();

/// Parses an SVT_MAX_DISPATCH value ("scalar"/"avx2"/"avx512" or "0"/"1"/
/// "2", case-insensitive) into the cap it denotes. Unset/empty means "no
/// cap" and returns the widest level; a present-but-unrecognized value is
/// a fatal SVT_CHECK (a typo must not silently uncap a CI leg). Exposed
/// for tests; the environment is read once at dispatch-resolution time.
DispatchLevel ParseDispatchCap(const char* value);

/// Overrides the active level (tests/benches). Returns false — leaving the
/// level unchanged — if `level` is unsupported on this host. Thread-safe.
bool SetDispatchLevel(DispatchLevel level);

/// Natural log, scalar reference lane. Full domain: ±0 → -inf, negative →
/// NaN, +inf → +inf, NaN → NaN, subnormals exact via prescaling.
double Log(double x);

/// Natural exponential, scalar reference lane. Full domain: overflows to
/// +inf, underflows through the subnormal range to 0, NaN → NaN.
double Exp(double x);

/// The scalar word→exponential-magnitude map behind every draw in the
/// library: -Log(u) where u is `word` on the (0, 1] 53-bit lattice exactly
/// as Rng::ToUnitDoublePositive. This is the single-element form of
/// NegLogUnitPositiveBlock — streaming samplers call it so that scalar and
/// block draws are draw-for-draw bit-identical (same word, same double).
double NegLogUnitPositive(std::uint64_t word);

/// out[i] = Log(in[i]) at the active dispatch level. Bit-identical to a
/// scalar Log() loop at every level. In-place operation (out == in) is
/// allowed; other overlap is not. in.size() must equal out.size().
void LogBlock(std::span<const double> in, std::span<double> out);

/// out[i] = Exp(in[i]) at the active dispatch level; same aliasing and
/// bit-identity contract as LogBlock.
void ExpBlock(std::span<const double> in, std::span<double> out);

/// Fused sampling kernel: out[i] = -Log(u) where u is words[i * stride]
/// mapped onto the (0, 1] 53-bit lattice exactly as
/// Rng::ToUnitDoublePositive — i.e. the exponential magnitude behind every
/// Laplace/Gumbel draw, straight from the raw RNG words with no
/// intermediate pass. stride is 1 (Gumbel: every word) or 2 (Laplace: the
/// even words are magnitudes, the odd words signs). words.size() must be
/// stride * out.size(). Dispatched; bit-identical to the scalar
/// composition -Log(Rng::ToUnitDoublePositive(w)) at every level.
void NegLogUnitPositiveBlock(std::span<const std::uint64_t> words,
                             std::size_t stride, std::span<double> out);

/// The complete Laplace(mu, b) inverse-CDF transform, fused into one
/// dispatched pass over the raw word pairs: with e_i =
/// -Log(ToUnitDoublePositive(words[2i])) and be_i = b * e_i,
///   out[i] = mu + be_i   if bit 63 of words[2i+1] is set
///            mu + (-be_i) otherwise,
/// where -be_i is a sign-bit flip — IEEE-identical to the streaming
/// sampler's `sign-uniform < 0.5 ? mu - be : mu + be` (the sign uniform is
/// < 0.5 exactly when bit 63 of its word is 0, and a - b == a + (-b)
/// exactly). words.size() must be 2 * out.size(). This is the hottest
/// kernel in the system: the batch engine's tier-2 ν materialization.
void LaplaceTransformBlock(std::span<const std::uint64_t> words, double mu,
                           double b, std::span<double> out);

/// The complete one-sided Exponential(b) inverse-CDF transform, fused into
/// one dispatched pass over raw words:
///   out[i] = b * -Log(ToUnitDoublePositive(words[i])).
/// One word per variate (exponential noise carries no sign word), support
/// [0, +inf). Defined as the composition b * NegLogUnitPositiveBlock(words,
/// /*stride=*/1) and bit-identical to it at every dispatch level; the
/// scalar form is NegLogUnitPositive(word) * b with the product computed as
/// b * e in that operand order (one correctly-rounded multiply — the order
/// is pinned so streaming and batch agree bitwise). words.size() must equal
/// out.size().
void ExponentialTransformBlock(std::span<const std::uint64_t> words, double b,
                               std::span<double> out);

/// Reduction: max over in (in.size() >= 1), dispatched. Exact and
/// association-independent when no element is NaN (the tier-1 bound's
/// input); with NaNs the result is unspecified — some levels drop them —
/// so callers must already be conservative under NaN (the chunk bound is:
/// a NaN max fails its comparison and falls through to the exact scan).
double MaxBlock(std::span<const double> in);

/// Reduction: min over in (in.size() >= 1), dispatched. Same contract
/// shape as MaxBlock: exact and association-independent when no element is
/// NaN (the per-query bound's threshold-side input); with NaNs the result
/// is unspecified — callers must already be conservative under NaN (the
/// span bound is: a NaN-threshold element can never fire its positive
/// test, so any lower bound over the remaining thresholds stays sound).
double MinBlock(std::span<const double> in);

/// Reduction: minimum of words[0], words[stride], words[2*stride], ...
/// (words.size() must be a multiple of stride; at least one element).
/// Exact at every dispatch level. stride 2 is the batch engine's bound on
/// the magnitude uniforms (the even words of a ν chunk).
std::uint64_t MinWordBlock(std::span<const std::uint64_t> words,
                           std::size_t stride);

// --- Quantized bound reductions -------------------------------------------
//
// Integer max/min over the quantized bound codes of the two-level bound
// prefilter (data/bound_prefilter.h): the primary bound level reduces
// uint8/uint16 codes instead of doubles, touching 4-8x less memory per
// span. Unsigned integer max/min is exact and association-free, so every
// lane returns the identical code — no rounding contract needed. The
// AVX-512 dispatch level reuses the AVX2 lane: 512-bit byte/word max
// needs AVX-512BW, which is outside the library's F+DQ+VL gate, and an
// exact integer reduction gains nothing from a wider accumulator that
// the 256-bit lane doesn't already deliver from L1/L2.

/// Max over a span of quantized bound codes (codes.size() >= 1).
std::uint8_t QuantizedSpanMax(std::span<const std::uint8_t> codes);
std::uint16_t QuantizedSpanMax(std::span<const std::uint16_t> codes);

/// Min over a span of quantized bound codes (codes.size() >= 1).
std::uint8_t QuantizedSpanMin(std::span<const std::uint8_t> codes);
std::uint16_t QuantizedSpanMin(std::span<const std::uint16_t> codes);

/// Returns the smallest i with a[i] + b[i] >= bar — the SVT positive test
/// of the batch engine's tier-2 compare-scan — or a.size() if no element
/// passes. One correctly-rounded add and one ordered >= per element, so
/// the index is bit-identical at every dispatch level (NaN sums never
/// match, as in the scalar loop). a.size() must equal b.size().
std::size_t FindFirstSumGe(std::span<const double> a,
                           std::span<const double> b, double bar);

/// As FindFirstSumGe without the addend: smallest i with a[i] >= bar.
std::size_t FindFirstGe(std::span<const double> a, double bar);

/// Per-query-threshold compare-scan: smallest i with a[i] >= bars[i] + rho
/// — the SVT positive test when every query carries its own threshold
/// (Alg. 7's general form; the bar varies per element, so the common-
/// threshold kernels above don't apply). The bar sum bars[i] + rho is one
/// correctly-rounded add and the compare is ordered >=, exactly the
/// streaming test, so the index is bit-identical at every dispatch level
/// (NaN operands never match, as in the scalar loop). a.size() must equal
/// bars.size(); returns a.size() if no element passes.
std::size_t FindFirstGePairwise(std::span<const double> a,
                                std::span<const double> bars, double rho);

/// The general per-query positive test with query noise: smallest i with
/// a[i] + b[i] >= bars[i] + rho (each side one rounded add, ordered >=).
/// Sizes must match; returns a.size() if no element passes.
std::size_t FindFirstSumGePairwise(std::span<const double> a,
                                   std::span<const double> b,
                                   std::span<const double> bars, double rho);

// --- Fused single-pass sample-and-scan kernels ----------------------------
//
// The batch engine's tier-2 scans used to be three passes over L1-sized
// scratch per chunk: FillUint64 → words, LaplaceTransformBlock → ν block,
// FindFirst* over the ν block. The FusedLaplaceScan* family collapses the
// last two: it reads the raw word pairs, applies the complete Laplace
// inverse-CDF transform in registers, and tests the SVT positive condition
// in the same pass — the ν block is never materialized. The transform is
// operation-for-operation the one LaplaceTransformBlock runs (the kernels
// are *defined* by that composition, which the tests diff against at every
// dispatch level), so the hit index, the returned ν, and the word→ν
// lattice are bit-identical to the unfused sequence — fusion is
// draw-order-neutral and needed no golden re-record.
//
// Chunk tails shorter than one SIMD width delegate to the scalar lane,
// the same rule as every other kernel in the family (regression-tested on
// odd tails and empty spans).

/// Result of a fused sample-and-scan pass.
struct FusedScanHit {
  /// First passing element, or the element count when none passes.
  std::size_t index = 0;
  /// The transformed ν at `index` — exactly the value the unfused
  /// LaplaceTransformBlock would have written there (the caller needs it
  /// for Alg. 3's q+ν output and as the comparison noise of the positive).
  /// 0.0 when there is no hit.
  double nu = 0.0;
};

/// Pure-noise scan: smallest i with ν_i >= bar, where ν_i is the
/// Laplace(mu, b) transform of the word pair (words[2i], words[2i+1]) —
/// magnitude word even, sign word odd, as in LaplaceTransformBlock.
/// words.size() must be even; the element count is words.size() / 2.
FusedScanHit FusedLaplaceScanGe(std::span<const std::uint64_t> words,
                                double mu, double b, double bar);

/// The common-threshold tier-2 positive test, fused: smallest i with
/// a[i] + ν_i >= bar (one rounded add, ordered >=, exactly the streaming
/// test). words.size() must be 2 * a.size().
FusedScanHit FusedLaplaceScanSumGe(std::span<const std::uint64_t> words,
                                   double mu, double b,
                                   std::span<const double> a, double bar);

/// Per-query-bar pure-noise scan: smallest i with ν_i >= bars[i] + rho.
/// words.size() must be 2 * bars.size().
FusedScanHit FusedLaplaceScanGePairwise(std::span<const std::uint64_t> words,
                                        double mu, double b,
                                        std::span<const double> bars,
                                        double rho);

/// The per-query-threshold tier-2 positive test, fused: smallest i with
/// a[i] + ν_i >= bars[i] + rho (each side one rounded add, ordered >=).
/// words.size() must be 2 * a.size(); a.size() must equal bars.size().
FusedScanHit FusedLaplaceScanSumGePairwise(
    std::span<const std::uint64_t> words, double mu, double b,
    std::span<const double> a, std::span<const double> bars, double rho);

// --- Fused exponential-noise sample-and-scan kernels ----------------------
//
// The exponential-noise counterparts of the FusedLaplaceScan* family, for
// variants whose query noise ν is one-sided Exponential(b) rather than
// Laplace. One raw word per variate (no sign word), so words.size() equals
// the element count — not twice it. Each kernel is *defined* as the
// composition ExponentialTransformBlock + FindFirst* (the tests diff fused
// against unfused at every dispatch level), so hit index, returned ν, and
// the word→ν lattice are bit-identical to the unfused sequence. Tails
// shorter than one SIMD width delegate to the scalar lane.

/// Pure-noise scan: smallest i with ν_i >= bar, where
/// ν_i = b * -Log(ToUnitDoublePositive(words[i])). The element count is
/// words.size().
FusedScanHit FusedExpScanGe(std::span<const std::uint64_t> words, double b,
                            double bar);

/// The common-threshold tier-2 positive test, fused: smallest i with
/// a[i] + ν_i >= bar (one rounded add, ordered >=, exactly the streaming
/// test). words.size() must equal a.size().
FusedScanHit FusedExpScanSumGe(std::span<const std::uint64_t> words, double b,
                               std::span<const double> a, double bar);

/// Per-query-bar pure-noise scan: smallest i with ν_i >= bars[i] + rho.
/// words.size() must equal bars.size().
FusedScanHit FusedExpScanGePairwise(std::span<const std::uint64_t> words,
                                    double b, std::span<const double> bars,
                                    double rho);

/// The per-query-threshold tier-2 positive test, fused: smallest i with
/// a[i] + ν_i >= bars[i] + rho (each side one rounded add, ordered >=).
/// words.size() must equal a.size(); a.size() must equal bars.size().
FusedScanHit FusedExpScanSumGePairwise(std::span<const std::uint64_t> words,
                                       double b, std::span<const double> a,
                                       std::span<const double> bars,
                                       double rho);

// --- Lane-resident generate-and-scan megakernels --------------------------
//
// The fused kernels above still read their raw words from an L1 scratch
// buffer that a FillUint64 pass wrote moments earlier — every word makes
// one round trip through memory. The Mega* family closes that last seam:
// it takes a BlockRng::State*, steps the four lockstep xoshiro256++ lanes
// *inside* the kernel (common/rng_lockstep.h holds the shared step
// primitives), and feeds the freshly generated words straight into the
// transform-and-test pipeline — words live only in registers.
//
// Stream contract (pinned; equivalence-tested at every dispatch level):
// the in-kernel generator walks exactly the BlockRng stream. A megakernel
// consuming k words from a given State produces word for word what
// BlockRng::Fill of k words from that State would have, and leaves the
// State at the exact position that Fill would have — in-kernel generation
// is stream-neutral, so megakernel and FillUint64 + fused-scan composition
// are interchangeable mid-stream in either direction.
//
// State advance: a scan that returns hit.index < n has consumed exactly
// (hit.index + 1) * wpv words (wpv = 2 for Laplace, 1 for exponential);
// a miss (hit.index == n) has consumed n * wpv. The caller resumes a
// mid-chunk scan by calling again with the same State — the stream
// position carries the progress. SIMD lanes require a lane-aligned entry
// (state->phase == 0) and delegate the whole call to the scalar lane
// otherwise; the hot paths always enter aligned (chunk and span word
// counts are multiples of the lane count).

/// Generate-and-bound pass: consumes count * wpv words from `state`,
/// recording for each span of `span_elems` elements the minimum of its
/// magnitude words (the words at element positions — every wpv-th word,
/// starting at the first) into span_min[j], and the State at the span's
/// first word into span_states[j] (skipped when null). Returns the
/// minimum over all magnitude words. Spans partition [0, count) in order;
/// the last may be short; span_min must hold ceil(count / span_elems)
/// entries. This is the megakernel replacement for FillUint64 +
/// MinWordBlock: the tier-1/tier-2 bound hierarchy gets its per-span and
/// per-chunk minima (bit-identical — unsigned min is association-free)
/// while the words are generated, and the recorded span states let the
/// scan phase regenerate exactly the spans the bound could not discharge.
std::uint64_t MegaFillMinSpans(BlockRng::State* state, std::size_t count,
                               std::size_t wpv, std::size_t span_elems,
                               std::uint64_t* span_min,
                               BlockRng::State* span_states);

/// The common-threshold tier-2 positive test as a megakernel: smallest i
/// in [0, n) with a[i] + ν_i >= bar, where ν_i is the Laplace(mu, b)
/// transform of the word pair generated in-kernel for element i. n =
/// a.size(); hit index, ν payload, and consumed stream position are
/// bit-identical to FillUint64(2n words) + FusedLaplaceScanSumGe.
FusedScanHit MegaLaplaceScanSumGe(BlockRng::State* state, double mu, double b,
                                  std::span<const double> a, double bar);

/// The per-query-threshold tier-2 positive test as a megakernel: smallest
/// i with a[i] + ν_i >= bars[i] + rho. a.size() must equal bars.size().
FusedScanHit MegaLaplaceScanSumGePairwise(BlockRng::State* state, double mu,
                                          double b, std::span<const double> a,
                                          std::span<const double> bars,
                                          double rho);

/// Exponential-noise megakernel (wpv = 1): smallest i with
/// a[i] + ν_i >= bar, ν_i = b * -Log(ToUnitDoublePositive(word_i)).
FusedScanHit MegaExpScanSumGe(BlockRng::State* state, double b,
                              std::span<const double> a, double bar);

/// Exponential-noise per-query megakernel: smallest i with
/// a[i] + ν_i >= bars[i] + rho. a.size() must equal bars.size().
FusedScanHit MegaExpScanSumGePairwise(BlockRng::State* state, double b,
                                      std::span<const double> a,
                                      std::span<const double> bars,
                                      double rho);

// --- bounded megakernel scans ---------------------------------------------
//
// A surviving tier-2 span fails its *span-max* bound, but almost all of
// its elements would still individually pass one: in a near-threshold
// chunk a span survives because of one or two large-|ν| candidates, and
// the log transform for everything else is wasted work. The bounded
// scans push the span bound down to word granularity: the caller derives
// a conservative integer threshold on the top 53 bits of the magnitude
// word (the bits ToUnitDoublePositive keeps — the unit double is strictly
// monotone in them), and any element at or above it is provably unable
// to fire the computed positive test, so the kernel skips its transform.
// SIMD lanes test a whole group with one shift and one compare and fall
// through to the full transform only when some lane is below the
// threshold. The raw stream advance is unchanged — skipped elements'
// words are still generated and consumed in registers — and skipped
// elements cannot hit, so hit indices, ν payloads, and end states are
// bit-identical to the unbounded megakernels (and therefore to the
// FillUint64 + fused-scan composition).

/// Conservative skip threshold for the bounded scans: the largest W such
/// that every element whose magnitude word w has (w >> 11) >= W provably
/// fails the computed test fl(a[i] + ν_i) >= bar whenever a[i] <= a_max.
/// Soundness is *verified*, not assumed: the candidate (inverted from
/// exp(-gap/b)) is accepted only if the same monotone bound chain the
/// tier bounds use — a_max + b * (-Log(u_W) + pad) * slack < bar, with
/// u_W the smallest unit double among skipped words — holds under the
/// production Log kernel; otherwise the threshold is nudged up and
/// re-verified, falling back to the never-skip sentinel (2^53, above
/// every w >> 11). Returned values never exceed 2^53 + 1, which the AVX2
/// lane relies on for its signed 64-bit compare.
std::uint64_t MegaSkipWordThreshold(double a_max, double bar, double b);

/// MegaLaplaceScanSumGe with transform skipping: bit-identical result
/// and end state, evaluating the log transform only for lockstep groups
/// holding a magnitude word below skip_word. skip_word must come from
/// MegaSkipWordThreshold(a_max, bar, b) with a_max >= max(a[i]).
FusedScanHit MegaLaplaceScanSumGeBounded(BlockRng::State* state, double mu,
                                         double b, std::span<const double> a,
                                         double bar, std::uint64_t skip_word);

/// MegaExpScanSumGe with transform skipping; same contract as the
/// Laplace variant (wpv = 1: every word is a magnitude word).
FusedScanHit MegaExpScanSumGeBounded(BlockRng::State* state, double b,
                                     std::span<const double> a, double bar,
                                     std::uint64_t skip_word);

/// Never-skip sentinel for the bounded scans and the fused
/// generate-bound-and-scan pass: (w >> 11) peaks at 2^53 - 1, so no
/// element is ever skipped at this threshold. MegaSkipWordThreshold
/// returns it whenever no sound skipping threshold exists, which callers
/// can use to pick a strategy (a never-skip fused pass degenerates into
/// a full per-element transform).
inline constexpr std::uint64_t kMegaNeverSkipWord = std::uint64_t{1} << 53;

/// Single-pass generate, bound, and scan: MegaFillMinSpans and a bounded
/// whole-chunk scan fused into one walk over the stream. Consumes
/// exactly a.size() * wpv words (no early exit), fills span_min /
/// span_states / the chunk minimum exactly as MegaFillMinSpans would,
/// and additionally records every element whose computed positive test
/// fires — fl(a[i] + ν_i) >= bar — in index order. Only lockstep groups
/// holding a magnitude word below skip_word run the ν transform
/// (MegaSkipWordThreshold contract: elements at or above it provably
/// cannot fire), so for near-threshold chunks the scan rides along at
/// ~the generate-and-bound pass's cost and surviving spans never need
/// regenerating. Returns the total number of positives found; only the
/// first max_hits are stored in hits (a larger return value signals the
/// record is incomplete and the tail must be rescanned, e.g. with the
/// bounded scans from the recorded span checkpoints). Hit indices and ν
/// payloads are bit-identical to the unbounded scan kernels' — and so to
/// the FillUint64 + fused-scan composition.
std::size_t MegaLaplaceFillMinScanSpans(
    BlockRng::State* state, double mu, double b, std::span<const double> a,
    double bar, std::uint64_t skip_word, std::size_t span_elems,
    std::uint64_t* span_min, BlockRng::State* span_states, FusedScanHit* hits,
    std::size_t max_hits, std::uint64_t* min_out);

/// Exponential-noise fused generate-bound-and-scan pass (wpv = 1); same
/// contract as the Laplace variant.
std::size_t MegaExpFillMinScanSpans(BlockRng::State* state, double b,
                                    std::span<const double> a, double bar,
                                    std::uint64_t skip_word,
                                    std::size_t span_elems,
                                    std::uint64_t* span_min,
                                    BlockRng::State* span_states,
                                    FusedScanHit* hits, std::size_t max_hits,
                                    std::uint64_t* min_out);

// --- per-query (pairwise) bounded megakernels ------------------------------
//
// The per-query-threshold path has no single chunk bar, so the bounded
// scans above cannot serve it: element i's bar is fl(t_i + rho). A span's
// conservative skip word instead pairs the span's answer UPPER bound with
// its bar LOWER bound (BoundPipeline::SpanSkipWordPerQuery): fl(dn + rho)
// <= fl(t_i + rho) for every t_i in the span (monotone rounded add), so
// MegaSkipWordThreshold(up, fl(dn + rho), b) skips only elements that
// provably fail every computed pairwise test in the span. The skip
// threshold is therefore a per-span VECTOR, not a chunk scalar — the
// fill-min-scan forms below reload it at every span boundary. Skipped
// elements' words are still generated and consumed (stream-neutral), so
// hit indices, ν payloads, and end states stay bit-identical to the
// unbounded pairwise kernels and the FillUint64 + fused composition.

/// MegaLaplaceScanSumGePairwise with transform skipping: bit-identical
/// result and end state, evaluating the transform only for lockstep
/// groups holding a magnitude word below skip_word. skip_word must be
/// sound for every element of the call (e.g. one span's
/// SpanSkipWordPerQuery when the call covers a single bound span).
FusedScanHit MegaLaplaceScanSumGePairwiseBounded(
    BlockRng::State* state, double mu, double b, std::span<const double> a,
    std::span<const double> bars, double rho, std::uint64_t skip_word);

/// Exponential-noise pairwise bounded scan (wpv = 1); same contract.
FusedScanHit MegaExpScanSumGePairwiseBounded(BlockRng::State* state, double b,
                                             std::span<const double> a,
                                             std::span<const double> bars,
                                             double rho,
                                             std::uint64_t skip_word);

/// Per-query fused generate-bound-and-scan: MegaFillMinSpans plus the
/// bounded pairwise positive test riding along, driven by a per-span
/// skip-word vector. skip_words[j] governs span j (kMegaNeverSkipWord
/// entries simply never skip); `hits` records every element with
/// fl(a[i] + ν_i) >= fl(bars[i] + rho) in index order, and the walk
/// never stops early — exactly a.size() * wpv words are consumed, so the
/// end state is the generate-and-bound pass's. *skipped_out gets the
/// number of elements whose magnitude word's top 53 bits reached their
/// span's skip word — a pure function of the words and the vector, so
/// the count is dispatch-level-independent (unlike the group-granular
/// transform elisions, which vary with lane width). Returns the total
/// number of positives; only the first max_hits are stored. No chunk-min
/// output: the per-query path has no tier-1 bound to feed.
std::size_t MegaLaplaceFillMinScanSpansPairwise(
    BlockRng::State* state, double mu, double b, std::span<const double> a,
    std::span<const double> bars, double rho, const std::uint64_t* skip_words,
    std::size_t span_elems, std::uint64_t* span_min,
    BlockRng::State* span_states, FusedScanHit* hits, std::size_t max_hits,
    std::uint64_t* skipped_out);

/// Exponential-noise per-query fused pass (wpv = 1); same contract.
std::size_t MegaExpFillMinScanSpansPairwise(
    BlockRng::State* state, double b, std::span<const double> a,
    std::span<const double> bars, double rho, const std::uint64_t* skip_words,
    std::size_t span_elems, std::uint64_t* span_min,
    BlockRng::State* span_states, FusedScanHit* hits, std::size_t max_hits,
    std::uint64_t* skipped_out);

/// Scratch-buffer counterpart of the fused passes' skipped-element count,
/// for the composition kernel mode: the number of element magnitude words
/// (every wpv-th word, starting at the first) in `words` whose top 53
/// bits are at or above skip_word. Dispatched like the other word-block
/// reductions so keeping the counter mode-independent does not put a
/// scalar drag on the composition A/B baseline.
std::size_t SkipWordCountBlock(std::span<const std::uint64_t> words,
                               std::size_t wpv, std::uint64_t skip_word);

}  // namespace vec
}  // namespace svt

#endif  // SPARSEVEC_COMMON_VECMATH_H_
