// RequestBatcher: admission control + per-shard coalescing in front of
// ShardedSvtServer, drained on the global ThreadPool via the nested-safe
// ParallelFor.
//
// Submit() is the admission point: it enforces the bounded pending queue
// (shed policy kReject fails fast with kOverloaded, kBlock applies
// backpressure with a timeout), rejects already-expired deadlines, and
// never executes anything itself — so a request handler thread is never
// stalled by a slow shard. Drain() takes everything pending, groups it per
// shard preserving the global submission order, and executes one
// ParallelFor slice per shard with work, each feeding the shard's reusable
// response buffer through RunAppend. Because each shard's work is totally
// ordered by submission sequence, a fixed (seed, num_shards, per-shard
// accepted-request order) reproduces every response bitwise, whatever the
// thread count or schedule — and admission decisions (sheds, deadline
// misses, injected faults) only change *which* requests execute, never
// the noise stream of the ones that do.
//
// Drain() never blocks on pool scheduling or on another drain, so it is
// safe to call from inside a pool task: contended callers return
// immediately and the in-flight drain (or a later one) picks their
// requests up.
//
// Shutdown is defined, not UB: the destructor first marks the batcher shut
// down (a Submit() that races the final flush is rejected with a
// FailedPrecondition status instead of corrupting the queue), then
// blockingly flushes everything admitted before the mark.

#ifndef SPARSEVEC_SERVING_REQUEST_BATCHER_H_
#define SPARSEVEC_SERVING_REQUEST_BATCHER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/response.h"
#include "serving/admission.h"
#include "serving/sharded_server.h"

namespace svt {

class RequestBatcher {
 public:
  struct Options {
    /// Submit() triggers a drain on the submitting thread once this many
    /// requests are pending; 0 disables auto-drain (drain only when
    /// Drain() is called).
    size_t auto_drain_pending = 0;
    /// Admission cap on the pending queue; 0 = unbounded (no shedding).
    /// A production front end should always set this: an unbounded queue
    /// turns overload into unbounded memory growth and latency.
    size_t max_pending = 0;
    /// What Submit() does when the queue is at max_pending.
    ShedPolicy shed_policy = ShedPolicy::kReject;
    /// kBlock only: how long a submitter waits for queue space before
    /// giving up with kOverloaded. Must be > 0 under kBlock.
    int64_t block_timeout_nanos = 10'000'000;  // 10 ms

    Status Validate() const;
  };

  /// Batcher-level admission telemetry (per-shard counters live in
  /// ServingStats). Every submission attempt lands in exactly one of
  /// submitted / shed_overload / shed_deadline / shed_shutdown.
  struct BatcherStats {
    int64_t submitted = 0;      ///< admitted into the queue
    int64_t shed_overload = 0;  ///< queue full, block timeout, or injected
    int64_t shed_deadline = 0;  ///< deadline already expired at submit
    int64_t shed_shutdown = 0;  ///< rejected by the shutdown mark
    int64_t block_timeouts = 0; ///< kBlock waits that gave up (subset of
                                ///< shed_overload)
    int64_t retries = 0;        ///< SubmitWithRetry re-attempts
    int64_t drains = 0;         ///< batches executed by Drain()/the dtor
    size_t queue_high_water = 0;
  };

  /// `server` must outlive the batcher. Options are checked fatally
  /// (SVT_CHECK_OK); Validate() first when they come from configuration.
  explicit RequestBatcher(ShardedSvtServer* server);
  RequestBatcher(ShardedSvtServer* server, Options options);

  /// Marks the batcher shut down (racing Submits are rejected, blocked
  /// kBlock submitters wake and reject), then drains anything still
  /// pending. The final flush is blocking: it acquires the drain and
  /// shard locks outright (no try-lock spinning), so it waits out slow
  /// shards instead of burning a core.
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueues one batch for the shard that owns `key`. `answers`, *out
  /// (and *outcome when given) must stay valid until the drain that
  /// executes the request returns; *out is clear()ed and filled with the
  /// responses at that point. Thread-safe.
  ///
  /// Returns the request's global submission sequence number, or:
  ///   * kOverloaded        — shed (queue full under kReject, kBlock wait
  ///                          timed out, or injected queue-full burst);
  ///                          retry with backoff (see SubmitWithRetry);
  ///   * kDeadlineExceeded  — submit.deadline_nanos already expired;
  ///   * kFailedPrecondition— the batcher is shutting down.
  /// On error the request was NOT admitted and *out is untouched.
  ///
  /// *outcome (when non-null) is set to kPending on admission and later,
  /// by the drain that consumed the request, to its terminal value: kOk,
  /// kDeadlineExceeded (expired while queued; *out left empty),
  /// kBudgetExhausted (metered shard budget could not fund every query;
  /// *out holds the funded prefix), or kShardFailed (injected failure;
  /// *out left empty).
  Result<uint64_t> Submit(uint64_t key, std::span<const double> answers,
                          double threshold, std::vector<Response>* out,
                          const SubmitOptions& submit = SubmitOptions(),
                          RequestOutcome* outcome = nullptr);

  /// Submit with caller-side retry-with-backoff on kOverloaded: sleeps
  /// backoff->NextDelayNanos() on the server clock, drains once (the
  /// in-process way queue space frees), and re-submits, up to
  /// max_attempts total attempts. Retries are counted in BatcherStats and
  /// per shard in ServingStats. With a VirtualClock and a seeded backoff
  /// the whole retry schedule is reproducible.
  Result<uint64_t> SubmitWithRetry(uint64_t key,
                                   std::span<const double> answers,
                                   double threshold,
                                   std::vector<Response>* out,
                                   const SubmitOptions& submit,
                                   RequestOutcome* outcome, int max_attempts,
                                   JitteredBackoff* backoff);

  /// Marks the batcher shut down: every later (or racing) Submit() is
  /// rejected with kFailedPrecondition, and blocked kBlock submitters
  /// wake and reject. Idempotent; the destructor calls it before the
  /// final flush. Already-admitted requests stay pending and are still
  /// executed by the next Drain() (or the destructor).
  void Shutdown();

  /// Executes pending requests until none remain; returns the number
  /// executed by THIS call. If another thread is draining, returns
  /// immediately (that drain re-checks for newly pending requests before
  /// it returns, so every request submitted before a failed drain-lock
  /// attempt is still executed) — never blocks on the drain lock or pool
  /// scheduling, so calling it from a pool task cannot deadlock.
  size_t Drain();

  /// Requests submitted but not yet taken by a drain.
  size_t pending() const;

  BatcherStats stats() const;

  const ShardedSvtServer& server() const { return *server_; }

 private:
  struct Request {
    int shard = 0;
    ShardedSvtServer::BatchItem item;
  };

  /// Executes one swapped-out batch of requests; called with drain_mu_ held.
  void ExecuteBatch(std::vector<Request>* batch);

  ShardedSvtServer* server_;
  Options options_;
  Clock* clock_;  ///< the server's clock (one time domain per server)

  mutable std::mutex mu_;  ///< guards pending_, counters, shutdown_
  /// Signaled when a drain frees queue space or shutdown begins; kBlock
  /// submitters wait here (with a 1ms poll so VirtualClock advances are
  /// observed without a real-time notification).
  std::condition_variable space_cv_;
  std::vector<Request> pending_;
  uint64_t next_sequence_ = 0;
  /// Counts every submission attempt (admitted or shed) — the
  /// deterministic coordinate injected submit faults are drawn at.
  uint64_t submit_attempts_ = 0;
  bool shutdown_ = false;
  BatcherStats stats_;

  /// try_lock-only: at most one drain in flight. On its own cache line so
  /// Submit()'s mu_ traffic and the drain try_lock spin never contend on
  /// one line (asserted at construction in debug builds).
  alignas(64) std::mutex drain_mu_;
};

}  // namespace svt

#endif  // SPARSEVEC_SERVING_REQUEST_BATCHER_H_
