// RequestBatcher: coalesces concurrently submitted query batches per shard
// and drains them on the global ThreadPool via the nested-safe ParallelFor.
//
// Submit() only enqueues (cheap, any thread — including pool tasks, which
// is what a request handler running on the pool is). Drain() takes
// everything pending, groups it per shard preserving the global submission
// order, and executes one ParallelFor slice per shard with work, each
// feeding the shard's reusable response buffer through RunAppend. Because
// each shard's work is totally ordered by submission sequence, a fixed
// (seed, num_shards, submission order) reproduces every response bitwise,
// whatever the thread count or schedule.
//
// Drain() never blocks on pool scheduling or on another drain, so it is
// safe to call from inside a pool task: contended callers return
// immediately and the in-flight drain (or a later one) picks their
// requests up.

#ifndef SPARSEVEC_SERVING_REQUEST_BATCHER_H_
#define SPARSEVEC_SERVING_REQUEST_BATCHER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/response.h"
#include "serving/sharded_server.h"

namespace svt {

class RequestBatcher {
 public:
  struct Options {
    /// Submit() triggers a drain on the submitting thread once this many
    /// requests are pending; 0 disables auto-drain (drain only when
    /// Drain() is called).
    size_t auto_drain_pending = 0;
  };

  /// `server` must outlive the batcher.
  explicit RequestBatcher(ShardedSvtServer* server);
  RequestBatcher(ShardedSvtServer* server, Options options);

  /// Drains anything still pending. The final flush is blocking: it
  /// acquires the drain and shard locks outright (no try-lock spinning),
  /// so it waits out slow shards instead of burning a core. Concurrent
  /// Submit() or Drain() racing the destructor is a caller error.
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueues one batch for the shard that owns `key`. `answers` and *out
  /// must stay valid until the drain that executes the request returns;
  /// *out is clear()ed and filled with the responses at that point (fewer
  /// than answers.size() in kBudgetMetered mode once the shard's budget is
  /// done). Thread-safe. Returns the request's global submission sequence
  /// number.
  uint64_t Submit(uint64_t key, std::span<const double> answers,
                  double threshold, std::vector<Response>* out);

  /// Executes pending requests until none remain; returns the number
  /// executed by THIS call. If another thread is draining, returns
  /// immediately (that drain re-checks for newly pending requests before
  /// it returns, so every request submitted before a failed drain-lock
  /// attempt is still executed) — never blocks on the drain lock or pool
  /// scheduling, so calling it from a pool task cannot deadlock.
  size_t Drain();

  /// Requests submitted but not yet taken by a drain.
  size_t pending() const;

  const ShardedSvtServer& server() const { return *server_; }

 private:
  struct Request {
    int shard = 0;
    ShardedSvtServer::BatchItem item;
  };

  /// Executes one swapped-out batch of requests; called with drain_mu_ held.
  void ExecuteBatch(std::vector<Request>* batch);

  ShardedSvtServer* server_;
  Options options_;

  mutable std::mutex mu_;  ///< guards pending_ and next_sequence_
  std::vector<Request> pending_;
  uint64_t next_sequence_ = 0;

  /// try_lock-only: at most one drain in flight. On its own cache line so
  /// Submit()'s mu_ traffic and the drain try_lock spin never contend on
  /// one line (asserted at construction in debug builds).
  alignas(64) std::mutex drain_mu_;
};

}  // namespace svt

#endif  // SPARSEVEC_SERVING_REQUEST_BATCHER_H_
