#include "serving/admission.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace svt {

std::string_view ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kReject:
      return "kReject";
    case ShedPolicy::kBlock:
      return "kBlock";
  }
  return "unknown";
}

std::string_view RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kPending:
      return "kPending";
    case RequestOutcome::kOk:
      return "kOk";
    case RequestOutcome::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case RequestOutcome::kBudgetExhausted:
      return "kBudgetExhausted";
    case RequestOutcome::kShardFailed:
      return "kShardFailed";
  }
  return "unknown";
}

Status JitteredBackoff::Options::Validate() const {
  if (initial_delay_nanos <= 0) {
    return Status::InvalidArgument(
        "JitteredBackoff initial_delay_nanos must be > 0");
  }
  if (max_delay_nanos < initial_delay_nanos) {
    return Status::InvalidArgument(
        "JitteredBackoff max_delay_nanos must be >= initial_delay_nanos");
  }
  if (!(multiplier >= 1.0)) {
    return Status::InvalidArgument(
        "JitteredBackoff multiplier must be >= 1.0");
  }
  if (!(jitter >= 0.0 && jitter <= 1.0)) {
    return Status::InvalidArgument("JitteredBackoff jitter must be in [0, 1]");
  }
  return Status::OK();
}

JitteredBackoff::JitteredBackoff(const Options& options, Rng* rng)
    : options_(options), rng_(rng) {
  SVT_CHECK(rng_ != nullptr);
  SVT_CHECK_OK(options_.Validate());
}

int64_t JitteredBackoff::NextDelayNanos() {
  // Grow in double space and clamp before converting: attempt counts large
  // enough to overflow int64 nanos are reachable in long retry loops.
  const double grown =
      static_cast<double>(options_.initial_delay_nanos) *
      std::pow(options_.multiplier, static_cast<double>(attempt_));
  const double capped =
      std::min(grown, static_cast<double>(options_.max_delay_nanos));
  ++attempt_;
  double scale = 1.0;
  if (options_.jitter > 0.0) {
    // One draw per delay, jitter or not reached yet: the schedule's Rng
    // consumption is a function of the call count alone.
    scale = 1.0 - options_.jitter * rng_->NextDouble();
  }
  const int64_t delay = static_cast<int64_t>(capped * scale);
  return std::max<int64_t>(delay, 1);
}

}  // namespace svt
