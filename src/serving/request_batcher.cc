#include "serving/request_batcher.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "serving/fault_injection.h"

namespace svt {

Status RequestBatcher::Options::Validate() const {
  if (block_timeout_nanos < 0) {
    return Status::InvalidArgument(
        "RequestBatcher block_timeout_nanos must be >= 0");
  }
  switch (shed_policy) {
    case ShedPolicy::kReject:
      break;
    case ShedPolicy::kBlock:
      if (max_pending == 0) {
        return Status::InvalidArgument(
            "ShedPolicy::kBlock requires a bounded queue (max_pending > 0): "
            "an unbounded queue never blocks, so the policy would be dead "
            "configuration");
      }
      if (block_timeout_nanos == 0) {
        return Status::InvalidArgument(
            "ShedPolicy::kBlock requires block_timeout_nanos > 0 (an "
            "unbounded wait would hang submitters on a saturated server)");
      }
      break;
    default:
      return Status::InvalidArgument("unknown ShedPolicy");
  }
  if (max_pending > 0 && auto_drain_pending > max_pending) {
    return Status::InvalidArgument(
        "auto_drain_pending (" + std::to_string(auto_drain_pending) +
        ") exceeds max_pending (" + std::to_string(max_pending) +
        "): the pending queue can never reach the auto-drain threshold, so "
        "auto-drain would silently never fire");
  }
  return Status::OK();
}

RequestBatcher::RequestBatcher(ShardedSvtServer* server)
    : RequestBatcher(server, Options()) {}

RequestBatcher::RequestBatcher(ShardedSvtServer* server, Options options)
    : server_(server), options_(options) {
  SVT_CHECK(server_ != nullptr);
  SVT_CHECK_OK(options_.Validate());
  clock_ = server_->clock();
  // The drain lock is declared alignas(64) to keep it off mu_'s line; a
  // batcher placed in under-aligned storage would silently reintroduce
  // the false sharing.
  SVT_DCHECK(reinterpret_cast<uintptr_t>(&drain_mu_) % 64 == 0);
}

void RequestBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  space_cv_.notify_all();
}

RequestBatcher::~RequestBatcher() {
  // Shut the admission door first: any Submit() that races the final
  // flush takes the defined reject-after-shutdown path instead of
  // appending to a queue being torn down. Blocked kBlock submitters wake
  // on the notify and reject themselves.
  Shutdown();
  // A request whose drain never ran would leave its *out stale; flush.
  // The final flush is BLOCKING: it acquires drain_mu_ outright (waiting
  // out an in-flight Drain() and, transitively, the shard locks its batch
  // execution holds) instead of spinning hot on the try-lock path — a
  // slow shard used to turn this destructor into a busy-wait burning a
  // core.
  for (;;) {
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> drain(drain_mu_);
      {
        std::lock_guard<std::mutex> lock(mu_);
        batch.swap(pending_);
        if (!batch.empty()) ++stats_.drains;
      }
      if (batch.empty()) return;
      ExecuteBatch(&batch);
    }
    // Requests enqueued by a Drain() that lost the race between our swap
    // and our drain_mu_ release are picked up by the next iteration.
  }
}

Result<uint64_t> RequestBatcher::Submit(uint64_t key,
                                        std::span<const double> answers,
                                        double threshold,
                                        std::vector<Response>* out,
                                        const SubmitOptions& submit,
                                        RequestOutcome* outcome) {
  SVT_CHECK(out != nullptr);
  const int shard = server_->ShardOf(key);
  uint64_t sequence;
  size_t now_pending;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t attempt = submit_attempts_++;
    if (shutdown_) {
      ++stats_.shed_shutdown;
      return Status::FailedPrecondition(
          "RequestBatcher::Submit after shutdown: request rejected");
    }
    int64_t now = clock_->NowNanos();
    FaultInjector* injector = server_->fault_injector();
    if (injector != nullptr) [[unlikely]] {
      const int64_t skew = injector->SkewNanos(attempt);
      if (skew > 0) {
        now += skew;
        injector->CountSkew();
      }
      if (injector->OnSubmitAttempt(attempt)) {
        ++stats_.shed_overload;
        injector->CountSubmitShed();
        server_->RecordShed(shard);
        return Status::Overloaded("injected queue-full burst");
      }
    }
    if (submit.deadline_nanos > 0 && now >= submit.deadline_nanos) {
      ++stats_.shed_deadline;
      server_->RecordDeadlineMiss(shard);
      return Status::DeadlineExceeded(
          "request deadline expired before admission");
    }
    if (options_.max_pending > 0 &&
        pending_.size() >= options_.max_pending) {
      if (options_.shed_policy == ShedPolicy::kReject) {
        ++stats_.shed_overload;
        server_->RecordShed(shard);
        return Status::Overloaded(
            "pending queue full (max_pending=" +
            std::to_string(options_.max_pending) + "); request shed");
      }
      // kBlock: backpressure with a timeout. The 1ms poll bounds how long
      // a VirtualClock advance (which has no real-time notification) can
      // go unobserved; a Drain() freeing space notifies immediately.
      const int64_t give_up = now + options_.block_timeout_nanos;
      while (pending_.size() >= options_.max_pending) {
        if (shutdown_) {
          ++stats_.shed_shutdown;
          return Status::FailedPrecondition(
              "RequestBatcher::Submit after shutdown: request rejected");
        }
        if (clock_->NowNanos() >= give_up) {
          ++stats_.shed_overload;
          ++stats_.block_timeouts;
          server_->RecordShed(shard);
          return Status::Overloaded(
              "timed out after " +
              std::to_string(options_.block_timeout_nanos) +
              "ns waiting for queue space (max_pending=" +
              std::to_string(options_.max_pending) + ")");
        }
        space_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
    sequence = next_sequence_++;
    if (outcome != nullptr) *outcome = RequestOutcome::kPending;
    pending_.push_back(Request{
        shard,
        {answers, threshold, out, submit.deadline_nanos, sequence, outcome}});
    now_pending = pending_.size();
    ++stats_.submitted;
    if (now_pending > stats_.queue_high_water) {
      stats_.queue_high_water = now_pending;
    }
  }
  if (options_.auto_drain_pending > 0 &&
      now_pending >= options_.auto_drain_pending) {
    Drain();
  }
  return sequence;
}

Result<uint64_t> RequestBatcher::SubmitWithRetry(
    uint64_t key, std::span<const double> answers, double threshold,
    std::vector<Response>* out, const SubmitOptions& submit,
    RequestOutcome* outcome, int max_attempts, JitteredBackoff* backoff) {
  SVT_CHECK(max_attempts >= 1);
  SVT_CHECK(backoff != nullptr);
  Result<uint64_t> result =
      Submit(key, answers, threshold, out, submit, outcome);
  for (int attempt = 1; attempt < max_attempts; ++attempt) {
    if (result.ok() || result.status().code() != StatusCode::kOverloaded) {
      break;  // only overload is retriable; deadlines/shutdown are final
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    server_->RecordRetry(server_->ShardOf(key));
    clock_->SleepFor(backoff->NextDelayNanos());
    // In-process, queue space only frees when someone drains; doing it
    // here makes the retry loop self-sufficient (and harmless when a
    // dedicated drain thread got there first).
    Drain();
    result = Submit(key, answers, threshold, out, submit, outcome);
  }
  return result;
}

size_t RequestBatcher::Drain() {
  size_t executed = 0;
  // Loop: requests submitted while we were executing are drained too, so a
  // single uncontended Drain() leaves nothing behind.
  for (;;) {
    if (!drain_mu_.try_lock()) return executed;
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch.swap(pending_);
      if (!batch.empty()) ++stats_.drains;
    }
    if (batch.empty()) {
      drain_mu_.unlock();
      // A Submit can land between the swap above and the unlock, with its
      // own Drain() bouncing off our still-held lock — without this
      // re-check that request would be stranded with no drain in flight.
      // Any Submit after the unlock can acquire the lock itself.
      if (pending() == 0) return executed;
      continue;
    }
    // The swap freed the whole queue: wake kBlock submitters waiting for
    // space before executing (execution can take a while).
    space_cv_.notify_all();
    ExecuteBatch(&batch);
    executed += batch.size();
    drain_mu_.unlock();
  }
}

void RequestBatcher::ExecuteBatch(std::vector<Request>* batch) {
  // Group per shard; within a shard the order is the submission order
  // (pending_ preserves it), which is what makes responses reproducible.
  std::vector<std::vector<ShardedSvtServer::BatchItem*>> per_shard(
      static_cast<size_t>(server_->num_shards()));
  for (Request& r : *batch) {
    per_shard[static_cast<size_t>(r.shard)].push_back(&r.item);
  }
  std::vector<int> active;
  for (int s = 0; s < server_->num_shards(); ++s) {
    if (!per_shard[static_cast<size_t>(s)].empty()) active.push_back(s);
  }
  // One slice per shard with work. Nested-safe: when this drain itself
  // runs on a pool worker, ParallelFor executes the slices inline.
  ParallelFor(static_cast<int64_t>(active.size()),
              static_cast<int>(active.size()),
              [&](int64_t begin, int64_t end, int /*slice*/) {
                for (int64_t i = begin; i < end; ++i) {
                  const int shard = active[static_cast<size_t>(i)];
                  server_->ExecuteBatchedOnShard(
                      shard, per_shard[static_cast<size_t>(shard)]);
                }
              });
}

size_t RequestBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

RequestBatcher::BatcherStats RequestBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace svt
