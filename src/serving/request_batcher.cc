#include "serving/request_batcher.h"

#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace svt {

RequestBatcher::RequestBatcher(ShardedSvtServer* server)
    : RequestBatcher(server, Options()) {}

RequestBatcher::RequestBatcher(ShardedSvtServer* server, Options options)
    : server_(server), options_(options) {
  SVT_CHECK(server_ != nullptr);
  // The drain lock is declared alignas(64) to keep it off mu_'s line; a
  // batcher placed in under-aligned storage would silently reintroduce
  // the false sharing.
  SVT_DCHECK(reinterpret_cast<uintptr_t>(&drain_mu_) % 64 == 0);
}

RequestBatcher::~RequestBatcher() {
  // A request whose drain never ran would leave its *out stale; flush.
  // Submit() racing destruction is a use-after-free regardless, so only
  // drains started before destruction matter here. The final flush is
  // BLOCKING: it acquires drain_mu_ outright (waiting out an in-flight
  // Drain() and, transitively, the shard locks its batch execution holds)
  // instead of spinning hot on the try-lock path — a slow shard used to
  // turn this destructor into a busy-wait burning a core.
  for (;;) {
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> drain(drain_mu_);
      {
        std::lock_guard<std::mutex> lock(mu_);
        batch.swap(pending_);
      }
      if (batch.empty()) return;
      ExecuteBatch(&batch);
    }
    // Requests enqueued by a Drain() that lost the race between our swap
    // and our drain_mu_ release are picked up by the next iteration.
  }
}

uint64_t RequestBatcher::Submit(uint64_t key, std::span<const double> answers,
                                double threshold,
                                std::vector<Response>* out) {
  SVT_CHECK(out != nullptr);
  uint64_t sequence;
  size_t now_pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sequence = next_sequence_++;
    pending_.push_back(
        Request{server_->ShardOf(key), {answers, threshold, out}});
    now_pending = pending_.size();
  }
  if (options_.auto_drain_pending > 0 &&
      now_pending >= options_.auto_drain_pending) {
    Drain();
  }
  return sequence;
}

size_t RequestBatcher::Drain() {
  size_t executed = 0;
  // Loop: requests submitted while we were executing are drained too, so a
  // single uncontended Drain() leaves nothing behind.
  for (;;) {
    if (!drain_mu_.try_lock()) return executed;
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch.swap(pending_);
    }
    if (batch.empty()) {
      drain_mu_.unlock();
      // A Submit can land between the swap above and the unlock, with its
      // own Drain() bouncing off our still-held lock — without this
      // re-check that request would be stranded with no drain in flight.
      // Any Submit after the unlock can acquire the lock itself.
      if (pending() == 0) return executed;
      continue;
    }
    ExecuteBatch(&batch);
    executed += batch.size();
    drain_mu_.unlock();
  }
}

void RequestBatcher::ExecuteBatch(std::vector<Request>* batch) {
  // Group per shard; within a shard the order is the submission order
  // (pending_ preserves it), which is what makes responses reproducible.
  std::vector<std::vector<ShardedSvtServer::BatchItem*>> per_shard(
      static_cast<size_t>(server_->num_shards()));
  for (Request& r : *batch) {
    per_shard[static_cast<size_t>(r.shard)].push_back(&r.item);
  }
  std::vector<int> active;
  for (int s = 0; s < server_->num_shards(); ++s) {
    if (!per_shard[static_cast<size_t>(s)].empty()) active.push_back(s);
  }
  // One slice per shard with work. Nested-safe: when this drain itself
  // runs on a pool worker, ParallelFor executes the slices inline.
  ParallelFor(static_cast<int64_t>(active.size()),
              static_cast<int>(active.size()),
              [&](int64_t begin, int64_t end, int /*slice*/) {
                for (int64_t i = begin; i < end; ++i) {
                  const int shard = active[static_cast<size_t>(i)];
                  server_->ExecuteBatchedOnShard(
                      shard, per_shard[static_cast<size_t>(shard)]);
                }
              });
}

size_t RequestBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace svt
