#include "serving/fault_injection.h"

#include <string>

#include "common/check.h"
#include "common/rng.h"

namespace svt {
namespace {

/// Fault sites, folded into the decision hash so the same (shard,
/// attempt) coordinates draw independent decisions per fault kind.
enum Site : uint64_t {
  kSiteStall = 1,
  kSiteFailure = 2,
  kSiteSubmitShed = 3,
  kSiteClockSkew = 4,
};

/// Stateless uniform in [0, 1) at coordinates (seed, site, a, b): a short
/// SplitMix64 chain folding each coordinate into the state. Pure, so fault
/// decisions cannot depend on thread interleaving.
double UniformAt(uint64_t seed, uint64_t site, uint64_t a, uint64_t b) {
  uint64_t state = seed;
  uint64_t h = SplitMix64Next(state);
  state = h ^ (site * 0x9e3779b97f4a7c15ULL);
  h = SplitMix64Next(state);
  state = h ^ a;
  h = SplitMix64Next(state);
  state = h ^ b;
  return Rng::ToUnitDouble(SplitMix64Next(state));
}

Status CheckProbability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(std::string("FaultInjector ") + name +
                                   " must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Status FaultInjector::Options::Validate() const {
  SVT_RETURN_NOT_OK(
      CheckProbability(shard_stall_probability, "shard_stall_probability"));
  SVT_RETURN_NOT_OK(CheckProbability(shard_failure_probability,
                                     "shard_failure_probability"));
  SVT_RETURN_NOT_OK(
      CheckProbability(submit_shed_probability, "submit_shed_probability"));
  SVT_RETURN_NOT_OK(
      CheckProbability(clock_skew_probability, "clock_skew_probability"));
  if (stall_nanos < 0) {
    return Status::InvalidArgument("FaultInjector stall_nanos must be >= 0");
  }
  if (clock_skew_nanos < 0) {
    return Status::InvalidArgument(
        "FaultInjector clock_skew_nanos must be >= 0");
  }
  if (submit_shed_burst < 1) {
    return Status::InvalidArgument(
        "FaultInjector submit_shed_burst must be >= 1");
  }
  if (shard_stall_probability > 0.0 && stall_nanos == 0) {
    return Status::InvalidArgument(
        "FaultInjector shard_stall_probability > 0 needs stall_nanos > 0");
  }
  if (clock_skew_probability > 0.0 && clock_skew_nanos == 0) {
    return Status::InvalidArgument(
        "FaultInjector clock_skew_probability > 0 needs clock_skew_nanos > "
        "0");
  }
  return Status::OK();
}

FaultInjector::FaultInjector(const Options& options) : options_(options) {
  SVT_CHECK_OK(options_.Validate());
}

FaultInjector::ShardFault FaultInjector::OnShardAttempt(
    int shard, uint64_t attempt) const {
  ShardFault fault;
  const auto s = static_cast<uint64_t>(shard);
  if (options_.shard_stall_probability > 0.0 &&
      UniformAt(options_.seed, kSiteStall, s, attempt) <
          options_.shard_stall_probability) {
    fault.stall_nanos = options_.stall_nanos;
  }
  if (options_.shard_failure_probability > 0.0 &&
      UniformAt(options_.seed, kSiteFailure, s, attempt) <
          options_.shard_failure_probability) {
    fault.fail = true;
  }
  return fault;
}

bool FaultInjector::OnSubmitAttempt(uint64_t attempt) const {
  if (options_.submit_shed_probability <= 0.0) return false;
  // Burst semantics: the trigger is drawn once per burst-length window, so
  // a hit sheds the whole window of consecutive attempts (a queue staying
  // full for a while, not isolated blips).
  const uint64_t window =
      attempt / static_cast<uint64_t>(options_.submit_shed_burst);
  return UniformAt(options_.seed, kSiteSubmitShed, window, 0) <
         options_.submit_shed_probability;
}

int64_t FaultInjector::SkewNanos(uint64_t attempt) const {
  if (options_.clock_skew_probability <= 0.0) return 0;
  if (UniformAt(options_.seed, kSiteClockSkew, attempt, 0) <
      options_.clock_skew_probability) {
    return options_.clock_skew_nanos;
  }
  return 0;
}

FaultInjector::Counters FaultInjector::counters() const {
  Counters c;
  c.stalls = stalls_.load(std::memory_order_relaxed);
  c.failures = failures_.load(std::memory_order_relaxed);
  c.submit_sheds = submit_sheds_.load(std::memory_order_relaxed);
  c.skews = skews_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace svt
