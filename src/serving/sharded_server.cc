#include "serving/sharded_server.h"

#include <utility>

#include "common/check.h"

namespace svt {

Status ServingOptions::Validate() const {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(num_shards));
  }
  switch (mode) {
    case ShardMode::kAutoReset:
      return svt.Validate();
    case ShardMode::kBudgetMetered:
      return session.Validate();
  }
  return Status::InvalidArgument("unknown ShardMode");
}

Result<std::unique_ptr<ShardedSvtServer>> ShardedSvtServer::Create(
    const ServingOptions& options) {
  SVT_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<ShardedSvtServer> server(new ShardedSvtServer(options));
  // Fork the per-shard streams in index order on this thread: the streams
  // are then a function of (seed, num_shards) alone.
  Rng master(options.seed);
  server->shards_.reserve(options.num_shards);
  for (int i = 0; i < options.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // alignas(64) on Shard routes through aligned operator new; assert the
    // no-false-sharing guarantee actually held.
    SVT_DCHECK(reinterpret_cast<uintptr_t>(shard.get()) % alignof(Shard) ==
               0);
    shard->rng = master.Fork();
    if (options.mode == ShardMode::kAutoReset) {
      SVT_ASSIGN_OR_RETURN(shard->mech,
                           SparseVector::Create(options.svt, &shard->rng));
    } else {
      SVT_ASSIGN_OR_RETURN(
          shard->session,
          AboveThresholdSession::Create(options.session, &shard->rng));
    }
    server->shards_.push_back(std::move(shard));
  }
  return server;
}

int ShardedSvtServer::ShardOf(uint64_t key) const {
  // One SplitMix64 step decorrelates adjacent keys; the routing is
  // stateless, so it can never perturb any shard's noise stream.
  uint64_t state = key;
  return static_cast<int>(SplitMix64Next(state) %
                          static_cast<uint64_t>(shards_.size()));
}

ShardedSvtServer::Shard& ShardedSvtServer::CheckedShard(int shard) const {
  SVT_CHECK(shard >= 0 && shard < num_shards())
      << "shard index " << shard << " out of range [0, " << num_shards()
      << ")";
  return *shards_[static_cast<size_t>(shard)];
}

size_t ShardedSvtServer::Execute(uint64_t key, std::span<const double> answers,
                                 double threshold,
                                 std::vector<Response>* out) {
  return ExecuteOnShard(ShardOf(key), answers, threshold, out);
}

size_t ShardedSvtServer::ExecuteOnShard(int shard,
                                        std::span<const double> answers,
                                        double threshold,
                                        std::vector<Response>* out) {
  Shard& s = CheckedShard(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  return ExecuteLocked(s, answers, threshold, out);
}

size_t ShardedSvtServer::ExecuteLocked(Shard& shard,
                                       std::span<const double> answers,
                                       double threshold,
                                       std::vector<Response>* out) {
  const size_t start = out->size();
  if (options_.mode == ShardMode::kAutoReset) {
    size_t consumed = 0;
    while (consumed < answers.size()) {
      if (shard.mech->exhausted()) shard.mech->Reset();
      consumed +=
          shard.mech->RunAppend(answers.subspan(consumed), threshold, out);
    }
  } else {
    shard.session->RunAppend(answers, threshold, out);
  }
  const size_t appended = out->size() - start;
  shard.stats.batches += 1;
  shard.stats.queries += static_cast<int64_t>(appended);
  for (size_t i = start; i < out->size(); ++i) {
    if ((*out)[i].is_positive()) ++shard.stats.positives;
  }
  return appended;
}

void ShardedSvtServer::ExecuteBatchedOnShard(int shard,
                                             std::span<BatchItem* const> items) {
  Shard& s = CheckedShard(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  // One RunAppend-fed buffer for the whole drain: capacity converges to the
  // per-drain high-water mark and stops re-allocating.
  s.buffer.clear();
  std::vector<size_t> ends;
  ends.reserve(items.size());
  for (BatchItem* item : items) {
    ExecuteLocked(s, item->answers, item->threshold, &s.buffer);
    ends.push_back(s.buffer.size());
  }
  // Copy out only after the last append: earlier spans into the buffer
  // could be invalidated by growth.
  size_t begin = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    items[i]->out->assign(s.buffer.begin() + static_cast<ptrdiff_t>(begin),
                          s.buffer.begin() + static_cast<ptrdiff_t>(ends[i]));
    begin = ends[i];
  }
}

bool ShardedSvtServer::ShardExhausted(int shard) const {
  Shard& s = CheckedShard(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.session != nullptr && s.session->exhausted();
}

ServingStats ShardedSvtServer::StatsForShard(int shard) const {
  Shard& s = CheckedShard(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.stats;
}

ServingStats ShardedSvtServer::TotalStats() const {
  ServingStats total;
  for (int i = 0; i < num_shards(); ++i) {
    const ServingStats s = StatsForShard(i);
    total.batches += s.batches;
    total.queries += s.queries;
    total.positives += s.positives;
  }
  return total;
}

}  // namespace svt
