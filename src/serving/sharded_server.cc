#include "serving/sharded_server.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "serving/fault_injection.h"

namespace svt {

Status ServingOptions::Validate() const {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(num_shards));
  }
  if (num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards must be <= " + std::to_string(kMaxShards) + ", got " +
        std::to_string(num_shards));
  }
  switch (mode) {
    case ShardMode::kAutoReset:
      return svt.Validate();
    case ShardMode::kBudgetMetered:
      return session.Validate();
  }
  return Status::InvalidArgument("unknown ShardMode");
}

Result<std::unique_ptr<ShardedSvtServer>> ShardedSvtServer::Create(
    const ServingOptions& options) {
  SVT_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<ShardedSvtServer> server(new ShardedSvtServer(options));
  server->clock_ = options.clock != nullptr ? options.clock : RealClock();
  server->injector_ = options.fault_injector;
  // Fork the per-shard streams in index order on this thread: the streams
  // are then a function of (seed, num_shards) alone.
  Rng master(options.seed);
  server->shards_.reserve(options.num_shards);
  for (int i = 0; i < options.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // alignas(64) on Shard routes through aligned operator new; assert the
    // no-false-sharing guarantee actually held.
    SVT_DCHECK(reinterpret_cast<uintptr_t>(shard.get()) % alignof(Shard) ==
               0);
    shard->index = i;
    shard->rng = master.Fork();
    if (options.mode == ShardMode::kAutoReset) {
      SVT_ASSIGN_OR_RETURN(shard->mech,
                           SparseVector::Create(options.svt, &shard->rng));
    } else {
      SVT_ASSIGN_OR_RETURN(
          shard->session,
          AboveThresholdSession::Create(options.session, &shard->rng));
    }
    server->shards_.push_back(std::move(shard));
  }
  return server;
}

int ShardedSvtServer::ShardOf(uint64_t key) const {
  // One SplitMix64 step decorrelates adjacent keys; the routing is
  // stateless, so it can never perturb any shard's noise stream.
  uint64_t state = key;
  return static_cast<int>(SplitMix64Next(state) %
                          static_cast<uint64_t>(shards_.size()));
}

ShardedSvtServer::Shard& ShardedSvtServer::CheckedShard(int shard) const {
  SVT_CHECK(shard >= 0 && shard < num_shards())
      << "shard index " << shard << " out of range [0, " << num_shards()
      << ")";
  return *shards_[static_cast<size_t>(shard)];
}

size_t ShardedSvtServer::Execute(uint64_t key, std::span<const double> answers,
                                 double threshold, std::vector<Response>* out,
                                 RequestOutcome* outcome) {
  return ExecuteOnShard(ShardOf(key), answers, threshold, out, outcome);
}

size_t ShardedSvtServer::ExecuteOnShard(int shard,
                                        std::span<const double> answers,
                                        double threshold,
                                        std::vector<Response>* out,
                                        RequestOutcome* outcome) {
  Shard& s = CheckedShard(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  RequestOutcome result = RequestOutcome::kOk;
  const size_t appended = ExecuteLocked(s, answers, threshold, out, &result);
  if (outcome != nullptr) *outcome = result;
  return appended;
}

size_t ShardedSvtServer::ExecuteLocked(Shard& shard,
                                       std::span<const double> answers,
                                       double threshold,
                                       std::vector<Response>* out,
                                       RequestOutcome* outcome) {
  // Fault decisions are drawn at (shard, attempt) — the attempt counter
  // advances even when the attempt then fails, so the decision coordinates
  // are a pure function of the shard's accepted-request order.
  const uint64_t attempt = shard.fault_attempts++;
  if (injector_ != nullptr) [[unlikely]] {
    const FaultInjector::ShardFault fault =
        injector_->OnShardAttempt(shard.index, attempt);
    if (fault.stall_nanos > 0) {
      // A VirtualClock turns this into a deterministic time jump.
      clock_->SleepFor(fault.stall_nanos);
      shard.stats.stall_nanos += fault.stall_nanos;
      injector_->CountStall();
    }
    if (fault.fail) {
      // Skip-and-fail THIS request only: nothing was drawn from the
      // shard's stream, so later requests see the stream exactly where a
      // fault-free run (without this request) would have left it.
      shard.stats.shard_failures += 1;
      injector_->CountFailure();
      *outcome = RequestOutcome::kShardFailed;
      return 0;
    }
  }
  const int64_t exec_start = clock_->NowNanos();
  const size_t start = out->size();
  if (options_.mode == ShardMode::kAutoReset) {
    size_t consumed = 0;
    while (consumed < answers.size()) {
      if (shard.mech->exhausted()) shard.mech->Reset();
      consumed +=
          shard.mech->RunAppend(answers.subspan(consumed), threshold, out);
    }
  } else {
    shard.session->RunAppend(answers, threshold, out);
  }
  const size_t appended = out->size() - start;
  *outcome = RequestOutcome::kOk;
  if (options_.mode == ShardMode::kBudgetMetered &&
      appended < answers.size()) {
    // Structured degradation instead of silent truncation: the caller can
    // tell "answered" from "budget ran out mid-request" without comparing
    // sizes.
    *outcome = RequestOutcome::kBudgetExhausted;
    shard.stats.budget_exhausted += 1;
  }
  shard.stats.batches += 1;
  shard.stats.queries += static_cast<int64_t>(appended);
  for (size_t i = start; i < out->size(); ++i) {
    if ((*out)[i].is_positive()) ++shard.stats.positives;
  }
  const int64_t exec_nanos = clock_->NowNanos() - exec_start;
  shard.stats.exec_nanos += exec_nanos;
  shard.stats.exec_nanos_max =
      std::max(shard.stats.exec_nanos_max, exec_nanos);
  shard.stats.exec_hist.Add(exec_nanos);
  return appended;
}

void ShardedSvtServer::ExecuteBatchedOnShard(int shard,
                                             std::span<BatchItem* const> items) {
  Shard& s = CheckedShard(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  // One RunAppend-fed buffer for the whole drain: capacity converges to the
  // per-drain high-water mark and stops re-allocating.
  s.buffer.clear();
  std::vector<size_t> ends;
  std::vector<RequestOutcome> outcomes;
  ends.reserve(items.size());
  outcomes.reserve(items.size());
  for (BatchItem* item : items) {
    RequestOutcome outcome = RequestOutcome::kOk;
    if (item->deadline_nanos > 0 && ExpiredAtDrain(*item)) {
      // Never execute an expired request: its shard stream stays
      // untouched, so the accepted set changes but no noise moves.
      s.deadline_misses.fetch_add(1, std::memory_order_relaxed);
      outcome = RequestOutcome::kDeadlineExceeded;
    } else {
      ExecuteLocked(s, item->answers, item->threshold, &s.buffer, &outcome);
    }
    outcomes.push_back(outcome);
    ends.push_back(s.buffer.size());
  }
  // Copy out only after the last append: earlier spans into the buffer
  // could be invalidated by growth.
  size_t begin = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    items[i]->out->assign(s.buffer.begin() + static_cast<ptrdiff_t>(begin),
                          s.buffer.begin() + static_cast<ptrdiff_t>(ends[i]));
    begin = ends[i];
    if (items[i]->outcome != nullptr) *items[i]->outcome = outcomes[i];
  }
}

bool ShardedSvtServer::ExpiredAtDrain(const BatchItem& item) {
  int64_t now = clock_->NowNanos();
  if (injector_ != nullptr) [[unlikely]] {
    const int64_t skew = injector_->SkewNanos(item.sequence);
    if (skew > 0) {
      now += skew;
      injector_->CountSkew();
    }
  }
  return now >= item.deadline_nanos;
}

bool ShardedSvtServer::ShardExhausted(int shard) const {
  Shard& s = CheckedShard(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.session != nullptr && s.session->exhausted();
}

ServingStats ShardedSvtServer::StatsForShard(int shard) const {
  Shard& s = CheckedShard(shard);
  ServingStats snapshot;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    snapshot = s.stats;
  }
  // The admission-side counters live outside the shard lock (a shed or a
  // submit-time deadline miss must not wait out a long-running batch); the
  // lock-guarded stats never touch these three fields.
  snapshot.shed = s.shed.load(std::memory_order_relaxed);
  snapshot.deadline_misses +=
      s.deadline_misses.load(std::memory_order_relaxed);
  snapshot.retries = s.retries.load(std::memory_order_relaxed);
  return snapshot;
}

ServingStats ShardedSvtServer::TotalStats() const {
  ServingStats total;
  for (int i = 0; i < num_shards(); ++i) {
    const ServingStats s = StatsForShard(i);
    total.batches += s.batches;
    total.queries += s.queries;
    total.positives += s.positives;
    total.shed += s.shed;
    total.deadline_misses += s.deadline_misses;
    total.retries += s.retries;
    total.budget_exhausted += s.budget_exhausted;
    total.shard_failures += s.shard_failures;
    total.stall_nanos += s.stall_nanos;
    total.exec_nanos += s.exec_nanos;
    total.exec_nanos_max = std::max(total.exec_nanos_max, s.exec_nanos_max);
    total.exec_hist.Merge(s.exec_hist);
  }
  return total;
}

}  // namespace svt
