// Sharded SVT serving: N independent shards, each backed by the paper's
// standard SVT (or a budget-metered AboveThresholdSession) with its own
// Rng::Fork()-derived stream, executing query batches through the
// vectorized batch engine (core/batch_runner.h).
//
// This is the ROADMAP's interactive-at-scale target: the paper's §1 setting
// — streams of threshold queries answered online, budget paid only for
// positives — served across shards so heavy traffic parallelizes while
// every shard stays a single deterministic SVT stream.
//
// Determinism contract (the same template as audit/monte_carlo.cc's worker
// slices): Create() forks one stream per shard from `seed` in shard-index
// order, and ShardOf() routes a key by a stateless SplitMix64 hash. A
// shard's response stream is therefore a pure function of (seed,
// num_shards, the order of batches executed on that shard) — bitwise
// reproducible across runs, thread counts, and schedules. Concurrent
// callers hitting one shard serialize on its mutex in arrival order; fixing
// the per-shard submission order (as RequestBatcher's drain does) fixes
// every response bitwise.

#ifndef SPARSEVEC_SERVING_SHARDED_SERVER_H_
#define SPARSEVEC_SERVING_SHARDED_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/response.h"
#include "core/svt.h"
#include "interactive/session.h"

namespace svt {

/// What backs each shard.
enum class ShardMode {
  /// One SparseVector per shard; when a run exhausts its cutoff the shard
  /// Reset()s into a fresh run automatically, so execution never stops.
  /// No budget metering: each run is ε-DP and lifetime composition across
  /// runs is the operator's concern (throughput serving, simulation).
  kAutoReset,
  /// One AboveThresholdSession per shard: a lifetime budget, rounds funded
  /// through the shared PrivacyAccountant, execution stops at exhaustion.
  kBudgetMetered,
};

/// Configuration of a ShardedSvtServer.
struct ServingOptions {
  /// Number of independent shards (>= 1).
  int num_shards = 1;
  /// Seed of the master stream the per-shard streams are forked from.
  uint64_t seed = 0;
  ShardMode mode = ShardMode::kAutoReset;
  /// Per-shard mechanism template (kAutoReset).
  SvtOptions svt;
  /// Per-shard session template (kBudgetMetered).
  SessionOptions session;

  Status Validate() const;
};

/// Per-shard (and aggregate) serving counters.
struct ServingStats {
  int64_t batches = 0;
  int64_t queries = 0;
  int64_t positives = 0;
};

class RequestBatcher;

class ShardedSvtServer {
 public:
  /// One enqueued batch: `answers` against a common `threshold`, responses
  /// delivered into *out (clear()ed and filled on execution).
  struct BatchItem {
    std::span<const double> answers;
    double threshold = 0.0;
    std::vector<Response>* out = nullptr;
  };

  static Result<std::unique_ptr<ShardedSvtServer>> Create(
      const ServingOptions& options);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ServingOptions& options() const { return options_; }

  /// Deterministic stateless routing: SplitMix64(key) mod num_shards.
  int ShardOf(uint64_t key) const;

  /// Executes one batch on the shard that owns `key`, appending one
  /// Response per processed query to *out; returns the number appended.
  /// Thread-safe: distinct shards execute in parallel, calls into one
  /// shard serialize. In kBudgetMetered mode stops early once the shard's
  /// budget cannot fund the next round (see ShardExhausted); in kAutoReset
  /// mode always processes every query.
  size_t Execute(uint64_t key, std::span<const double> answers,
                 double threshold, std::vector<Response>* out);

  /// Same, addressing the shard by index (checked).
  size_t ExecuteOnShard(int shard, std::span<const double> answers,
                        double threshold, std::vector<Response>* out);

  /// kBudgetMetered: true once the shard's session can answer no further
  /// queries. Always false in kAutoReset mode.
  bool ShardExhausted(int shard) const;

  ServingStats StatsForShard(int shard) const;
  ServingStats TotalStats() const;

 private:
  friend class RequestBatcher;

  /// Cache-line-aligned (and padded to whole lines by the alignas): a
  /// shard's mutex, RNG state, stats and buffer *object* never share a
  /// line with another shard's, so concurrent per-shard locking and stats
  /// updates don't false-share across shards. Note the buffer's *element
  /// storage* is a separate default-aligned heap allocation the alignas
  /// cannot reach; isolating response elements across shards would need
  /// an aligned allocator on a type that must stay std::vector<Response>
  /// (the RunAppend API). Alignment is asserted at Create() in debug
  /// builds.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    Rng rng{0};  ///< forked per-shard stream; mechanisms point into it
    std::unique_ptr<SparseVector> mech;              // kAutoReset
    std::unique_ptr<AboveThresholdSession> session;  // kBudgetMetered
    /// Drain-scratch buffer, reused across drains (capacity persists; see
    /// the buffer-reuse contract on SvtMechanism::RunAppend).
    std::vector<Response> buffer;
    ServingStats stats;
  };

  explicit ShardedSvtServer(const ServingOptions& options)
      : options_(options) {}

  Shard& CheckedShard(int shard) const;

  /// Executes one batch with shard.mu held; returns responses appended.
  size_t ExecuteLocked(Shard& shard, std::span<const double> answers,
                       double threshold, std::vector<Response>* out);

  /// Batcher entry point: runs `items` in order through the shard's
  /// reusable buffer, then copies each item's slice into its *out.
  void ExecuteBatchedOnShard(int shard, std::span<BatchItem* const> items);

  ServingOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace svt

#endif  // SPARSEVEC_SERVING_SHARDED_SERVER_H_
