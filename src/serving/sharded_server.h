// Sharded SVT serving: N independent shards, each backed by the paper's
// standard SVT (or a budget-metered AboveThresholdSession) with its own
// Rng::Fork()-derived stream, executing query batches through the
// vectorized batch engine (core/batch_runner.h).
//
// This is the ROADMAP's interactive-at-scale target: the paper's §1 setting
// — streams of threshold queries answered online, budget paid only for
// positives — served across shards so heavy traffic parallelizes while
// every shard stays a single deterministic SVT stream.
//
// Determinism contract (the same template as audit/monte_carlo.cc's worker
// slices): Create() forks one stream per shard from `seed` in shard-index
// order, and ShardOf() routes a key by a stateless SplitMix64 hash. A
// shard's response stream is therefore a pure function of (seed,
// num_shards, the order of batches executed on that shard) — bitwise
// reproducible across runs, thread counts, and schedules. Concurrent
// callers hitting one shard serialize on its mutex in arrival order; fixing
// the per-shard submission order (as RequestBatcher's drain does) fixes
// every response bitwise.
//
// Faults never perturb noise streams: admission control, deadlines, and
// every injected fault (stall, shard failure, queue-full burst, clock
// skew) change only *which* requests are accepted and executed — a
// skipped or failed request consumes nothing from its shard's stream, so
// the responses of the accepted requests are bitwise identical to a
// fault-free run restricted to the same accepted set, at every dispatch
// level (enforced by tests/serving_fault_matrix_test.cc).

#ifndef SPARSEVEC_SERVING_SHARDED_SERVER_H_
#define SPARSEVEC_SERVING_SHARDED_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/response.h"
#include "core/svt.h"
#include "interactive/session.h"
#include "serving/admission.h"

namespace svt {

class FaultInjector;

/// What backs each shard.
enum class ShardMode {
  /// One SparseVector per shard; when a run exhausts its cutoff the shard
  /// Reset()s into a fresh run automatically, so execution never stops.
  /// No budget metering: each run is ε-DP and lifetime composition across
  /// runs is the operator's concern (throughput serving, simulation).
  kAutoReset,
  /// One AboveThresholdSession per shard: a lifetime budget, rounds funded
  /// through the shared PrivacyAccountant, execution stops at exhaustion.
  kBudgetMetered,
};

/// Configuration of a ShardedSvtServer.
struct ServingOptions {
  /// Number of independent shards (>= 1, <= kMaxShards).
  int num_shards = 1;
  /// Upper bound on num_shards: each shard owns a mutex, an RNG and a
  /// response buffer, so an absurd count is a configuration bug, not a
  /// scaling request.
  static constexpr int kMaxShards = 1 << 20;
  /// Seed of the master stream the per-shard streams are forked from.
  uint64_t seed = 0;
  ShardMode mode = ShardMode::kAutoReset;
  /// Per-shard mechanism template (kAutoReset).
  SvtOptions svt;
  /// Per-shard session template (kBudgetMetered).
  SessionOptions session;
  /// Time source for deadlines, injected stalls and latency stats;
  /// nullptr = RealClock(). Must outlive the server. Tests inject a
  /// VirtualClock so overload scenarios are deterministic.
  Clock* clock = nullptr;
  /// Fault-injection hook; nullptr (the default) disables injection and
  /// costs one never-taken branch per site. Must outlive the server.
  FaultInjector* fault_injector = nullptr;

  Status Validate() const;
};

/// Per-shard (and aggregate) serving counters. The robustness counters
/// exist so overload shows up in telemetry instead of silent truncation:
/// shed + deadline_misses + budget_exhausted + shard_failures account for
/// every request that did not complete normally.
struct ServingStats {
  int64_t batches = 0;
  int64_t queries = 0;
  int64_t positives = 0;
  /// Batcher requests routed to this shard but shed at admission
  /// (queue full, block timeout, injected queue-full burst).
  int64_t shed = 0;
  /// Requests whose deadline expired before execution (at submit or while
  /// queued); never executed.
  int64_t deadline_misses = 0;
  /// SubmitWithRetry re-attempts routed to this shard.
  int64_t retries = 0;
  /// kBudgetMetered requests answered partially (or not at all) because
  /// the shard's lifetime budget ran out.
  int64_t budget_exhausted = 0;
  /// Injected shard-execution failures (kShardFailed outcomes).
  int64_t shard_failures = 0;
  /// Injected stall time observed by this shard, in nanoseconds.
  int64_t stall_nanos = 0;
  /// Execution time under the shard lock (per the injected clock):
  /// total across requests, and the slowest single request.
  int64_t exec_nanos = 0;
  int64_t exec_nanos_max = 0;
  /// Per-request execution-time distribution (same clock samples as
  /// exec_nanos), log2-bucketed so tail latency is visible in telemetry
  /// instead of only the mean and max. Deterministic under a VirtualClock.
  LatencyHistogram exec_hist;

  /// Conservative (upper-edge) percentile views of exec_hist.
  int64_t exec_p50_nanos() const { return exec_hist.PercentileUpperNanos(0.50); }
  int64_t exec_p99_nanos() const { return exec_hist.PercentileUpperNanos(0.99); }
};

class RequestBatcher;

class ShardedSvtServer {
 public:
  /// One enqueued batch: `answers` against a common `threshold`, responses
  /// delivered into *out (clear()ed and filled on execution). The
  /// admission fields are filled by RequestBatcher::Submit; direct
  /// Execute* calls bypass them.
  struct BatchItem {
    std::span<const double> answers;
    double threshold = 0.0;
    std::vector<Response>* out = nullptr;
    /// Absolute deadline in the server clock's domain; 0 = none. Checked
    /// immediately before execution: an expired request is skipped (its
    /// shard's stream untouched) and reported kDeadlineExceeded.
    int64_t deadline_nanos = 0;
    /// Global submission sequence (drives deterministic fault decisions).
    uint64_t sequence = 0;
    /// Terminal outcome slot; may be nullptr when the caller doesn't care.
    RequestOutcome* outcome = nullptr;
  };

  static Result<std::unique_ptr<ShardedSvtServer>> Create(
      const ServingOptions& options);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ServingOptions& options() const { return options_; }
  Clock* clock() const { return clock_; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Deterministic stateless routing: SplitMix64(key) mod num_shards.
  int ShardOf(uint64_t key) const;

  /// Executes one batch on the shard that owns `key`, appending one
  /// Response per processed query to *out; returns the number appended.
  /// Thread-safe: distinct shards execute in parallel, calls into one
  /// shard serialize. In kBudgetMetered mode stops early once the shard's
  /// budget cannot fund the next round (see ShardExhausted); in kAutoReset
  /// mode always processes every query. When `outcome` is non-null it
  /// receives the structured result (kOk, kBudgetExhausted on a partial
  /// or empty metered append, kShardFailed on an injected failure).
  size_t Execute(uint64_t key, std::span<const double> answers,
                 double threshold, std::vector<Response>* out,
                 RequestOutcome* outcome = nullptr);

  /// Same, addressing the shard by index (checked).
  size_t ExecuteOnShard(int shard, std::span<const double> answers,
                        double threshold, std::vector<Response>* out,
                        RequestOutcome* outcome = nullptr);

  /// kBudgetMetered: true once the shard's session can answer no further
  /// queries. Always false in kAutoReset mode.
  bool ShardExhausted(int shard) const;

  ServingStats StatsForShard(int shard) const;
  ServingStats TotalStats() const;

 private:
  friend class RequestBatcher;

  /// Cache-line-aligned (and padded to whole lines by the alignas): a
  /// shard's mutex, RNG state, stats and buffer *object* never share a
  /// line with another shard's, so concurrent per-shard locking and stats
  /// updates don't false-share across shards. Note the buffer's *element
  /// storage* is a separate default-aligned heap allocation the alignas
  /// cannot reach; isolating response elements across shards would need
  /// an aligned allocator on a type that must stay std::vector<Response>
  /// (the RunAppend API). Alignment is asserted at Create() in debug
  /// builds.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    int index = 0;
    Rng rng{0};  ///< forked per-shard stream; mechanisms point into it
    std::unique_ptr<SparseVector> mech;              // kAutoReset
    std::unique_ptr<AboveThresholdSession> session;  // kBudgetMetered
    /// Drain-scratch buffer, reused across drains (capacity persists; see
    /// the buffer-reuse contract on SvtMechanism::RunAppend).
    std::vector<Response> buffer;
    /// Guarded by mu (like stats): counts every execution attempt on this
    /// shard, the deterministic coordinate fault decisions are drawn at.
    uint64_t fault_attempts = 0;
    ServingStats stats;
    /// Admission-side counters, written without the shard lock (a shed
    /// must not wait out a long-running batch); folded into snapshots.
    std::atomic<int64_t> shed{0};
    std::atomic<int64_t> deadline_misses{0};
    std::atomic<int64_t> retries{0};
  };

  explicit ShardedSvtServer(const ServingOptions& options)
      : options_(options) {}

  Shard& CheckedShard(int shard) const;

  /// Executes one batch with shard.mu held; returns responses appended
  /// and writes the structured outcome (never kPending) to *outcome.
  size_t ExecuteLocked(Shard& shard, std::span<const double> answers,
                       double threshold, std::vector<Response>* out,
                       RequestOutcome* outcome);

  /// Batcher entry point: runs `items` in order through the shard's
  /// reusable buffer (skipping expired-deadline items), then copies each
  /// item's slice into its *out.
  void ExecuteBatchedOnShard(int shard, std::span<BatchItem* const> items);

  /// Drain-time deadline check: the injected clock, plus any injected
  /// skew for this item's submission sequence.
  bool ExpiredAtDrain(const BatchItem& item);

  /// Admission-side counter hooks for RequestBatcher (shard already
  /// resolved by ShardOf at submit time).
  void RecordShed(int shard) { CheckedShard(shard).shed.fetch_add(1); }
  void RecordDeadlineMiss(int shard) {
    CheckedShard(shard).deadline_misses.fetch_add(1);
  }
  void RecordRetry(int shard) { CheckedShard(shard).retries.fetch_add(1); }

  ServingOptions options_;
  Clock* clock_ = nullptr;
  FaultInjector* injector_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace svt

#endif  // SPARSEVEC_SERVING_SHARDED_SERVER_H_
