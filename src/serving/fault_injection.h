// Deterministic fault injection for the serving layer.
//
// A FaultInjector is a *pure decision table*: every fault decision is a
// stateless SplitMix64 hash of (seed, fault site, shard, attempt index),
// so a fixed seed and submission schedule reproduce exactly the same
// faults regardless of thread count or interleaving — which is what lets
// the fault-matrix test suite assert bitwise determinism under every
// fault. The injector never touches a shard's noise stream: faults change
// *which* requests are admitted/executed, never the noise of the ones
// that run (the serving determinism contract in sharded_server.h).
//
// Wiring is zero-cost when disabled: ShardedSvtServer and RequestBatcher
// hold a FaultInjector* that defaults to nullptr, and every injection
// site is guarded by one never-taken null check (verified by paired A/B
// runs of bench_serving with the injector compiled in but inactive).
//
// Supported faults:
//   * shard stall     — the shard sleeps (real clock) or jumps time
//                       (VirtualClock) before executing a request, so
//                       queued requests behind it miss deadlines;
//   * shard failure   — the request is skipped and reported kShardFailed,
//                       the shard's noise stream untouched;
//   * queue-full burst— Submit() sheds runs of consecutive submissions as
//                       if the pending queue were at capacity;
//   * clock skew      — admission-time clock reads are shifted forward,
//                       expiring deadlines early. Decisions only; no
//                       execution-path perturbation.

#ifndef SPARSEVEC_SERVING_FAULT_INJECTION_H_
#define SPARSEVEC_SERVING_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace svt {

class FaultInjector {
 public:
  struct Options {
    /// Seed of the decision table; independent of every serving seed.
    uint64_t seed = 0;

    /// P[a shard execution attempt stalls for stall_nanos].
    double shard_stall_probability = 0.0;
    int64_t stall_nanos = 0;

    /// P[a shard execution attempt fails -> kShardFailed].
    double shard_failure_probability = 0.0;

    /// P[a submission attempt starts a shed burst]; each trigger sheds
    /// `submit_shed_burst` consecutive submission attempts (>= 1).
    double submit_shed_probability = 0.0;
    int submit_shed_burst = 1;

    /// P[an admission-time clock read is skewed forward by
    /// clock_skew_nanos].
    double clock_skew_probability = 0.0;
    int64_t clock_skew_nanos = 0;

    Status Validate() const;
  };

  /// Options are checked fatally (SVT_CHECK_OK); Validate() first when
  /// they come from configuration.
  explicit FaultInjector(const Options& options);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decision for the `attempt`-th execution attempt on `shard` (the
  /// shard's own attempt counter: deterministic given its accepted-request
  /// order). Stall and failure are drawn independently; a request can
  /// stall and then fail.
  struct ShardFault {
    int64_t stall_nanos = 0;  ///< 0 = no stall
    bool fail = false;
  };
  ShardFault OnShardAttempt(int shard, uint64_t attempt) const;

  /// True when the `attempt`-th global submission attempt falls in an
  /// injected queue-full burst (shed with kOverloaded, not enqueued).
  bool OnSubmitAttempt(uint64_t attempt) const;

  /// Forward skew (>= 0) applied to the admission-time clock read of the
  /// `attempt`-th global submission attempt.
  int64_t SkewNanos(uint64_t attempt) const;

  /// How many faults actually fired (telemetry; updated by the serving
  /// sites, not by the pure decision functions above).
  struct Counters {
    int64_t stalls = 0;
    int64_t failures = 0;
    int64_t submit_sheds = 0;
    int64_t skews = 0;
  };
  Counters counters() const;
  void CountStall() { stalls_.fetch_add(1, std::memory_order_relaxed); }
  void CountFailure() { failures_.fetch_add(1, std::memory_order_relaxed); }
  void CountSubmitShed() {
    submit_sheds_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountSkew() { skews_.fetch_add(1, std::memory_order_relaxed); }

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::atomic<int64_t> stalls_{0};
  std::atomic<int64_t> failures_{0};
  std::atomic<int64_t> submit_sheds_{0};
  std::atomic<int64_t> skews_{0};
};

}  // namespace svt

#endif  // SPARSEVEC_SERVING_FAULT_INJECTION_H_
