// Admission-control vocabulary for the serving layer: shed policies for a
// full pending queue, structured per-request outcomes (so degraded modes —
// exhausted budgets, expired deadlines, injected shard failures — are
// reported instead of silently truncating responses), and a seeded
// jittered-backoff helper so retry schedules stay reproducible.
//
// Overload handling follows the standard production recipe (bounded queue
// + explicit shed + caller retry-with-backoff) rather than unbounded
// buffering: the ROADMAP's serving item names admission control and
// backpressure as prerequisites for a front end serving millions of users.

#ifndef SPARSEVEC_SERVING_ADMISSION_H_
#define SPARSEVEC_SERVING_ADMISSION_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "common/status.h"

namespace svt {

/// What Submit() does when the pending queue is at capacity.
enum class ShedPolicy : uint8_t {
  /// Fail fast: return kOverloaded immediately, never block. The default —
  /// a request handler must not stall its thread on a saturated server.
  kReject,
  /// Backpressure: block the submitting thread until space frees or
  /// `block_timeout_nanos` elapses (then kOverloaded). Never call from a
  /// thread that is itself responsible for draining.
  kBlock,
};

std::string_view ShedPolicyName(ShedPolicy policy);

/// Terminal state of one submitted request, written to the caller's
/// outcome slot by the drain that consumed it. A request that was never
/// admitted (Submit returned an error) keeps whatever the slot held;
/// Submit sets admitted requests to kPending first.
enum class RequestOutcome : uint8_t {
  /// Admitted but not yet drained.
  kPending = 0,
  /// Executed; one Response per query delivered to *out.
  kOk,
  /// Deadline expired while queued; the request was NOT executed (its
  /// shard's noise stream is untouched) and *out is empty.
  kDeadlineExceeded,
  /// kBudgetMetered only: the shard's lifetime budget could not fund all
  /// (possibly any) of the request's queries. *out holds the responses
  /// that were funded — fewer than answers.size(), possibly zero.
  kBudgetExhausted,
  /// The shard failed to execute the request (fault injection, or a real
  /// shard-level failure). NOT executed, noise stream untouched, *out
  /// empty. Other shards' requests in the same drain are unaffected.
  kShardFailed,
};

std::string_view RequestOutcomeName(RequestOutcome outcome);

/// Per-request admission parameters (RequestBatcher::Submit).
struct SubmitOptions {
  /// Absolute deadline in the server clock's domain (NowNanos() +
  /// budget); 0 = none. Expired requests are never executed: rejected at
  /// submit with kDeadlineExceeded, or skipped at drain time with outcome
  /// kDeadlineExceeded.
  int64_t deadline_nanos = 0;
};

/// Deterministic exponential backoff with multiplicative jitter, seeded
/// from an Rng fork so a retry schedule is a pure function of the seed.
/// Delay k (0-based) is clamp(initial * multiplier^k, ., max) scaled by a
/// uniform factor in [1 - jitter, 1]; jitter desynchronizes retry storms
/// while the Rng keeps every run bitwise reproducible.
class JitteredBackoff {
 public:
  struct Options {
    int64_t initial_delay_nanos = 1'000'000;  // 1 ms
    int64_t max_delay_nanos = 100'000'000;    // 100 ms
    double multiplier = 2.0;
    /// Fraction of each delay that jitter may remove, in [0, 1].
    double jitter = 0.5;

    Status Validate() const;
  };

  /// Options are checked fatally (SVT_CHECK_OK); validate first when they
  /// come from configuration. `rng` must outlive the helper.
  JitteredBackoff(const Options& options, Rng* rng);

  /// Delay before the next retry; each call advances the schedule (and
  /// consumes exactly one Rng draw when jitter > 0).
  int64_t NextDelayNanos();

  /// Restarts the schedule at the initial delay (Rng stream continues).
  void Reset() { attempt_ = 0; }

  int attempts() const { return attempt_; }

 private:
  Options options_;
  Rng* rng_;
  int attempt_ = 0;
};

}  // namespace svt

#endif  // SPARSEVEC_SERVING_ADMISSION_H_
