#include "eval/reporting.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace svt {

std::string_view MetricName(Metric metric) {
  switch (metric) {
    case Metric::kSer:
      return "SER";
    case Metric::kFnr:
      return "FNR";
  }
  return "?";
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(precision) << value;
  return os.str();
}

namespace {

const RunningStats& MetricOf(const CellStats& cell, Metric metric) {
  return metric == Metric::kSer ? cell.ser : cell.fnr;
}

}  // namespace

void PrintSeriesTable(std::ostream& os, const std::string& title,
                      const std::vector<int>& c_values,
                      const std::vector<MethodSeries>& series, Metric metric,
                      int precision) {
  TablePrinter printer([&] {
    std::vector<std::string> headers = {"c"};
    for (const MethodSeries& s : series) headers.push_back(s.config.label);
    return headers;
  }());

  for (size_t ci = 0; ci < c_values.size(); ++ci) {
    std::vector<std::string> row = {std::to_string(c_values[ci])};
    for (const MethodSeries& s : series) {
      SVT_CHECK(s.cells.size() == c_values.size());
      row.push_back(MetricOf(s.cells[ci], metric).ToString(precision));
    }
    printer.AddRow(std::move(row));
  }

  os << "== " << title << " ==\n";
  printer.Print(os);
}

void WriteSeriesCsv(std::ostream& os, const std::string& dataset,
                    const std::vector<int>& c_values,
                    const std::vector<MethodSeries>& series, Metric metric,
                    bool with_header) {
  if (with_header) os << "dataset,metric,c,method,mean,std\n";
  for (size_t ci = 0; ci < c_values.size(); ++ci) {
    for (const MethodSeries& s : series) {
      const RunningStats& stats = MetricOf(s.cells[ci], metric);
      os << dataset << "," << MetricName(metric) << "," << c_values[ci]
         << "," << s.config.label << "," << stats.mean() << ","
         << stats.stddev() << "\n";
    }
  }
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SVT_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SVT_CHECK(cells.size() == headers_.size())
      << "row width " << cells.size() << " != header width "
      << headers_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (size_t w : widths) rule += std::string(w, '-') + "  ";
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace svt
