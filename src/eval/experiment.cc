#include "eval/experiment.h"

#include <memory>

#include "common/check.h"
#include "core/exponential_mechanism.h"
#include "core/svt.h"
#include "core/svt_retraversal.h"
#include "core/svt_variants.h"
#include "core/top_select.h"
#include "eval/metrics.h"

namespace svt {

MethodConfig MethodConfig::SvtDpBook() {
  MethodConfig m;
  m.label = "SVT-DPBook";
  m.kind = MethodKind::kSvtDpBook;
  return m;
}

MethodConfig MethodConfig::SvtStandard(AllocationPolicy policy) {
  MethodConfig m;
  m.kind = MethodKind::kSvtStandard;
  m.allocation = policy;
  switch (policy) {
    case AllocationPolicy::kOneToOne:
      m.label = "SVT-S-1:1";
      break;
    case AllocationPolicy::kOneToThree:
      m.label = "SVT-S-1:3";
      break;
    case AllocationPolicy::kOneToC:
      m.label = "SVT-S-1:c";
      break;
    case AllocationPolicy::kOptimal:
      m.label = "SVT-S-1:c^2/3";
      break;
  }
  return m;
}

MethodConfig MethodConfig::SvtRetraversal(double boost_devs) {
  MethodConfig m;
  m.kind = MethodKind::kSvtRetraversal;
  m.allocation = AllocationPolicy::kOptimal;
  m.boost_devs = boost_devs;
  m.label = "SVT-ReTr-1:c^2/3-" + std::to_string(static_cast<int>(boost_devs)) +
            "D";
  return m;
}

MethodConfig MethodConfig::Em() {
  MethodConfig m;
  m.label = "EM";
  m.kind = MethodKind::kEm;
  return m;
}

std::vector<MethodConfig> Figure4Methods() {
  return {MethodConfig::SvtDpBook(),
          MethodConfig::SvtStandard(AllocationPolicy::kOneToOne),
          MethodConfig::SvtStandard(AllocationPolicy::kOneToThree),
          MethodConfig::SvtStandard(AllocationPolicy::kOneToC),
          MethodConfig::SvtStandard(AllocationPolicy::kOptimal)};
}

std::vector<MethodConfig> Figure5Methods() {
  return {MethodConfig::SvtStandard(AllocationPolicy::kOptimal),
          MethodConfig::SvtRetraversal(1.0),
          MethodConfig::SvtRetraversal(2.0),
          MethodConfig::SvtRetraversal(3.0),
          MethodConfig::SvtRetraversal(4.0),
          MethodConfig::SvtRetraversal(5.0),
          MethodConfig::Em()};
}

namespace {

BudgetAllocation ResolveAllocation(AllocationPolicy policy, int c,
                                   bool monotonic) {
  switch (policy) {
    case AllocationPolicy::kOneToOne:
      return BudgetAllocation::Halves();
    case AllocationPolicy::kOneToThree:
      return BudgetAllocation::OneToThree();
    case AllocationPolicy::kOneToC:
      return BudgetAllocation::OneToC(c);
    case AllocationPolicy::kOptimal:
      return BudgetAllocation::Optimal(c, monotonic);
  }
  SVT_CHECK(false) << "unknown AllocationPolicy";
  return BudgetAllocation::Halves();
}

}  // namespace

Result<std::vector<size_t>> RunMethodOnce(std::span<const double> scores,
                                          double threshold, int c,
                                          double epsilon, bool monotonic,
                                          const MethodConfig& method,
                                          Rng& rng) {
  switch (method.kind) {
    case MethodKind::kSvtDpBook: {
      SVT_ASSIGN_OR_RETURN(
          std::unique_ptr<DworkRothSvt> mech,
          DworkRothSvt::Create(epsilon, /*sensitivity=*/1.0, c, &rng));
      return CollectPositives(*mech, scores, threshold);
    }
    case MethodKind::kSvtStandard: {
      SvtOptions options;
      options.epsilon = epsilon;
      options.sensitivity = 1.0;
      options.cutoff = c;
      options.monotonic = monotonic;
      options.allocation = ResolveAllocation(method.allocation, c, monotonic);
      return SelectTopCWithSvt(scores, threshold, options, rng);
    }
    case MethodKind::kSvtRetraversal: {
      RetraversalOptions options;
      options.svt.epsilon = epsilon;
      options.svt.sensitivity = 1.0;
      options.svt.cutoff = c;
      options.svt.monotonic = monotonic;
      options.svt.allocation =
          ResolveAllocation(method.allocation, c, monotonic);
      options.threshold_boost_devs = method.boost_devs;
      SVT_ASSIGN_OR_RETURN(
          RetraversalResult result,
          SelectWithRetraversal(scores, threshold, options, rng));
      return std::move(result.selected);
    }
    case MethodKind::kEm: {
      EmOptions options;
      options.epsilon = epsilon;
      options.sensitivity = 1.0;
      options.num_selections = c;
      options.monotonic = monotonic;
      return ExponentialMechanism::SelectTopC(scores, options, rng);
    }
  }
  return Status::InvalidArgument("unknown MethodKind");
}

Result<std::vector<MethodSeries>> RunSelectionSweep(
    const ScoreVector& scores, const SweepConfig& sweep,
    const std::vector<MethodConfig>& methods) {
  if (scores.size() < 2) {
    return Status::InvalidArgument("need at least 2 scores");
  }
  for (int c : sweep.c_values) {
    if (c < 1 || static_cast<size_t>(c) >= scores.size()) {
      return Status::InvalidArgument(
          "every c must satisfy 1 <= c < scores.size()");
    }
  }
  if (sweep.runs < 1) {
    return Status::InvalidArgument("runs must be >= 1");
  }

  std::vector<MethodSeries> series(methods.size());
  for (size_t m = 0; m < methods.size(); ++m) {
    series[m].config = methods[m];
    series[m].cells.resize(sweep.c_values.size());
  }

  Rng master(sweep.seed);
  for (size_t ci = 0; ci < sweep.c_values.size(); ++ci) {
    const int c = sweep.c_values[ci];
    const double threshold =
        PaperThreshold(scores.scores(), static_cast<size_t>(c));

    for (int run = 0; run < sweep.runs; ++run) {
      // One permutation per run, shared by all methods (paired design, as
      // in the paper: "each time randomizing the order of items").
      Rng run_rng = master.Fork();
      const ScoreVector shuffled = scores.Shuffled(run_rng);

      for (size_t m = 0; m < methods.size(); ++m) {
        Rng method_rng = run_rng.Fork();
        SVT_ASSIGN_OR_RETURN(
            std::vector<size_t> selected,
            RunMethodOnce(shuffled.scores(), threshold, c, sweep.epsilon,
                          sweep.monotonic, methods[m], method_rng));
        series[m].cells[ci].ser.Add(ScoreErrorRate(
            selected, shuffled.scores(), static_cast<size_t>(c)));
        series[m].cells[ci].fnr.Add(FalseNegativeRate(
            selected, shuffled.scores(), static_cast<size_t>(c)));
      }
    }
  }
  return series;
}

}  // namespace svt
