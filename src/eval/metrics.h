// Utility metrics of §6: False Negative Rate and Score Error Rate.

#ifndef SPARSEVEC_EVAL_METRICS_H_
#define SPARSEVEC_EVAL_METRICS_H_

#include <cstddef>
#include <span>

namespace svt {

/// Fraction of the true top-c scores the selection missed.
///
/// Ties at the boundary are handled by value, not by index: an item whose
/// score equals the c-th largest counts as a hit up to the number of
/// boundary-valued slots inside the top c (real supports are integers and
/// do tie). When the selection returns exactly c items this equals the
/// paper's false positive rate as well.
double FalseNegativeRate(std::span<const size_t> selected,
                         std::span<const double> scores, size_t c);

/// SER = 1 − score(S)/score(Top_c), §6. The paper leaves avgScore's
/// denominator unspecified when |S| < c (SVT can under-select); we divide
/// both sides by c, so missing selections count as missed score — matching
/// the metric's stated intent ("the ratio of missed scores"). Selecting the
/// full true top-c gives 0; selecting nothing gives 1.
double ScoreErrorRate(std::span<const size_t> selected,
                      std::span<const double> scores, size_t c);

}  // namespace svt

#endif  // SPARSEVEC_EVAL_METRICS_H_
