// Table and CSV reporters for the experiment sweeps — these print the rows
// and series the paper's figures plot.

#ifndef SPARSEVEC_EVAL_REPORTING_H_
#define SPARSEVEC_EVAL_REPORTING_H_

#include <ostream>
#include <string>
#include <vector>

#include "eval/experiment.h"

namespace svt {

/// Which metric of a CellStats to print.
enum class Metric { kSer, kFnr };

std::string_view MetricName(Metric metric);

/// Fixed-width table: one row per c value, one column per method, cells are
/// "mean±std". `title` is printed as a header line.
void PrintSeriesTable(std::ostream& os, const std::string& title,
                      const std::vector<int>& c_values,
                      const std::vector<MethodSeries>& series, Metric metric,
                      int precision = 3);

/// CSV: columns dataset,metric,c,method,mean,std. Appends (no header) when
/// `with_header` is false.
void WriteSeriesCsv(std::ostream& os, const std::string& dataset,
                    const std::vector<int>& c_values,
                    const std::vector<MethodSeries>& series, Metric metric,
                    bool with_header = true);

/// Generic aligned table printing (used by the non-sweep benches).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string FormatDouble(double value, int precision = 3);

}  // namespace svt

#endif  // SPARSEVEC_EVAL_REPORTING_H_
