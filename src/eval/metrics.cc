#include "eval/metrics.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"

namespace svt {

namespace {

// c-th largest score and how many of the top-c slots carry exactly that
// value.
struct Boundary {
  double value;
  size_t slots_at_value;
};

Boundary TopCBoundary(std::span<const double> scores, size_t c) {
  SVT_CHECK(c >= 1 && c <= scores.size());
  std::vector<double> sorted(scores.begin(), scores.end());
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(c - 1),
                   sorted.end(), std::greater<double>());
  const double boundary = sorted[c - 1];
  size_t at_value = 0;
  for (size_t i = 0; i < c; ++i) {
    if (sorted[i] == boundary) ++at_value;
  }
  return {boundary, at_value};
}

}  // namespace

double FalseNegativeRate(std::span<const size_t> selected,
                         std::span<const double> scores, size_t c) {
  SVT_CHECK(c >= 1 && c <= scores.size());
  const Boundary b = TopCBoundary(scores, c);

  size_t hits_above = 0;
  size_t hits_at_boundary = 0;
  for (size_t idx : selected) {
    SVT_CHECK(idx < scores.size());
    if (scores[idx] > b.value) {
      ++hits_above;
    } else if (scores[idx] == b.value) {
      ++hits_at_boundary;
    }
  }
  const size_t hits =
      hits_above + std::min(hits_at_boundary, b.slots_at_value);
  return 1.0 - static_cast<double>(hits) / static_cast<double>(c);
}

double ScoreErrorRate(std::span<const size_t> selected,
                      std::span<const double> scores, size_t c) {
  SVT_CHECK(c >= 1 && c <= scores.size());
  std::vector<double> sorted(scores.begin(), scores.end());
  std::partial_sort(sorted.begin(),
                    sorted.begin() + static_cast<std::ptrdiff_t>(c),
                    sorted.end(), std::greater<double>());
  KahanAccumulator top_sum;
  for (size_t i = 0; i < c; ++i) top_sum.Add(sorted[i]);
  if (top_sum.sum() <= 0.0) return 0.0;  // degenerate: nothing to miss

  KahanAccumulator sel_sum;
  for (size_t idx : selected) {
    SVT_CHECK(idx < scores.size());
    sel_sum.Add(scores[idx]);
  }
  return 1.0 - sel_sum.sum() / top_sum.sum();
}

}  // namespace svt
