// The §6 experiment runner: sweeps top-c selection methods over c values
// with repeated randomized query orders, aggregating SER and FNR.
//
// Method lineup (Table 2 of the paper):
//   interactive:      SVT-DPBook (Alg. 2), SVT-S (Alg. 7) with budget
//                     allocations 1:1, 1:3, 1:c, 1:c^{2/3};
//   non-interactive:  SVT-ReTr with threshold boosts 1D..5D, EM.
//
// All §6 experiments use monotonic counting queries (item supports), so the
// SVT-S methods use the §4.3 monotone noise and EM the one-sided exponent.

#ifndef SPARSEVEC_EVAL_EXPERIMENT_H_
#define SPARSEVEC_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/budget.h"
#include "data/score_vector.h"

namespace svt {

/// Which selection algorithm a method runs.
enum class MethodKind {
  kSvtDpBook,      ///< Alg. 2 over the score stream
  kSvtStandard,    ///< Alg. 7 (indicator-only, monotone) — "SVT-S"
  kSvtRetraversal, ///< SVT-ReTr with a kD threshold boost
  kEm,             ///< Exponential Mechanism, c rounds (Gumbel top-c)
};

/// How SVT-S / SVT-ReTr split ε₁:ε₂ — mirrors §6's four allocations.
enum class AllocationPolicy { kOneToOne, kOneToThree, kOneToC, kOptimal };

/// One method (one curve in Figure 4/5).
struct MethodConfig {
  std::string label;
  MethodKind kind = MethodKind::kSvtStandard;
  AllocationPolicy allocation = AllocationPolicy::kOptimal;
  /// SVT-ReTr only: threshold boost in noise standard deviations (the "kD").
  double boost_devs = 0.0;

  static MethodConfig SvtDpBook();
  static MethodConfig SvtStandard(AllocationPolicy policy);
  static MethodConfig SvtRetraversal(double boost_devs);
  static MethodConfig Em();
};

/// The interactive lineup of Figure 4.
std::vector<MethodConfig> Figure4Methods();
/// The non-interactive lineup of Figure 5.
std::vector<MethodConfig> Figure5Methods();

/// Sweep parameters (§6 defaults: ε = 0.1, c ∈ {25, 50, ..., 300},
/// 100 runs; the bench binaries default to fewer runs — see flags).
struct SweepConfig {
  std::vector<int> c_values = {25,  50,  75,  100, 125, 150,
                               175, 200, 225, 250, 275, 300};
  double epsilon = 0.1;
  int runs = 30;
  uint64_t seed = 42;
  /// §6 uses monotonic counting queries throughout.
  bool monotonic = true;
};

/// Aggregated metrics of one (method, c) cell.
struct CellStats {
  RunningStats ser;
  RunningStats fnr;
};

/// One curve: per-c aggregates, aligned with SweepConfig::c_values.
struct MethodSeries {
  MethodConfig config;
  std::vector<CellStats> cells;
};

/// Runs every method over every c with `runs` randomized query orders.
/// Per run, all methods see the same permutation (paired comparison).
Result<std::vector<MethodSeries>> RunSelectionSweep(
    const ScoreVector& scores, const SweepConfig& sweep,
    const std::vector<MethodConfig>& methods);

/// Runs one method once on a pre-shuffled score array (exposed for tests).
Result<std::vector<size_t>> RunMethodOnce(std::span<const double> scores,
                                          double threshold, int c,
                                          double epsilon, bool monotonic,
                                          const MethodConfig& method,
                                          Rng& rng);

}  // namespace svt

#endif  // SPARSEVEC_EVAL_EXPERIMENT_H_
