#include "audit/monte_carlo.h"

#include "common/check.h"
#include "common/stats.h"
#include "core/svt_variants.h"

namespace svt {

McEstimate EstimateOutputProbability(const VariantSpec& spec,
                                     std::span<const double> query_answers,
                                     double threshold,
                                     const std::string& pattern, Rng& rng,
                                     const McOptions& options) {
  SVT_CHECK(pattern.size() <= query_answers.size())
      << "pattern longer than the answer stream";
  SVT_CHECK(options.trials > 0);
  for (char c : pattern) {
    SVT_CHECK(c == '_' || c == 'T') << "invalid pattern char '" << c << "'";
  }

  CustomSvt mech(spec, &rng);
  int64_t hits = 0;
  for (int64_t trial = 0; trial < options.trials; ++trial) {
    mech.Reset();
    bool match = true;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (mech.exhausted()) {
        // Mechanism aborted before producing pattern.size() outputs.
        match = false;
        break;
      }
      const Response r = mech.Process(query_answers[i], threshold);
      const bool want_positive = pattern[i] == 'T';
      if (r.is_positive() != want_positive) {
        match = false;
        break;
      }
    }
    if (match) ++hits;
  }

  McEstimate est;
  est.hits = hits;
  est.trials = options.trials;
  est.p_hat = static_cast<double>(hits) / static_cast<double>(options.trials);
  est.lower = BinomialLowerBound(hits, options.trials, options.confidence);
  est.upper = BinomialUpperBound(hits, options.trials, options.confidence);
  return est;
}

}  // namespace svt
