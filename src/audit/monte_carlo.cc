#include "audit/monte_carlo.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/svt_variants.h"

namespace svt {

namespace {

/// Runs `trials` simulations of `spec` against `pattern` drawing all
/// randomness from `rng`; returns the number of exact pattern matches.
/// Each worker stream runs this once.
///
/// Trials execute through the batch engine (RunAppend) over one response
/// buffer reused for the worker's whole slice, so every ν draw flows
/// through the block samplers' vectorized vecmath kernels instead of
/// per-draw scalar calls — this loop was the last scalar-sampling hot loop
/// outside the mechanisms. Each trial processes its full pattern window
/// (the batch engine does not stop at a mismatch the way the old scalar
/// loop broke early), so for specs that draw from the base stream at
/// positives the stream position after a trial is a function of the trial
/// alone, never of where a mismatch occurred; per-trial outcomes are
/// unchanged (the ν substream is re-derived every Reset()).
int64_t CountPatternHits(const VariantSpec& spec,
                         std::span<const double> query_answers,
                         double threshold, std::string_view pattern,
                         int64_t trials, Rng* rng) {
  CustomSvt mech(spec, rng);
  const std::span<const double> window =
      query_answers.first(pattern.size());
  std::vector<Response> responses;
  responses.reserve(pattern.size());
  int64_t hits = 0;
  for (int64_t trial = 0; trial < trials; ++trial) {
    mech.Reset();
    responses.clear();
    // Fewer responses than pattern positions means the cutoff exhausted
    // the run before the pattern window completed: no match.
    bool match = mech.RunAppend(window, threshold, &responses) ==
                 pattern.size();
    for (size_t i = 0; match && i < pattern.size(); ++i) {
      match = responses[i].is_positive() == (pattern[i] == 'T');
    }
    if (match) ++hits;
  }
  return hits;
}

}  // namespace

McEstimate EstimateOutputProbability(const VariantSpec& spec,
                                     std::span<const double> query_answers,
                                     double threshold,
                                     std::string_view pattern, Rng& rng,
                                     const McOptions& options) {
  SVT_CHECK(pattern.size() <= query_answers.size())
      << "pattern longer than the answer stream";
  SVT_CHECK(options.trials > 0);
  for (char c : pattern) {
    SVT_CHECK(c == '_' || c == 'T') << "invalid pattern char '" << c << "'";
  }

  int workers = options.num_workers <= 0 ? ThreadPool::HardwareThreads()
                                         : options.num_workers;
  workers = static_cast<int>(
      std::min<int64_t>(workers, options.trials));

  int64_t hits = 0;
  if (workers == 1) {
    hits = CountPatternHits(spec, query_answers, threshold, pattern,
                            options.trials, &rng);
  } else {
    // Fork every worker stream up front on the calling thread: the streams
    // (and the trial slices, fixed by ParallelFor's static split) then
    // depend only on (rng state, workers), never on scheduling.
    std::vector<Rng> streams;
    streams.reserve(workers);
    for (int w = 0; w < workers; ++w) streams.push_back(rng.Fork());
    std::vector<int64_t> worker_hits(workers, 0);
    ParallelFor(options.trials, workers,
                [&](int64_t begin, int64_t end, int slice) {
                  worker_hits[slice] =
                      CountPatternHits(spec, query_answers, threshold,
                                       pattern, end - begin, &streams[slice]);
                });
    for (int64_t h : worker_hits) hits += h;
  }

  McEstimate est;
  est.hits = hits;
  est.trials = options.trials;
  est.p_hat = static_cast<double>(hits) / static_cast<double>(options.trials);
  est.lower = BinomialLowerBound(hits, options.trials, options.confidence);
  est.upper = BinomialUpperBound(hits, options.trials, options.confidence);
  return est;
}

}  // namespace svt
