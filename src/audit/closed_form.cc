#include "audit/closed_form.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/distributions.h"
#include "common/math_util.h"

namespace svt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One maximal run of events sharing a single ρ draw. For variants that
// never resample, the whole pattern is one segment; for Alg. 2 a segment
// ends at (and includes) each positive outcome.
struct Segment {
  size_t begin = 0;  // [begin, end) into the pattern
  size_t end = 0;
  double rho_scale = 0.0;
};

// Per-role audit-side distribution, dispatching the density/CDF calls on
// the spec's NoiseKind. Exponential support is one-sided [0, ∞): its
// LogPdf/LogCdf are -inf below 0, and SegmentLogProbability additionally
// clamps the integration window to the support — exact (the excluded
// region carries zero mass) and it keeps the integrator's peak search
// inside the non-degenerate part of the integrand.
class NoiseDist {
 public:
  NoiseDist(NoiseKind kind, double scale)
      : kind_(kind),
        lap_(Laplace::Centered(scale)),
        exp_(Exponential::FromScale(scale)) {}

  double LogPdf(double x) const {
    return kind_ == NoiseKind::kLaplace ? lap_.LogPdf(x) : exp_.LogPdf(x);
  }
  double LogCdf(double x) const {
    return kind_ == NoiseKind::kLaplace ? lap_.LogCdf(x) : exp_.LogCdf(x);
  }
  double LogSf(double x) const {
    return kind_ == NoiseKind::kLaplace ? lap_.LogSf(x) : exp_.LogSf(x);
  }

 private:
  NoiseKind kind_;
  Laplace lap_;
  Exponential exp_;
};

// log Pr[events in segment | its ρ ~ Lap(rho_scale)], integrating over ρ.
double SegmentLogProbability(const VariantSpec& spec, const Segment& seg,
                             std::span<const double> q,
                             std::span<const double> t,
                             std::span<const OutputEvent> pattern,
                             const IntegrationOptions& options) {
  const double nu_scale = spec.nu_scale;
  const NoiseDist rho_dist(spec.rho_kind, seg.rho_scale);
  const NoiseDist nu_dist(spec.nu_kind, nu_scale > 0.0 ? nu_scale : 1.0);

  double z_lo = -kInf;       // hard constraints from indicator factors
  double z_hi = kInf;
  double log_const = 0.0;    // z-independent log factors (numeric densities)
  if (spec.rho_kind == NoiseKind::kExponential) {
    // One-sided ρ: p_ρ(z) = 0 for z < 0, so the support boundary is a hard
    // integration limit, exactly like an indicator constraint.
    z_lo = std::max(z_lo, 0.0);
  }

  // Smooth per-event factors: sign = +1 for a CDF term (⊥), -1 for a
  // survival term (⊤); each kinks at z = q_i − t_i.
  struct SmoothFactor {
    double center;  // q_i − t_i
    bool is_cdf;
  };
  std::vector<SmoothFactor> factors;
  std::vector<double> knots = {0.0};  // ρ density kink

  for (size_t i = seg.begin; i < seg.end; ++i) {
    const OutputEvent& ev = pattern[i];
    const double center = q[i] - t[i];
    switch (ev.kind) {
      case OutputEvent::Kind::kBelow:
        if (nu_scale == 0.0) {
          // q_i < t_i + z  ⇔  z > q_i − t_i.
          z_lo = std::max(z_lo, center);
        } else {
          factors.push_back({center, /*is_cdf=*/true});
          knots.push_back(center);
          if (spec.nu_kind == NoiseKind::kExponential) {
            // ν_i ≥ 0 makes the CDF factor F_ν(z − center) identically 0
            // for z ≤ center — a hard support bound on top of the smooth
            // factor. Clamping is exact (zero mass excluded; the boundary
            // point itself has measure zero).
            z_lo = std::max(z_lo, center);
          }
        }
        break;
      case OutputEvent::Kind::kAbove:
        SVT_CHECK(!spec.emits_numeric() || spec.numeric_scale > 0.0)
            << spec.name << " emits numeric answers; pattern must use "
            << "kAboveValue";
        if (nu_scale == 0.0) {
          // q_i ≥ t_i + z  ⇔  z ≤ q_i − t_i.
          z_hi = std::min(z_hi, center);
        } else {
          factors.push_back({center, /*is_cdf=*/false});
          knots.push_back(center);
        }
        break;
      case OutputEvent::Kind::kAboveValue:
        if (spec.output_query_value_on_positive) {
          // Alg. 3: event {ν_i = a_i − q_i} ∧ {a_i ≥ t_i + z}. The emitted
          // value caps the noisy threshold — the leak of Theorem 6.
          if (nu_scale == 0.0) {
            if (ev.value != q[i]) return -kInf;
            z_hi = std::min(z_hi, center);
          } else {
            // Under exponential ν a value below q_i is outside the noise
            // support: LogPdf is -inf and the pattern is impossible.
            const double log_nu_pdf = nu_dist.LogPdf(ev.value - q[i]);
            if (log_nu_pdf == -kInf) return -kInf;
            log_const += log_nu_pdf;
            z_hi = std::min(z_hi, ev.value - t[i]);
          }
        } else if (spec.numeric_scale > 0.0) {
          // Alg. 7 with ε₃: fresh Laplace answer, independent of z.
          log_const +=
              Laplace::Centered(spec.numeric_scale).LogPdf(ev.value - q[i]);
          if (nu_scale == 0.0) {
            z_hi = std::min(z_hi, center);
          } else {
            factors.push_back({center, /*is_cdf=*/false});
            knots.push_back(center);
          }
        } else {
          // Indicator-only variant cannot emit values.
          return -kInf;
        }
        break;
    }
  }

  if (z_lo >= z_hi) return -kInf;

  // Integration window: beyond ~80 ρ-scales (plus the span of the kinks and
  // a ν-scale margin) every remaining factor is within e-80 of its limit,
  // far below the integrator's tolerance relative to the interior mass.
  double knot_lo = 0.0;
  double knot_hi = 0.0;
  for (double k : knots) {
    knot_lo = std::min(knot_lo, k);
    knot_hi = std::max(knot_hi, k);
  }
  const double spread = 80.0 * seg.rho_scale + 40.0 * nu_scale;
  const double lo = std::max(z_lo, knot_lo - spread);
  const double hi = std::min(z_hi, knot_hi + spread);
  if (lo >= hi) return -kInf;

  const auto log_integrand = [&](double z) {
    double acc = rho_dist.LogPdf(z);
    for (const SmoothFactor& f : factors) {
      // ⊥: Pr[q+ν < t+z] = F_ν(z − center); ⊤: Pr[q+ν ≥ t+z] = Sf strictly,
      // but both noise kinds are atomless so Cdf/Sf at the point coincide
      // a.e. Every term stays concave in z on the (clamped) window —
      // Laplace log-pdf/log-CDF/log-SF are concave, exponential log-pdf and
      // log-SF are linear on the support and its log-CDF is concave — which
      // is what LogIntegratePiecewise's peak search requires.
      acc += f.is_cdf ? nu_dist.LogCdf(z - f.center)
                      : nu_dist.LogSf(z - f.center);
    }
    return acc;
  };

  const double log_integral =
      LogIntegratePiecewise(log_integrand, lo, hi, knots, options);
  return log_const + log_integral;
}

}  // namespace

std::vector<OutputEvent> PatternFromString(const std::string& pattern) {
  std::vector<OutputEvent> out;
  out.reserve(pattern.size());
  for (char c : pattern) {
    switch (c) {
      case '_':
        out.push_back(OutputEvent::Below());
        break;
      case 'T':
        out.push_back(OutputEvent::Above());
        break;
      default:
        SVT_CHECK(false) << "pattern characters must be '_' or 'T', got '"
                         << c << "'";
    }
  }
  return out;
}

double LogOutputProbability(const VariantSpec& spec,
                            std::span<const double> query_answers,
                            std::span<const double> thresholds,
                            std::span<const OutputEvent> pattern,
                            const IntegrationOptions& options) {
  SVT_CHECK(query_answers.size() >= pattern.size())
      << "answers/pattern length mismatch";
  SVT_CHECK(thresholds.size() >= pattern.size())
      << "thresholds/pattern length mismatch";
  if (pattern.empty()) return 0.0;  // probability 1

  // Cutoff validity: after the c-th positive the mechanism aborts, so no
  // further output positions can exist.
  if (spec.cutoff.has_value()) {
    int positives = 0;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i].is_positive()) {
        ++positives;
        if (positives == *spec.cutoff && i + 1 != pattern.size()) {
          return -kInf;  // output continued after abort
        }
      }
    }
    if (positives > *spec.cutoff) return -kInf;
  }

  // Split into segments of constant ρ.
  std::vector<Segment> segments;
  if (!spec.resample_rho_after_positive) {
    segments.push_back({0, pattern.size(), spec.rho_scale});
  } else {
    size_t begin = 0;
    double scale = spec.rho_scale;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i].is_positive()) {
        segments.push_back({begin, i + 1, scale});
        begin = i + 1;
        scale = spec.rho_resample_scale;
      }
    }
    if (begin < pattern.size()) {
      segments.push_back({begin, pattern.size(), scale});
    }
  }

  double log_prob = 0.0;
  for (const Segment& seg : segments) {
    const double lp = SegmentLogProbability(spec, seg, query_answers,
                                            thresholds, pattern, options);
    if (lp == -kInf) return -kInf;
    log_prob += lp;
  }
  return log_prob;
}

double LogOutputProbability(const VariantSpec& spec,
                            std::span<const double> query_answers,
                            double threshold,
                            std::span<const OutputEvent> pattern,
                            const IntegrationOptions& options) {
  std::vector<double> thresholds(query_answers.size(), threshold);
  return LogOutputProbability(spec, query_answers, thresholds, pattern,
                              options);
}

double OutputProbability(const VariantSpec& spec,
                         std::span<const double> query_answers,
                         double threshold,
                         std::span<const OutputEvent> pattern,
                         const IntegrationOptions& options) {
  return std::exp(
      LogOutputProbability(spec, query_answers, threshold, pattern, options));
}

}  // namespace svt
