#include "audit/counterexamples.h"

#include "common/check.h"

namespace svt {

NeighborInstance Alg5Counterexample() {
  NeighborInstance inst;
  inst.name = "thm3-alg5";
  // T = 0, Δ = 1, q(D) = ⟨0, 1⟩, q(D') = ⟨1, 0⟩, a = ⟨⊥, ⊤⟩.
  inst.answers_d = {0.0, 1.0};
  inst.answers_dprime = {1.0, 0.0};
  inst.threshold = 0.0;
  inst.sensitivity = 1.0;
  inst.pattern = PatternFromString("_T");
  return inst;
}

NeighborInstance Alg3Counterexample(int m) {
  SVT_CHECK(m >= 1);
  NeighborInstance inst;
  inst.name = "thm6-alg3-m" + std::to_string(m);
  // m+1 queries, Δ = 1, T = 0: q(D) = 0^m · Δ, q(D') = Δ^m · 0; the output
  // is ⊥^m followed by the numeric answer 0 (i.e. the last query's noisy
  // value came out exactly 0, which also reveals the noisy threshold ≤ 0).
  inst.answers_d.assign(m, 0.0);
  inst.answers_d.push_back(1.0);
  inst.answers_dprime.assign(m, 1.0);
  inst.answers_dprime.push_back(0.0);
  inst.threshold = 0.0;
  inst.sensitivity = 1.0;
  inst.pattern = PatternFromString(std::string(m, '_'));
  inst.pattern.push_back(OutputEvent::AboveValue(0.0));
  return inst;
}

NeighborInstance Alg6Counterexample(int m) {
  SVT_CHECK(m >= 1);
  NeighborInstance inst;
  inst.name = "thm7-alg6-m" + std::to_string(m);
  // 2m queries, Δ = 1, T = 0: q(D) = 0^{2m}, q(D') = 1^m (−1)^m,
  // a = ⊥^m ⊤^m. Ratio grows as e^{mε/2}.
  inst.answers_d.assign(2 * m, 0.0);
  inst.answers_dprime.assign(m, 1.0);
  inst.answers_dprime.insert(inst.answers_dprime.end(), m, -1.0);
  inst.threshold = 0.0;
  inst.sensitivity = 1.0;
  inst.pattern =
      PatternFromString(std::string(m, '_') + std::string(m, 'T'));
  return inst;
}

NeighborInstance GpttCounterexample(int t) {
  SVT_CHECK(t >= 1);
  NeighborInstance inst;
  inst.name = "sec3.3-gptt-t" + std::to_string(t);
  // 2t queries, Δ = 1, T = 0: q(D) = 0^t 1^t, q(D') = 1^t 0^t, a = ⊥^t ⊤^t.
  inst.answers_d.assign(t, 0.0);
  inst.answers_d.insert(inst.answers_d.end(), t, 1.0);
  inst.answers_dprime.assign(t, 1.0);
  inst.answers_dprime.insert(inst.answers_dprime.end(), t, 0.0);
  inst.threshold = 0.0;
  inst.sensitivity = 1.0;
  inst.pattern =
      PatternFromString(std::string(t, '_') + std::string(t, 'T'));
  return inst;
}

NeighborInstance ShiftInstance(int length, const std::string& pattern,
                               double sensitivity, double base) {
  SVT_CHECK(length >= 1);
  SVT_CHECK(pattern.size() == static_cast<size_t>(length));
  SVT_CHECK(sensitivity > 0.0);
  NeighborInstance inst;
  inst.name = "shift-l" + std::to_string(length) + "-" + pattern;
  inst.answers_d.assign(length, base);
  inst.answers_dprime.assign(length, base + sensitivity);
  inst.threshold = base;
  inst.sensitivity = sensitivity;
  inst.pattern = PatternFromString(pattern);
  return inst;
}

NeighborInstance Alg4StressInstance(int cutoff, int below_queries,
                                    double depth) {
  SVT_CHECK(cutoff >= 1);
  SVT_CHECK(below_queries >= 0);
  SVT_CHECK(depth > 0.0);
  NeighborInstance inst;
  inst.name = "alg4-stress-c" + std::to_string(cutoff);
  // The worst case for Alg. 4 is non-monotonic: the ⊥-queries move up by Δ
  // from D to D' (forcing the proof's z → z+Δ threshold shift) while the
  // ⊤-queries move *down* by Δ, so each positive factor faces a 2Δ shift
  // against noise of scale only Δ/ε₂. Positives sit `depth` below the
  // threshold, deep in the Laplace tail where the per-factor ratio is the
  // full e^{2ε₂}; the total log-ratio approaches ε₁ + 2c·ε₂ =
  // ((1+6c)/4)·ε.
  inst.answers_d.assign(below_queries, 0.0);
  inst.answers_dprime.assign(below_queries, 1.0);
  inst.answers_d.insert(inst.answers_d.end(), cutoff, -depth);
  inst.answers_dprime.insert(inst.answers_dprime.end(), cutoff,
                             -depth - 1.0);
  inst.threshold = 0.0;
  inst.sensitivity = 1.0;
  inst.pattern = PatternFromString(std::string(below_queries, '_') +
                                   std::string(cutoff, 'T'));
  return inst;
}

}  // namespace svt
