#include "audit/privacy_auditor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "audit/monte_carlo.h"
#include "common/check.h"
#include "common/math_util.h"
#include "common/stats.h"

namespace svt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double AuditReport::abs_log_ratio() const {
  const bool d_zero = (log_p_d == -kInf);
  const bool dp_zero = (log_p_dprime == -kInf);
  if (d_zero && dp_zero) return 0.0;  // event impossible on both sides
  if (d_zero || dp_zero) return kInf;
  return std::abs(log_p_d - log_p_dprime);
}

bool AuditReport::infinite() const { return abs_log_ratio() == kInf; }

AuditReport AuditInstance(const VariantSpec& spec,
                          const NeighborInstance& instance,
                          const IntegrationOptions& options) {
  SVT_CHECK(instance.answers_d.size() == instance.answers_dprime.size());
  SVT_CHECK(instance.answers_d.size() == instance.pattern.size());
  AuditReport report;
  report.log_p_d = LogOutputProbability(spec, instance.answers_d,
                                        instance.threshold, instance.pattern,
                                        options);
  report.log_p_dprime =
      LogOutputProbability(spec, instance.answers_dprime, instance.threshold,
                           instance.pattern, options);
  return report;
}

namespace {

void EnumerateRec(size_t length, std::optional<int> cutoff, int positives,
                  std::string* current, std::vector<std::string>* out) {
  if (cutoff.has_value() && positives == *cutoff) {
    // Mechanism aborted right after the cutoff-th positive; the pattern is
    // complete regardless of remaining queries.
    out->push_back(*current);
    return;
  }
  if (current->size() == length) {
    out->push_back(*current);
    return;
  }
  current->push_back('_');
  EnumerateRec(length, cutoff, positives, current, out);
  current->back() = 'T';
  EnumerateRec(length, cutoff, positives + 1, current, out);
  current->pop_back();
}

}  // namespace

std::vector<std::string> EnumerateOutputPatterns(size_t length,
                                                 std::optional<int> cutoff) {
  SVT_CHECK(length <= 22) << "pattern enumeration is exponential; length "
                          << length << " is too large";
  std::vector<std::string> out;
  std::string current;
  EnumerateRec(length, cutoff, 0, &current, &out);
  return out;
}

PatternSearchResult MaxAbsLogRatioOverPatterns(
    const VariantSpec& spec, std::span<const double> answers_d,
    std::span<const double> answers_dprime, double threshold,
    const IntegrationOptions& options) {
  SVT_CHECK(answers_d.size() == answers_dprime.size());
  const std::vector<std::string> patterns =
      EnumerateOutputPatterns(answers_d.size(), spec.cutoff);

  PatternSearchResult result;
  for (const std::string& pattern_str : patterns) {
    const std::vector<OutputEvent> pattern = PatternFromString(pattern_str);
    const size_t n = pattern.size();
    AuditReport report;
    report.log_p_d = LogOutputProbability(
        spec, answers_d.subspan(0, n), threshold, pattern, options);
    report.log_p_dprime = LogOutputProbability(
        spec, answers_dprime.subspan(0, n), threshold, pattern, options);
    const double ratio = report.abs_log_ratio();
    if (ratio > result.max_abs_log_ratio) {
      result.max_abs_log_ratio = ratio;
      result.argmax_pattern = pattern_str;
      result.found_infinite = report.infinite();
    }
  }
  return result;
}

McEpsilonBound EstimateEpsilonLowerBoundMc(const VariantSpec& spec,
                                           const NeighborInstance& instance,
                                           int64_t trials, double confidence,
                                           Rng& rng) {
  // Render the target pattern as an indicator string; the black-box path
  // only distinguishes ⊥ from positive, which suffices for indicator
  // patterns (numeric-output instances need the closed form instead).
  std::string pattern;
  pattern.reserve(instance.pattern.size());
  for (const OutputEvent& ev : instance.pattern) {
    pattern += ev.is_positive() ? 'T' : '_';
  }

  McOptions mc;
  mc.trials = trials;
  mc.confidence = confidence;
  const McEstimate on_d = EstimateOutputProbability(
      spec, instance.answers_d, instance.threshold, pattern, rng, mc);
  const McEstimate on_dprime = EstimateOutputProbability(
      spec, instance.answers_dprime, instance.threshold, pattern, rng, mc);

  McEpsilonBound bound;
  bound.hits_d = on_d.hits;
  bound.hits_dprime = on_dprime.hits;
  bound.trials = trials;
  if (on_d.p_hat > 0.0 && on_dprime.p_hat > 0.0) {
    bound.point_estimate =
        std::max(0.0, std::log(on_d.p_hat / on_dprime.p_hat));
  } else if (on_d.p_hat > 0.0) {
    bound.point_estimate = kInf;
  }
  if (on_d.lower > 0.0 && on_dprime.upper > 0.0) {
    bound.certified_lower =
        std::max(0.0, std::log(on_d.lower / on_dprime.upper));
  }
  return bound;
}

double TotalProbabilityOverPatterns(const VariantSpec& spec,
                                    std::span<const double> answers,
                                    double threshold,
                                    const IntegrationOptions& options) {
  const std::vector<std::string> patterns =
      EnumerateOutputPatterns(answers.size(), spec.cutoff);
  KahanAccumulator total;
  for (const std::string& pattern_str : patterns) {
    const std::vector<OutputEvent> pattern = PatternFromString(pattern_str);
    const double log_p = LogOutputProbability(
        spec, answers.subspan(0, pattern.size()), threshold, pattern,
        options);
    if (log_p != -kInf) total.Add(std::exp(log_p));
  }
  return total.sum();
}

}  // namespace svt
