// Closed-form (numerically integrated) output probabilities for SVT
// variants.
//
// This is the analytic half of the privacy auditor. It evaluates the
// paper's Eq. (5),
//
//   Pr[A(D) = a] = ∫ p_ρ(z) · Π_{i∈I⊥} Pr[q_i+ν_i < T_i+z]
//                           · Π_{i∈I⊤} Pr[q_i+ν_i ≥ T_i+z] dz,
//
// directly from a VariantSpec, handling all the structural quirks the
// variants introduce:
//
//   * noise kinds     — ρ and ν each follow their role's NoiseKind
//                       (Laplace or one-sided exponential, per the spec's
//                       rho_kind/nu_kind); exponential roles contribute
//                       hard support bounds on top of their smooth
//                       factors (p_ρ(z) = 0 for z < 0; a ⊥ factor under
//                       exponential ν is identically 0 for z ≤ q_i − T_i);
//   * cutoff c        — patterns with more output after the c-th positive
//                       are impossible (probability 0);
//   * ν = 0 (Alg. 5)  — the CDF factors degenerate to indicators, which
//                       become hard limits on the integration range;
//   * ρ resampling    — Alg. 2 draws a fresh ρ after each positive, so the
//     (Alg. 2)          pattern factorizes into independent per-segment
//                       integrals;
//   * numeric outputs — Alg. 3 emits q_i+ν_i, contributing a density
//                       factor pdf_ν(a_i−q_i) AND the constraint
//                       z ≤ a_i−T_i (the leak exploited by Theorem 6);
//                       Alg. 7 with ε₃>0 emits q_i+Lap(cΔ/ε₃), a fresh
//                       z-independent density factor.
//
// For patterns containing numeric outputs the returned value is a log
// *density* (jointly over the numeric coordinates); ratios between
// neighboring datasets — which is all DP cares about — remain meaningful.

#ifndef SPARSEVEC_AUDIT_CLOSED_FORM_H_
#define SPARSEVEC_AUDIT_CLOSED_FORM_H_

#include <span>
#include <string>
#include <vector>

#include "audit/integrator.h"
#include "core/variant_spec.h"

namespace svt {

/// One expected output position.
struct OutputEvent {
  enum class Kind { kBelow, kAbove, kAboveValue };
  Kind kind = Kind::kBelow;
  /// Expected numeric answer, meaningful for kAboveValue only.
  double value = 0.0;

  static OutputEvent Below() { return {Kind::kBelow, 0.0}; }
  static OutputEvent Above() { return {Kind::kAbove, 0.0}; }
  static OutputEvent AboveValue(double v) { return {Kind::kAboveValue, v}; }

  bool is_positive() const { return kind != Kind::kBelow; }
};

/// Builds an indicator-only pattern from a string of '_' (⊥) and 'T' (⊤),
/// e.g. "__T_T".
std::vector<OutputEvent> PatternFromString(const std::string& pattern);

/// log Pr[first |pattern| outputs are exactly `pattern`] when the mechanism
/// described by `spec` processes `query_answers` (aligned with
/// `thresholds`) in order on a dataset where those are the true answers.
///
/// Returns -infinity for impossible patterns (e.g. output continuing after
/// the cutoff aborted, or a ⊤ under ν=0 with q strictly below every
/// feasible noisy threshold).
double LogOutputProbability(const VariantSpec& spec,
                            std::span<const double> query_answers,
                            std::span<const double> thresholds,
                            std::span<const OutputEvent> pattern,
                            const IntegrationOptions& options = {});

/// Single-threshold convenience.
double LogOutputProbability(const VariantSpec& spec,
                            std::span<const double> query_answers,
                            double threshold,
                            std::span<const OutputEvent> pattern,
                            const IntegrationOptions& options = {});

/// Linear-space convenience (may underflow to 0 for long patterns; prefer
/// the log form).
double OutputProbability(const VariantSpec& spec,
                         std::span<const double> query_answers,
                         double threshold,
                         std::span<const OutputEvent> pattern,
                         const IntegrationOptions& options = {});

}  // namespace svt

#endif  // SPARSEVEC_AUDIT_CLOSED_FORM_H_
