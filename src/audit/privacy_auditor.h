// Privacy auditor: empirical differential-privacy verification.
//
// Combines the closed-form engine with the counterexample library to
// measure, for any VariantSpec, the worst log-probability ratio
//
//   sup_a | ln Pr[A(D)=a] − ln Pr[A(D')=a] |
//
// over a target instance or over *all* valid output patterns of a bounded
// length. For ε-DP mechanisms this must stay ≤ ε; for the broken variants
// it grows without bound along the paper's counterexample families —
// numerically reproducing the "Privacy Property" row of Figure 2.

#ifndef SPARSEVEC_AUDIT_PRIVACY_AUDITOR_H_
#define SPARSEVEC_AUDIT_PRIVACY_AUDITOR_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "audit/closed_form.h"
#include "audit/counterexamples.h"
#include "common/rng.h"
#include "core/variant_spec.h"

namespace svt {

/// Result of auditing one (instance, pattern) pair.
struct AuditReport {
  double log_p_d = 0.0;       ///< ln Pr[A(D) = pattern]
  double log_p_dprime = 0.0;  ///< ln Pr[A(D') = pattern]

  /// |ln ratio|; +infinity when exactly one side has probability 0.
  double abs_log_ratio() const;

  /// True when the ratio is infinite (a hard ∞-DP witness, Theorem 3).
  bool infinite() const;
};

/// Audits a single instance: computes both output (log-)probabilities via
/// the closed form.
AuditReport AuditInstance(const VariantSpec& spec,
                          const NeighborInstance& instance,
                          const IntegrationOptions& options = {});

/// Enumerates every complete output pattern an SVT run over `length`
/// queries can produce: all indicator strings with fewer than `cutoff`
/// positives of full length, plus every prefix that ends exactly at the
/// cutoff-th positive (the mechanism aborts there). Without a cutoff,
/// simply all 2^length strings. Exponential — intended for length ≲ 14.
std::vector<std::string> EnumerateOutputPatterns(size_t length,
                                                 std::optional<int> cutoff);

/// Max |log ratio| over all enumerated patterns for a neighboring pair of
/// answer vectors — a certified-by-quadrature lower bound on the variant's
/// true ε, and for private variants a verification that it stays ≤ ε.
struct PatternSearchResult {
  double max_abs_log_ratio = 0.0;
  std::string argmax_pattern;
  bool found_infinite = false;
};
PatternSearchResult MaxAbsLogRatioOverPatterns(
    const VariantSpec& spec, std::span<const double> answers_d,
    std::span<const double> answers_dprime, double threshold,
    const IntegrationOptions& options = {});

/// Sum of Pr[pattern] over all enumerated patterns — must be 1 for any
/// correctly implemented closed form (used as a self-check in tests and by
/// the Figure 2 bench).
double TotalProbabilityOverPatterns(const VariantSpec& spec,
                                    std::span<const double> answers,
                                    double threshold,
                                    const IntegrationOptions& options = {});

/// A *statistically certified* empirical-ε lower bound obtained purely by
/// running the mechanism (no closed form): with confidence `confidence`,
/// the variant is NOT ε-DP for any ε below the returned
/// `certified_lower`. Uses Wilson bounds on the two Monte-Carlo output
/// frequencies, so it holds without any assumption on the mechanism's
/// structure — the black-box counterpart of AuditInstance. Returns 0 when
/// the trials cannot separate the two distributions.
struct McEpsilonBound {
  double point_estimate = 0.0;    ///< ln(p̂_D / p̂_D'), clamped at 0
  double certified_lower = 0.0;   ///< ln(lower_D / upper_D'), clamped at 0
  int64_t hits_d = 0;
  int64_t hits_dprime = 0;
  int64_t trials = 0;
};
McEpsilonBound EstimateEpsilonLowerBoundMc(const VariantSpec& spec,
                                           const NeighborInstance& instance,
                                           int64_t trials, double confidence,
                                           Rng& rng);

}  // namespace svt

#endif  // SPARSEVEC_AUDIT_PRIVACY_AUDITOR_H_
