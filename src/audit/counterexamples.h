// The paper's counterexample instances, as data.
//
// Each instance is a pair of neighboring query-answer vectors plus the
// output pattern whose probability ratio witnesses (non-)privacy:
//
//   * Theorem 3  (Alg. 5): q(D)=⟨0,1⟩, q(D')=⟨1,0⟩, a=⟨⊥,⊤⟩ — the ratio is
//     literally ∞ (the event has probability 0 under D').
//   * Theorem 6 / Appendix 10.1 (Alg. 3): m+1 queries, q(D)=0^m·Δ,
//     q(D')=Δ^m·0, a=⊥^m then numeric 0; ratio = e^{(m−1)ε/2}.
//   * Theorem 7 / Appendix 10.2 (Alg. 6): 2m queries, q(D)=0^{2m},
//     q(D')=1^m(−1)^m, a=⊥^m⊤^m; ratio ≥ e^{mε/2}.
//   * §3.3 (GPTT, from [2]): 2t queries, q(D)=0^t·1^t, q(D')=1^t·0^t,
//     a=⊥^t⊤^t. (The paper shows the *proof* in [2] based on this instance
//     was flawed; the instance still exhibits growth, which our numeric
//     audit quantifies.)
//   * Alg. 4 stress instance: mixed patterns where the missing factor of c
//     in the query noise pushes the ratio toward ((1+6c)/4)ε.
//   * Shift instance for private variants: q(D)=0^ℓ vs q(D')=Δ^ℓ — the
//     worst case used in Lemma 1/Theorem 2's proof; the audit verifies the
//     ratio stays ≤ ε for Alg. 1/2/7 across all patterns.

#ifndef SPARSEVEC_AUDIT_COUNTEREXAMPLES_H_
#define SPARSEVEC_AUDIT_COUNTEREXAMPLES_H_

#include <string>
#include <vector>

#include "audit/closed_form.h"

namespace svt {

/// A pair of neighboring query-answer vectors and a target output pattern.
struct NeighborInstance {
  std::string name;
  std::vector<double> answers_d;        // q(D)
  std::vector<double> answers_dprime;   // q(D')
  double threshold = 0.0;               // common T
  double sensitivity = 1.0;             // Δ consistent with the answers
  std::vector<OutputEvent> pattern;     // the witnessing output
};

/// Theorem 3's two-query instance against Alg. 5.
NeighborInstance Alg5Counterexample();

/// Appendix 10.1's instance against Alg. 3 (m ≥ 1 below-threshold queries
/// followed by one numerically-answered positive).
NeighborInstance Alg3Counterexample(int m);

/// Appendix 10.2's instance against Alg. 6 (m ⊥'s then m ⊤'s).
NeighborInstance Alg6Counterexample(int m);

/// §3.3's GPTT instance from [2] (t ⊥'s then t ⊤'s).
NeighborInstance GpttCounterexample(int t);

/// Worst-case shift instance for verifying the ε-DP bound of the private
/// variants: q(D) = base^ℓ, q(D') = (base+Δ)^ℓ with the given pattern.
NeighborInstance ShiftInstance(int length, const std::string& pattern,
                               double sensitivity = 1.0, double base = 0.0);

/// Instance stressing Alg. 4: `below_queries` ⊥-queries that move up by Δ
/// between neighbors followed by `cutoff` ⊤-queries that move down by Δ and
/// sit `depth` below the threshold (deep in the noise tail, where each
/// positive pays its full e^{2ε₂} factor). The |log-ratio| approaches the
/// paper's ((1+6c)/4)·ε bound as below_queries and depth grow.
NeighborInstance Alg4StressInstance(int cutoff, int below_queries = 8,
                                    double depth = 60.0);

}  // namespace svt

#endif  // SPARSEVEC_AUDIT_COUNTEREXAMPLES_H_
