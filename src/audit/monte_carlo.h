// Monte-Carlo estimation of SVT output probabilities.
//
// Simulates the actual mechanism (via core/svt_variants.h CustomSvt, i.e.
// the sampling code path) and counts how often it reproduces a target
// indicator pattern. Used to cross-validate the closed-form engine — the
// two paths share no code beyond the Laplace sampler, so agreement is
// strong evidence both are right.

#ifndef SPARSEVEC_AUDIT_MONTE_CARLO_H_
#define SPARSEVEC_AUDIT_MONTE_CARLO_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/rng.h"
#include "core/variant_spec.h"

namespace svt {

struct McOptions {
  int64_t trials = 100000;
  /// Confidence level of the reported interval (Wilson bounds).
  double confidence = 0.999;
};

struct McEstimate {
  double p_hat = 0.0;   ///< hits / trials
  double lower = 0.0;   ///< confidence lower bound
  double upper = 1.0;   ///< confidence upper bound
  int64_t hits = 0;
  int64_t trials = 0;
};

/// Estimates Pr[first |pattern| outputs == pattern] for the mechanism
/// described by `spec` on `query_answers` with a common `threshold`.
/// Only indicator patterns ('_'/'T') are supported — numeric outputs have
/// densities, not probabilities. For variants with numeric positives the
/// comparison treats any positive outcome as matching 'T'.
McEstimate EstimateOutputProbability(const VariantSpec& spec,
                                     std::span<const double> query_answers,
                                     double threshold,
                                     const std::string& pattern, Rng& rng,
                                     const McOptions& options = {});

}  // namespace svt

#endif  // SPARSEVEC_AUDIT_MONTE_CARLO_H_
