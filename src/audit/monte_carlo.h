// Monte-Carlo estimation of SVT output probabilities.
//
// Simulates the actual mechanism (via core/svt_variants.h CustomSvt, i.e.
// the sampling code path) and counts how often it reproduces a target
// indicator pattern. Used to cross-validate the closed-form engine — the
// two paths share no code beyond the Laplace sampler, so agreement is
// strong evidence both are right.
//
// Trials can run in parallel (McOptions::num_workers) on deterministic
// worker streams: the calling thread forks one Rng per worker up front and
// assigns each worker a fixed contiguous trial slice, so for a fixed
// (rng state, num_workers) the hit counts are bitwise-reproducible no
// matter how the OS schedules the threads.
//
// Each worker executes its trials through the batch engine over one reused
// response buffer, so all ν sampling runs the vectorized vecmath block
// kernels; a trial always consumes the RNG for its full pattern window
// (match checking happens after, not by breaking the query loop early).

#ifndef SPARSEVEC_AUDIT_MONTE_CARLO_H_
#define SPARSEVEC_AUDIT_MONTE_CARLO_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "common/rng.h"
#include "core/variant_spec.h"

namespace svt {

struct McOptions {
  int64_t trials = 100000;
  /// Confidence level of the reported interval (Wilson bounds).
  double confidence = 0.999;
  /// Number of deterministic worker streams. 1 (the default) runs every
  /// trial on the caller's `rng` directly (serially, on the calling
  /// thread). 0 means one worker per hardware thread. Workers beyond
  /// `trials` are dropped.
  int num_workers = 1;
};

struct McEstimate {
  double p_hat = 0.0;   ///< hits / trials
  double lower = 0.0;   ///< confidence lower bound
  double upper = 1.0;   ///< confidence upper bound
  int64_t hits = 0;
  int64_t trials = 0;
};

/// Estimates Pr[first |pattern| outputs == pattern] for the mechanism
/// described by `spec` on `query_answers` with a common `threshold`.
/// Only indicator patterns ('_'/'T') are supported — numeric outputs have
/// densities, not probabilities. For variants with numeric positives the
/// comparison treats any positive outcome as matching 'T'.
McEstimate EstimateOutputProbability(const VariantSpec& spec,
                                     std::span<const double> query_answers,
                                     double threshold,
                                     std::string_view pattern, Rng& rng,
                                     const McOptions& options = {});

}  // namespace svt

#endif  // SPARSEVEC_AUDIT_MONTE_CARLO_H_
