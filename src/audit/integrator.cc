#include "audit/integrator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace svt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double SimpsonRule(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

// Classic adaptive Simpson with Richardson correction.
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double fa, double fm, double fb,
                       double whole, double tol, int depth,
                       const IntegrationOptions& options) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = SimpsonRule(fa, flm, fm, m - a);
  const double right = SimpsonRule(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  if (depth >= options.max_depth ||
      std::abs(delta) <= 15.0 * std::max(tol, options.abs_tol)) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpson(f, a, m, fa, flm, fm, left, 0.5 * tol, depth + 1,
                         options) +
         AdaptiveSimpson(f, m, b, fm, frm, fb, right, 0.5 * tol, depth + 1,
                         options);
}

}  // namespace

double IntegrateInterval(const std::function<double(double)>& f, double lo,
                         double hi, const IntegrationOptions& options) {
  SVT_CHECK(std::isfinite(lo) && std::isfinite(hi));
  if (lo >= hi) return 0.0;
  const double m = 0.5 * (lo + hi);
  const double fa = f(lo);
  const double fm = f(m);
  const double fb = f(hi);
  const double whole = SimpsonRule(fa, fm, fb, hi - lo);
  // Seed the tolerance from the first estimate's magnitude.
  const double tol =
      std::max(options.abs_tol, std::abs(whole) * options.rel_tol);
  return AdaptiveSimpson(f, lo, hi, fa, fm, fb, whole, tol, 0, options);
}

double IntegratePiecewise(const std::function<double(double)>& f, double lo,
                          double hi, std::vector<double> knots,
                          const IntegrationOptions& options) {
  if (lo >= hi) return 0.0;
  knots.push_back(lo);
  knots.push_back(hi);
  std::sort(knots.begin(), knots.end());
  knots.erase(std::unique(knots.begin(), knots.end()), knots.end());

  KahanAccumulator acc;
  double prev = lo;
  for (double k : knots) {
    if (k <= lo || k > hi) continue;
    const double piece_hi = std::min(k, hi);
    if (piece_hi > prev) {
      acc.Add(IntegrateInterval(f, prev, piece_hi, options));
      prev = piece_hi;
    }
  }
  if (prev < hi) acc.Add(IntegrateInterval(f, prev, hi, options));
  return acc.sum();
}

double LogIntegratePiecewise(const std::function<double(double)>& log_f,
                             double lo, double hi, std::vector<double> knots,
                             const IntegrationOptions& options) {
  if (lo >= hi) return -kInf;

  // The SVT-audit integrands are log-concave (a Laplace or exponential
  // log-pdf plus sums of noise log-CDF/log-SF terms, all concave in z on
  // the caller's integration window), so the maximum is
  // found reliably by coarse probing refined with ternary search, and the
  // integration window can be clipped where log_f falls `kMarginNats`
  // below the peak — contributions there are beneath any tolerance.
  constexpr double kMarginNats = 70.0;
  constexpr int kProbesPerPanel = 8;

  std::vector<double> panels = knots;
  panels.push_back(lo);
  panels.push_back(hi);
  std::sort(panels.begin(), panels.end());
  panels.erase(std::remove_if(panels.begin(), panels.end(),
                              [&](double x) { return x < lo || x > hi; }),
               panels.end());
  panels.erase(std::unique(panels.begin(), panels.end()), panels.end());

  double max_log = -kInf;
  double argmax = lo;
  const auto consider = [&](double x) {
    const double v = log_f(x);
    if (v > max_log) {
      max_log = v;
      argmax = x;
    }
  };
  for (size_t i = 0; i + 1 < panels.size(); ++i) {
    for (int j = 0; j <= kProbesPerPanel; ++j) {
      consider(panels[i] +
               (panels[i + 1] - panels[i]) * j / kProbesPerPanel);
    }
  }

  // Ternary-search refinement (valid for concave log_f; for an all -inf
  // integrand both probes stay -inf and the loop just shrinks to a point).
  {
    double a = lo;
    double b = hi;
    for (int it = 0; it < 200 && (b - a) > 1e-12 * (hi - lo); ++it) {
      const double m1 = a + (b - a) / 3.0;
      const double m2 = b - (b - a) / 3.0;
      const double f1 = log_f(m1);
      const double f2 = log_f(m2);
      if (f1 < f2) {
        a = m1;
      } else if (f2 < f1) {
        b = m2;
      } else {
        a = m1;
        b = m2;
      }
    }
    consider(0.5 * (a + b));
  }
  if (max_log == -kInf) return -kInf;

  // Clip the window where the integrand drops kMarginNats below the peak:
  // bisect for the crossing on each side of the argmax.
  const double floor_log = max_log - kMarginNats;
  const auto bisect_cut = [&](double inside, double outside) {
    // log_f(inside) >= floor_log, monotone toward `outside` (concavity).
    if (log_f(outside) >= floor_log) return outside;
    double good = inside;
    double bad = outside;
    for (int it = 0; it < 80 && std::abs(bad - good) >
                                    1e-9 * (1.0 + std::abs(good));
         ++it) {
      const double mid = 0.5 * (good + bad);
      if (log_f(mid) >= floor_log) {
        good = mid;
      } else {
        bad = mid;
      }
    }
    return bad;  // just outside the level set: safe to include
  };
  const double clip_lo = bisect_cut(argmax, lo);
  const double clip_hi = bisect_cut(argmax, hi);
  if (clip_lo >= clip_hi) return -kInf;

  const double shift = max_log;
  const auto f = [&log_f, shift](double z) {
    const double lg = log_f(z);
    return lg == -kInf ? 0.0 : std::exp(lg - shift);
  };
  const double integral = IntegratePiecewise(f, clip_lo, clip_hi, knots,
                                             options);
  if (integral <= 0.0) return -kInf;
  return shift + std::log(integral);
}

}  // namespace svt
