// Adaptive numerical integration with knot handling.
//
// The audit module evaluates Pr[A(D) = a] = ∫ p_ρ(z) Π_i factor_i(z) dz
// where p_ρ is a Laplace or exponential density (kinked at its center /
// support edge) and the factors are noise CDFs/survival functions (kinked
// at q_i − T_i). The integrand is therefore piecewise-smooth with known
// breakpoints; we integrate each smooth piece with adaptive Simpson and
// expose a log-space variant for patterns long enough that the product
// underflows.

#ifndef SPARSEVEC_AUDIT_INTEGRATOR_H_
#define SPARSEVEC_AUDIT_INTEGRATOR_H_

#include <functional>
#include <vector>

namespace svt {

/// Tolerances for adaptive Simpson.
struct IntegrationOptions {
  /// Per-piece relative tolerance.
  double rel_tol = 1e-10;
  /// Absolute floor below which refinement stops. The log-space integrator
  /// normalizes its integrand to a peak of 1, so this is effectively a
  /// relative floor there.
  double abs_tol = 1e-15;
  /// Maximum bisection depth per piece (2^depth panels worst case).
  int max_depth = 32;
};

/// Integrates f over [lo, hi] (finite) with adaptive Simpson.
double IntegrateInterval(const std::function<double(double)>& f, double lo,
                         double hi, const IntegrationOptions& options = {});

/// Integrates f over [lo, hi], first splitting at the interior `knots`
/// (points where f is continuous but not smooth). Knots outside (lo, hi)
/// are ignored; duplicates are fine.
double IntegratePiecewise(const std::function<double(double)>& f, double lo,
                          double hi, std::vector<double> knots,
                          const IntegrationOptions& options = {});

/// Computes log ∫ exp(log_f(z)) dz over [lo, hi] with knot splitting,
/// stable when log_f is very negative everywhere (probabilities ~1e-300 and
/// below): locates the peak of log_f (coarse probing + ternary search),
/// clips the window where log_f falls ~70 nats below the peak, integrates
/// exp(log_f − max) over the clipped window and returns max + log(integral).
/// Returns -inf when the integrand is 0 a.e.
///
/// Requires log_f to be (quasi-)concave on [lo, hi] — true for every SVT
/// output-probability integrand (Laplace or exponential log-pdf plus noise
/// log-CDF/SF terms, all concave on the support the caller integrates
/// over), and the reason the peak search and tail clipping are sound.
double LogIntegratePiecewise(const std::function<double(double)>& log_f,
                             double lo, double hi, std::vector<double> knots,
                             const IntegrationOptions& options = {});

}  // namespace svt

#endif  // SPARSEVEC_AUDIT_INTEGRATOR_H_
