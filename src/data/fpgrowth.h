// FP-growth frequent-itemset mining (Han et al. 2000).
//
// This is the substrate behind the paper's headline use case: Lee & Clifton
// [13] privately select the top-c frequent itemsets, with itemset supports
// as the SVT query stream. The miner produces the candidate itemsets and
// their true supports; the private selection layer (core/) then chooses
// among them under DP.
//
// The implementation builds a standard FP-tree (prefix tree ordered by
// descending item frequency with per-item node chains) and mines it
// recursively via conditional pattern bases.

#ifndef SPARSEVEC_DATA_FPGROWTH_H_
#define SPARSEVEC_DATA_FPGROWTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/transaction_db.h"

namespace svt {

/// A mined itemset with its support.
struct FrequentItemset {
  std::vector<ItemId> items;  // sorted ascending
  uint64_t support = 0;

  friend bool operator==(const FrequentItemset& a, const FrequentItemset& b) {
    return a.support == b.support && a.items == b.items;
  }
};

/// Mining options.
struct FpGrowthOptions {
  /// Minimum support (absolute count, >= 1).
  uint64_t min_support = 1;
  /// Cap on itemset size; 0 = unlimited.
  uint32_t max_itemset_size = 0;
  /// Cap on number of itemsets returned (0 = unlimited); the miner keeps
  /// the highest-support ones.
  size_t max_results = 0;
};

/// Mines all itemsets with support >= options.min_support from `db`.
/// Results are sorted by descending support, ties by ascending size then
/// lexicographic items (deterministic).
std::vector<FrequentItemset> MineFrequentItemsets(
    const TransactionDb& db, const FpGrowthOptions& options);

/// Reference miner (exhaustive Apriori-style, exponential): used by tests
/// to validate FP-growth on small databases.
std::vector<FrequentItemset> MineFrequentItemsetsBruteForce(
    const TransactionDb& db, const FpGrowthOptions& options);

/// Human-readable "{a,b,c}:support".
std::string ToString(const FrequentItemset& itemset);

}  // namespace svt

#endif  // SPARSEVEC_DATA_FPGROWTH_H_
