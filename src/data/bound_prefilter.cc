#include "data/bound_prefilter.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/check.h"
#include "common/vecmath.h"

namespace svt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool InitialPrefilterEnabled() {
  const char* env = std::getenv("SVT_BOUND_PREFILTER");
  if (env == nullptr) return true;
  const std::string_view v(env);
  if (v == "on") return true;
  if (v == "off") return false;
  SVT_CHECK(false) << "SVT_BOUND_PREFILTER must be 'on' or 'off', got '"
                   << env << "'";
  return true;
}

std::atomic<bool>& PrefilterEnabledVar() {
  static std::atomic<bool> enabled{InitialPrefilterEnabled()};
  return enabled;
}

// The affine dequant both Build and the span queries evaluate — one
// definition so the build-time fixup verifies exactly the value the bound
// pass will use. Monotone in `code`: scale > 0, and correctly-rounded
// multiply/add are monotone non-decreasing in each operand.
template <typename Code>
double Dequant(double scale, double offset, Code code) {
  return offset + scale * static_cast<double>(code);
}

// Shared range scan: finite min/max and whether every finite value is an
// integer small enough to embed exactly in a 254-wide 8-bit code range.
struct ValueRange {
  double lo = kInf, hi = -kInf;
  bool any_finite = false;
  bool u8_exact = true;
};

ValueRange ScanRange(std::span<const double> values) {
  ValueRange r;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    r.any_finite = true;
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
    if (v != std::floor(v) || std::abs(v) > 9.007199254740992e15) {
      r.u8_exact = false;
    }
  }
  if (!r.any_finite) {
    r.lo = r.hi = 0.0;
    r.u8_exact = false;
  } else if (r.u8_exact) {
    r.u8_exact = r.hi - r.lo <= 254.0;
  }
  return r;
}

// Overflow-safe span estimate for the 16-bit scale: hi/n - lo/n is finite
// for any finite hi/lo (each quotient is <= DBL_MAX/n) and >= (hi-lo)/n.
// Tightness is best-effort only — the per-element fixup below restores
// exactness of the invariant whatever scale/offset come out as.
double SafeScale(double lo, double hi, double normal_span) {
  double s = hi / normal_span - lo / normal_span;
  if (!(s > 0.0) || !std::isfinite(s)) s = 1.0;
  return s;
}

// Score side: codes 0..sentinel-1 affine, top code = +inf sentinel.
// Invariant established per element: Dequant(code_i) >= v_i for non-NaN
// v_i (NaN needs no bound — it can never fire — and gets code 0).
template <typename Code>
void QuantizeUp(std::span<const double> values, double scale, double offset,
                std::vector<Code>* out) {
  constexpr Code kSentinel = std::numeric_limits<Code>::max();
  out->resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (std::isnan(v)) {
      (*out)[i] = 0;
      continue;
    }
    double cand = std::ceil((v - offset) / scale);
    if (!(cand >= 0.0)) cand = 0.0;  // also catches NaN from inf - inf
    if (cand > static_cast<double>(kSentinel) - 1.0) {
      cand = static_cast<double>(kSentinel) - 1.0;
    }
    Code c = static_cast<Code>(cand);
    // Fixup against the actual dequant value: walk up until conservative
    // (the sentinel, dequanting to +inf, always terminates the loop), then
    // tighten a bounded few steps — tightness is optional, soundness not.
    while (c < kSentinel && Dequant(scale, offset, c) < v) ++c;
    for (int t = 0; t < 4 && c > 0 && Dequant(scale, offset, c - 1) >= v;
         ++t) {
      --c;
    }
    (*out)[i] = c;
  }
}

// Bar side: codes 1..max affine, code 0 = -inf sentinel. Invariant:
// Dequant(code_i) <= v_i for non-NaN v_i (NaN bars can never fire and get
// the top code so they don't deflate the span min).
template <typename Code>
void QuantizeDown(std::span<const double> values, double scale, double offset,
                  std::vector<Code>* out) {
  constexpr Code kMax = std::numeric_limits<Code>::max();
  out->resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (std::isnan(v)) {
      (*out)[i] = kMax;
      continue;
    }
    double cand = std::floor((v - offset) / scale);
    if (!(cand >= 1.0)) cand = 1.0;
    if (cand > static_cast<double>(kMax)) cand = static_cast<double>(kMax);
    Code c = static_cast<Code>(cand);
    while (c > 0 && Dequant(scale, offset, c) > v) --c;
    for (int t = 0; t < 4 && c < kMax && Dequant(scale, offset, c + 1) <= v;
         ++t) {
      ++c;
    }
    (*out)[i] = c;
  }
}

template <typename Code>
double DequantScoreUpper(double scale, double offset, Code span_max) {
  return span_max == std::numeric_limits<Code>::max()
             ? kInf
             : Dequant(scale, offset, span_max);
}

template <typename Code>
double DequantBarLower(double scale, double offset, Code span_min) {
  return span_min == 0 ? -kInf : Dequant(scale, offset, span_min);
}

}  // namespace

bool BoundPrefilterEnabled() {
  return PrefilterEnabledVar().load(std::memory_order_relaxed);
}

void SetBoundPrefilterEnabled(bool enabled) {
  PrefilterEnabledVar().store(enabled, std::memory_order_relaxed);
}

BoundPrefilter BoundPrefilter::Build(std::span<const double> answers) {
  BoundPrefilter pf;
  pf.size_ = answers.size();
  const ValueRange r = ScanRange(answers);
  if (r.u8_exact) {
    // Exact integer embedding: scale 1, code = v - lo, zero quantization
    // slack — counting-query score vectors land here and prune exactly as
    // the full-precision bound would, at 1/8 the bytes.
    pf.score_scale_ = 1.0;
    pf.score_offset_ = r.lo;
    QuantizeUp(answers, pf.score_scale_, pf.score_offset_, &pf.score8_);
  } else {
    pf.score_scale_ = SafeScale(r.lo, r.hi, 65534.0);
    pf.score_offset_ = r.lo;
    QuantizeUp(answers, pf.score_scale_, pf.score_offset_, &pf.score16_);
  }
  return pf;
}

BoundPrefilter BoundPrefilter::Build(std::span<const double> answers,
                                     std::span<const double> thresholds) {
  SVT_CHECK(answers.size() == thresholds.size())
      << "BoundPrefilter answers/thresholds size mismatch: " << answers.size()
      << " vs " << thresholds.size();
  BoundPrefilter pf = Build(answers);
  pf.has_thresholds_ = true;
  const ValueRange r = ScanRange(thresholds);
  if (r.u8_exact) {
    pf.bar_scale_ = 1.0;
    pf.bar_offset_ = r.lo - 1.0;  // code 0 is the -inf sentinel
    QuantizeDown(thresholds, pf.bar_scale_, pf.bar_offset_, &pf.bar8_);
  } else {
    pf.bar_scale_ = SafeScale(r.lo, r.hi, 65534.0);
    pf.bar_offset_ = r.lo - pf.bar_scale_;
    QuantizeDown(thresholds, pf.bar_scale_, pf.bar_offset_, &pf.bar16_);
  }
  return pf;
}

double BoundPrefilter::ScoreUpper(size_t begin, size_t len) const {
  SVT_DCHECK(len >= 1 && begin + len <= size_);
  if (!score8_.empty()) {
    return DequantScoreUpper(
        score_scale_, score_offset_,
        vec::QuantizedSpanMax({score8_.data() + begin, len}));
  }
  return DequantScoreUpper(
      score_scale_, score_offset_,
      vec::QuantizedSpanMax({score16_.data() + begin, len}));
}

double BoundPrefilter::BarLower(size_t begin, size_t len) const {
  SVT_DCHECK(has_thresholds_);
  SVT_DCHECK(len >= 1 && begin + len <= size_);
  if (!bar8_.empty()) {
    return DequantBarLower(bar_scale_, bar_offset_,
                           vec::QuantizedSpanMin({bar8_.data() + begin, len}));
  }
  return DequantBarLower(bar_scale_, bar_offset_,
                         vec::QuantizedSpanMin({bar16_.data() + begin, len}));
}

}  // namespace svt
