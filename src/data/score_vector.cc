#include "data/score_vector.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace svt {

ScoreVector::ScoreVector(std::vector<double> scores)
    : scores_(std::move(scores)) {
  for (double s : scores_) {
    SVT_CHECK(s >= 0.0) << "scores must be non-negative, got " << s;
  }
}

double ScoreVector::Total() const {
  KahanAccumulator acc;
  for (double s : scores_) acc.Add(s);
  return acc.sum();
}

double ScoreVector::Max() const {
  SVT_CHECK(!scores_.empty());
  return *std::max_element(scores_.begin(), scores_.end());
}

std::vector<double> ScoreVector::SortedDescending() const {
  std::vector<double> out = scores_;
  std::sort(out.begin(), out.end(), std::greater<double>());
  return out;
}

std::vector<double> ScoreVector::TopK(size_t k) const {
  SVT_CHECK(k <= scores_.size());
  std::vector<double> out = scores_;
  std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(k),
                    out.end(), std::greater<double>());
  out.resize(k);
  return out;
}

ScoreVector ScoreVector::Shuffled(Rng& rng) const {
  std::vector<double> out = scores_;
  rng.Shuffle(&out);
  return ScoreVector(std::move(out));
}

const BoundPrefilter* ScoreVector::bound_prefilter() const {
  SVT_CHECK(!scores_.empty());
  if (prefilter_ == nullptr) {
    prefilter_ = std::make_shared<const BoundPrefilter>(
        BoundPrefilter::Build(scores_));
  }
  return prefilter_.get();
}

ScoreVector ScoreVector::Permuted(std::span<const uint32_t> permutation) const {
  SVT_CHECK(permutation.size() == scores_.size());
  std::vector<double> out(scores_.size());
  for (size_t i = 0; i < scores_.size(); ++i) {
    SVT_CHECK(permutation[i] < scores_.size());
    out[i] = scores_[permutation[i]];
  }
  return ScoreVector(std::move(out));
}

}  // namespace svt
