// Counting queries over a TransactionDb.
//
// These are the concrete query streams the paper's use cases feed to SVT:
// item supports (frequent-item selection, [13]) and itemset supports
// (frequent-itemset mining). Under add/remove-one-transaction neighbors
// they have sensitivity 1 and are monotonic (§4.3).

#ifndef SPARSEVEC_DATA_QUERIES_H_
#define SPARSEVEC_DATA_QUERIES_H_

#include <span>
#include <string>
#include <vector>

#include "data/transaction_db.h"

namespace svt {

/// A counting query: evaluates to the number of transactions satisfying a
/// predicate. Sensitivity 1, monotonic.
class CountingQuery {
 public:
  virtual ~CountingQuery() = default;

  /// True answer on `db`.
  virtual double Evaluate(const TransactionDb& db) const = 0;

  /// Global sensitivity under add/remove-one-transaction neighbors.
  double sensitivity() const { return 1.0; }

  virtual std::string name() const = 0;
};

/// Support of a single item.
class ItemSupportQuery final : public CountingQuery {
 public:
  explicit ItemSupportQuery(ItemId item) : item_(item) {}

  double Evaluate(const TransactionDb& db) const override {
    return static_cast<double>(db.ItemSupport(item_));
  }
  std::string name() const override {
    return "support(item=" + std::to_string(item_) + ")";
  }
  ItemId item() const { return item_; }

 private:
  ItemId item_;
};

/// Support of an itemset (conjunction).
class ItemsetSupportQuery final : public CountingQuery {
 public:
  /// `itemset` is copied and sorted.
  explicit ItemsetSupportQuery(std::vector<ItemId> itemset);

  double Evaluate(const TransactionDb& db) const override;
  std::string name() const override;
  const std::vector<ItemId>& itemset() const { return itemset_; }

 private:
  std::vector<ItemId> itemset_;
};

/// Builds the item-support query stream q_1, ..., q_{num_items}, in item-id
/// order. (Experiments shuffle before running.)
std::vector<ItemSupportQuery> AllItemSupportQueries(uint32_t num_items);

/// Evaluates every item-support query in one pass over the database —
/// equivalent to evaluating AllItemSupportQueries one by one, but O(total
/// occurrences) instead of O(items × transactions).
std::vector<double> EvaluateAllItemSupports(const TransactionDb& db);

}  // namespace svt

#endif  // SPARSEVEC_DATA_QUERIES_H_
