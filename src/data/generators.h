// Synthetic workload generators for the Table 1 datasets.
//
// GenerateScores produces the per-item support profile (what Figures 3–5
// consume); GenerateTransactions materializes an actual transaction
// database with approximately that profile (what the FP-growth example and
// the end-to-end integration tests consume).

#ifndef SPARSEVEC_DATA_GENERATORS_H_
#define SPARSEVEC_DATA_GENERATORS_H_

#include "common/rng.h"
#include "data/dataset_spec.h"
#include "data/score_vector.h"
#include "data/transaction_db.h"

namespace svt {

/// Generates the item-score (support) vector for `spec`:
///   score_i = A * (i+1)^-alpha * jitter_i,  A chosen so the scores sum to
/// spec.total_occurrences(). Scores are returned in *rank order*
/// (descending modulo jitter); experiments shuffle per run.
///
/// For ZipfSpec() with jitter 0 this is exactly the paper's construction:
/// "the i'th query has a score proportional to 1/i".
ScoreVector GenerateScores(const DatasetSpec& spec, Rng& rng);

/// Materializes a transaction database whose expected item supports follow
/// `scores` (scaled so that expected total occurrences match
/// scores.Total()), with `num_records` transactions. Transaction lengths
/// are drawn geometrically around scores.Total()/num_records; items within
/// a transaction are drawn without replacement via an alias table over the
/// score profile.
TransactionDb GenerateTransactions(const ScoreVector& scores,
                                   uint64_t num_records, Rng& rng);

/// Convenience: GenerateTransactions(GenerateScores(spec), spec.num_records)
/// — use only for small/scaled specs; the full AOL spec would materialize
/// ~13M item occurrences.
TransactionDb GenerateDatabase(const DatasetSpec& spec, Rng& rng);

}  // namespace svt

#endif  // SPARSEVEC_DATA_GENERATORS_H_
