// ScoreVector: the per-item query answers ("supports") an experiment run
// selects from. This is the object SVT and EM actually consume in the
// paper's §6 — item i's score is the answer of counting query q_i.

#ifndef SPARSEVEC_DATA_SCORE_VECTOR_H_
#define SPARSEVEC_DATA_SCORE_VECTOR_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "data/bound_prefilter.h"

namespace svt {

class ScoreVector {
 public:
  ScoreVector() = default;
  explicit ScoreVector(std::vector<double> scores);

  size_t size() const { return scores_.size(); }
  bool empty() const { return scores_.empty(); }
  double operator[](size_t i) const { return scores_[i]; }
  std::span<const double> scores() const { return scores_; }

  /// Sum of all scores.
  double Total() const;

  /// Largest score.
  double Max() const;

  /// Scores sorted descending (copy).
  std::vector<double> SortedDescending() const;

  /// The k highest scores, descending. k must be <= size().
  std::vector<double> TopK(size_t k) const;

  /// A copy with the item order permuted uniformly at random — the paper
  /// randomizes the order items are examined in every run.
  ScoreVector Shuffled(Rng& rng) const;

  /// A copy whose entries are permuted by `permutation` (a bijection on
  /// [0, size())).
  ScoreVector Permuted(std::span<const uint32_t> permutation) const;

  /// The vector's quantized bound companion (score side only), built
  /// lazily on first use and cached — pass it to the batch engine's
  /// prefiltered RunAppend so repeated runs over the same vector (the
  /// paper's sweep shape) pay the quantization once and the per-span
  /// bound pass reads 1-2 bytes per element instead of 8. Shuffled() and
  /// Permuted() return fresh vectors with their own (unbuilt) cache.
  /// Codes are bound-only: attaching them never changes emitted
  /// responses (core/svt.h contract). Not thread-safe against concurrent
  /// first calls, like the rest of this class.
  const BoundPrefilter* bound_prefilter() const;

 private:
  std::vector<double> scores_;
  mutable std::shared_ptr<const BoundPrefilter> prefilter_;  // lazy cache
};

}  // namespace svt

#endif  // SPARSEVEC_DATA_SCORE_VECTOR_H_
