// Transaction-data I/O in the FIMI format — one transaction per line,
// whitespace-separated integer item ids — which is exactly how the paper's
// real datasets (BMS-POS, Kosarak from the FIMI repository) are
// distributed. Users who have the real files can reproduce Figures 4/5 on
// them directly; the synthetic generators remain the default.
//
// Also reads/writes plain score vectors (one "item_id score" pair per
// line) so experiment inputs can be checkpointed.

#ifndef SPARSEVEC_DATA_DATASET_IO_H_
#define SPARSEVEC_DATA_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "data/score_vector.h"
#include "data/transaction_db.h"

namespace svt {

/// Parses a FIMI transaction file. Item ids may be arbitrary non-negative
/// integers; they are kept as-is, and the database is sized to the largest
/// id + 1 (or `min_items`, whichever is larger). Blank lines are skipped.
/// Fails with kInvalidArgument on unparsable tokens, kOutOfRange on files
/// that declare no transactions.
Result<TransactionDb> LoadFimiTransactions(const std::string& path,
                                           uint32_t min_items = 0);

/// Writes a database in FIMI format. Overwrites `path`.
Status SaveFimiTransactions(const TransactionDb& db, const std::string& path);

/// Loads "item score" lines (ids must cover 0..n-1 after reading; missing
/// ids default to score 0). Lines starting with '#' are comments.
Result<ScoreVector> LoadScores(const std::string& path);

/// Writes "item score" lines with a header comment.
Status SaveScores(const ScoreVector& scores, const std::string& path);

}  // namespace svt

#endif  // SPARSEVEC_DATA_DATASET_IO_H_
