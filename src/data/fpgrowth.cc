#include "data/fpgrowth.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "common/check.h"

namespace svt {

namespace {

struct FpNode {
  ItemId item = 0;
  uint64_t count = 0;
  FpNode* parent = nullptr;
  FpNode* next_same_item = nullptr;  // header-table chain
  std::unordered_map<ItemId, std::unique_ptr<FpNode>> children;
};

// FP-tree with ownership rooted at `root`; header chains give per-item
// access to all nodes carrying that item.
class FpTree {
 public:
  FpTree() : root_(std::make_unique<FpNode>()) {}

  // Inserts a frequency-descending-ordered transaction with multiplicity
  // `count`.
  void Insert(const std::vector<ItemId>& ordered_items, uint64_t count) {
    FpNode* node = root_.get();
    for (ItemId item : ordered_items) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        child->next_same_item = header_[item];
        header_[item] = child.get();
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += count;
      node = it->second.get();
    }
  }

  const std::unordered_map<ItemId, FpNode*>& header() const {
    return header_;
  }

  bool empty() const { return root_->children.empty(); }

 private:
  std::unique_ptr<FpNode> root_;
  std::unordered_map<ItemId, FpNode*> header_;
};

struct MinerState {
  const FpGrowthOptions* options;
  std::vector<FrequentItemset>* results;
};

// One conditional "pattern base" row: the prefix path items + multiplicity.
struct PatternRow {
  std::vector<ItemId> items;
  uint64_t count;
};

void Mine(const std::vector<PatternRow>& rows, std::vector<ItemId>* suffix,
          MinerState* state);

// Builds the conditional rows for `item` from the given tree and recurses.
void MineTree(const FpTree& tree, std::vector<ItemId>* suffix,
              MinerState* state) {
  // Collect item counts in this (conditional) tree.
  std::map<ItemId, uint64_t> item_counts;
  for (const auto& [item, head] : tree.header()) {
    uint64_t total = 0;
    for (const FpNode* n = head; n != nullptr; n = n->next_same_item) {
      total += n->count;
    }
    item_counts[item] = total;
  }

  for (const auto& [item, total] : item_counts) {
    if (total < state->options->min_support) continue;

    suffix->push_back(item);
    std::vector<ItemId> itemset = *suffix;
    std::sort(itemset.begin(), itemset.end());
    const uint32_t max_size = state->options->max_itemset_size;
    if (max_size == 0 || itemset.size() <= max_size) {
      state->results->push_back(FrequentItemset{std::move(itemset), total});
    }

    const bool can_grow =
        max_size == 0 || suffix->size() < max_size;
    if (can_grow) {
      // Conditional pattern base: prefix paths of every node of `item`.
      std::vector<PatternRow> rows;
      auto it = tree.header().find(item);
      SVT_CHECK(it != tree.header().end());
      for (const FpNode* n = it->second; n != nullptr;
           n = n->next_same_item) {
        PatternRow row;
        row.count = n->count;
        for (const FpNode* p = n->parent; p != nullptr && p->parent != nullptr;
             p = p->parent) {
          row.items.push_back(p->item);
        }
        if (!row.items.empty()) rows.push_back(std::move(row));
      }
      Mine(rows, suffix, state);
    }
    suffix->pop_back();
  }
}

void Mine(const std::vector<PatternRow>& rows, std::vector<ItemId>* suffix,
          MinerState* state) {
  if (rows.empty()) return;

  // Count items in the pattern base, prune below min_support.
  std::unordered_map<ItemId, uint64_t> counts;
  for (const PatternRow& row : rows) {
    for (ItemId item : row.items) counts[item] += row.count;
  }

  FpTree conditional;
  for (const PatternRow& row : rows) {
    std::vector<ItemId> kept;
    for (ItemId item : row.items) {
      if (counts[item] >= state->options->min_support) kept.push_back(item);
    }
    if (kept.empty()) continue;
    // Order by descending conditional count (ties by id) — canonical
    // FP-tree insertion order.
    std::sort(kept.begin(), kept.end(), [&counts](ItemId a, ItemId b) {
      if (counts[a] != counts[b]) return counts[a] > counts[b];
      return a < b;
    });
    conditional.Insert(kept, row.count);
  }
  if (!conditional.empty()) MineTree(conditional, suffix, state);
}

void SortCanonically(std::vector<FrequentItemset>* results) {
  std::sort(results->begin(), results->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

}  // namespace

std::vector<FrequentItemset> MineFrequentItemsets(
    const TransactionDb& db, const FpGrowthOptions& options) {
  SVT_CHECK(options.min_support >= 1);

  // Pass 1: global item supports; keep frequent items, order descending.
  const std::vector<uint64_t> supports = db.ItemSupports();

  // Pass 2: build the global FP-tree from filtered, reordered transactions.
  FpTree tree;
  for (const Transaction& t : db.transactions()) {
    std::vector<ItemId> kept;
    for (ItemId item : t) {
      if (supports[item] >= options.min_support) kept.push_back(item);
    }
    if (kept.empty()) continue;
    std::sort(kept.begin(), kept.end(), [&supports](ItemId a, ItemId b) {
      if (supports[a] != supports[b]) return supports[a] > supports[b];
      return a < b;
    });
    tree.Insert(kept, 1);
  }

  std::vector<FrequentItemset> results;
  std::vector<ItemId> suffix;
  MinerState state{&options, &results};
  if (!tree.empty()) MineTree(tree, &suffix, &state);

  SortCanonically(&results);
  if (options.max_results > 0 && results.size() > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

std::vector<FrequentItemset> MineFrequentItemsetsBruteForce(
    const TransactionDb& db, const FpGrowthOptions& options) {
  SVT_CHECK(options.min_support >= 1);
  // Level-wise Apriori: candidates of size k extend frequent sets of size
  // k-1. Exponential in the worst case; for tests only.
  std::vector<FrequentItemset> results;

  const std::vector<uint64_t> supports = db.ItemSupports();
  std::vector<std::vector<ItemId>> frontier;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (supports[i] >= options.min_support) {
      results.push_back(FrequentItemset{{i}, supports[i]});
      frontier.push_back({i});
    }
  }

  uint32_t size = 1;
  while (!frontier.empty()) {
    ++size;
    if (options.max_itemset_size != 0 && size > options.max_itemset_size) {
      break;
    }
    std::vector<std::vector<ItemId>> next;
    for (const std::vector<ItemId>& base : frontier) {
      for (ItemId ext = base.back() + 1; ext < db.num_items(); ++ext) {
        if (supports[ext] < options.min_support) continue;
        std::vector<ItemId> candidate = base;
        candidate.push_back(ext);
        const uint64_t support = db.ItemsetSupport(candidate);
        if (support >= options.min_support) {
          results.push_back(FrequentItemset{candidate, support});
          next.push_back(std::move(candidate));
        }
      }
    }
    frontier = std::move(next);
  }

  std::sort(results.begin(), results.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  if (options.max_results > 0 && results.size() > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

std::string ToString(const FrequentItemset& itemset) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < itemset.items.size(); ++i) {
    if (i > 0) os << ",";
    os << itemset.items[i];
  }
  os << "}:" << itemset.support;
  return os.str();
}

}  // namespace svt
