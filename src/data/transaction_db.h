// An in-memory transaction database: the substrate behind the paper's
// frequent-itemset use case (Lee & Clifton [13]) and the neighboring-dataset
// constructions used by the privacy tests.
//
// A record ("transaction") is a sorted set of distinct item ids. Neighboring
// databases differ by adding or removing one transaction — under this
// notion, item-support queries are monotonic counting queries with
// sensitivity 1 (§4.3 of the paper).

#ifndef SPARSEVEC_DATA_TRANSACTION_DB_H_
#define SPARSEVEC_DATA_TRANSACTION_DB_H_

#include <cstdint>
#include <span>
#include <vector>

namespace svt {

using ItemId = uint32_t;
using Transaction = std::vector<ItemId>;

class TransactionDb {
 public:
  /// Creates an empty database over items [0, num_items).
  explicit TransactionDb(uint32_t num_items);

  /// Adds a transaction; items are deduplicated and sorted. Item ids must
  /// be < num_items (checked).
  void Add(Transaction transaction);

  /// Returns a neighbor with transaction `index` removed.
  TransactionDb WithoutTransaction(size_t index) const;

  /// Returns a neighbor with one extra transaction.
  TransactionDb WithTransaction(Transaction transaction) const;

  size_t num_transactions() const { return transactions_.size(); }
  uint32_t num_items() const { return num_items_; }
  const Transaction& transaction(size_t i) const;
  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }

  /// Support (number of containing transactions) of a single item. O(n).
  uint64_t ItemSupport(ItemId item) const;

  /// Supports of all items in one pass. O(total occurrences).
  std::vector<uint64_t> ItemSupports() const;

  /// Support of an itemset (all items present). `itemset` must be sorted.
  uint64_t ItemsetSupport(std::span<const ItemId> itemset) const;

  /// Total number of item occurrences across all transactions.
  uint64_t TotalOccurrences() const;

 private:
  uint32_t num_items_;
  std::vector<Transaction> transactions_;
};

}  // namespace svt

#endif  // SPARSEVEC_DATA_TRANSACTION_DB_H_
