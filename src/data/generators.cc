#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/distributions.h"
#include "common/math_util.h"

namespace svt {

namespace {

// Calibration constants for the synthetic stand-ins (see dataset_spec.h for
// the substitution rationale). alpha controls the log-log slope of the
// top-300 curve in Figure 3; avg_transaction_len scales total mass so top
// scores land in the paper's ranges (BMS-POS ~1e4..1e5, Kosarak ~1e5..1e6,
// AOL ~1e5..1e6, Zipf ~1e5).
constexpr double kBmsAlpha = 0.55;
constexpr double kKosarakAlpha = 1.05;
constexpr double kAolAlpha = 0.90;

}  // namespace

DatasetSpec BmsPosSpec() {
  DatasetSpec s;
  s.name = "BMS-POS";
  s.num_records = 515597;
  s.num_items = 1657;
  s.alpha = kBmsAlpha;
  s.avg_transaction_len = 6.5;
  s.jitter = 0.05;
  return s;
}

DatasetSpec KosarakSpec() {
  DatasetSpec s;
  s.name = "Kosarak";
  s.num_records = 990002;
  s.num_items = 41270;
  s.alpha = kKosarakAlpha;
  s.avg_transaction_len = 8.1;
  s.jitter = 0.05;
  return s;
}

DatasetSpec AolSpec() {
  DatasetSpec s;
  s.name = "AOL";
  s.num_records = 647377;
  s.num_items = 2290685;
  s.alpha = kAolAlpha;
  // Keyword-frequency knee: beyond rank ~20k the counts collapse toward
  // the ~1-occurrence regime typical of query logs. Without this, a pure
  // power law puts far too much near-threshold mass in the 2.29M-item tail
  // and every mechanism saturates.
  s.tail_start_rank = 20000;
  s.tail_alpha = 2.2;
  s.avg_transaction_len = 28.0;
  s.jitter = 0.05;
  return s;
}

DatasetSpec ZipfSpec() {
  DatasetSpec s;
  s.name = "Zipf";
  s.num_records = 1000000;
  s.num_items = 10000;
  s.alpha = 1.0;
  // The paper's Zipf dataset distributes 1M records over the 1/i profile
  // directly (each record is one item occurrence).
  s.avg_transaction_len = 1.0;
  s.jitter = 0.0;
  return s;
}

std::vector<DatasetSpec> AllDatasetSpecs() {
  return {BmsPosSpec(), KosarakSpec(), AolSpec(), ZipfSpec()};
}

DatasetSpec ScaledSpec(const DatasetSpec& spec, double fraction) {
  SVT_CHECK(fraction > 0.0 && fraction <= 1.0)
      << "scale fraction must be in (0,1], got " << fraction;
  if (fraction == 1.0) return spec;
  DatasetSpec out = spec;
  out.num_items = std::max<uint32_t>(
      2, static_cast<uint32_t>(std::llround(spec.num_items * fraction)));
  out.num_records = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(
             static_cast<double>(spec.num_records) * fraction)));
  if (spec.tail_start_rank > 0) {
    // Keep the knee at the same relative rank so the scaled shape matches.
    out.tail_start_rank = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::llround(spec.tail_start_rank *
                                              fraction)));
  }
  out.name = spec.name + "@" + std::to_string(fraction);
  return out;
}

ScoreVector GenerateScores(const DatasetSpec& spec, Rng& rng) {
  SVT_CHECK(spec.num_items >= 1);
  const size_t n = spec.num_items;
  std::vector<double> scores(n);

  // Deterministic profile: A * i^-alpha, switching to the steeper
  // tail_alpha beyond the knee (continuous at the knee), with A
  // normalizing the sum to the spec's total occurrence count.
  const bool has_knee =
      spec.tail_start_rank > 0 && spec.tail_start_rank < n;
  const auto raw_profile = [&](size_t rank1) {  // 1-based rank
    if (!has_knee || rank1 <= spec.tail_start_rank) {
      return std::pow(static_cast<double>(rank1), -spec.alpha);
    }
    const double knee =
        std::pow(static_cast<double>(spec.tail_start_rank), -spec.alpha);
    return knee * std::pow(static_cast<double>(rank1) /
                               static_cast<double>(spec.tail_start_rank),
                           -spec.tail_alpha);
  };
  double profile_sum = 0.0;
  {
    KahanAccumulator acc;
    for (size_t i = 1; i <= n; ++i) acc.Add(raw_profile(i));
    profile_sum = acc.sum();
  }
  const double a = spec.total_occurrences() / profile_sum;
  for (size_t i = 0; i < n; ++i) {
    double s = a * raw_profile(i + 1);
    if (spec.jitter > 0.0) {
      // Multiplicative log-uniform jitter: breaks exact power-law smoothness
      // the way real item frequencies do, without reordering the head badly.
      const double u = rng.NextUniform(-1.0, 1.0);
      s *= std::exp(spec.jitter * u);
    }
    // Supports are counts; round to integers like real item frequencies.
    scores[i] = std::max(0.0, std::round(s));
  }
  return ScoreVector(std::move(scores));
}

TransactionDb GenerateTransactions(const ScoreVector& scores,
                                   uint64_t num_records, Rng& rng) {
  SVT_CHECK(!scores.empty());
  SVT_CHECK(num_records >= 1);
  const uint32_t num_items = static_cast<uint32_t>(scores.size());

  std::vector<double> weights(scores.scores().begin(),
                              scores.scores().end());
  // Guard fully-zero tails: give every item an epsilon weight so the alias
  // table is well-formed.
  bool any_positive = false;
  for (double w : weights) any_positive |= (w > 0.0);
  if (!any_positive) {
    std::fill(weights.begin(), weights.end(), 1.0);
  }
  AliasSampler sampler(std::move(weights));

  const double mean_len =
      std::max(1.0, scores.Total() / static_cast<double>(num_records));
  // Geometric transaction lengths with the desired mean: P(L = k) =
  // (1-p)^(k-1) p, mean 1/p.
  const double p = 1.0 / mean_len;

  TransactionDb db(num_items);
  Transaction txn;
  for (uint64_t r = 0; r < num_records; ++r) {
    // Geometric draw via inverse CDF.
    const double u = rng.NextDoublePositive();
    uint32_t len = static_cast<uint32_t>(
        std::ceil(std::log(u) / std::log1p(-p)));
    len = std::max<uint32_t>(1, std::min(len, num_items));
    txn.clear();
    for (uint32_t k = 0; k < len; ++k) {
      txn.push_back(sampler.Sample(rng));
    }
    db.Add(txn);  // Add() dedups, so realized length can be < len
  }
  return db;
}

TransactionDb GenerateDatabase(const DatasetSpec& spec, Rng& rng) {
  const ScoreVector scores = GenerateScores(spec, rng);
  return GenerateTransactions(scores, spec.num_records, rng);
}

}  // namespace svt
