// Dataset specifications for the paper's four evaluation workloads
// (Table 1), plus the power-law calibration used by the synthetic
// generators.
//
// Substitution note (see DESIGN.md §3): the paper evaluates on item
// frequencies from three real datasets (BMS-POS, Kosarak, AOL) and a Zipf
// synthetic. The real datasets are not redistributable here, and §6 uses
// them purely as "representative distributions of query scores". We
// therefore generate synthetic score vectors with (a) the exact record and
// item counts of Table 1 and (b) truncated power-law score profiles whose
// top-300 curves match the qualitative shapes of the paper's Figure 3
// (log-log, heavy-tailed, with per-dataset slopes). The SVT/EM algorithms
// consume only the score vector, so this exercises the identical code path.

#ifndef SPARSEVEC_DATA_DATASET_SPEC_H_
#define SPARSEVEC_DATA_DATASET_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace svt {

/// Parameters of one synthetic dataset.
struct DatasetSpec {
  std::string name;
  /// Number of records (transactions) — Table 1, column 2.
  uint64_t num_records = 0;
  /// Number of distinct items — Table 1, column 3.
  uint32_t num_items = 0;
  /// Power-law exponent of the item-frequency profile: score_i ∝ i^-alpha.
  /// alpha = 1 is classic Zipf.
  double alpha = 1.0;
  /// Optional second regime ("knee"): ranks beyond tail_start_rank decay
  /// with the steeper tail_alpha. Real keyword-frequency data (AOL) has
  /// this shape — a broad head but a tail dominated by items that occur
  /// only a handful of times. tail_start_rank = 0 disables the knee.
  uint32_t tail_start_rank = 0;
  double tail_alpha = 0.0;
  /// Average transaction length; total item occurrences ≈
  /// num_records * avg_transaction_len, which fixes the score scale.
  double avg_transaction_len = 1.0;
  /// Multiplicative log-normal-ish jitter applied to the deterministic
  /// profile so synthetic scores are not perfectly smooth (0 = none).
  double jitter = 0.0;

  /// Total item occurrences implied by the spec.
  double total_occurrences() const {
    return static_cast<double>(num_records) * avg_transaction_len;
  }
};

/// Table 1 presets. The record/item counts are the paper's exactly; alpha,
/// avg_transaction_len and jitter are our calibration (documented above).
DatasetSpec BmsPosSpec();
DatasetSpec KosarakSpec();
DatasetSpec AolSpec();
DatasetSpec ZipfSpec();

/// All four presets in the paper's presentation order.
std::vector<DatasetSpec> AllDatasetSpecs();

/// Returns `spec` with the item count (and record count, proportionally)
/// scaled by `fraction` in (0, 1]. Used by bench defaults to keep the
/// full suite minutes-long; `--scale=1` restores Table 1 sizes.
DatasetSpec ScaledSpec(const DatasetSpec& spec, double fraction);

}  // namespace svt

#endif  // SPARSEVEC_DATA_DATASET_SPEC_H_
