#include "data/dataset_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace svt {

namespace {

Result<uint32_t> ParseItemId(const std::string& token, const std::string& path,
                             size_t line_no) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0' ||
      value > 0xFFFFFFFFull) {
    return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                   ": bad item id '" + token + "'");
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

Result<TransactionDb> LoadFimiTransactions(const std::string& path,
                                           uint32_t min_items) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open " + path);
  }

  std::vector<Transaction> transactions;
  uint32_t max_item = 0;
  bool any_item = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    Transaction txn;
    std::string token;
    while (tokens >> token) {
      SVT_ASSIGN_OR_RETURN(uint32_t item, ParseItemId(token, path, line_no));
      txn.push_back(item);
      max_item = std::max(max_item, item);
      any_item = true;
    }
    if (!txn.empty()) transactions.push_back(std::move(txn));
  }
  if (transactions.empty()) {
    return Status::OutOfRange(path + ": no transactions found");
  }

  const uint32_t num_items =
      std::max(min_items, any_item ? max_item + 1 : 1u);
  TransactionDb db(num_items);
  for (Transaction& txn : transactions) db.Add(std::move(txn));
  return db;
}

Status SaveFimiTransactions(const TransactionDb& db,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  for (const Transaction& txn : db.transactions()) {
    for (size_t i = 0; i < txn.size(); ++i) {
      if (i > 0) out << ' ';
      out << txn[i];
    }
    out << '\n';
  }
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Result<ScoreVector> LoadScores(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::vector<std::pair<uint32_t, double>> entries;
  uint32_t max_item = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string id_token;
    double score = 0.0;
    if (!(tokens >> id_token >> score)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected 'item score'");
    }
    SVT_ASSIGN_OR_RETURN(uint32_t item, ParseItemId(id_token, path, line_no));
    if (score < 0.0) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": negative score");
    }
    entries.emplace_back(item, score);
    max_item = std::max(max_item, item);
  }
  if (entries.empty()) {
    return Status::OutOfRange(path + ": no scores found");
  }
  std::vector<double> scores(max_item + 1, 0.0);
  for (const auto& [item, score] : entries) scores[item] = score;
  return ScoreVector(std::move(scores));
}

Status SaveScores(const ScoreVector& scores, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out << "# item score\n";
  out.precision(17);
  for (size_t i = 0; i < scores.size(); ++i) {
    out << i << ' ' << scores[i] << '\n';
  }
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

}  // namespace svt
