// BoundPrefilter: the quantized primary level of the two-level bound
// prefilter (the SVS Turbo-LVQ / LeanVec pattern mapped onto the batch
// engine's tier structure — scan a compressed representation, touch full
// precision only for survivors).
//
// The batch engine's conservative "can this span possibly fire?" chain
// (core/bound_pipeline.h) needs, per 128-query span, an upper bound on the
// span's answers and — for per-query-threshold runs — a lower bound on its
// thresholds. Reading the doubles for those reductions costs 8 (or 16)
// bytes per element, which on bandwidth-starved 1M-query workloads is
// where the bound pass's time goes. A BoundPrefilter is an immutable
// quantized companion of one answers (and optionally thresholds) array:
// uint16 codes — uint8 where the value range permits an exact integer
// embedding — whose per-span integer max/min (vec::QuantizedSpanMax/Min)
// dequantizes to a bound that is conservative BY CONSTRUCTION:
//
//   * score side (answers), rounded toward +inf: every element satisfies
//     DequantScore(code_i) >= answers[i]. Build computes a candidate code
//     from the affine fit and then FIXES IT UP against the actual dequant
//     value (the same fl(offset + fl(scale*code)) the query path
//     evaluates), so the invariant holds per element regardless of any
//     rounding in scale/offset themselves. The top code is a +inf
//     sentinel: +inf answers — and any value the affine range cannot
//     bound — land there, and a span containing one is never pruned.
//     NaN answers map to code 0: a NaN answer can never fire the positive
//     test fl(a + nu) >= bar (NaN compares false), so it needs no bound
//     and must not inflate its span's max.
//   * bar side (thresholds), rounded toward -inf: every element satisfies
//     DequantBar(code_i) <= thresholds[i], same build-time fixup. Code 0
//     is a -inf sentinel (a span containing a -inf threshold is never
//     pruned); NaN thresholds map to the top code — an element whose bar
//     is NaN can never fire (a + nu >= NaN is false), so it needs no
//     bound and must not deflate its span's min.
//
// Dequantization is monotone in the code (scale > 0; correctly-rounded
// multiply and add are monotone), so dequant(max code over a span) >=
// dequant(code_i) >= answers[i] for every i — the span reduction
// inherits the per-element invariant. That is the entire quantization
// side of the conservativeness proof; the bound chain it feeds is proved
// in core/bound_pipeline.h.
//
// Quantized codes are BOUND-ONLY: they feed skip decisions and skip-word
// derivation, never a draw, a transform, or an emitted value (core/svt.h
// draw-order contract note), so final output is bit-identical with the
// prefilter on, off (SVT_BOUND_PREFILTER=off), or absent.

#ifndef SPARSEVEC_DATA_BOUND_PREFILTER_H_
#define SPARSEVEC_DATA_BOUND_PREFILTER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace svt {

class BoundPrefilter {
 public:
  /// An empty prefilter (size 0) — never attachable to a non-empty run.
  BoundPrefilter() = default;

  /// Builds the score-side codes for `answers` (common-threshold runs).
  static BoundPrefilter Build(std::span<const double> answers);

  /// Builds score- and bar-side codes for a per-query-threshold run.
  /// answers.size() must equal thresholds.size().
  static BoundPrefilter Build(std::span<const double> answers,
                              std::span<const double> thresholds);

  /// Number of elements of the array(s) this prefilter was built over. A
  /// run may only attach a prefilter built over exactly its answers (and
  /// thresholds) arrays; the engine checks the sizes match.
  size_t size() const { return size_; }

  /// True when bar-side codes exist (the two-array Build).
  bool has_thresholds() const { return has_thresholds_; }

  /// Bytes of quantized code per element on each side (1 or 2) — the
  /// memory the bound pass touches instead of 8-byte doubles.
  size_t score_bytes_per_element() const { return score8_.empty() ? 2u : 1u; }
  size_t bar_bytes_per_element() const { return bar8_.empty() ? 2u : 1u; }

  /// Conservative upper bound on max(answers[begin, begin+len)): the
  /// dequantized span max code. May be +inf (sentinel in range);
  /// >= every non-NaN element by the build invariant. len >= 1.
  double ScoreUpper(size_t begin, size_t len) const;

  /// Conservative lower bound on min(thresholds[begin, begin+len)): the
  /// dequantized span min code. May be -inf (sentinel in range);
  /// <= every non-NaN element. Requires has_thresholds(). len >= 1.
  double BarLower(size_t begin, size_t len) const;

 private:
  size_t size_ = 0;
  bool has_thresholds_ = false;
  // Affine dequant parameters per side; exactly one code vector per side
  // is populated (8-bit when the finite values embed exactly as integers
  // in a 254-wide range, else 16-bit).
  double score_scale_ = 1.0, score_offset_ = 0.0;
  double bar_scale_ = 1.0, bar_offset_ = 0.0;
  std::vector<std::uint16_t> score16_, bar16_;
  std::vector<std::uint8_t> score8_, bar8_;
};

/// Process-wide prefilter gate, initialized once from SVT_BOUND_PREFILTER
/// ("on" | "off"; unset means on, anything else aborts) and adjustable at
/// runtime for equivalence tests — the seam the CI dispatch matrix's
/// SVT_BOUND_PREFILTER=off leg toggles, mirroring SVT_BATCH_KERNELS.
/// When disabled, attached prefilters are ignored and every bound level
/// runs at full precision; outputs are identical either way.
bool BoundPrefilterEnabled();
void SetBoundPrefilterEnabled(bool enabled);

}  // namespace svt

#endif  // SPARSEVEC_DATA_BOUND_PREFILTER_H_
