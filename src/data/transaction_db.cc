#include "data/transaction_db.h"

#include <algorithm>

#include "common/check.h"

namespace svt {

TransactionDb::TransactionDb(uint32_t num_items) : num_items_(num_items) {
  SVT_CHECK(num_items >= 1);
}

void TransactionDb::Add(Transaction transaction) {
  std::sort(transaction.begin(), transaction.end());
  transaction.erase(std::unique(transaction.begin(), transaction.end()),
                    transaction.end());
  for (ItemId item : transaction) {
    SVT_CHECK(item < num_items_)
        << "item id " << item << " out of range (num_items=" << num_items_
        << ")";
  }
  transactions_.push_back(std::move(transaction));
}

TransactionDb TransactionDb::WithoutTransaction(size_t index) const {
  SVT_CHECK(index < transactions_.size());
  TransactionDb out(num_items_);
  out.transactions_.reserve(transactions_.size() - 1);
  for (size_t i = 0; i < transactions_.size(); ++i) {
    if (i != index) out.transactions_.push_back(transactions_[i]);
  }
  return out;
}

TransactionDb TransactionDb::WithTransaction(Transaction transaction) const {
  TransactionDb out = *this;
  out.Add(std::move(transaction));
  return out;
}

const Transaction& TransactionDb::transaction(size_t i) const {
  SVT_CHECK(i < transactions_.size());
  return transactions_[i];
}

uint64_t TransactionDb::ItemSupport(ItemId item) const {
  SVT_CHECK(item < num_items_);
  uint64_t support = 0;
  for (const Transaction& t : transactions_) {
    support += std::binary_search(t.begin(), t.end(), item) ? 1 : 0;
  }
  return support;
}

std::vector<uint64_t> TransactionDb::ItemSupports() const {
  std::vector<uint64_t> supports(num_items_, 0);
  for (const Transaction& t : transactions_) {
    for (ItemId item : t) ++supports[item];
  }
  return supports;
}

uint64_t TransactionDb::ItemsetSupport(std::span<const ItemId> itemset) const {
  SVT_CHECK(std::is_sorted(itemset.begin(), itemset.end()));
  uint64_t support = 0;
  for (const Transaction& t : transactions_) {
    support +=
        std::includes(t.begin(), t.end(), itemset.begin(), itemset.end())
            ? 1
            : 0;
  }
  return support;
}

uint64_t TransactionDb::TotalOccurrences() const {
  uint64_t total = 0;
  for (const Transaction& t : transactions_) total += t.size();
  return total;
}

}  // namespace svt
