#include "data/queries.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace svt {

ItemsetSupportQuery::ItemsetSupportQuery(std::vector<ItemId> itemset)
    : itemset_(std::move(itemset)) {
  SVT_CHECK(!itemset_.empty()) << "itemset must not be empty";
  std::sort(itemset_.begin(), itemset_.end());
  itemset_.erase(std::unique(itemset_.begin(), itemset_.end()),
                 itemset_.end());
}

double ItemsetSupportQuery::Evaluate(const TransactionDb& db) const {
  return static_cast<double>(db.ItemsetSupport(itemset_));
}

std::string ItemsetSupportQuery::name() const {
  std::ostringstream os;
  os << "support({";
  for (size_t i = 0; i < itemset_.size(); ++i) {
    if (i > 0) os << ",";
    os << itemset_[i];
  }
  os << "})";
  return os.str();
}

std::vector<ItemSupportQuery> AllItemSupportQueries(uint32_t num_items) {
  std::vector<ItemSupportQuery> queries;
  queries.reserve(num_items);
  for (uint32_t i = 0; i < num_items; ++i) queries.emplace_back(i);
  return queries;
}

std::vector<double> EvaluateAllItemSupports(const TransactionDb& db) {
  const std::vector<uint64_t> supports = db.ItemSupports();
  return std::vector<double>(supports.begin(), supports.end());
}

}  // namespace svt
