#include "core/top_select.h"

#include <algorithm>

#include "common/check.h"

namespace svt {

std::vector<size_t> CollectPositives(SvtMechanism& mechanism,
                                     std::span<const double> scores,
                                     double threshold) {
  std::vector<size_t> selected;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (mechanism.exhausted()) break;
    if (mechanism.Process(scores[i], threshold).is_positive()) {
      selected.push_back(i);
    }
  }
  return selected;
}

Result<std::vector<size_t>> SelectTopCWithSvt(std::span<const double> scores,
                                              double threshold,
                                              const SvtOptions& options,
                                              Rng& rng) {
  SVT_ASSIGN_OR_RETURN(std::unique_ptr<SparseVector> mech,
                       SparseVector::Create(options, &rng));
  return CollectPositives(*mech, scores, threshold);
}

Result<std::vector<size_t>> SelectTopCWithEm(std::span<const double> scores,
                                             const EmOptions& options,
                                             Rng& rng) {
  return ExponentialMechanism::SelectTopC(scores, options, rng);
}

std::vector<size_t> TrueTopC(std::span<const double> scores, size_t c) {
  SVT_CHECK(c <= scores.size());
  std::vector<size_t> idx(scores.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(c),
                    idx.end(), [&scores](size_t a, size_t b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;  // deterministic tie-break
                    });
  idx.resize(c);
  return idx;
}

double PaperThreshold(std::span<const double> scores, size_t c) {
  SVT_CHECK(c >= 1);
  SVT_CHECK(c < scores.size())
      << "PaperThreshold requires at least c+1 scores";
  std::vector<double> sorted(scores.begin(), scores.end());
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(c),
                   sorted.end(), std::greater<double>());
  // After nth_element with greater<>, elements [0, c) are the top c (in some
  // order) and sorted[c] is the (c+1)-th largest.
  const double cth =
      *std::min_element(sorted.begin(),
                        sorted.begin() + static_cast<std::ptrdiff_t>(c));
  const double next = sorted[c];
  return 0.5 * (cth + next);
}

}  // namespace svt
