#include "core/batch_runner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/distributions.h"
#include "common/vecmath.h"

namespace svt {

namespace {

// Inflation applied to the chunk's ν magnitude bound before the all-below
// test. IEEE rounding of the bound chain (log, multiply, add) is monotone,
// but libm's log() is only *nearly* correctly rounded, so pad the bound by
// ~1e-12 relative — four orders of magnitude above any few-ulp libm error —
// to make the shortcut strictly conservative.
constexpr double kBoundSlack = 1.0 + 1e-12;

static_assert(Response{}.outcome == Outcome::kBelow,
              "value-initialized Response must be ⊥: the batch engine emits "
              "⊥ runs via zero-initializing resize");

}  // namespace

BatchRunner::BatchRunner(const VariantSpec& spec, Rng* base_rng,
                         SvtRunState* state)
    : spec_(spec), base_rng_(base_rng), state_(state) {
  SVT_CHECK(base_rng_ != nullptr);
  SVT_CHECK(state_ != nullptr);
}

// Builds the positive Response for `answer` whose comparison noise was
// `nu_j`, updating counters, cutoff, and (for Alg. 2) ρ — in the exact
// order of the streaming Process() slow path.
Response BatchRunner::MakePositiveResponse(double answer, double nu_j) {
  ++state_->processed;
  ++state_->positives;
  if (spec_.cutoff.has_value() && state_->positives >= *spec_.cutoff) {
    state_->exhausted = true;
  }
  if (spec_.resample_rho_after_positive) {
    state_->rho = SampleLaplace(*base_rng_, spec_.rho_resample_scale);
  }
  if (spec_.output_query_value_on_positive) {
    return Response::AboveValue(answer + nu_j);
  }
  if (spec_.numeric_scale > 0.0) {
    return Response::AboveValue(answer +
                                SampleLaplace(*base_rng_, spec_.numeric_scale));
  }
  return Response::Above();
}

// Scans one chunk (all pointers chunk-local, res pre-zeroed to ⊥) and
// writes positive responses in place. Returns the number of chunk elements
// processed: n unless the cutoff exhausted the run inside the chunk.
// `find_next(from, rho)` returns the index of the first positive at or
// after `from` under threshold offset rho, or n — either a vecmath
// dispatched compare-scan (common threshold) or a scalar loop (per-query
// thresholds); both apply the exact streaming positive test
// `answer + ν >= threshold + ρ`, including for non-finite answers.
template <typename FindNext>
size_t BatchRunner::ScanChunk(const double* answers, size_t n,
                              const double* nu, FindNext find_next,
                              Response* res) {
  size_t i = 0;
  while (i < n) {
    const size_t j = find_next(i, state_->rho);
    state_->processed += static_cast<int64_t>(j - i);
    if (j == n) return n;

    res[j] = MakePositiveResponse(answers[j], nu != nullptr ? nu[j] : 0.0);
    i = j + 1;
    if (state_->exhausted) return i;
  }
  return n;
}

size_t BatchRunner::Run(std::span<const double> answers, double threshold,
                        std::vector<Response>* out) {
  const size_t start = out->size();
  if (state_->exhausted || answers.empty()) return 0;
  const size_t total = answers.size();
  // Zero-initializing resize writes the whole output as ⊥ in one memset;
  // only positives are assigned afterwards. Shrunk again on early abort.
  out->resize(start + total);
  Response* const res = out->data() + start;

  const bool has_nu = spec_.nu_scale > 0.0;
  uint64_t words[2 * kChunkSize];
  double nu_block[kChunkSize];
  const Laplace nu_dist =
      has_nu ? Laplace::Centered(spec_.nu_scale) : Laplace::Centered(1.0);

  size_t done = 0;
  while (done < total) {
    const size_t n = std::min(kChunkSize, total - done);
    const double* const a = answers.data() + done;
    size_t chunk_processed = n;
    if (!has_nu) {
      const auto find_next = [a, n, threshold](size_t from, double rho) {
        return from + vec::FindFirstGe({a + from, n - from}, threshold + rho);
      };
      chunk_processed = ScanChunk(a, n, nullptr, find_next, res + done);
    } else {
      // Pre-fetch the chunk's raw ν words — the substream advances exactly
      // as if each ν_i had been drawn scalar-style.
      state_->nu_rng.FillUint64({words, 2 * n});

      // Tier-1 shortcut: bound every |ν_i| in the chunk by b·(-log(u_min)),
      // where u_min is the smallest magnitude uniform — an integer min over
      // the even words, no log per element. If even the largest answer
      // cannot cross the noisy threshold under that bound, the whole chunk
      // is provably ⊥ and the transform is skipped entirely. Every step of
      // the bound chain is a monotone rounded operation, so the shortcut
      // emits exactly what the exact comparison would. The bound evaluates
      // the same vecmath kernel that tier-2's transform would apply, so
      // kBoundSlack only has to absorb the kernel's own sub-ulp rounding
      // wiggle, never a libm-vs-polynomial discrepancy.
      const uint64_t w_min = vec::MinWordBlock({words, 2 * n}, 2);
      const double a_max = vec::MaxBlock({a, n});
      const double u_min = Rng::ToUnitDoublePositive(w_min);
      const double nu_bound =
          spec_.nu_scale * (-vec::Log(u_min)) * kBoundSlack;
      if (a_max + nu_bound < threshold + state_->rho) {
        state_->processed += static_cast<int64_t>(n);  // res already ⊥
        ++state_->batch.tier1_chunks_skipped;
      } else {
        // Tier-2: materialize the ν block and run the dispatched
        // compare-scan over it.
        ++state_->batch.tier2_chunks_scanned;
        nu_dist.TransformBlock({words, 2 * n}, {nu_block, n});
        const double* const nu = nu_block;
        const auto find_next = [a, nu, n, threshold](size_t from,
                                                     double rho) {
          return from + vec::FindFirstSumGe({a + from, n - from},
                                            {nu + from, n - from},
                                            threshold + rho);
        };
        chunk_processed = ScanChunk(a, n, nu_block, find_next, res + done);
      }
    }
    if (state_->exhausted) {
      const size_t emitted = done + chunk_processed;
      out->resize(start + emitted);
      return emitted;
    }
    done += n;
  }
  return total;
}

size_t BatchRunner::Run(std::span<const double> answers,
                        std::span<const double> thresholds,
                        std::vector<Response>* out) {
  SVT_CHECK(answers.size() == thresholds.size())
      << "answers/thresholds size mismatch: " << answers.size() << " vs "
      << thresholds.size();
  const size_t start = out->size();
  if (state_->exhausted || answers.empty()) return 0;
  const size_t total = answers.size();
  out->resize(start + total);
  Response* const res = out->data() + start;

  const bool has_nu = spec_.nu_scale > 0.0;
  uint64_t words[2 * kChunkSize];
  double nu_block[kChunkSize];
  const Laplace nu_dist =
      has_nu ? Laplace::Centered(spec_.nu_scale) : Laplace::Centered(1.0);

  size_t done = 0;
  while (done < total) {
    const size_t n = std::min(kChunkSize, total - done);
    const double* nu = nullptr;
    if (has_nu) {
      // Per-query thresholds forgo the tier-1 bound (the rounding of
      // answer − threshold would make it unsound); the raw-word fill plus
      // one full-chunk transform still amortizes the RNG and runs the
      // dispatched vecmath kernels, consuming the substream exactly as a
      // scalar draw loop would (the same shape as the common-threshold
      // tier-2 path).
      ++state_->batch.tier2_chunks_scanned;
      state_->nu_rng.FillUint64({words, 2 * n});
      nu_dist.TransformBlock({words, 2 * n}, {nu_block, n});
      nu = nu_block;
    }
    const double* const t = thresholds.data() + done;
    const double* const a = answers.data() + done;
    // Per-query bars vary per element; the pairwise vecmath kernels scan
    // them with the same dispatched compare machinery as the common-
    // threshold path. Semantics are the exact streaming positive test
    // (each side one rounded add, ordered >=), bit-identical across
    // dispatch levels.
    const auto find_next = [a, nu, t, n](size_t from, double rho) {
      const size_t m = n - from;
      if (nu != nullptr) {
        return from + vec::FindFirstSumGePairwise(
                          {a + from, m}, {nu + from, m}, {t + from, m}, rho);
      }
      return from + vec::FindFirstGePairwise({a + from, m}, {t + from, m}, rho);
    };
    const size_t chunk_processed = ScanChunk(a, n, nu, find_next, res + done);
    if (state_->exhausted) {
      const size_t emitted = done + chunk_processed;
      out->resize(start + emitted);
      return emitted;
    }
    done += n;
  }
  return total;
}

}  // namespace svt
