#include "core/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "common/check.h"
#include "common/distributions.h"
#include "common/vecmath.h"
#include "core/bound_pipeline.h"
#include "data/bound_prefilter.h"

namespace svt {

bool ParseBatchKernelMode(std::string_view value, BatchKernelMode* mode) {
  SVT_CHECK(mode != nullptr);
  if (value == "megakernel") {
    *mode = BatchKernelMode::kMegakernel;
    return true;
  }
  if (value == "composition") {
    *mode = BatchKernelMode::kComposition;
    return true;
  }
  return false;
}

namespace {

BatchKernelMode InitialKernelMode() {
  const char* env = std::getenv("SVT_BATCH_KERNELS");
  if (env == nullptr) return BatchKernelMode::kMegakernel;
  BatchKernelMode mode = BatchKernelMode::kMegakernel;
  if (!ParseBatchKernelMode(env, &mode)) {
    // Latched once (KernelModeVar's function-local static), so an
    // unrecognized value warns exactly once per process.
    std::cerr << "svt: unrecognized SVT_BATCH_KERNELS value '" << env
              << "'; falling back to 'megakernel'\n";
  }
  return mode;
}

std::atomic<int>& KernelModeVar() {
  static std::atomic<int> mode{static_cast<int>(InitialKernelMode())};
  return mode;
}

static_assert(Response{}.outcome == Outcome::kBelow,
              "value-initialized Response must be ⊥: the batch engine emits "
              "⊥ runs via zero-initializing resize");

static_assert(BatchRunner::kChunkSize / BatchRunner::kBoundSpan <=
                  BoundPipeline::kMaxSpans,
              "BoundPipeline's static span plan must cover a full chunk");
static_assert(BatchRunner::kFusedSubBlock % BatchRunner::kBoundSpan == 0,
              "per-query sub-blocks must align on bound-span boundaries so "
              "sub-block span indices map onto the chunk's BoundPipeline "
              "plan");

// Streaming-identical single draw of a role's noise kind (the batch slow
// path at positives must consume the base stream exactly as Process()
// would — core/svt.h contract step 3).
double SampleNoise(Rng& rng, NoiseKind kind, double scale) {
  switch (kind) {
    case NoiseKind::kLaplace:
      return SampleLaplace(rng, scale);
    case NoiseKind::kExponential:
      return SampleExponential(rng, scale);
  }
  SVT_CHECK(false) << "unknown NoiseKind";
  return 0.0;
}

// Raw 64-bit words one ν variate consumes — the distribution-traits knob
// that threads the noise axis through the fill sizes, the bound pipeline's
// word reduction stride, and the fused-kernel spans below. Laplace: 2
// (magnitude word + sign word). Exponential: 1 (one-sided, no sign word).
size_t WordsPerVariate(NoiseKind kind) {
  return kind == NoiseKind::kExponential ? 1 : 2;
}

}  // namespace

BatchKernelMode ActiveBatchKernelMode() {
  return static_cast<BatchKernelMode>(
      KernelModeVar().load(std::memory_order_relaxed));
}

void SetBatchKernelMode(BatchKernelMode mode) {
  KernelModeVar().store(static_cast<int>(mode), std::memory_order_relaxed);
}

BatchRunner::BatchRunner(const VariantSpec& spec, Rng* base_rng,
                         SvtRunState* state)
    : spec_(spec), base_rng_(base_rng), state_(state) {
  SVT_CHECK(base_rng_ != nullptr);
  SVT_CHECK(state_ != nullptr);
}

// Builds the positive Response for `answer` whose comparison noise was
// `nu_j`, updating counters, cutoff, and (for Alg. 2) ρ — in the exact
// order of the streaming Process() slow path.
Response BatchRunner::MakePositiveResponse(double answer, double nu_j) {
  ++state_->processed;
  ++state_->positives;
  if (spec_.cutoff.has_value() && state_->positives >= *spec_.cutoff) {
    state_->exhausted = true;
  }
  if (spec_.resample_rho_after_positive) {
    state_->rho =
        SampleNoise(*base_rng_, spec_.rho_kind, spec_.rho_resample_scale);
  }
  if (spec_.output_query_value_on_positive) {
    return Response::AboveValue(answer + nu_j);
  }
  if (spec_.numeric_scale > 0.0) {
    return Response::AboveValue(answer +
                                SampleLaplace(*base_rng_, spec_.numeric_scale));
  }
  return Response::Above();
}

// Scans one span (all pointers span-local, res pre-zeroed to ⊥) and writes
// positive responses in place. Returns the number of span elements
// processed: n unless the cutoff exhausted the run inside the span.
// `find_next(from, rho)` returns the first positive at or after `from`
// under threshold offset rho — index n if none — together with the ν that
// fired it (0.0 for the ν-free scans). The fused paths compute that ν in
// the same register pass as the compare; every path applies the exact
// streaming positive test, including for non-finite answers.
template <typename FindNext>
size_t BatchRunner::ScanChunk(const double* answers, size_t n,
                              FindNext find_next, Response* res) {
  const double rho0 = state_->rho;
  size_t i = 0;
  while (i < n) {
    // Resume under a resampled ρ: whatever find_next does about it —
    // cached-hit revalidation or a checkpoint rescan — counts here, once,
    // so the counter is kernel-mode- and dispatch-independent.
    if (i > 0 && state_->rho != rho0) ++state_->batch.replay_rederivations;
    const vec::FusedScanHit hit = find_next(i, state_->rho);
    state_->processed += static_cast<int64_t>(hit.index - i);
    if (hit.index == n) return n;

    res[hit.index] = MakePositiveResponse(answers[hit.index], hit.nu);
    i = hit.index + 1;
    if (state_->exhausted) return i;
  }
  return n;
}

size_t BatchRunner::Run(std::span<const double> answers, double threshold,
                        std::vector<Response>* out) {
  return Run(answers, threshold, /*prefilter=*/nullptr, out);
}

size_t BatchRunner::Run(std::span<const double> answers,
                        std::span<const double> thresholds,
                        std::vector<Response>* out) {
  return Run(answers, thresholds, /*prefilter=*/nullptr, out);
}

size_t BatchRunner::Run(std::span<const double> answers, double threshold,
                        const BoundPrefilter* prefilter,
                        std::vector<Response>* out) {
  if (prefilter != nullptr) {
    SVT_CHECK(prefilter->size() == answers.size())
        << "BoundPrefilter size " << prefilter->size()
        << " does not match answers size " << answers.size()
        << "; a prefilter may only attach to the arrays it was built over";
  }
  const size_t start = out->size();
  if (state_->exhausted || answers.empty()) return 0;
  const size_t total = answers.size();
  // Zero-initializing resize writes the whole output as ⊥ in one memset;
  // only positives are assigned afterwards. Shrunk again on early abort.
  out->resize(start + total);
  Response* const res = out->data() + start;

  const bool has_nu = spec_.nu_scale > 0.0;
  // Cache-line-aligned so the 512-bit loads of the bound-pipeline word
  // reduction and the fused scan kernels never split lines.
  alignas(64) uint64_t words[2 * kChunkSize];
  SVT_DCHECK(reinterpret_cast<uintptr_t>(words) % 64 == 0);
  // The single bound implementation: every skip decision below — tier-1
  // chunk test, tier-2 span tests, the megakernels' skip-word inputs —
  // comes out of this pipeline (core/bound_pipeline.h), at the quantized
  // level when a prefilter is attached and the gate is on, at full
  // precision otherwise.
  BoundPipeline pipe(has_nu ? prefilter : nullptr, spec_.nu_scale, kBoundSpan,
                     &state_->batch);

  size_t done = 0;
  while (done < total) {
    const size_t n = std::min(kChunkSize, total - done);
    const double* const a = answers.data() + done;
    size_t chunk_processed = n;
    if (!has_nu) {
      const auto find_next = [a, n, threshold](size_t from, double rho) {
        return vec::FusedScanHit{
            from + vec::FindFirstGe({a + from, n - from}, threshold + rho),
            0.0};
      };
      chunk_processed = ScanChunk(a, n, find_next, res + done);
    } else if (ActiveBatchKernelMode() == BatchKernelMode::kMegakernel) {
      // Lane-resident path: one generate-bound-and-scan megakernel pass
      // replaces the chunk prefetch — the raw ν words are produced,
      // reduced, tested, and discarded without ever touching memory. The
      // fused pass steps the ν substream's four xoshiro lanes in
      // registers and returns the chunk-wide magnitude minimum (the
      // tier-1 input), the tier-2 hierarchy's per-span minima, a
      // BlockRng::State checkpoint at every span entry, and — when the
      // chunk's word threshold can discharge skipping at all — every
      // element whose positive test fires under the chunk-entry bar, in
      // index order. The substream is then restored to the chunk-end
      // position, exactly where the composition's whole-chunk FillUint64
      // leaves it, positives or not. Every bound-chain input is the same
      // word the composition reads (unsigned min is association-free)
      // and the recorded hits are the same computed tests the
      // composition's scans apply, so skip decisions, tier counters, and
      // emitted responses agree between the modes bit for bit —
      // equivalence-tested in core_batch_runner_test.cc.
      const size_t wpv = WordsPerVariate(spec_.nu_kind);
      const bool exp_nu = spec_.nu_kind == NoiseKind::kExponential;
      uint64_t span_min[kChunkSize / kBoundSpan];
      BlockRng::State span_states[kChunkSize / kBoundSpan];

      pipe.BeginChunk(a, /*thresholds=*/nullptr, done, n);
      const double nu_scale = spec_.nu_scale;
      const double bar0 = threshold + state_->rho;
      // Any upper bound on the chunk's answers is a sound skip-word input
      // (vec::MegaSkipWordThreshold contract), so the pipeline's chunk
      // upper — quantized or exact — feeds it directly.
      const uint64_t chunk_skip = pipe.ChunkSkipWord(bar0);
      // When no sound chunk-wide word threshold exists (some answer is at
      // or above the bar), the fused scan would degenerate into a full
      // per-element transform of draws a hit-dense chunk may never need;
      // generate-and-bound alone plus the checkpoint walk handles that
      // regime better, so the scan only rides along when it is cheap.
      const bool fused_scan = chunk_skip < vec::kMegaNeverSkipWord;
      constexpr size_t kMaxChunkHits = kChunkSize / 16;
      vec::FusedScanHit hits[kMaxChunkHits];
      size_t found = 0;
      uint64_t w_min_unused;
      BlockRng::State end_state = state_->nu_rng.state();
      if (fused_scan) {
        found = exp_nu ? vec::MegaExpFillMinScanSpans(
                             &end_state, nu_scale, {a, n}, bar0, chunk_skip,
                             kBoundSpan, span_min, span_states, hits,
                             kMaxChunkHits, &w_min_unused)
                       : vec::MegaLaplaceFillMinScanSpans(
                             &end_state, 0.0, nu_scale, {a, n}, bar0,
                             chunk_skip, kBoundSpan, span_min, span_states,
                             hits, kMaxChunkHits, &w_min_unused);
      } else {
        vec::MegaFillMinSpans(&end_state, n, wpv, kBoundSpan, span_min,
                              span_states);
      }
      state_->nu_rng.RestoreState(end_state);

      pipe.SetNoiseMinima(span_min);
      if (!pipe.ChunkCanFire(bar0)) {
        // The tier-1 bound dominates every computed positive test, so a
        // skipped chunk cannot have recorded hits.
        SVT_DCHECK(found == 0);
        state_->processed += static_cast<int64_t>(n);  // res already ⊥
        ++state_->batch.tier1_chunks_skipped;
      } else {
        // Tier-2. When the fused pass scanned, the chunk's positives
        // under the chunk-entry bar are already in hand and complete, so
        // as long as the bar has not *dropped* — always for non-resampling
        // variants, and for every upward resample otherwise — a resume
        // only replays the walk's span decisions on the pipeline's cached
        // per-span bounds (one float compare per span, no words touched)
        // and returns the next recorded hit, re-validated against the
        // moved bar with the exact computed test when ρ was resampled.
        // Only when the bar dropped below the chunk-entry bar (a negative
        // resample draw — elements the fused pass rejected could now
        // fire) or the hit record overflowed does the walk fall back to
        // the checkpoint form: a skipped span costs one float compare —
        // its words are never regenerated — and a surviving span
        // re-enters the bounded scan megakernel from its pass-1
        // checkpoint, regenerating its words once, in registers, and
        // transforming only the lockstep groups its word threshold cannot
        // discharge. After a positive the fallback scans the firing
        // span's remainder exactly from the stream cursor the hit left
        // behind, then re-anchors on the pass-1 grid, so no off-grid
        // words are ever re-bounded. The pipeline's ν bounds per span are
        // rho-free, so they are computed once per chunk and survive ρ
        // resampling.
        ++state_->batch.tier2_chunks_scanned;
        BatchRunStats* const stats = &state_->batch;
        const bool cache_complete = fused_scan && found <= kMaxChunkHits;
        BlockRng::State cur;       // fallback stream cursor, at element
        size_t cur_pos = SIZE_MAX; // cur_pos once established
        const auto find_next = [&](size_t from,
                                   double rho) -> vec::FusedScanHit {
          const double bar = threshold + rho;
          if (cache_complete && bar >= bar0) {
            // Cached walk, sound for every bar >= the fused pass's bar0:
            // an unrecorded element either failed its computed test at
            // bar0 (the rounded add is monotone, so it fails at any
            // higher bar too) or was word-skipped under a threshold
            // sound for bar0 and hence for bar; a recorded hit carries
            // the bit-identical ν a rescan would recompute, so testing
            // `a + ν >= bar` here IS the rescan's computed test. The
            // span decisions replay the fallback's on the pipeline's
            // cached bounds (a span holding a surviving hit always
            // passes its bound — the bound chain dominates every
            // computed test, quantized or exact — so the counters stay
            // mode-equal).
            const auto next_hit =
                [&](size_t lo, size_t hi) -> const vec::FusedScanHit* {
              for (size_t k = 0; k < found; ++k) {
                if (hits[k].index < lo) continue;
                if (hits[k].index >= hi) break;
                if (bar == bar0 || a[hits[k].index] + hits[k].nu >= bar) {
                  return &hits[k];
                }
              }
              return nullptr;
            };
            size_t s = from;
            if (s % kBoundSpan != 0 && s < n) {
              ++stats->tier2_fused_segments;
              const size_t m = std::min(kBoundSpan - s % kBoundSpan, n - s);
              if (const vec::FusedScanHit* h = next_hit(s, s + m)) return *h;
              s += m;
            }
            while (s < n) {
              const size_t j = s / kBoundSpan;
              const size_t m = std::min(kBoundSpan, n - s);
              if (pipe.SpanCanFire(j, bar)) {
                ++stats->tier2_fused_segments;
                if (const vec::FusedScanHit* h = next_hit(s, s + m)) {
                  return *h;
                }
              }
              s += m;
            }
            return {n, 0.0};
          }
          if (cur_pos != from) {
            // First fallback resume after cached returns (or after an
            // overflowed record): rebuild the stream cursor at `from`
            // from the enclosing span's checkpoint.
            const size_t j = from / kBoundSpan;
            cur = span_states[j];
            const size_t p = from - j * kBoundSpan;
            if (p > 0) {
              uint64_t scratch;
              vec::MegaFillMinSpans(&cur, p, wpv, p, &scratch, nullptr);
            }
            cur_pos = from;
          }
          size_t s = from;
          if (s % kBoundSpan != 0 && s < n) {
            const size_t m = std::min(kBoundSpan - s % kBoundSpan, n - s);
            ++stats->tier2_fused_segments;
            const uint64_t skip_word = vec::MegaSkipWordThreshold(
                pipe.SubrangeScoreUpper(s, m), bar, nu_scale);
            BlockRng::State scan_st = cur;
            const vec::FusedScanHit hit =
                exp_nu ? vec::MegaExpScanSumGeBounded(&scan_st, nu_scale,
                                                      {a + s, m}, bar,
                                                      skip_word)
                       : vec::MegaLaplaceScanSumGeBounded(&scan_st, 0.0,
                                                          nu_scale, {a + s, m},
                                                          bar, skip_word);
            if (hit.index < m) {
              cur = scan_st;  // at element s + hit.index + 1
              cur_pos = s + hit.index + 1;
              return {s + hit.index, hit.nu};
            }
            s += m;
          }
          while (s < n) {
            const size_t j = s / kBoundSpan;
            const size_t m = std::min(kBoundSpan, n - s);
            if (!pipe.SpanCanFire(j, bar)) {
              s += m;
              continue;
            }
            ++stats->tier2_fused_segments;
            // Typically only one or two elements keep a surviving span
            // alive; the bounded scan reuses the span's score upper to
            // skip the log transform for every lockstep group that
            // provably cannot fire — bit-identical to the unbounded scan
            // by the MegaSkipWordThreshold contract.
            const uint64_t skip_word = pipe.SpanSkipWord(j, bar);
            BlockRng::State scan_st = span_states[j];
            const vec::FusedScanHit hit =
                exp_nu ? vec::MegaExpScanSumGeBounded(&scan_st, nu_scale,
                                                      {a + s, m}, bar,
                                                      skip_word)
                       : vec::MegaLaplaceScanSumGeBounded(&scan_st, 0.0,
                                                          nu_scale, {a + s, m},
                                                          bar, skip_word);
            if (hit.index < m) {
              cur = scan_st;  // at element s + hit.index + 1
              cur_pos = s + hit.index + 1;
              return {s + hit.index, hit.nu};
            }
            s += m;
          }
          cur_pos = n;
          return {n, 0.0};
        };
        chunk_processed = ScanChunk(a, n, find_next, res + done);
      }
    } else {
      // Pre-fetch the chunk's raw ν words — the substream advances exactly
      // as if each ν_i had been drawn scalar-style. Word count and layout
      // follow the spec's ν kind: Laplace variates are (magnitude, sign)
      // pairs, exponential variates a single magnitude word each.
      const size_t wpv = WordsPerVariate(spec_.nu_kind);
      const bool exp_nu = spec_.nu_kind == NoiseKind::kExponential;
      state_->nu_rng.FillUint64({words, wpv * n});

      // Per-span magnitude-word minima up front; the pipeline reduces them
      // to the chunk minimum (unsigned min is association-free, so this is
      // bit-for-bit the whole-chunk reduction) and owns the whole bound
      // chain from here: the tier-1 all-⊥ shortcut and the per-span tier-2
      // tests, each a monotone rounded chain over these minima and the
      // chunk's score uppers — provably conservative, so the shortcut
      // emits exactly what the exact comparison would (proof in
      // core/bound_pipeline.h). Shared bound inputs with the megakernel
      // arm keep the two modes' skip decisions and counters equal bit for
      // bit.
      pipe.BeginChunk(a, /*thresholds=*/nullptr, done, n);
      const size_t nspans = (n + kBoundSpan - 1) / kBoundSpan;
      uint64_t span_min[kChunkSize / kBoundSpan];
      for (size_t j = 0; j < nspans; ++j) {
        const size_t s = j * kBoundSpan;
        const size_t m = std::min(kBoundSpan, n - s);
        span_min[j] = vec::MinWordBlock({words + wpv * s, wpv * m}, wpv);
      }
      pipe.SetNoiseMinima(span_min);
      if (!pipe.ChunkCanFire(threshold + state_->rho)) {
        state_->processed += static_cast<int64_t>(n);  // res already ⊥
        ++state_->batch.tier1_chunks_skipped;
      } else {
        // Tier-2, single pass and hierarchical: the chunk-level bound
        // failed, but the same conservative max-|ν| argument re-applies
        // per kBoundSpan sub-span, where the max over far fewer draws is
        // much smaller — in near-threshold workloads (answers a few ν
        // scales under the bar) most sub-spans still prove all-⊥ from two
        // integer/float reductions and skip their transform outright.
        // Surviving sub-spans run the fused kernel, which transforms the
        // raw word pairs and tests the positive condition in the same
        // register pass — no ν block round-trip. After a positive the
        // walk scans the firing sub-span's remainder exactly (it survived
        // its bound to fire at all, and ρ may have been resampled) and
        // then re-anchors on the sub-span grid, mirroring the megakernel
        // arm span for span so the two modes' counters stay equal.
        ++state_->batch.tier2_chunks_scanned;
        const double nu_scale = spec_.nu_scale;
        const uint64_t* const w = words;
        BatchRunStats* const stats = &state_->batch;
        const auto find_next = [&](size_t from,
                                   double rho) -> vec::FusedScanHit {
          const double bar = threshold + rho;
          size_t s = from;
          if (s % kBoundSpan != 0 && s < n) {
            const size_t m = std::min(kBoundSpan - s % kBoundSpan, n - s);
            ++stats->tier2_fused_segments;
            const vec::FusedScanHit hit =
                exp_nu ? vec::FusedExpScanSumGe({w + s, m}, nu_scale,
                                                {a + s, m}, bar)
                       : vec::FusedLaplaceScanSumGe({w + 2 * s, 2 * m}, 0.0,
                                                    nu_scale, {a + s, m}, bar);
            if (hit.index < m) return {s + hit.index, hit.nu};
            s += m;
          }
          while (s < n) {
            const size_t j = s / kBoundSpan;
            const size_t m = std::min(kBoundSpan, n - s);
            if (!pipe.SpanCanFire(j, bar)) {
              s += m;
              continue;
            }
            ++stats->tier2_fused_segments;
            const vec::FusedScanHit hit =
                exp_nu ? vec::FusedExpScanSumGe({w + s, m}, nu_scale,
                                                {a + s, m}, bar)
                       : vec::FusedLaplaceScanSumGe({w + 2 * s, 2 * m}, 0.0,
                                                    nu_scale, {a + s, m}, bar);
            if (hit.index < m) return {s + hit.index, hit.nu};
            s += m;
          }
          return {n, 0.0};
        };
        chunk_processed = ScanChunk(a, n, find_next, res + done);
      }
    }
    if (state_->exhausted) {
      const size_t emitted = done + chunk_processed;
      out->resize(start + emitted);
      return emitted;
    }
    done += n;
  }
  return total;
}

size_t BatchRunner::Run(std::span<const double> answers,
                        std::span<const double> thresholds,
                        const BoundPrefilter* prefilter,
                        std::vector<Response>* out) {
  SVT_CHECK(answers.size() == thresholds.size())
      << "answers/thresholds size mismatch: " << answers.size() << " vs "
      << thresholds.size();
  if (prefilter != nullptr) {
    SVT_CHECK(prefilter->size() == answers.size())
        << "BoundPrefilter size " << prefilter->size()
        << " does not match answers size " << answers.size()
        << "; a prefilter may only attach to the arrays it was built over";
    SVT_CHECK(prefilter->has_thresholds())
        << "per-query-threshold runs need a prefilter built with the "
           "two-array Build(answers, thresholds)";
  }
  const size_t start = out->size();
  if (state_->exhausted || answers.empty()) return 0;
  const size_t total = answers.size();
  out->resize(start + total);
  Response* const res = out->data() + start;

  const bool has_nu = spec_.nu_scale > 0.0;
  // Per-query scratch: one sub-block of raw ν words, cache-line-aligned.
  // There is no tier-1 chunk bound to feed (a single common bar does not
  // exist), so nothing forces a whole-chunk prefetch — the words are
  // pulled through the bounded fill hook in L1-sized pieces and consumed
  // by the fused scan while still hot.
  alignas(64) uint64_t words[2 * kFusedSubBlock];
  SVT_DCHECK(reinterpret_cast<uintptr_t>(words) % 64 == 0);
  // The per-query bound level: per span, the pipeline holds an upper
  // bound on the answers AND a lower bound on the thresholds, and a span
  // is skipped when fl(score_up + ν_bound) < fl(bar_down + ρ) — the same
  // monotone chain as the common-threshold tiers, pairwise-safe because
  // the bar lower bounds every bar in the span (proof in
  // core/bound_pipeline.h). Before the pipeline this path had no bound at
  // all and scanned every element.
  BoundPipeline pipe(has_nu ? prefilter : nullptr, spec_.nu_scale, kBoundSpan,
                     &state_->batch);

  size_t done = 0;
  while (done < total) {
    const size_t n = std::min(kChunkSize, total - done);
    const double* const a = answers.data() + done;
    const double* const t = thresholds.data() + done;
    size_t chunk_processed = n;
    if (!has_nu) {
      // ν-free per-query scan (Alg. 5): no noise words — nothing to fuse;
      // the dispatched pairwise compare-scan applies the exact streaming
      // positive test (each side one rounded add, ordered >=).
      const auto find_next = [a, t, n](size_t from, double rho) {
        return vec::FusedScanHit{
            from + vec::FindFirstGePairwise({a + from, n - from},
                                            {t + from, n - from}, rho),
            0.0};
      };
      chunk_processed = ScanChunk(a, n, find_next, res + done);
    } else {
      // Fused per-query tier-2: bounded fills (or lane-resident prepasses)
      // pull the chunk's substream words sub-block by sub-block — the same
      // words in the same order a scalar draw loop consumes, so a
      // completed chunk leaves the substream at the identical position.
      ++state_->batch.tier2_chunks_scanned;
      pipe.BeginChunk(a, t, done, n);
      const double nu_scale = spec_.nu_scale;
      const size_t wpv = WordsPerVariate(spec_.nu_kind);
      const bool exp_nu = spec_.nu_kind == NoiseKind::kExponential;
      BatchRunStats* const stats = &state_->batch;
      const bool use_mega =
          ActiveBatchKernelMode() == BatchKernelMode::kMegakernel;
      size_t sub = 0;
      while (sub < n) {
        const size_t m = std::min(kFusedSubBlock, n - sub);
        ++stats->tier2_fused_subblocks;
        const double* const a_sub = a + sub;
        const double* const t_sub = t + sub;
        const size_t first_span = sub / kBoundSpan;
        const size_t sub_nspans = (m + kBoundSpan - 1) / kBoundSpan;
        uint64_t span_min[kFusedSubBlock / kBoundSpan];
        size_t sub_processed;
        if (use_mega) {
          // Lane-resident sub-block. The pipeline's span plan (each
          // span's answer-max paired with its bar-min, quantized or
          // exact) yields a per-span skip-word *vector* at the sub-block
          // entry ρ — derivable before any words are drawn. When any
          // span's word threshold can discharge at all, the prepass is
          // the fused pairwise generate-bound-and-scan: one pass steps
          // the lanes through the sub-block, records the per-span
          // magnitude minima (the pipeline's ν-bound inputs), a
          // checkpoint at every span entry, AND every element whose
          // pairwise positive test fires at the entry ρ — skipping the
          // transform for every word its span's threshold discharges
          // (counted element-granular in mega_words_skipped_q). The
          // substream is then restored to the sub-block end: the prepass
          // consumes exactly m·wpv words, so the stream position matches
          // the composition's upfront fill whatever the walk later
          // skips. When no span has a finite skip word (hit-dense
          // sub-block), the fused scan would transform everything for
          // positives a cutoff may never need, so only generate-and-
          // bound runs — mirroring the common arm's fused_scan gate, and
          // the composition's zero skipped-word count.
          BlockRng::State span_states[kFusedSubBlock / kBoundSpan];
          const double rho0 = state_->rho;
          uint64_t skip_words[kFusedSubBlock / kBoundSpan];
          bool any_skip = false;
          for (size_t k = 0; k < sub_nspans; ++k) {
            skip_words[k] = pipe.SpanSkipWordPerQuery(first_span + k, rho0);
            any_skip = any_skip || skip_words[k] < vec::kMegaNeverSkipWord;
          }
          constexpr size_t kMaxSubHits = kFusedSubBlock / 16;
          vec::FusedScanHit hits[kMaxSubHits];
          size_t found = 0;
          uint64_t skipped = 0;
          BlockRng::State end_state = state_->nu_rng.state();
          if (any_skip) {
            found = exp_nu ? vec::MegaExpFillMinScanSpansPairwise(
                                 &end_state, nu_scale, {a_sub, m}, {t_sub, m},
                                 rho0, skip_words, kBoundSpan, span_min,
                                 span_states, hits, kMaxSubHits, &skipped)
                           : vec::MegaLaplaceFillMinScanSpansPairwise(
                                 &end_state, 0.0, nu_scale, {a_sub, m},
                                 {t_sub, m}, rho0, skip_words, kBoundSpan,
                                 span_min, span_states, hits, kMaxSubHits,
                                 &skipped);
            stats->mega_words_skipped_q += static_cast<int64_t>(skipped);
          } else {
            vec::MegaFillMinSpans(&end_state, m, wpv, kBoundSpan, span_min,
                                  span_states);
          }
          state_->nu_rng.RestoreState(end_state);
          pipe.SetSpanNoiseMinima(span_min, first_span, sub_nspans);
          const bool cache_complete = any_skip && found <= kMaxSubHits;

          BlockRng::State cur;        // resume cursor, at element cur_pos
          size_t cur_pos = SIZE_MAX;  // once established
          const auto find_next = [&](size_t from,
                                     double rho) -> vec::FusedScanHit {
            if (cache_complete && rho >= rho0) {
              // Cached walk, sound for every ρ >= the prepass's ρ0:
              // fl(t_i + ρ) is monotone in ρ, so an element that failed
              // its computed test at ρ0 fails at ρ, and a span skip word
              // derived against fl(bar_min + ρ0) stays sound (see
              // SpanSkipWordPerQuery); a recorded hit carries the
              // bit-identical ν a rescan would recompute, so re-testing
              // it against fl(t_i + ρ) IS the rescan's computed test.
              // Span decisions replay the fallback's on the pipeline's
              // cached bounds: a span holding a surviving hit always
              // passes its bound (the bound chain dominates every
              // computed test), so the counters stay mode-equal.
              const auto next_hit =
                  [&](size_t lo, size_t hi) -> const vec::FusedScanHit* {
                for (size_t k = 0; k < found; ++k) {
                  if (hits[k].index < lo) continue;
                  if (hits[k].index >= hi) break;
                  if (rho == rho0 ||
                      a_sub[hits[k].index] + hits[k].nu >=
                          t_sub[hits[k].index] + rho) {
                    return &hits[k];
                  }
                }
                return nullptr;
              };
              size_t s = from;
              if (s % kBoundSpan != 0 && s < m) {
                ++stats->tier2_fused_segments;
                const size_t mh =
                    std::min(kBoundSpan - s % kBoundSpan, m - s);
                if (const vec::FusedScanHit* h = next_hit(s, s + mh)) {
                  return *h;
                }
                s += mh;
              }
              while (s < m) {
                const size_t j = s / kBoundSpan;
                const size_t mm = std::min(kBoundSpan, m - s);
                if (pipe.SpanCanFirePerQuery(first_span + j, rho)) {
                  ++stats->tier2_fused_segments;
                  if (const vec::FusedScanHit* h = next_hit(s, s + mm)) {
                    return *h;
                  }
                }
                s += mm;
              }
              return {m, 0.0};
            }
            // Checkpoint fallback: ρ dropped below ρ0 (elements the
            // prepass rejected could now fire), the hit record
            // overflowed, or no span had a finite skip word. Span skip
            // words are re-derived from the pipeline at the *current* ρ
            // per visit, so surviving spans still transform only the
            // lockstep groups their thresholds cannot discharge.
            size_t s = from;
            if (s % kBoundSpan != 0 && s < m) {
              // Off-grid resume after a positive: scan the firing span's
              // remainder exactly from the cursor the hit left behind
              // (heads are never bound-checked), then re-anchor on the
              // prepass grid.
              const size_t mh = std::min(kBoundSpan - s % kBoundSpan, m - s);
              ++stats->tier2_fused_segments;
              if (cur_pos != s) {
                const size_t j = s / kBoundSpan;
                cur = span_states[j];
                const size_t p = s - j * kBoundSpan;
                if (p > 0) {
                  uint64_t scratch;
                  vec::MegaFillMinSpans(&cur, p, wpv, p, &scratch, nullptr);
                }
                cur_pos = s;
              }
              BlockRng::State scan_st = cur;
              const vec::FusedScanHit hit =
                  exp_nu ? vec::MegaExpScanSumGePairwise(
                               &scan_st, nu_scale, {a_sub + s, mh},
                               {t_sub + s, mh}, rho)
                         : vec::MegaLaplaceScanSumGePairwise(
                               &scan_st, 0.0, nu_scale, {a_sub + s, mh},
                               {t_sub + s, mh}, rho);
              if (hit.index < mh) {
                cur = scan_st;  // at element s + hit.index + 1
                cur_pos = s + hit.index + 1;
                return {s + hit.index, hit.nu};
              }
              s += mh;
            }
            while (s < m) {
              const size_t j = s / kBoundSpan;
              const size_t mm = std::min(kBoundSpan, m - s);
              if (!pipe.SpanCanFirePerQuery(first_span + j, rho)) {
                s += mm;
                continue;
              }
              ++stats->tier2_fused_segments;
              const uint64_t skip_word =
                  pipe.SpanSkipWordPerQuery(first_span + j, rho);
              BlockRng::State scan_st = span_states[j];
              const vec::FusedScanHit hit =
                  exp_nu ? vec::MegaExpScanSumGePairwiseBounded(
                               &scan_st, nu_scale, {a_sub + s, mm},
                               {t_sub + s, mm}, rho, skip_word)
                         : vec::MegaLaplaceScanSumGePairwiseBounded(
                               &scan_st, 0.0, nu_scale, {a_sub + s, mm},
                               {t_sub + s, mm}, rho, skip_word);
              if (hit.index < mm) {
                cur = scan_st;  // at element s + hit.index + 1
                cur_pos = s + hit.index + 1;
                return {s + hit.index, hit.nu};
              }
              s += mm;
            }
            cur_pos = m;
            return {m, 0.0};
          };
          sub_processed = ScanChunk(a_sub, m, find_next, res + done + sub);
          // The prepass already left the substream at the sub-block end —
          // nothing to advance, even on a cutoff exit mid-block.
        } else {
          size_t filled = 0;
          while (filled < wpv * m) {
            filled += state_->nu_rng.FillUint64Bounded(
                {words + filled, wpv * m - filled});
          }
          const uint64_t* const w = words;
          // Same per-span minima as the prepass records (same words, and
          // unsigned min is association-free) — skip decisions and
          // counters stay equal between the modes bit for bit.
          for (size_t k = 0; k < sub_nspans; ++k) {
            const size_t s = k * kBoundSpan;
            const size_t mm = std::min(kBoundSpan, m - s);
            span_min[k] = vec::MinWordBlock({w + wpv * s, wpv * mm}, wpv);
          }
          pipe.SetSpanNoiseMinima(span_min, first_span, sub_nspans);
          // Mirror the megakernel prepass's element-granular skipped-word
          // count over the scratch words: the same per-span skip words at
          // the same sub-block-entry ρ over the same magnitude words give
          // the same count (never-skip spans contribute zero, exactly as
          // they do inside the fused lanes), keeping the counter
          // kernel-mode-independent without slowing this arm's scans — a
          // vectorized compare-count per span, only where a finite skip
          // word exists.
          {
            uint64_t skipped = 0;
            for (size_t k = 0; k < sub_nspans; ++k) {
              const uint64_t sw =
                  pipe.SpanSkipWordPerQuery(first_span + k, state_->rho);
              if (sw < vec::kMegaNeverSkipWord) {
                const size_t s = k * kBoundSpan;
                const size_t mm = std::min(kBoundSpan, m - s);
                skipped +=
                    vec::SkipWordCountBlock({w + wpv * s, wpv * mm}, wpv, sw);
              }
            }
            stats->mega_words_skipped_q += static_cast<int64_t>(skipped);
          }
          const auto find_next = [&](size_t from,
                                     double rho) -> vec::FusedScanHit {
            size_t s = from;
            if (s % kBoundSpan != 0 && s < m) {
              const size_t mh = std::min(kBoundSpan - s % kBoundSpan, m - s);
              ++stats->tier2_fused_segments;
              const vec::FusedScanHit hit =
                  exp_nu ? vec::FusedExpScanSumGePairwise(
                               {w + s, mh}, nu_scale, {a_sub + s, mh},
                               {t_sub + s, mh}, rho)
                         : vec::FusedLaplaceScanSumGePairwise(
                               {w + 2 * s, 2 * mh}, 0.0, nu_scale,
                               {a_sub + s, mh}, {t_sub + s, mh}, rho);
              if (hit.index < mh) return {s + hit.index, hit.nu};
              s += mh;
            }
            while (s < m) {
              const size_t j = s / kBoundSpan;
              const size_t mm = std::min(kBoundSpan, m - s);
              if (!pipe.SpanCanFirePerQuery(first_span + j, rho)) {
                s += mm;
                continue;
              }
              ++stats->tier2_fused_segments;
              const vec::FusedScanHit hit =
                  exp_nu ? vec::FusedExpScanSumGePairwise(
                               {w + s, mm}, nu_scale, {a_sub + s, mm},
                               {t_sub + s, mm}, rho)
                         : vec::FusedLaplaceScanSumGePairwise(
                               {w + 2 * s, 2 * mm}, 0.0, nu_scale,
                               {a_sub + s, mm}, {t_sub + s, mm}, rho);
              if (hit.index < mm) return {s + hit.index, hit.nu};
              s += mm;
            }
            return {m, 0.0};
          };
          sub_processed = ScanChunk(a_sub, m, find_next, res + done + sub);
        }
        if (state_->exhausted) {
          chunk_processed = sub + sub_processed;
          break;
        }
        sub += m;
      }
    }
    if (state_->exhausted) {
      const size_t emitted = done + chunk_processed;
      out->resize(start + emitted);
      return emitted;
    }
    done += n;
  }
  return total;
}

}  // namespace svt
