#include "core/batch_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/distributions.h"
#include "common/vecmath.h"

namespace svt {

namespace {

// Inflation applied to the chunk's ν magnitude bound before the all-below
// test. IEEE rounding of the bound chain (log, multiply, add) is monotone,
// but libm's log() is only *nearly* correctly rounded, so pad the bound by
// ~1e-12 relative — four orders of magnitude above any few-ulp libm error —
// to make the shortcut strictly conservative.
constexpr double kBoundSlack = 1.0 + 1e-12;

static_assert(Response{}.outcome == Outcome::kBelow,
              "value-initialized Response must be ⊥: the batch engine emits "
              "⊥ runs via zero-initializing resize");

// Streaming-identical single draw of a role's noise kind (the batch slow
// path at positives must consume the base stream exactly as Process()
// would — core/svt.h contract step 3).
double SampleNoise(Rng& rng, NoiseKind kind, double scale) {
  switch (kind) {
    case NoiseKind::kLaplace:
      return SampleLaplace(rng, scale);
    case NoiseKind::kExponential:
      return SampleExponential(rng, scale);
  }
  SVT_CHECK(false) << "unknown NoiseKind";
  return 0.0;
}

// Raw 64-bit words one ν variate consumes — the distribution-traits knob
// that threads the noise axis through the fill sizes, the tier-1 word
// reduction stride, and the fused-kernel spans below. Laplace: 2 (magnitude
// word + sign word). Exponential: 1 (one-sided, no sign word).
size_t WordsPerVariate(NoiseKind kind) {
  return kind == NoiseKind::kExponential ? 1 : 2;
}

}  // namespace

BatchRunner::BatchRunner(const VariantSpec& spec, Rng* base_rng,
                         SvtRunState* state)
    : spec_(spec), base_rng_(base_rng), state_(state) {
  SVT_CHECK(base_rng_ != nullptr);
  SVT_CHECK(state_ != nullptr);
}

// Builds the positive Response for `answer` whose comparison noise was
// `nu_j`, updating counters, cutoff, and (for Alg. 2) ρ — in the exact
// order of the streaming Process() slow path.
Response BatchRunner::MakePositiveResponse(double answer, double nu_j) {
  ++state_->processed;
  ++state_->positives;
  if (spec_.cutoff.has_value() && state_->positives >= *spec_.cutoff) {
    state_->exhausted = true;
  }
  if (spec_.resample_rho_after_positive) {
    state_->rho =
        SampleNoise(*base_rng_, spec_.rho_kind, spec_.rho_resample_scale);
  }
  if (spec_.output_query_value_on_positive) {
    return Response::AboveValue(answer + nu_j);
  }
  if (spec_.numeric_scale > 0.0) {
    return Response::AboveValue(answer +
                                SampleLaplace(*base_rng_, spec_.numeric_scale));
  }
  return Response::Above();
}

// Scans one span (all pointers span-local, res pre-zeroed to ⊥) and writes
// positive responses in place. Returns the number of span elements
// processed: n unless the cutoff exhausted the run inside the span.
// `find_next(from, rho)` returns the first positive at or after `from`
// under threshold offset rho — index n if none — together with the ν that
// fired it (0.0 for the ν-free scans). The fused paths compute that ν in
// the same register pass as the compare; every path applies the exact
// streaming positive test, including for non-finite answers.
template <typename FindNext>
size_t BatchRunner::ScanChunk(const double* answers, size_t n,
                              FindNext find_next, Response* res) {
  size_t i = 0;
  while (i < n) {
    const vec::FusedScanHit hit = find_next(i, state_->rho);
    state_->processed += static_cast<int64_t>(hit.index - i);
    if (hit.index == n) return n;

    res[hit.index] = MakePositiveResponse(answers[hit.index], hit.nu);
    i = hit.index + 1;
    if (state_->exhausted) return i;
  }
  return n;
}

size_t BatchRunner::Run(std::span<const double> answers, double threshold,
                        std::vector<Response>* out) {
  const size_t start = out->size();
  if (state_->exhausted || answers.empty()) return 0;
  const size_t total = answers.size();
  // Zero-initializing resize writes the whole output as ⊥ in one memset;
  // only positives are assigned afterwards. Shrunk again on early abort.
  out->resize(start + total);
  Response* const res = out->data() + start;

  const bool has_nu = spec_.nu_scale > 0.0;
  // Cache-line-aligned so the 512-bit loads of the tier-1 word reduction
  // and the fused scan kernels never split lines.
  alignas(64) uint64_t words[2 * kChunkSize];
  SVT_DCHECK(reinterpret_cast<uintptr_t>(words) % 64 == 0);

  size_t done = 0;
  while (done < total) {
    const size_t n = std::min(kChunkSize, total - done);
    const double* const a = answers.data() + done;
    size_t chunk_processed = n;
    if (!has_nu) {
      const auto find_next = [a, n, threshold](size_t from, double rho) {
        return vec::FusedScanHit{
            from + vec::FindFirstGe({a + from, n - from}, threshold + rho),
            0.0};
      };
      chunk_processed = ScanChunk(a, n, find_next, res + done);
    } else {
      // Pre-fetch the chunk's raw ν words — the substream advances exactly
      // as if each ν_i had been drawn scalar-style. Word count and layout
      // follow the spec's ν kind: Laplace variates are (magnitude, sign)
      // pairs, exponential variates a single magnitude word each.
      const size_t wpv = WordsPerVariate(spec_.nu_kind);
      const bool exp_nu = spec_.nu_kind == NoiseKind::kExponential;
      state_->nu_rng.FillUint64({words, wpv * n});

      // Tier-1 shortcut: bound every ν_i in the chunk by b·(-log(u_min)),
      // where u_min is the smallest magnitude uniform — an integer min over
      // the magnitude words, no log per element. For Laplace ν this bounds
      // |ν_i| (the sign words are skipped by the stride); for exponential ν
      // it is the exact one-sided envelope: ν_i = b·(-log u_i) ≥ 0 and
      // u_min ≤ u_i implies ν_i ≤ b·(-log u_min), so the same chain bounds
      // the only side that can fire a positive. If even the largest answer
      // cannot cross the noisy threshold under that bound, the whole chunk
      // is provably ⊥ and the transform is skipped entirely. Every step of
      // the bound chain is a monotone rounded operation, so the shortcut
      // emits exactly what the exact comparison would. The bound evaluates
      // the same vecmath log kernel that the fused scan applies per word,
      // so kBoundSlack only has to absorb the kernel's own sub-ulp rounding
      // wiggle, never a libm-vs-polynomial discrepancy.
      const uint64_t w_min = vec::MinWordBlock({words, wpv * n}, wpv);
      const double a_max = vec::MaxBlock({a, n});
      const double u_min = Rng::ToUnitDoublePositive(w_min);
      const double nu_bound =
          spec_.nu_scale * (-vec::Log(u_min)) * kBoundSlack;
      if (a_max + nu_bound < threshold + state_->rho) {
        state_->processed += static_cast<int64_t>(n);  // res already ⊥
        ++state_->batch.tier1_chunks_skipped;
      } else {
        // Tier-2, single pass and hierarchical: the chunk-level bound
        // failed, but the same conservative max-|ν| argument re-applies
        // per kBoundSpan sub-span, where the max over far fewer draws is
        // much smaller — in near-threshold workloads (answers a few ν
        // scales under the bar) most sub-spans still prove all-⊥ from two
        // integer/float reductions and skip their transform outright.
        // Surviving sub-spans run the fused kernel, which transforms the
        // raw word pairs and tests the positive condition in the same
        // register pass — no ν block round-trip. Resume segments re-enter
        // past the previous positive (re-checking the remainder of its
        // sub-span under the possibly resampled ρ), so no word pair is
        // transformed more than a handful of times even with positives.
        ++state_->batch.tier2_chunks_scanned;
        const double nu_scale = spec_.nu_scale;
        const uint64_t* const w = words;
        BatchRunStats* const stats = &state_->batch;
        const auto find_next = [a, w, n, threshold, nu_scale, stats, wpv,
                                exp_nu](size_t from,
                                        double rho) -> vec::FusedScanHit {
          const double bar = threshold + rho;
          size_t s = from;
          while (s < n) {
            const size_t m = std::min(kBoundSpan, n - s);
            // Sub-span bound: the tier-1 chain over [s, s+m). Monotone
            // rounded ops + kBoundSlack make the skip strictly
            // conservative (one-sided envelope for exponential ν — see the
            // tier-1 comment), and every input is dispatch-independent, so
            // the skip decisions (and counters) are too.
            const uint64_t w_min =
                vec::MinWordBlock({w + wpv * s, wpv * m}, wpv);
            const double a_max = vec::MaxBlock({a + s, m});
            const double nu_bound =
                nu_scale * (-vec::Log(Rng::ToUnitDoublePositive(w_min))) *
                kBoundSlack;
            if (a_max + nu_bound < bar) {
              ++stats->tier2_spans_skipped;
              s += m;
              continue;
            }
            ++stats->tier2_fused_segments;
            const vec::FusedScanHit hit =
                exp_nu ? vec::FusedExpScanSumGe({w + s, m}, nu_scale,
                                                {a + s, m}, bar)
                       : vec::FusedLaplaceScanSumGe({w + 2 * s, 2 * m}, 0.0,
                                                    nu_scale, {a + s, m}, bar);
            if (hit.index < m) return {s + hit.index, hit.nu};
            s += m;
          }
          return {n, 0.0};
        };
        chunk_processed = ScanChunk(a, n, find_next, res + done);
      }
    }
    if (state_->exhausted) {
      const size_t emitted = done + chunk_processed;
      out->resize(start + emitted);
      return emitted;
    }
    done += n;
  }
  return total;
}

size_t BatchRunner::Run(std::span<const double> answers,
                        std::span<const double> thresholds,
                        std::vector<Response>* out) {
  SVT_CHECK(answers.size() == thresholds.size())
      << "answers/thresholds size mismatch: " << answers.size() << " vs "
      << thresholds.size();
  const size_t start = out->size();
  if (state_->exhausted || answers.empty()) return 0;
  const size_t total = answers.size();
  out->resize(start + total);
  Response* const res = out->data() + start;

  const bool has_nu = spec_.nu_scale > 0.0;
  // Per-query scratch: one sub-block of raw ν words, cache-line-aligned.
  // There is no tier-1 bound to feed (it would be unsound under per-query
  // bars), so nothing forces a whole-chunk prefetch — the words are pulled
  // through the bounded fill hook in L1-sized pieces and consumed by the
  // fused scan while still hot.
  alignas(64) uint64_t words[2 * kFusedSubBlock];
  SVT_DCHECK(reinterpret_cast<uintptr_t>(words) % 64 == 0);

  size_t done = 0;
  while (done < total) {
    const size_t n = std::min(kChunkSize, total - done);
    const double* const a = answers.data() + done;
    const double* const t = thresholds.data() + done;
    size_t chunk_processed = n;
    if (!has_nu) {
      // ν-free per-query scan (Alg. 5): no noise words — nothing to fuse;
      // the dispatched pairwise compare-scan applies the exact streaming
      // positive test (each side one rounded add, ordered >=).
      const auto find_next = [a, t, n](size_t from, double rho) {
        return vec::FusedScanHit{
            from + vec::FindFirstGePairwise({a + from, n - from},
                                            {t + from, n - from}, rho),
            0.0};
      };
      chunk_processed = ScanChunk(a, n, find_next, res + done);
    } else {
      // Fused per-query tier-2: bounded fills pull the chunk's substream
      // words sub-block by sub-block — the same words in the same order a
      // scalar draw loop (or the pre-fusion whole-chunk fill) consumes, so
      // a completed chunk leaves the substream at the identical position.
      ++state_->batch.tier2_chunks_scanned;
      const double nu_scale = spec_.nu_scale;
      const size_t wpv = WordsPerVariate(spec_.nu_kind);
      const bool exp_nu = spec_.nu_kind == NoiseKind::kExponential;
      BatchRunStats* const stats = &state_->batch;
      size_t sub = 0;
      while (sub < n) {
        const size_t m = std::min(kFusedSubBlock, n - sub);
        size_t filled = 0;
        while (filled < wpv * m) {
          filled += state_->nu_rng.FillUint64Bounded(
              {words + filled, wpv * m - filled});
        }
        ++stats->tier2_fused_subblocks;
        const double* const a_sub = a + sub;
        const double* const t_sub = t + sub;
        const uint64_t* const w = words;
        const auto find_next = [a_sub, t_sub, w, m, nu_scale, stats, exp_nu](
                                   size_t from, double rho) {
          ++stats->tier2_fused_segments;
          const vec::FusedScanHit hit =
              exp_nu ? vec::FusedExpScanSumGePairwise(
                           {w + from, m - from}, nu_scale,
                           {a_sub + from, m - from}, {t_sub + from, m - from},
                           rho)
                     : vec::FusedLaplaceScanSumGePairwise(
                           {w + 2 * from, 2 * (m - from)}, 0.0, nu_scale,
                           {a_sub + from, m - from}, {t_sub + from, m - from},
                           rho);
          return vec::FusedScanHit{from + hit.index, hit.nu};
        };
        const size_t sub_processed =
            ScanChunk(a_sub, m, find_next, res + done + sub);
        if (state_->exhausted) {
          chunk_processed = sub + sub_processed;
          break;
        }
        sub += m;
      }
    }
    if (state_->exhausted) {
      const size_t emitted = done + chunk_processed;
      out->resize(start + emitted);
      return emitted;
    }
    done += n;
  }
  return total;
}

}  // namespace svt
