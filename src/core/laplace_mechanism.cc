#include "core/laplace_mechanism.h"

#include "common/check.h"
#include "common/distributions.h"

namespace svt {

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon),
      sensitivity_(sensitivity),
      scale_(sensitivity / epsilon) {
  SVT_CHECK(epsilon > 0.0) << "epsilon must be positive, got " << epsilon;
  SVT_CHECK(sensitivity > 0.0)
      << "sensitivity must be positive, got " << sensitivity;
}

double LaplaceMechanism::Answer(double true_value, Rng& rng) const {
  return true_value + SampleLaplace(rng, scale_);
}

std::vector<double> LaplaceMechanism::AnswerAll(std::span<const double> values,
                                                Rng& rng) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(Answer(v, rng));
  return out;
}

}  // namespace svt
