// BoundPipeline: the ONE conservative "can this chunk/span possibly
// fire?" bound implementation behind the batch engine. Every execution
// path — common-threshold and per-query-threshold, megakernel and
// composition — routes its skip decisions through this class; the paths
// differ only in how they *scan* spans the pipeline could not discharge
// (core/batch_runner.cc). Before this refactor the bound chain existed in
// four divergent copies (the tier-1 log-free chunk bound, the per-128-span
// hierarchical bound, the megakernel generate-and-bound pass, and the
// per-query path that had none).
//
// The pipeline is a per-chunk plan of PRECISION LEVELS, each holding a
// round-toward-pessimistic representation of the query-score/threshold
// inputs, passing only surviving spans downward:
//
//   level 0 (optional, quantized): per-span score upper bounds and bar
//     lower bounds dequantized from a BoundPrefilter's uint8/uint16 codes
//     (data/bound_prefilter.h) — the bound pass touches 4-8x less memory;
//   level 1 (full precision): vec::MaxBlock / vec::MinBlock over the
//     doubles themselves — used when no prefilter is attached or
//     SVT_BOUND_PREFILTER=off;
//   final level (exact, in batch_runner): the fused sample-and-scan of
//     surviving spans, which computes the exact streaming positive test —
//     the "rerank at full precision" of the two-level pattern.
//
// When a prefilter is attached, the quantized level alone decides the
// prunes (its bound is weaker, so it prunes a subset of what level 1
// would; surviving spans go straight to the exact scan — re-running the
// full-precision reduction on survivors would re-read the very bytes the
// prefilter exists to avoid).
//
// Conservativeness proof (the quantization level folds into the padded
// bound chain with NO new epsilon analysis):
//
//   The computed positive test a path can fire is
//       fl(a_i + nu_i) >= bar         (common: bar = fl(T + rho))
//       fl(a_i + nu_i) >= fl(t_i + rho)   (per-query)
//   with every fl(·) a correctly-rounded IEEE add, which is MONOTONE
//   non-decreasing in each operand. The pipeline skips a span only when
//       fl(up + NB) < fl(dn + rho)    (common: the rhs is bar itself)
//   where up >= a_i for every non-NaN a_i in the span (exact MaxBlock, or
//   the prefilter's per-element round-up invariant), dn <= t_i for every
//   non-NaN t_i (exact MinBlock, or the round-down invariant), and NB is
//   the padded noise bound nu_scale * (-Log(u(w_min))) * kBoundSlack with
//   w_min the span's minimum magnitude word: u is monotone in the word
//   and -log anti-monotone, so NB >= nu_scale * (-Log(u(w_i))) >= nu_i
//   for every variate in the span on the side that can fire (Laplace:
//   nu_i <= |nu_i| <= NB; exponential: 0 <= nu_i <= NB exactly —
//   kBoundSlack absorbs the log kernel's sub-ulp wiggle, see
//   batch_runner's original argument, now below kBoundSlack in the .cc).
//   Chaining monotonicity:
//       fl(a_i + nu_i) <= fl(up + NB) < fl(dn + rho) <= fl(t_i + rho)
//   so no element of a pruned span can fire its computed test — at any
//   dispatch level (each fl(·) and the Log kernel are bit-identical
//   across levels) and in either kernel mode (unsigned word minima are
//   association-free, so both modes feed identical w_min). Elements with
//   NaN answers or NaN thresholds compare false in the exact test and
//   are excluded from up/dn by the prefilter's build rule (full-precision
//   reductions are only used on NaN-free inputs — ScoreVector checks).
//   Hence pruning is sound, outputs are bit-identical to the bound-free
//   scan, and — since the quantized level's decisions are themselves
//   deterministic functions of the codes — tier counters are dispatch-
//   and mode-independent. This argument sits alongside the megakernel
//   skip-word soundness argument (vec::MegaSkipWordThreshold), which
//   consumes this class's score uppers: any up >= max a_i satisfies its
//   contract, so a quantized upper is as sound a skip-word input as the
//   exact maximum.

#ifndef SPARSEVEC_CORE_BOUND_PIPELINE_H_
#define SPARSEVEC_CORE_BOUND_PIPELINE_H_

#include <cstddef>
#include <cstdint>

#include "core/svt.h"
#include "data/bound_prefilter.h"

namespace svt {

class BoundPipeline {
 public:
  /// Spans per chunk ceiling (kChunkSize / kBoundSpan in batch_runner.h;
  /// static so the per-chunk plan needs no allocation).
  static constexpr size_t kMaxSpans = 16;

  /// One pipeline per Run call. `prefilter` may be null (full precision);
  /// when non-null its size must cover every chunk offset passed to
  /// BeginChunk. The quantized level engages only while the process-wide
  /// gate (SVT_BOUND_PREFILTER) is on — latched here, once per run.
  BoundPipeline(const BoundPrefilter* prefilter, double nu_scale,
                size_t span_elems, BatchRunStats* stats);

  /// Builds the chunk's score-upper (and, per-query, bar-lower) plan for
  /// answers[0, n) at absolute offset `offset` in the prefilter's arrays.
  /// `thresholds` is null for common-threshold runs. Charges the level's
  /// bytes to bound_bytes_touched.
  void BeginChunk(const double* answers, const double* thresholds,
                  size_t offset, size_t n);

  size_t num_spans() const { return nspans_; }

  /// Installs the chunk's per-span minimum magnitude words (from
  /// vec::MegaFillMinSpans or vec::MinWordBlock — bit-identical by the
  /// stream contract) and derives the padded chunk noise bound; per-span
  /// bounds are derived lazily on first span query so a chunk the tier-1
  /// test discharges pays exactly one log. Call after BeginChunk, before
  /// any *CanFire.
  void SetNoiseMinima(const std::uint64_t* span_min);

  /// Per-query form: installs minima (and eager ν bounds) for the `count`
  /// spans starting at chunk span index `first_span` — the per-query walk
  /// processes sub-blocks, and there is no chunk-level test to feed.
  void SetSpanNoiseMinima(const std::uint64_t* span_min, size_t first_span,
                          size_t count);

  /// Score upper bounds for skip-word derivation
  /// (vec::MegaSkipWordThreshold needs any value >= the range's max).
  double ChunkScoreUpper() const { return chunk_upper_; }
  double SpanScoreUpper(size_t j) const { return span_upper_[j]; }
  /// Upper bound over an arbitrary chunk subrange [s, s+m) — resume heads
  /// after positives are not span-aligned. Not charged to
  /// bound_bytes_touched (heads are positive-frequency rare).
  double SubrangeScoreUpper(size_t s, size_t m) const;

  /// Megakernel skip words, derived inside the pipeline so both kernel
  /// modes (and the quantized level, when attached) feed identical
  /// answer-max / bar pairs into vec::MegaSkipWordThreshold. Valid after
  /// BeginChunk; they need no noise minima.
  std::uint64_t ChunkSkipWord(double bar) const;
  std::uint64_t SpanSkipWord(size_t j, double bar) const;
  /// Per-query form: the span's bar-min folded with ρ. fl(dn + ρ) is a
  /// lower bound on every computed fl(t_i + ρ) in the span (monotone
  /// rounded add), so a word the threshold discharges at this bar cannot
  /// fire any per-query test in the span — and, since fl(dn + ρ) is
  /// non-decreasing in ρ, a skip word derived at the sub-block-entry ρ
  /// stays sound for every later resampled ρ' >= ρ.
  std::uint64_t SpanSkipWordPerQuery(size_t j, double rho) const;

  /// Tier-1: false when the whole chunk provably cannot fire under the
  /// common bar. Pure — the caller counts tier1_chunks_skipped.
  bool ChunkCanFire(double bar) const;

  /// Tier-2 span tests. False means provably no element fires; these
  /// count tier2_spans_skipped (and bound_spans_pruned_q when the
  /// quantized level decided) per CALL, i.e. per span visit — revisits
  /// across resume walks recount, exactly as the pre-refactor walks did.
  bool SpanCanFire(size_t j, double bar);
  bool SpanCanFirePerQuery(size_t j, double rho);

  /// True when the quantized level is active for this run.
  bool quantized() const { return quant_; }

 private:
  double NuBound(std::uint64_t w_min) const;
  void EnsureSpanNuBounds();

  const BoundPrefilter* prefilter_;  // null or inactive when !quant_
  const double nu_scale_;
  const size_t span_elems_;
  BatchRunStats* const stats_;
  const bool quant_;

  const double* a_ = nullptr;
  const double* t_ = nullptr;
  size_t offset_ = 0;
  size_t n_ = 0;
  size_t nspans_ = 0;
  bool span_nu_ready_ = false;
  double chunk_upper_ = 0.0;
  double chunk_nu_bound_ = 0.0;
  std::uint64_t span_min_[kMaxSpans];
  double span_upper_[kMaxSpans];
  double span_bar_lower_[kMaxSpans];
  double span_nu_bound_[kMaxSpans];
};

}  // namespace svt

#endif  // SPARSEVEC_CORE_BOUND_PIPELINE_H_
