// Chunked batch execution engine for spec-driven SVT mechanisms.
//
// SvtMechanism::Run's reference implementation pays, per query, a virtual
// dispatch, a Laplace distribution construction, two scalar RNG calls and a
// log() stuck behind them. The experiments (Figs. 2–5) and the audit layer
// push millions of queries through that loop. BatchRunner replaces it with:
//
//   * per chunk, one bulk fill of the raw ν words from the mechanism's
//     dedicated ν substream;
//   * a tier-1 chunk bound (common threshold only): an integer min over the
//     magnitude uniforms bounds every |ν| in the chunk, and when even the
//     largest answer provably cannot cross the noisy threshold the whole
//     chunk is emitted as ⊥ without a single log() — the dominant case in
//     ⊥-heavy SVT workloads, where negatives are free;
//   * otherwise a *fused* single-pass sample-and-scan
//     (vec::FusedLaplaceScan*): the full Laplace inverse-CDF transform and
//     the positive test run in the same register pass straight off the raw
//     words — the ν block of the pre-fusion engine is never materialized,
//     and resume segments after a positive re-enter the kernel past it, so
//     every word pair is transformed exactly once per chunk;
//   * per-query-threshold chunks (no sound chunk-wide tier-1 bound — there
//     is no single bar) pull their words through Rng::FillUint64Bounded in
//     L1-resident sub-blocks and scan them fused while still hot, with a
//     per-span bound of their own: the BoundPipeline pairs each span's
//     answer upper bound with its *threshold lower bound*, so spans that
//     provably cannot fire under any of their bars skip the scan outright;
//   * a slow path only at positives, handling the cutoff, Alg. 2's ρ
//     resampling, Alg. 3's q+ν output and ε₃ numeric answers.
//
// On top of the fused structure sits a kernel-mode axis
// (BatchKernelMode below). In the default kMegakernel mode the raw words
// never touch memory at all: the tier-2 paths drive vecmath's
// lane-resident Mega* kernels, which step the four lockstep xoshiro lanes
// inside the scan loop and checkpoint/restore the generator state through
// BlockRng::State. The common-threshold chunk becomes one
// generate-and-bound pass (chunk minimum for tier 1, per-span minima plus
// span-entry state checkpoints for tier 2) and surviving spans are
// *regenerated* from their checkpoints instead of re-read — in ⊥-heavy
// workloads most spans are discharged from the pass-1 minima and their
// words exist only in registers, once. kComposition keeps the
// FillUint64-into-scratch pipeline above; both modes emit bit-identical
// responses, statistics, and stream positions (the megakernels are
// stream-neutral by the vecmath equivalence contract), so the toggle is
// purely a performance axis — and the A/B seam the paired benchmarks use.
//
// Every conservative skip decision above — tier-1 chunk tests, tier-2
// span tests (common and per-query), and the megakernels' skip-word
// inputs — is computed by a single BoundPipeline (core/bound_pipeline.h),
// which optionally reads a quantized BoundPrefilter
// (data/bound_prefilter.h) instead of the double arrays; the runner only
// decides how surviving spans get scanned.
//
// Which tier each chunk took is counted in SvtRunState::batch (exposed as
// SpecDrivenSvt::batch_stats()) so tests and capacity planning can verify
// a workload actually exercises the tier they target.
//
// Under the draw-order contract documented on SpecDrivenSvt (core/svt.h)
// the emitted Response sequence is bit-for-bit the one the streaming
// Process() loop would produce for the same seed — at every vecmath
// dispatch level, since the kernels are bit-identical across levels.

#ifndef SPARSEVEC_CORE_BATCH_RUNNER_H_
#define SPARSEVEC_CORE_BATCH_RUNNER_H_

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/response.h"
#include "core/svt.h"
#include "core/variant_spec.h"

namespace svt {

/// Which tier-2 kernel family the batch engine drives. The modes emit
/// bit-identical responses, statistics, and RNG stream positions; the
/// toggle exists for benchmarking (paired A/B) and as a fallback seam.
enum class BatchKernelMode {
  /// Lane-resident generate-and-scan (vec::Mega*): raw ν words are
  /// produced and consumed inside the kernels, never written to memory.
  kMegakernel,
  /// FillUint64 into an L1 scratch buffer + fused scan kernels reading it.
  kComposition,
};

/// Process-wide kernel mode, initialized once from SVT_BATCH_KERNELS
/// ("megakernel" | "composition"; unset means megakernel; an unrecognized
/// value logs one warning and falls back to megakernel) and adjustable at
/// runtime for A/B and equivalence tests.
BatchKernelMode ActiveBatchKernelMode();
void SetBatchKernelMode(BatchKernelMode mode);

/// Parses a SVT_BATCH_KERNELS value into *mode. Returns false — leaving
/// *mode untouched — on anything other than the two recognized spellings.
bool ParseBatchKernelMode(std::string_view value, BatchKernelMode* mode);

class BatchRunner {
 public:
  /// Queries per chunk: 32 KiB of raw ν words, prefetched whole so the
  /// tier-1 bound can reduce over them before any transform runs.
  static constexpr size_t kChunkSize = 2048;

  /// Queries per hierarchical tier-2 bound span (common threshold): when
  /// the whole-chunk bound fails, the same conservative max-|ν| test is
  /// re-applied per span this size — over few enough draws that
  /// near-threshold workloads still skip most spans' transforms.
  static constexpr size_t kBoundSpan = 128;

  /// Queries per fused per-query sub-block (raw words per bounded fill).
  /// Tuned to one whole chunk on the reference container: sweeping
  /// 256/512/1024/2048 with an in-process A/B showed the smaller fills
  /// 10-25% slower (per-call lockstep state round-trips plus restarted
  /// scan streams outweigh the L1 footprint win there). The sub-block
  /// structure stays because the knob is host-dependent — a machine with
  /// a smaller L1d or slower L2 wants it below the chunk size.
  static constexpr size_t kFusedSubBlock = kChunkSize;

  /// Runs over the state of a live mechanism; all three must outlive the
  /// runner. `state` is mutated exactly as the streaming path would.
  BatchRunner(const VariantSpec& spec, Rng* base_rng, SvtRunState* state);

  /// Appends one Response per processed query to *out, stopping after the
  /// positive that exhausts the cutoff; returns the number appended.
  /// Appends nothing when the mechanism is already exhausted.
  size_t Run(std::span<const double> answers,
             std::span<const double> thresholds, std::vector<Response>* out);

  /// Common-threshold overload (the hot path of the experiments), with the
  /// tier-1 chunk bound enabled.
  size_t Run(std::span<const double> answers, double threshold,
             std::vector<Response>* out);

  /// Prefiltered forms: `prefilter` (may be null) must be built over
  /// exactly these answers (and, pairwise, thresholds) arrays — sizes are
  /// checked. When attached and SVT_BOUND_PREFILTER is on, the
  /// BoundPipeline's skip decisions read the quantized codes instead of
  /// the doubles; responses, statistics beyond the bound counters, and
  /// stream positions are bit-identical either way (core/svt.h contract).
  size_t Run(std::span<const double> answers,
             std::span<const double> thresholds,
             const BoundPrefilter* prefilter, std::vector<Response>* out);
  size_t Run(std::span<const double> answers, double threshold,
             const BoundPrefilter* prefilter, std::vector<Response>* out);

 private:
  Response MakePositiveResponse(double answer, double nu_j);

  template <typename FindNext>
  size_t ScanChunk(const double* answers, size_t n, FindNext find_next,
                   Response* res);

  const VariantSpec& spec_;
  Rng* base_rng_;
  SvtRunState* state_;
};

}  // namespace svt

#endif  // SPARSEVEC_CORE_BATCH_RUNNER_H_
