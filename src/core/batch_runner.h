// Chunked batch execution engine for spec-driven SVT mechanisms.
//
// SvtMechanism::Run's reference implementation pays, per query, a virtual
// dispatch, a Laplace distribution construction, two scalar RNG calls and a
// log() stuck behind them. The experiments (Figs. 2–5) and the audit layer
// push millions of queries through that loop. BatchRunner replaces it with:
//
//   * per chunk, one bulk fill of the raw ν words from the mechanism's
//     dedicated ν substream;
//   * a tier-1 chunk bound (common threshold only): an integer min over the
//     magnitude uniforms bounds every |ν| in the chunk, and when even the
//     largest answer provably cannot cross the noisy threshold the whole
//     chunk is emitted as ⊥ without a single log() — the dominant case in
//     ⊥-heavy SVT workloads, where negatives are free;
//   * otherwise a bulk inverse-CDF transform (Laplace::TransformBlock,
//     running vecmath's runtime-dispatched SIMD log kernels) and a tight,
//     branch-predictable compare-scan that finds the next positive and
//     emits the ⊥ run before it in one fill;
//   * a slow path only at positives, handling the cutoff, Alg. 2's ρ
//     resampling, Alg. 3's q+ν output and ε₃ numeric answers.
//
// Which tier each chunk took is counted in SvtRunState::batch (exposed as
// SpecDrivenSvt::batch_stats()) so tests and capacity planning can verify
// a workload actually exercises the tier they target.
//
// Under the draw-order contract documented on SpecDrivenSvt (core/svt.h)
// the emitted Response sequence is bit-for-bit the one the streaming
// Process() loop would produce for the same seed — at every vecmath
// dispatch level, since the kernels are bit-identical across levels.

#ifndef SPARSEVEC_CORE_BATCH_RUNNER_H_
#define SPARSEVEC_CORE_BATCH_RUNNER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/response.h"
#include "core/svt.h"
#include "core/variant_spec.h"

namespace svt {

class BatchRunner {
 public:
  /// Queries per ν block: 16 KiB of noise, L1-resident alongside the
  /// answers being scanned.
  static constexpr size_t kChunkSize = 2048;

  /// Runs over the state of a live mechanism; all three must outlive the
  /// runner. `state` is mutated exactly as the streaming path would.
  BatchRunner(const VariantSpec& spec, Rng* base_rng, SvtRunState* state);

  /// Appends one Response per processed query to *out, stopping after the
  /// positive that exhausts the cutoff; returns the number appended.
  /// Appends nothing when the mechanism is already exhausted.
  size_t Run(std::span<const double> answers,
             std::span<const double> thresholds, std::vector<Response>* out);

  /// Common-threshold overload (the hot path of the experiments), with the
  /// tier-1 chunk bound enabled.
  size_t Run(std::span<const double> answers, double threshold,
             std::vector<Response>* out);

 private:
  Response MakePositiveResponse(double answer, double nu_j);

  template <typename FindNext>
  size_t ScanChunk(const double* answers, size_t n, const double* nu,
                   FindNext find_next, Response* res);

  const VariantSpec& spec_;
  Rng* base_rng_;
  SvtRunState* state_;
};

}  // namespace svt

#endif  // SPARSEVEC_CORE_BATCH_RUNNER_H_
