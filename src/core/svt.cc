#include "core/svt.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/distributions.h"
#include "core/batch_runner.h"

namespace svt {

namespace {

// One noise variate of the given kind from `rng` — the streaming side of
// the pluggable distribution axis. The draw cost is part of the draw-order
// contract (core/svt.h step 1/2): two 64-bit draws for a Laplace variate,
// one for an exponential variate.
double SampleNoise(Rng& rng, NoiseKind kind, double scale) {
  switch (kind) {
    case NoiseKind::kLaplace:
      return SampleLaplace(rng, scale);
    case NoiseKind::kExponential:
      return SampleExponential(rng, scale);
  }
  SVT_CHECK(false) << "unknown NoiseKind";
  return 0.0;
}

}  // namespace

std::vector<Response> SvtMechanism::Run(std::span<const double> answers,
                                        std::span<const double> thresholds) {
  std::vector<Response> out;
  RunAppend(answers, thresholds, &out);
  return out;
}

std::vector<Response> SvtMechanism::Run(std::span<const double> answers,
                                        double threshold) {
  std::vector<Response> out;
  RunAppend(answers, threshold, &out);
  return out;
}

size_t SvtMechanism::RunAppend(std::span<const double> answers,
                               std::span<const double> thresholds,
                               std::vector<Response>* out) {
  SVT_CHECK(answers.size() == thresholds.size())
      << "answers/thresholds size mismatch: " << answers.size() << " vs "
      << thresholds.size();
  const size_t start = out->size();
  out->reserve(start + answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    if (exhausted()) break;
    out->push_back(Process(answers[i], thresholds[i]));
  }
  return out->size() - start;
}

size_t SvtMechanism::RunAppend(std::span<const double> answers,
                               double threshold, std::vector<Response>* out) {
  const size_t start = out->size();
  out->reserve(start + answers.size());
  for (double a : answers) {
    if (exhausted()) break;
    out->push_back(Process(a, threshold));
  }
  return out->size() - start;
}

size_t SvtMechanism::RunAppend(std::span<const double> answers,
                               std::span<const double> thresholds,
                               const BoundPrefilter* /*prefilter*/,
                               std::vector<Response>* out) {
  // The streaming reference loop has no bound pass to accelerate; outputs
  // are prefilter-independent by contract, so the base just drops it.
  return RunAppend(answers, thresholds, out);
}

size_t SvtMechanism::RunAppend(std::span<const double> answers,
                               double threshold,
                               const BoundPrefilter* /*prefilter*/,
                               std::vector<Response>* out) {
  return RunAppend(answers, threshold, out);
}

SpecDrivenSvt::SpecDrivenSvt(VariantSpec spec, Rng* rng)
    : spec_(std::move(spec)), rng_(rng) {
  SVT_CHECK(rng_ != nullptr);
  InitRun();
}

void SpecDrivenSvt::InitRun() {
  // Draw-order contract steps 1: ρ from the base stream, then one base
  // draw seeds the ν substream. The seeding always happens — even for
  // specs without query noise — so the base stream position is a function
  // of Reset() count alone.
  state_.rho = SampleNoise(*rng_, spec_.rho_kind, spec_.rho_scale);
  state_.nu_rng = Rng(rng_->NextUint64());
}

Response SpecDrivenSvt::Process(double query_answer, double threshold) {
  SVT_CHECK(!state_.exhausted)
      << spec_.name
      << "::Process called after the cutoff exhausted the run; check "
         "exhausted() or call Reset()";
  ++state_.processed;
  const double nu =
      spec_.nu_scale > 0.0
          ? SampleNoise(state_.nu_rng, spec_.nu_kind, spec_.nu_scale)
          : 0.0;
  if (query_answer + nu >= threshold + state_.rho) {
    ++state_.positives;
    if (spec_.cutoff.has_value() && state_.positives >= *spec_.cutoff) {
      state_.exhausted = true;
    }
    if (spec_.resample_rho_after_positive) {
      state_.rho =
          SampleNoise(*rng_, spec_.rho_kind, spec_.rho_resample_scale);
    }
    if (spec_.output_query_value_on_positive) {
      // Alg. 3: emits the very noise used in the comparison — this is the
      // leak that makes it non-private.
      return Response::AboveValue(query_answer + nu);
    }
    if (spec_.numeric_scale > 0.0) {
      // Alg. 7 line 6: answer the positive with a fresh Laplace draw funded
      // by ε₃ (never the comparison noise ν — that is Alg. 3's mistake).
      return Response::AboveValue(query_answer +
                                  SampleLaplace(*rng_, spec_.numeric_scale));
    }
    return Response::Above();
  }
  return Response::Below();
}

void SpecDrivenSvt::Reset() {
  InitRun();
  state_.positives = 0;
  state_.processed = 0;
  state_.exhausted = false;
  state_.batch = BatchRunStats{};
}

size_t SpecDrivenSvt::RunAppend(std::span<const double> answers,
                                std::span<const double> thresholds,
                                std::vector<Response>* out) {
  return RunAppend(answers, thresholds, /*prefilter=*/nullptr, out);
}

size_t SpecDrivenSvt::RunAppend(std::span<const double> answers,
                                double threshold, std::vector<Response>* out) {
  return RunAppend(answers, threshold, /*prefilter=*/nullptr, out);
}

size_t SpecDrivenSvt::RunAppend(std::span<const double> answers,
                                std::span<const double> thresholds,
                                const BoundPrefilter* prefilter,
                                std::vector<Response>* out) {
  return BatchRunner(spec_, rng_, &state_)
      .Run(answers, thresholds, prefilter, out);
}

size_t SpecDrivenSvt::RunAppend(std::span<const double> answers,
                                double threshold,
                                const BoundPrefilter* prefilter,
                                std::vector<Response>* out) {
  return BatchRunner(spec_, rng_, &state_)
      .Run(answers, threshold, prefilter, out);
}

Status SvtOptions::Validate() const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (!(sensitivity > 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument("sensitivity must be positive and finite");
  }
  if (cutoff < 1) {
    return Status::InvalidArgument("cutoff must be >= 1, got " +
                                   std::to_string(cutoff));
  }
  if (numeric_output_fraction < 0.0 || numeric_output_fraction >= 1.0) {
    return Status::InvalidArgument(
        "numeric_output_fraction must be in [0, 1)");
  }
  return Status::OK();
}

Result<std::unique_ptr<SparseVector>> SparseVector::Create(
    const SvtOptions& options, Rng* rng) {
  SVT_RETURN_NOT_OK(options.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  const BudgetSplit split =
      options.allocation.Split(options.epsilon, options.numeric_output_fraction);
  VariantSpec spec = MakeStandardSpec(split, options.sensitivity,
                                      options.cutoff, options.monotonic);
  spec.rho_kind = options.rho_kind;
  spec.nu_kind = options.nu_kind;
  if (options.resample_threshold_noise) {
    spec.resample_rho_after_positive = true;
    spec.rho_resample_scale = spec.rho_scale;
  }
  return std::unique_ptr<SparseVector>(
      new SparseVector(std::move(spec), rng));
}

}  // namespace svt
