#include "core/svt.h"

#include <cmath>

#include "common/check.h"
#include "common/distributions.h"

namespace svt {

std::vector<Response> SvtMechanism::Run(std::span<const double> answers,
                                        std::span<const double> thresholds) {
  SVT_CHECK(answers.size() == thresholds.size())
      << "answers/thresholds size mismatch: " << answers.size() << " vs "
      << thresholds.size();
  std::vector<Response> out;
  out.reserve(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    if (exhausted()) break;
    out.push_back(Process(answers[i], thresholds[i]));
  }
  return out;
}

std::vector<Response> SvtMechanism::Run(std::span<const double> answers,
                                        double threshold) {
  std::vector<Response> out;
  out.reserve(answers.size());
  for (double a : answers) {
    if (exhausted()) break;
    out.push_back(Process(a, threshold));
  }
  return out;
}

Status SvtOptions::Validate() const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (!(sensitivity > 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument("sensitivity must be positive and finite");
  }
  if (cutoff < 1) {
    return Status::InvalidArgument("cutoff must be >= 1, got " +
                                   std::to_string(cutoff));
  }
  if (numeric_output_fraction < 0.0 || numeric_output_fraction >= 1.0) {
    return Status::InvalidArgument(
        "numeric_output_fraction must be in [0, 1)");
  }
  return Status::OK();
}

Result<std::unique_ptr<SparseVector>> SparseVector::Create(
    const SvtOptions& options, Rng* rng) {
  SVT_RETURN_NOT_OK(options.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  const BudgetSplit split =
      options.allocation.Split(options.epsilon, options.numeric_output_fraction);
  VariantSpec spec = MakeStandardSpec(split, options.sensitivity,
                                      options.cutoff, options.monotonic);
  return std::unique_ptr<SparseVector>(
      new SparseVector(options, std::move(spec), rng));
}

SparseVector::SparseVector(const SvtOptions& options, VariantSpec spec,
                           Rng* rng)
    : options_(options), spec_(std::move(spec)), rng_(rng) {
  rho_ = SampleLaplace(*rng_, spec_.rho_scale);
}

Response SparseVector::Process(double query_answer, double threshold) {
  SVT_CHECK(!exhausted_)
      << "SparseVector::Process called after the cutoff aborted the run; "
         "check exhausted() or call Reset()";
  ++processed_;
  const double nu = SampleLaplace(*rng_, spec_.nu_scale);
  if (query_answer + nu >= threshold + rho_) {
    ++positives_;
    if (positives_ >= options_.cutoff) exhausted_ = true;
    if (spec_.numeric_scale > 0.0) {
      // Alg. 7 line 6: answer the positive with a fresh Laplace draw funded
      // by ε₃ (never the comparison noise ν — that is Alg. 3's mistake).
      return Response::AboveValue(query_answer +
                                  SampleLaplace(*rng_, spec_.numeric_scale));
    }
    return Response::Above();
  }
  return Response::Below();
}

void SparseVector::Reset() {
  rho_ = SampleLaplace(*rng_, spec_.rho_scale);
  positives_ = 0;
  processed_ = 0;
  exhausted_ = false;
}

}  // namespace svt
