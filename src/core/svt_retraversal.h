// SVT with Retraversal (SVT-ReTr), §5 of the paper.
//
// In the non-interactive setting the whole query list is known, so when a
// run of SVT exhausts the list having selected fewer than c queries, the
// remaining budget would be wasted. SVT-ReTr instead raises the threshold
// (so it selects more conservatively) and, on reaching the end of the list
// with fewer than c positives, re-traverses the not-yet-selected queries —
// negative outcomes are free in SVT, so this costs no extra budget.
//
// The "kD" configurations of Figure 5 raise the threshold by k standard
// deviations (√2·scale) of the per-query Laplace noise.

#ifndef SPARSEVEC_CORE_SVT_RETRAVERSAL_H_
#define SPARSEVEC_CORE_SVT_RETRAVERSAL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/svt.h"

namespace svt {

/// Configuration for SVT-ReTr.
struct RetraversalOptions {
  /// Base SVT configuration (budget, cutoff, allocation, monotonicity).
  SvtOptions svt;
  /// k in "kD": how many standard deviations of the query noise to add to
  /// the threshold. 0 disables the boost (plain SVT + retraversal).
  double threshold_boost_devs = 0.0;
  /// Safety cap on full passes over the remaining queries. The paper does
  /// not bound retraversal; with a high boost and few near-threshold
  /// queries, termination can take many passes, so production code needs a
  /// cap. When hit, the selection returns with fewer than c indices.
  int max_passes = 256;

  Status Validate() const;
};

/// Result of a retraversal selection.
struct RetraversalResult {
  /// Indices (into the input span) selected, in selection order.
  std::vector<size_t> selected;
  /// Number of passes over the query list actually used.
  int passes_used = 0;
  /// Total threshold comparisons performed.
  int64_t comparisons = 0;
  /// Boosted threshold actually used (base + k·√2·nu_scale).
  double boosted_threshold = 0.0;
};

/// Runs SVT-ReTr over `scores` (queries in the given order — shuffle before
/// calling to randomize, as the paper's experiments do) against
/// `base_threshold`. Selects up to svt.cutoff indices.
Result<RetraversalResult> SelectWithRetraversal(
    std::span<const double> scores, double base_threshold,
    const RetraversalOptions& options, Rng& rng);

}  // namespace svt

#endif  // SPARSEVEC_CORE_SVT_RETRAVERSAL_H_
