// Response: one SVT answer, ⊥ / ⊤ / numeric.
//
// The paper's output alphabet is {⊥, ⊤} ∪ ℝ: Alg. 3 (Roth's lecture notes)
// answers positives with the noisy query value q_i(D)+ν_i — which is exactly
// what breaks its privacy — and Alg. 7 with ε₃ > 0 answers positives with a
// fresh Laplace-perturbed value, which is private. Response models all
// three cases.

#ifndef SPARSEVEC_CORE_RESPONSE_H_
#define SPARSEVEC_CORE_RESPONSE_H_

#include <string>
#include <vector>

namespace svt {

/// Which of the paper's output symbols a query produced.
enum class Outcome {
  kBelow,       ///< ⊥ — answer tested below the noisy threshold.
  kAbove,       ///< ⊤ — above the noisy threshold (indicator only).
  kAboveValue,  ///< above the noisy threshold, with a numeric answer.
};

/// One per-query answer.
///
/// Deliberately a *trivial* aggregate (no default member initializers):
/// value-initialization (`Response{}`, vector::resize) zero-initializes to
/// ⊥ — statically asserted by the batch engine, which emits its ⊥ runs as
/// one bulk zero-fill at memset speed; a non-trivial default constructor
/// would turn that fill into a per-element loop. Construct through the
/// factories below (or full aggregate braces), never default-init a local.
struct Response {
  Outcome outcome;  ///< zero value is kBelow (⊥)
  /// Numeric answer; meaningful only when outcome == kAboveValue.
  double value;

  static Response Below() { return {Outcome::kBelow, 0.0}; }
  static Response Above() { return {Outcome::kAbove, 0.0}; }
  static Response AboveValue(double v) { return {Outcome::kAboveValue, v}; }

  /// True for ⊤ and numeric answers — the outcomes that consume budget.
  bool is_positive() const { return outcome != Outcome::kBelow; }

  friend bool operator==(const Response& a, const Response& b) {
    if (a.outcome != b.outcome) return false;
    if (a.outcome == Outcome::kAboveValue) return a.value == b.value;
    return true;
  }
};

/// "⊥", "⊤", or "⊤(value)".
inline std::string ToString(const Response& r) {
  switch (r.outcome) {
    case Outcome::kBelow:
      return "_";
    case Outcome::kAbove:
      return "T";
    case Outcome::kAboveValue:
      return "T(" + std::to_string(r.value) + ")";
  }
  return "?";
}

/// Compact pattern string, e.g. "__T_T".
inline std::string ToString(const std::vector<Response>& rs) {
  std::string out;
  for (const Response& r : rs) out += ToString(r);
  return out;
}

}  // namespace svt

#endif  // SPARSEVEC_CORE_RESPONSE_H_
