// The paper's proposed SVT: Alg. 7 ("Our Proposed Standard SVT"), of which
// Alg. 1 is the instantiation with ε₁ = ε₂ = ε/2 and ε₃ = 0.
//
// The primary interface is *streaming*: Process(answer, threshold) returns
// one Response. This is what makes SVT valuable in the interactive setting —
// queries need not be known in advance, and negative outcomes consume no
// privacy budget. Batch helpers are provided for the non-interactive
// experiments.
//
// Privacy (Theorems 2, 4, 5 of the paper): with ρ ~ Lap(Δ/ε₁),
// ν_i ~ Lap(2cΔ/ε₂) (Lap(cΔ/ε₂) for monotonic queries), at most c positive
// outcomes, and positives optionally answered with fresh Lap(cΔ/ε₃) noise,
// the mechanism is (ε₁+ε₂+ε₃)-DP.

#ifndef SPARSEVEC_CORE_SVT_H_
#define SPARSEVEC_CORE_SVT_H_

#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/budget.h"
#include "core/response.h"
#include "core/variant_spec.h"

namespace svt {

/// Abstract interface shared by every SVT-family mechanism in the library
/// (the proposed SparseVector and the six published variants), so the audit
/// and evaluation layers can drive them uniformly.
class SvtMechanism {
 public:
  virtual ~SvtMechanism() = default;

  /// Tests one query answer against `threshold`. Must not be called once
  /// exhausted() is true (checked).
  virtual Response Process(double query_answer, double threshold) = 0;

  /// True once the mechanism has emitted its c-th positive outcome and
  /// aborted. Always false for variants without a cutoff.
  virtual bool exhausted() const = 0;

  /// Re-draws the threshold noise and clears counters — a fresh run with a
  /// fresh privacy budget.
  virtual void Reset() = 0;

  /// Declarative noise structure (drives the closed-form audit).
  virtual const VariantSpec& spec() const = 0;

  /// Number of positive outcomes emitted since the last Reset().
  virtual int positives_emitted() const = 0;

  /// Number of queries processed since the last Reset().
  virtual int64_t queries_processed() const = 0;

  /// Runs the mechanism over a batch with per-query thresholds, stopping at
  /// the cutoff. Returns one Response per processed query (the result may be
  /// shorter than `answers` if the cutoff hit early).
  std::vector<Response> Run(std::span<const double> answers,
                            std::span<const double> thresholds);

  /// Single-threshold convenience overload.
  std::vector<Response> Run(std::span<const double> answers,
                            double threshold);
};

/// Configuration for SparseVector. Defaults give Alg. 1 at ε = 1.
struct SvtOptions {
  /// Total privacy budget ε = ε₁ + ε₂ + ε₃ (> 0).
  double epsilon = 1.0;
  /// Query sensitivity Δ (> 0).
  double sensitivity = 1.0;
  /// Maximum positive outcomes c (≥ 1).
  int cutoff = 1;
  /// How to divide the indicator budget between threshold and query noise.
  /// §4.2 recommends BudgetAllocation::Optimal(cutoff, monotonic).
  BudgetAllocation allocation = BudgetAllocation::Halves();
  /// Fraction of ε reserved as ε₃ for numeric answers to positives
  /// (Alg. 7 lines 5–6); 0 disables numeric output.
  double numeric_output_fraction = 0.0;
  /// Queries are monotonic (§4.3): all answers move the same direction
  /// between neighboring datasets, e.g. counting queries. Halves the query
  /// noise (Lap(cΔ/ε₂) instead of Lap(2cΔ/ε₂), Theorem 5).
  bool monotonic = false;

  /// Validates ranges; returned Status explains the first violation.
  Status Validate() const;
};

/// The paper's standard SVT (Alg. 7; Alg. 1 by default parameterization).
///
/// Typical streaming use:
///
///   Rng rng(seed);
///   auto svt = SparseVector::Create(options, &rng).value();
///   for (...) {
///     if (svt->exhausted()) break;
///     Response r = svt->Process(query.Evaluate(db), threshold);
///   }
class SparseVector final : public SvtMechanism {
 public:
  /// Validates `options` and draws the threshold noise from `rng`.
  /// `rng` must outlive the mechanism.
  static Result<std::unique_ptr<SparseVector>> Create(
      const SvtOptions& options, Rng* rng);

  Response Process(double query_answer, double threshold) override;
  bool exhausted() const override { return exhausted_; }
  void Reset() override;
  const VariantSpec& spec() const override { return spec_; }
  int positives_emitted() const override { return positives_; }
  int64_t queries_processed() const override { return processed_; }

  /// The realized (ε₁, ε₂, ε₃) split.
  const BudgetSplit& budget() const { return spec_.budget; }

  /// Scale of the per-query noise ν_i (used by SVT-ReTr's "kD" boosts).
  double query_noise_scale() const { return spec_.nu_scale; }

 private:
  SparseVector(const SvtOptions& options, VariantSpec spec, Rng* rng);

  SvtOptions options_;
  VariantSpec spec_;
  Rng* rng_;

  double rho_ = 0.0;  // current noisy-threshold offset
  int positives_ = 0;
  int64_t processed_ = 0;
  bool exhausted_ = false;
};

}  // namespace svt

#endif  // SPARSEVEC_CORE_SVT_H_
