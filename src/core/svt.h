// The paper's proposed SVT: Alg. 7 ("Our Proposed Standard SVT"), of which
// Alg. 1 is the instantiation with ε₁ = ε₂ = ε/2 and ε₃ = 0.
//
// The primary interface is *streaming*: Process(answer, threshold) returns
// one Response. This is what makes SVT valuable in the interactive setting —
// queries need not be known in advance, and negative outcomes consume no
// privacy budget. Batch workloads go through Run(), which spec-driven
// mechanisms execute with the vectorized engine in core/batch_runner.h; the
// draw-order contract below guarantees both paths emit the identical
// Response sequence for the same seed.
//
// Privacy (Theorems 2, 4, 5 of the paper): with ρ ~ Lap(Δ/ε₁),
// ν_i ~ Lap(2cΔ/ε₂) (Lap(cΔ/ε₂) for monotonic queries), at most c positive
// outcomes, and positives optionally answered with fresh Lap(cΔ/ε₃) noise,
// the mechanism is (ε₁+ε₂+ε₃)-DP.

#ifndef SPARSEVEC_CORE_SVT_H_
#define SPARSEVEC_CORE_SVT_H_

#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/budget.h"
#include "core/response.h"
#include "core/variant_spec.h"

namespace svt {

class BoundPrefilter;  // data/bound_prefilter.h

/// Abstract interface shared by every SVT-family mechanism in the library
/// (the proposed SparseVector and the six published variants), so the audit
/// and evaluation layers can drive them uniformly.
class SvtMechanism {
 public:
  virtual ~SvtMechanism() = default;

  /// Tests one query answer against `threshold`. Must not be called once
  /// exhausted() is true (checked).
  virtual Response Process(double query_answer, double threshold) = 0;

  /// True once the mechanism has emitted its c-th positive outcome and
  /// aborted. Always false for variants without a cutoff.
  virtual bool exhausted() const = 0;

  /// Re-draws the threshold noise and clears counters — a fresh run with a
  /// fresh privacy budget.
  virtual void Reset() = 0;

  /// Declarative noise structure (drives the closed-form audit).
  virtual const VariantSpec& spec() const = 0;

  /// Number of positive outcomes emitted since the last Reset().
  virtual int positives_emitted() const = 0;

  /// Number of queries processed since the last Reset().
  virtual int64_t queries_processed() const = 0;

  /// Runs the mechanism over a batch with per-query thresholds, stopping at
  /// the cutoff. Returns one Response per processed query (the result may be
  /// shorter than `answers` if the cutoff hit early). Delegates to
  /// RunAppend().
  std::vector<Response> Run(std::span<const double> answers,
                            std::span<const double> thresholds);

  /// Single-threshold convenience overload.
  std::vector<Response> Run(std::span<const double> answers,
                            double threshold);

  /// Like Run(), but appends to *out instead of returning a fresh vector,
  /// so batch servers can reuse one response buffer across calls instead of
  /// re-allocating (and re-faulting) megabytes per request. Returns the
  /// number of responses appended. The base implementation is the
  /// reference streaming loop; SpecDrivenSvt overrides it with the chunked
  /// batch engine, emitting the identical sequence.
  ///
  /// Buffer-reuse contract (the serving layer depends on it): RunAppend
  /// only appends — it never clears, shrinks, or reorders the elements
  /// already in *out, and between calls the vector is an ordinary
  /// std::vector the caller owns. clear() + RunAppend in a loop therefore
  /// reuses one allocation for every batch once the capacity has grown to
  /// the high-water mark. Appended elements may be invalidated by
  /// reallocation on a later append, so take spans into *out only after the
  /// last RunAppend of a cycle.
  virtual size_t RunAppend(std::span<const double> answers,
                           std::span<const double> thresholds,
                           std::vector<Response>* out);
  virtual size_t RunAppend(std::span<const double> answers, double threshold,
                           std::vector<Response>* out);

  /// RunAppend with a quantized bound prefilter attached
  /// (data/bound_prefilter.h): `prefilter` must have been built over
  /// exactly these answers (and thresholds) arrays, or be nullptr. The
  /// prefilter only accelerates the batch engine's conservative bound
  /// pass — emitted Responses are bit-identical with it attached, absent,
  /// or disabled (SVT_BOUND_PREFILTER=off). The base implementations
  /// ignore it (the streaming loop has no bound pass).
  virtual size_t RunAppend(std::span<const double> answers,
                           std::span<const double> thresholds,
                           const BoundPrefilter* prefilter,
                           std::vector<Response>* out);
  virtual size_t RunAppend(std::span<const double> answers, double threshold,
                           const BoundPrefilter* prefilter,
                           std::vector<Response>* out);
};

/// Execution counters of the batch engine, cleared on Reset(). They report
/// *how* a batch executed (which tier), never *what* it produced — outputs
/// are tier-independent by the chunk bound's conservativeness proof.
struct BatchRunStats {
  /// Chunks proven all-⊥ by the tier-1 bound: emitted without
  /// materializing a single ν (the log-free fast path).
  int64_t tier1_chunks_skipped = 0;
  /// Chunks that ran the tier-2 fused sample-and-scan over their raw ν
  /// words (includes every per-query-threshold chunk with query noise).
  int64_t tier2_chunks_scanned = 0;
  /// Fused single-pass scan segments executed: one FusedLaplaceScan* call
  /// per tier-2 scan span — at least one per surviving bound span (or
  /// per-query sub-block), plus extra entries from resumes after
  /// positives. Dispatch-level independent, like every counter here.
  int64_t tier2_fused_segments = 0;
  /// Hierarchical-bound skips inside common-threshold tier-2 chunks:
  /// kBoundSpan-sized spans proven all-⊥ by the per-span max-|ν| bound
  /// after the whole-chunk bound failed — their transforms never ran.
  int64_t tier2_spans_skipped = 0;
  /// Bounded ν-substream sub-block fills in the per-query fused path
  /// (Rng::FillUint64Bounded loops). The common-threshold path prefetches
  /// whole chunks for the tier-1 bound and counts none.
  int64_t tier2_fused_subblocks = 0;
  /// Span visits pruned by the QUANTIZED bound level (a subset of
  /// tier2_spans_skipped): only nonzero when a BoundPrefilter was attached
  /// and SVT_BOUND_PREFILTER is on. Dispatch- and kernel-mode-independent,
  /// like every counter here.
  int64_t bound_spans_pruned_q = 0;
  /// Bytes the bound pass's score/threshold-side span reductions read per
  /// chunk: 8 per element and side at full precision, the prefilter's 1-2
  /// per element and side when quantized — the two-level prefilter's whole
  /// point. Counted once per chunk entering a bound-carrying path
  /// (deterministic in the workload shape: dispatch- and mode-independent;
  /// resume-head re-reductions after positives are not counted).
  int64_t bound_bytes_touched = 0;
  /// Elements of per-query sub-blocks whose magnitude word's top 53 bits
  /// reached their span's conservative skip word (the span's answer-max
  /// paired with its bar-min at the sub-block-entry ρ): their transform
  /// is provably discharged. Element-granular — a pure function of the
  /// words and the skip-word vector — so dispatch- and kernel-mode-
  /// independent (the composition arm counts the same words with
  /// vec::SkipWordCountBlock over its scratch buffer).
  int64_t mega_words_skipped_q = 0;
  /// Resume scans entered under a ρ that differs from the ρ the chunk
  /// (or per-query sub-block) was entered with — the resamples the
  /// megakernel's cached-hit replay re-validates its recorded positives
  /// (and re-derives span skip words) against instead of falling back to
  /// the checkpoint walk. Counted centrally at the resume site, so
  /// dispatch- and kernel-mode-independent.
  int64_t replay_rederivations = 0;
};

/// Mutable per-run state shared by the streaming Process() path and the
/// batch engine (core/batch_runner.h).
struct SvtRunState {
  double rho = 0.0;   ///< current noisy-threshold offset
  Rng nu_rng{0};      ///< dedicated ν substream (see contract below)
  int positives = 0;
  int64_t processed = 0;
  bool exhausted = false;
  BatchRunStats batch;  ///< batch-engine tier counters (diagnostics)
};

/// Shared engine for every spec-driven SVT mechanism: a noisy threshold,
/// optional query noise, optional cutoff, optional ρ resampling, optional
/// numeric output. Concrete classes differ only in their VariantSpec.
///
/// Noise draw-order contract (pinned — batch/streaming equivalence and the
/// equivalence tests depend on it):
///   1. Construction and Reset() consume, from the base stream in order:
///      the threshold noise ρ — one variate of the spec's rho_kind: a
///      Laplace variate is two 64-bit draws (magnitude, then sign), an
///      exponential variate is ONE 64-bit draw — then ONE 64-bit draw that
///      seeds, via SplitMix64, the dedicated ν substream.
///   2. ν_i is the i-th variate of the spec's nu_kind drawn from the ν
///      substream (two 64-bit substream draws per Laplace variate, one per
///      exponential variate). Nothing else consumes the substream, and
///      specs with nu_scale == 0 never touch it.
///   3. Numeric answers to positives (ε₃, Alg. 7; always Laplace) and ρ
///      resampling (Alg. 2, RevSVT; the spec's rho_kind) draw from the
///      base stream at the positive, in emission order.
///   4. The word→variate transform is part of the contract: every variate
///      is produced by the vecmath kernel family (common/vecmath.h) — the
///      scalar Process() path through vec::Log /
///      vec::NegLogUnitPositive, the batch engine through the dispatched
///      block kernels — which are bit-identical across dispatch levels by
///      construction. A Laplace variate maps its magnitude word w through
///      b·(−Log(ToUnitDoublePositive(w))) and applies the sign word; an
///      exponential variate is the one-word transform
///      b·(−Log(ToUnitDoublePositive(w))) = b·NegLogUnitPositive(w), no
///      sign word (ExponentialTransformBlock in bulk). Swapping libm (or
///      any other log) into only one of the paths breaks the equivalence;
///      changing the polynomial is a golden re-record.
///   5. The raw 64-bit word stream underneath every draw is BlockRng's
///      four-lane interleave (common/rng.h): word k of a stream is lane
///      (k mod 4)'s xoshiro256++ output at step ⌊k/4⌋, with the four
///      lanes seeded by SplitMix64 key-splitting in lane order. Scalar
///      NextUint64() and the SIMD FillUint64() lockstep kernels walk this
///      one stream, so block prefetch sizes and dispatch level never move
///      a draw's position. Changing the lane count or layout changes
///      every stream — a golden re-record, like (4).
///
/// Kernel fusion is draw-order-neutral: the batch engine's single-pass
/// FusedLaplaceScan* kernels (common/vecmath.h) consume the identical raw
/// word pairs through the identical word→ν lattice of steps (4) and (5) —
/// they merely skip materializing the ν block between transform and
/// compare. Steps 1–5 are unchanged and no golden re-record accompanied
/// fusion; the fused/unfused cross-checks in tests/common_vecmath_test.cc
/// and the batch/streaming suites enforce this bitwise.
///
/// In-kernel generation is stream-neutral: the batch engine's megakernels
/// (vec::Mega* — generate, generate-and-bound, generate-bound-and-scan)
/// step the SAME four lockstep xoshiro256++ lanes of step (5) in
/// registers instead of materializing FillUint64 blocks, and push each
/// word through the identical word→variate lattice of step (4). A chunk
/// consumes exactly n · words-per-variate words whether it scans, skips,
/// or records hits, so the stream position after any chunk is the same as
/// the composition's — checkpoint/restore of BlockRng::State moves the
/// cursor, never the stream. SVT_BATCH_KERNELS=composition forces the
/// FillUint64 + fused-scan composition path; both modes emit identical
/// Responses (tests/core_batch_runner_test.cc diffs them per dispatch
/// level) and no golden re-record accompanied the megakernels.
///
/// Quantized bound representations are BOUND-ONLY: the BoundPipeline's
/// quantized prefilter level (core/bound_pipeline.h,
/// data/bound_prefilter.h) reads uint8/uint16 codes instead of the
/// full-precision answers/thresholds, but those codes feed exclusively
/// the conservative skip decisions and skip-word derivation — never a
/// draw, a word→variate transform, or an emitted value. Every chunk
/// still consumes exactly n · words-per-variate ν words whether a span
/// was pruned by the quantized level, the full-precision level, or not
/// at all, so steps 1-5 are untouched and the emitted Response sequence
/// is bit-identical with the prefilter attached, absent, or disabled
/// (SVT_BOUND_PREFILTER=off — a CI equivalence leg, like the
/// composition one above). Tier counters may legitimately differ between
/// prefilter-on and prefilter-off runs (the quantized bound is weaker,
/// so it prunes a subset of what full precision would); they remain
/// dispatch- and kernel-mode-independent within either setting.
///
/// Hence the k-th emitted Response is the same whether queries arrive one
/// at a time through Process() or in bulk through Run() — and, by (4) and
/// (5), whether the host dispatches scalar, AVX2 or AVX-512 kernels: the
/// batch engine pre-fills whole blocks of the ν substream without
/// disturbing the base stream. After a cutoff abort the ν substream
/// position is unspecified until the next Reset() re-derives it (no
/// further draws can be requested from an exhausted run).
class SpecDrivenSvt : public SvtMechanism {
 public:
  Response Process(double query_answer, double threshold) override;
  bool exhausted() const override { return state_.exhausted; }
  void Reset() override;
  const VariantSpec& spec() const override { return spec_; }
  int positives_emitted() const override { return state_.positives; }
  int64_t queries_processed() const override { return state_.processed; }

  /// Batch execution via core/batch_runner.h (see class comment there).
  size_t RunAppend(std::span<const double> answers,
                   std::span<const double> thresholds,
                   std::vector<Response>* out) override;
  size_t RunAppend(std::span<const double> answers, double threshold,
                   std::vector<Response>* out) override;
  size_t RunAppend(std::span<const double> answers,
                   std::span<const double> thresholds,
                   const BoundPrefilter* prefilter,
                   std::vector<Response>* out) override;
  size_t RunAppend(std::span<const double> answers, double threshold,
                   const BoundPrefilter* prefilter,
                   std::vector<Response>* out) override;

  /// Batch-engine tier counters since the last Reset(): how many chunks the
  /// tier-1 bound skipped vs how many ran the tier-2 transform scan.
  /// Diagnostics only — outputs never depend on the tier taken.
  const BatchRunStats& batch_stats() const { return state_.batch; }

 protected:
  SpecDrivenSvt(VariantSpec spec, Rng* rng);

 private:
  /// Draws ρ and derives the ν substream per the contract above.
  void InitRun();

  VariantSpec spec_;
  Rng* rng_;  // base stream
  SvtRunState state_;
};

/// Configuration for SparseVector. Defaults give Alg. 1 at ε = 1.
struct SvtOptions {
  /// Total privacy budget ε = ε₁ + ε₂ + ε₃ (> 0).
  double epsilon = 1.0;
  /// Query sensitivity Δ (> 0).
  double sensitivity = 1.0;
  /// Maximum positive outcomes c (≥ 1).
  int cutoff = 1;
  /// How to divide the indicator budget between threshold and query noise.
  /// §4.2 recommends BudgetAllocation::Optimal(cutoff, monotonic).
  BudgetAllocation allocation = BudgetAllocation::Halves();
  /// Fraction of ε reserved as ε₃ for numeric answers to positives
  /// (Alg. 7 lines 5–6); 0 disables numeric output.
  double numeric_output_fraction = 0.0;
  /// Queries are monotonic (§4.3): all answers move the same direction
  /// between neighboring datasets, e.g. counting queries. Halves the query
  /// noise (Lap(cΔ/ε₂) instead of Lap(2cΔ/ε₂), Theorem 5).
  bool monotonic = false;

  /// Noise-distribution axis: the distribution each noise role draws from,
  /// at the standard parameterization's scales. With the default Halves
  /// allocation, rho_kind = kExponential reproduces the exponential-noise
  /// SVT of arXiv 2407.20068 exactly (ρ ~ Exp(Δ/ε₁), ν ~ Lap(2cΔ/ε₂));
  /// additionally setting nu_kind = kExponential and
  /// resample_threshold_noise gives the ThresholdMonitor shape of arXiv
  /// 2010.00917. Numeric answers (ε₃) always use Laplace. This is how the
  /// session and serving layers, which template on SvtOptions, run the
  /// exponential-noise variants.
  NoiseKind rho_kind = NoiseKind::kLaplace;
  NoiseKind nu_kind = NoiseKind::kLaplace;
  /// Redraw ρ after every positive (Alg. 2 / ThresholdMonitor style), at
  /// the same scale as the initial draw.
  bool resample_threshold_noise = false;

  /// Validates ranges; returned Status explains the first violation.
  Status Validate() const;
};

/// The paper's standard SVT (Alg. 7; Alg. 1 by default parameterization),
/// realized on the shared spec-driven engine.
///
/// Typical streaming use:
///
///   Rng rng(seed);
///   auto svt = SparseVector::Create(options, &rng).value();
///   for (...) {
///     if (svt->exhausted()) break;
///     Response r = svt->Process(query.Evaluate(db), threshold);
///   }
class SparseVector final : public SpecDrivenSvt {
 public:
  /// Validates `options` and draws the threshold noise from `rng`.
  /// `rng` must outlive the mechanism.
  static Result<std::unique_ptr<SparseVector>> Create(
      const SvtOptions& options, Rng* rng);

  /// The realized (ε₁, ε₂, ε₃) split.
  const BudgetSplit& budget() const { return spec().budget; }

  /// Scale of the per-query noise ν_i (used by SVT-ReTr's "kD" boosts).
  double query_noise_scale() const { return spec().nu_scale; }

 private:
  SparseVector(VariantSpec spec, Rng* rng)
      : SpecDrivenSvt(std::move(spec), rng) {}
};

}  // namespace svt

#endif  // SPARSEVEC_CORE_SVT_H_
