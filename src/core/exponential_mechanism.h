// The Exponential Mechanism (McSherry & Talwar 2007), §2 and §5 of the
// paper.
//
// Selects an output r with probability ∝ exp(ε q(D,r) / (2Δq)); when quality
// changes between neighbors are one-directional ("monotonic", e.g. counting
// queries under add/remove-one-tuple neighbors), exp(ε q(D,r) / Δq) is
// private and more accurate (§2).
//
// For the paper's non-interactive top-c selection (§5), EM is run c times
// with budget ε/c per round, removing each selected query from the pool.
// Two implementations are provided:
//
//  * SelectTopCSequential — the literal c-round procedure, sampling each
//    round by inverse-CDF in log space. Reference implementation.
//  * SelectTopC — one-pass Gumbel-top-c: perturb each score's logit with
//    i.i.d. standard Gumbel noise and take the top c. Sampling c items
//    without replacement from a fixed softmax is *exactly* equivalent to
//    taking the top-c of Gumbel-perturbed logits (the Gumbel-top-k trick),
//    and all c EM rounds here share the same per-round budget and scores.
//    O(n + c log c) instead of O(nc); the equivalence is property-tested.

#ifndef SPARSEVEC_CORE_EXPONENTIAL_MECHANISM_H_
#define SPARSEVEC_CORE_EXPONENTIAL_MECHANISM_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace svt {

/// Options for top-c selection with EM.
struct EmOptions {
  /// Total budget across all rounds (> 0); each round uses ε/c.
  double epsilon = 1.0;
  /// Quality-function sensitivity Δq (> 0).
  double sensitivity = 1.0;
  /// Number of selections c (≥ 1, ≤ number of candidates).
  int num_selections = 1;
  /// Use the one-sided exponent ε/(cΔ) for monotonic qualities.
  bool monotonic = false;

  Status Validate(size_t num_candidates) const;
};

class ExponentialMechanism {
 public:
  /// Selects one index with probability ∝ exp(coef · scores[i]) where
  /// coef = ε/(2Δ) (or ε/Δ when monotonic). Log-space inverse-CDF; exact
  /// for any score magnitudes.
  static Result<size_t> SelectOne(std::span<const double> scores,
                                  double epsilon, double sensitivity,
                                  bool monotonic, Rng& rng);

  /// Literal c-round EM without replacement (reference implementation).
  static Result<std::vector<size_t>> SelectTopCSequential(
      std::span<const double> scores, const EmOptions& options, Rng& rng);

  /// Gumbel-top-c one-pass equivalent (production implementation).
  static Result<std::vector<size_t>> SelectTopC(std::span<const double> scores,
                                                const EmOptions& options,
                                                Rng& rng);
};

}  // namespace svt

#endif  // SPARSEVEC_CORE_EXPONENTIAL_MECHANISM_H_
