// Privacy budget arithmetic: splits, allocation policies, and a sequential
// composition accountant.
//
// Section 4.2 of the paper shows the ratio ε₁:ε₂ between threshold noise and
// query noise should not be the customary 1:1 — minimizing the variance of
// Lap(Δ/ε₁) − Lap(2cΔ/ε₂) under ε₁+ε₂ fixed gives ε₁:ε₂ = 1:(2c)^{2/3}
// (Eq. 12), and 1:c^{2/3} for monotonic queries. BudgetAllocation models
// those policies plus the 1:1, 1:3 and 1:c baselines evaluated in §6.

#ifndef SPARSEVEC_CORE_BUDGET_H_
#define SPARSEVEC_CORE_BUDGET_H_

#include <string>

#include "common/status.h"

namespace svt {

/// A concrete three-way split of a total privacy budget.
/// epsilon3 is the portion used to release numeric answers for positives
/// (Alg. 7's second phase); it is zero for indicator-only SVT.
struct BudgetSplit {
  double epsilon1 = 0.0;  ///< threshold perturbation
  double epsilon2 = 0.0;  ///< query perturbation
  double epsilon3 = 0.0;  ///< numeric release of positives

  double total() const { return epsilon1 + epsilon2 + epsilon3; }
};

/// A policy for dividing the indicator budget (ε − ε₃) between ε₁ and ε₂.
class BudgetAllocation {
 public:
  /// The customary 1:1 split used by Alg. 1–3, 5, 6.
  static BudgetAllocation Halves();

  /// Arbitrary ratio r1:r2 (both positive).
  static BudgetAllocation Ratio(double r1, double r2);

  /// 1:3, the split implied by Alg. 4's ε₁ = ε/4.
  static BudgetAllocation OneToThree();

  /// 1:c — evaluated in §6 as "SVT-S-1:c".
  static BudgetAllocation OneToC(int cutoff);

  /// The paper's recommendation (Eq. 12): 1:(2c)^{2/3}, or 1:c^{2/3} when
  /// queries are monotonic (§4.3).
  static BudgetAllocation Optimal(int cutoff, bool monotonic);

  /// Splits `epsilon` into (ε₁, ε₂, ε₃). `numeric_fraction` ∈ [0,1) is the
  /// share given to ε₃ first; the remainder is divided per this policy.
  BudgetSplit Split(double epsilon, double numeric_fraction = 0.0) const;

  /// ε₂ / ε₁ for this policy.
  double ratio() const { return r2_ / r1_; }

  /// Display name, e.g. "1:1", "1:3", "1:c", "1:c^2/3", "1:(2c)^2/3".
  const std::string& name() const { return name_; }

 private:
  BudgetAllocation(double r1, double r2, std::string name);

  double r1_;
  double r2_;
  std::string name_;
};

/// Variance of the comparison noise Lap(Δ/ε₁) − Lap(kcΔ/ε₂) for a split,
/// where k = 2 in general and k = 1 for monotonic queries. This is the
/// objective Eq. (12) minimizes; exposed so tests and the ablation bench can
/// verify the optimum.
double ComparisonNoiseVariance(const BudgetSplit& split, double sensitivity,
                               int cutoff, bool monotonic);

/// Advanced composition (Dwork, Rothblum & Vadhan 2010), referenced in
/// §3.4: running k ε-DP mechanisms satisfies (ε', δ')-DP with
///   ε' = sqrt(2k ln(1/δ')) ε + k ε (e^ε − 1).
/// Returns ε' for the given k ≥ 1, ε > 0, δ' ∈ (0, 1).
double AdvancedCompositionEpsilon(int k, double epsilon, double delta_prime);

/// Inverse of the above: the largest per-step ε such that k steps compose
/// to at most `target_epsilon` at the given δ'. Solved by bisection.
double PerStepEpsilonForAdvancedComposition(int k, double target_epsilon,
                                            double delta_prime);

/// Tracks cumulative ε spent under sequential composition.
///
/// Mechanisms do not charge it implicitly; the interactive layer
/// (src/interactive) charges it as budget is consumed so callers can enforce
/// a global budget across many SVT/Laplace invocations.
///
/// Boundary tolerance: charges that land exactly on the total after floating
/// point rounding (e.g. 10 × 0.1 against a 1.0 budget) are accepted — the
/// check allows a relative slack of 1e-9 on the total. CanCharge() is the
/// single source of truth for that rule; every "would the next charge fit?"
/// probe (AboveThresholdSession::exhausted(), serving admission) must use it
/// rather than re-deriving its own tolerance, so probe and Charge can never
/// disagree at the boundary.
class PrivacyAccountant {
 public:
  /// Creates an accountant with the given total budget (> 0).
  explicit PrivacyAccountant(double total_epsilon);

  /// True iff Charge(epsilon) would succeed right now. epsilon < 0 is false.
  bool CanCharge(double epsilon) const;

  /// Consumes `epsilon`; fails with kExhausted if it would exceed the total
  /// (as decided by CanCharge).
  Status Charge(double epsilon);

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

 private:
  double total_;
  double spent_ = 0.0;
};

}  // namespace svt

#endif  // SPARSEVEC_CORE_BUDGET_H_
