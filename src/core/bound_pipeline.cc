#include "core/bound_pipeline.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/rng.h"
#include "common/vecmath.h"

namespace svt {

namespace {

// Inflation applied to a ν magnitude bound before any cannot-fire test.
// IEEE rounding of the bound chain (log, multiply, add) is monotone, but
// the vecmath log kernel is only *nearly* correctly rounded, so pad the
// bound by ~1e-12 relative — four orders of magnitude above any few-ulp
// kernel error — to make every skip strictly conservative. The bound
// evaluates the same vec::Log the fused scan kernels apply per word, so
// this slack only has to absorb the kernel's own sub-ulp rounding wiggle,
// never a libm-vs-polynomial discrepancy.
constexpr double kBoundSlack = 1.0 + 1e-12;

}  // namespace

BoundPipeline::BoundPipeline(const BoundPrefilter* prefilter, double nu_scale,
                             size_t span_elems, BatchRunStats* stats)
    : prefilter_(prefilter),
      nu_scale_(nu_scale),
      span_elems_(span_elems),
      stats_(stats),
      quant_(prefilter != nullptr && BoundPrefilterEnabled()) {
  SVT_CHECK(span_elems_ >= 1);
  SVT_CHECK(stats_ != nullptr);
}

void BoundPipeline::BeginChunk(const double* answers, const double* thresholds,
                               size_t offset, size_t n) {
  SVT_DCHECK(n >= 1);
  a_ = answers;
  t_ = thresholds;
  offset_ = offset;
  n_ = n;
  nspans_ = (n + span_elems_ - 1) / span_elems_;
  SVT_DCHECK(nspans_ <= kMaxSpans);
  span_nu_ready_ = false;
  for (size_t j = 0; j < nspans_; ++j) {
    const size_t s = j * span_elems_;
    const size_t m = std::min(span_elems_, n - s);
    if (quant_) {
      span_upper_[j] = prefilter_->ScoreUpper(offset + s, m);
      if (thresholds != nullptr) {
        span_bar_lower_[j] = prefilter_->BarLower(offset + s, m);
      }
    } else {
      span_upper_[j] = vec::MaxBlock({answers + s, m});
      if (thresholds != nullptr) {
        span_bar_lower_[j] = vec::MinBlock({thresholds + s, m});
      }
    }
  }
  // Max is exact, so the reduction over span uppers equals the whole-chunk
  // upper — and in full precision it is bit-for-bit the pre-refactor
  // whole-chunk a_max.
  chunk_upper_ = span_upper_[0];
  for (size_t j = 1; j < nspans_; ++j) {
    chunk_upper_ = std::max(chunk_upper_, span_upper_[j]);
  }
  // The level's bound-pass read volume, charged once per chunk (chunk
  // granularity makes the counter kernel-mode- and dispatch-independent:
  // both modes reduce every span of every chunk exactly once here).
  const size_t score_bytes =
      quant_ ? prefilter_->score_bytes_per_element() : sizeof(double);
  stats_->bound_bytes_touched += static_cast<int64_t>(n * score_bytes);
  if (thresholds != nullptr) {
    const size_t bar_bytes =
        quant_ ? prefilter_->bar_bytes_per_element() : sizeof(double);
    stats_->bound_bytes_touched += static_cast<int64_t>(n * bar_bytes);
  }
}

double BoundPipeline::NuBound(std::uint64_t w_min) const {
  return nu_scale_ * (-vec::Log(Rng::ToUnitDoublePositive(w_min))) *
         kBoundSlack;
}

void BoundPipeline::SetNoiseMinima(const std::uint64_t* span_min) {
  // Unsigned word min is association-free, so the reduction over span
  // minima is the chunk minimum — the same word either kernel mode's
  // whole-chunk reduction produces.
  std::uint64_t w_min = span_min[0];
  for (size_t j = 0; j < nspans_; ++j) {
    span_min_[j] = span_min[j];
    w_min = std::min(w_min, span_min[j]);
  }
  chunk_nu_bound_ = NuBound(w_min);
  // Per-span ν bounds are derived lazily on first span query: a chunk the
  // tier-1 bound discharges pays exactly one log, as before the refactor.
  span_nu_ready_ = false;
}

void BoundPipeline::SetSpanNoiseMinima(const std::uint64_t* span_min,
                                       size_t first_span, size_t count) {
  SVT_DCHECK(first_span + count <= nspans_);
  for (size_t k = 0; k < count; ++k) {
    span_min_[first_span + k] = span_min[k];
    span_nu_bound_[first_span + k] = NuBound(span_min[k]);
  }
  // The per-query walks only query spans installed here (there is no
  // chunk-level test to feed), so mark the bounds ready as installed.
  span_nu_ready_ = true;
}

void BoundPipeline::EnsureSpanNuBounds() {
  if (span_nu_ready_) return;
  for (size_t j = 0; j < nspans_; ++j) {
    span_nu_bound_[j] = NuBound(span_min_[j]);
  }
  span_nu_ready_ = true;
}

double BoundPipeline::SubrangeScoreUpper(size_t s, size_t m) const {
  SVT_DCHECK(m >= 1 && s + m <= n_);
  if (quant_) return prefilter_->ScoreUpper(offset_ + s, m);
  return vec::MaxBlock({a_ + s, m});
}

std::uint64_t BoundPipeline::ChunkSkipWord(double bar) const {
  return vec::MegaSkipWordThreshold(chunk_upper_, bar, nu_scale_);
}

std::uint64_t BoundPipeline::SpanSkipWord(size_t j, double bar) const {
  SVT_DCHECK(j < nspans_);
  return vec::MegaSkipWordThreshold(span_upper_[j], bar, nu_scale_);
}

std::uint64_t BoundPipeline::SpanSkipWordPerQuery(size_t j, double rho) const {
  SVT_DCHECK(j < nspans_ && t_ != nullptr);
  // The rounded add matches the kernels' per-element fl(t_i + ρ) shape;
  // MegaSkipWordThreshold's contract only needs a_max >= every a_i and
  // the bar <= every per-element bar, both of which the span plan holds
  // (quantized uppers/lowers included — see the class comment).
  return vec::MegaSkipWordThreshold(span_upper_[j], span_bar_lower_[j] + rho,
                                    nu_scale_);
}

bool BoundPipeline::ChunkCanFire(double bar) const {
  // fl(up + NB) < bar with up >= every a_i and NB >= every ν_i on the side
  // that can fire implies fl(a_i + ν_i) < bar for all i (monotone rounded
  // add) — no element's computed positive test can pass.
  return !(chunk_upper_ + chunk_nu_bound_ < bar);
}

bool BoundPipeline::SpanCanFire(size_t j, double bar) {
  SVT_DCHECK(j < nspans_);
  EnsureSpanNuBounds();
  if (span_upper_[j] + span_nu_bound_[j] < bar) {
    ++stats_->tier2_spans_skipped;
    if (quant_) ++stats_->bound_spans_pruned_q;
    return false;
  }
  return true;
}

bool BoundPipeline::SpanCanFirePerQuery(size_t j, double rho) {
  SVT_DCHECK(j < nspans_ && t_ != nullptr);
  EnsureSpanNuBounds();
  // fl(dn + ρ) <= fl(t_i + ρ) for every non-NaN t_i in the span, so a span
  // whose padded upper stays below it cannot fire any per-query test.
  if (span_upper_[j] + span_nu_bound_[j] < span_bar_lower_[j] + rho) {
    ++stats_->tier2_spans_skipped;
    if (quant_) ++stats_->bound_spans_pruned_q;
    return false;
  }
  return true;
}

}  // namespace svt
