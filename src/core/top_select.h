// Top-c selection drivers: the uniform entry points the evaluation harness
// (src/eval) and the examples use to compare SVT-based and EM-based
// selection on a score vector, per §5/§6 of the paper.

#ifndef SPARSEVEC_CORE_TOP_SELECT_H_
#define SPARSEVEC_CORE_TOP_SELECT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/exponential_mechanism.h"
#include "core/svt.h"
#include "core/svt_retraversal.h"

namespace svt {

/// Runs any SVT-family mechanism over `scores` in order against a single
/// threshold and returns the indices of positive outcomes. Stops at the
/// cutoff (if the mechanism has one) or at the end of the scores.
std::vector<size_t> CollectPositives(SvtMechanism& mechanism,
                                     std::span<const double> scores,
                                     double threshold);

/// One-shot SVT selection: builds a SparseVector from `options`, runs it
/// over `scores` (in the order given — shuffle first for the paper's
/// randomized-order experiments), returns selected indices.
Result<std::vector<size_t>> SelectTopCWithSvt(std::span<const double> scores,
                                              double threshold,
                                              const SvtOptions& options,
                                              Rng& rng);

/// One-shot EM selection (Gumbel top-c).
Result<std::vector<size_t>> SelectTopCWithEm(std::span<const double> scores,
                                             const EmOptions& options,
                                             Rng& rng);

/// Indices of the true top-c scores (ties broken by lower index), used as
/// ground truth by the FNR/SER metrics.
std::vector<size_t> TrueTopC(std::span<const double> scores, size_t c);

/// The paper's per-c threshold: the average of the c-th and (c+1)-th
/// largest scores ("each time uses the average score for the c'th query and
/// the c+1'th query as the threshold", §6). Requires c < scores.size().
double PaperThreshold(std::span<const double> scores, size_t c);

}  // namespace svt

#endif  // SPARSEVEC_CORE_TOP_SELECT_H_
