// The Laplace mechanism (Dwork et al. 2006), §2 of the paper.
//
// Answers a numeric query of sensitivity Δ with f(D) + Lap(Δ/ε), which
// satisfies ε-DP. Used standalone, as Alg. 7's numeric-output phase, and by
// the interactive PMW substrate to answer above-threshold queries.

#ifndef SPARSEVEC_CORE_LAPLACE_MECHANISM_H_
#define SPARSEVEC_CORE_LAPLACE_MECHANISM_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace svt {

class LaplaceMechanism {
 public:
  /// epsilon > 0, sensitivity > 0 (checked).
  LaplaceMechanism(double epsilon, double sensitivity);

  /// One private answer: true_value + Lap(Δ/ε).
  double Answer(double true_value, Rng& rng) const;

  /// Answers a batch; under sequential composition this consumes
  /// |values| · ε, which is the caller's to account for.
  std::vector<double> AnswerAll(std::span<const double> values,
                                Rng& rng) const;

  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }
  /// Noise scale b = Δ/ε.
  double scale() const { return scale_; }

 private:
  double epsilon_;
  double sensitivity_;
  double scale_;
};

}  // namespace svt

#endif  // SPARSEVEC_CORE_LAPLACE_MECHANISM_H_
