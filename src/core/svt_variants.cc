#include "core/svt_variants.h"

#include <utility>

namespace svt {

namespace {

Status CheckArgs(double epsilon, double sensitivity, Rng* rng) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DworkRothSvt>> DworkRothSvt::Create(double epsilon,
                                                           double sensitivity,
                                                           int cutoff,
                                                           Rng* rng) {
  SVT_RETURN_NOT_OK(CheckArgs(epsilon, sensitivity, rng));
  if (cutoff < 1) return Status::InvalidArgument("cutoff must be >= 1");
  return std::unique_ptr<DworkRothSvt>(
      new DworkRothSvt(MakeAlg2Spec(epsilon, sensitivity, cutoff), rng));
}

Result<std::unique_ptr<RothNotesSvt>> RothNotesSvt::Create(double epsilon,
                                                           double sensitivity,
                                                           int cutoff,
                                                           Rng* rng) {
  SVT_RETURN_NOT_OK(CheckArgs(epsilon, sensitivity, rng));
  if (cutoff < 1) return Status::InvalidArgument("cutoff must be >= 1");
  return std::unique_ptr<RothNotesSvt>(
      new RothNotesSvt(MakeAlg3Spec(epsilon, sensitivity, cutoff), rng));
}

Result<std::unique_ptr<LeeCliftonSvt>> LeeCliftonSvt::Create(
    double epsilon, double sensitivity, int cutoff, Rng* rng,
    bool monotonic) {
  SVT_RETURN_NOT_OK(CheckArgs(epsilon, sensitivity, rng));
  if (cutoff < 1) return Status::InvalidArgument("cutoff must be >= 1");
  return std::unique_ptr<LeeCliftonSvt>(new LeeCliftonSvt(
      MakeAlg4Spec(epsilon, sensitivity, cutoff, monotonic), rng));
}

Result<std::unique_ptr<StoddardSvt>> StoddardSvt::Create(double epsilon,
                                                         double sensitivity,
                                                         Rng* rng) {
  SVT_RETURN_NOT_OK(CheckArgs(epsilon, sensitivity, rng));
  return std::unique_ptr<StoddardSvt>(
      new StoddardSvt(MakeAlg5Spec(epsilon, sensitivity), rng));
}

Result<std::unique_ptr<ChenSvt>> ChenSvt::Create(double epsilon,
                                                 double sensitivity,
                                                 Rng* rng) {
  SVT_RETURN_NOT_OK(CheckArgs(epsilon, sensitivity, rng));
  return std::unique_ptr<ChenSvt>(
      new ChenSvt(MakeAlg6Spec(epsilon, sensitivity), rng));
}

Result<std::unique_ptr<Gptt>> Gptt::Create(double epsilon1, double epsilon2,
                                           double sensitivity, Rng* rng) {
  if (!(epsilon1 > 0.0) || !(epsilon2 > 0.0)) {
    return Status::InvalidArgument("epsilon1/epsilon2 must be positive");
  }
  SVT_RETURN_NOT_OK(CheckArgs(epsilon1 + epsilon2, sensitivity, rng));
  return std::unique_ptr<Gptt>(
      new Gptt(MakeGpttSpec(epsilon1, epsilon2, sensitivity), rng));
}

Result<std::unique_ptr<ExpNoiseSvt>> ExpNoiseSvt::Create(double epsilon,
                                                         double sensitivity,
                                                         int cutoff,
                                                         Rng* rng) {
  SVT_RETURN_NOT_OK(CheckArgs(epsilon, sensitivity, rng));
  if (cutoff < 1) return Status::InvalidArgument("cutoff must be >= 1");
  return std::unique_ptr<ExpNoiseSvt>(
      new ExpNoiseSvt(MakeExpNoiseSpec(epsilon, sensitivity, cutoff), rng));
}

Result<std::unique_ptr<RevisitedSvt>> RevisitedSvt::Create(double epsilon,
                                                           double sensitivity,
                                                           int cutoff,
                                                           Rng* rng) {
  SVT_RETURN_NOT_OK(CheckArgs(epsilon, sensitivity, rng));
  if (cutoff < 1) return Status::InvalidArgument("cutoff must be >= 1");
  return std::unique_ptr<RevisitedSvt>(
      new RevisitedSvt(MakeRevisitedSpec(epsilon, sensitivity, cutoff), rng));
}

Result<std::unique_ptr<SvtMechanism>> MakeVariantMechanism(
    VariantId id, double epsilon, double sensitivity, int cutoff, Rng* rng) {
  switch (id) {
    case VariantId::kAlg1:
    case VariantId::kStandard: {
      SvtOptions options;
      options.epsilon = epsilon;
      options.sensitivity = sensitivity;
      options.cutoff = cutoff;
      options.allocation = BudgetAllocation::Halves();
      SVT_ASSIGN_OR_RETURN(std::unique_ptr<SparseVector> sv,
                           SparseVector::Create(options, rng));
      return std::unique_ptr<SvtMechanism>(std::move(sv));
    }
    case VariantId::kAlg2: {
      SVT_ASSIGN_OR_RETURN(
          std::unique_ptr<DworkRothSvt> m,
          DworkRothSvt::Create(epsilon, sensitivity, cutoff, rng));
      return std::unique_ptr<SvtMechanism>(std::move(m));
    }
    case VariantId::kAlg3: {
      SVT_ASSIGN_OR_RETURN(
          std::unique_ptr<RothNotesSvt> m,
          RothNotesSvt::Create(epsilon, sensitivity, cutoff, rng));
      return std::unique_ptr<SvtMechanism>(std::move(m));
    }
    case VariantId::kAlg4: {
      SVT_ASSIGN_OR_RETURN(
          std::unique_ptr<LeeCliftonSvt> m,
          LeeCliftonSvt::Create(epsilon, sensitivity, cutoff, rng));
      return std::unique_ptr<SvtMechanism>(std::move(m));
    }
    case VariantId::kAlg5: {
      SVT_ASSIGN_OR_RETURN(std::unique_ptr<StoddardSvt> m,
                           StoddardSvt::Create(epsilon, sensitivity, rng));
      return std::unique_ptr<SvtMechanism>(std::move(m));
    }
    case VariantId::kAlg6: {
      SVT_ASSIGN_OR_RETURN(std::unique_ptr<ChenSvt> m,
                           ChenSvt::Create(epsilon, sensitivity, rng));
      return std::unique_ptr<SvtMechanism>(std::move(m));
    }
    case VariantId::kGptt: {
      SVT_ASSIGN_OR_RETURN(
          std::unique_ptr<Gptt> m,
          Gptt::Create(epsilon / 2.0, epsilon / 2.0, sensitivity, rng));
      return std::unique_ptr<SvtMechanism>(std::move(m));
    }
    case VariantId::kExpNoise: {
      SVT_ASSIGN_OR_RETURN(
          std::unique_ptr<ExpNoiseSvt> m,
          ExpNoiseSvt::Create(epsilon, sensitivity, cutoff, rng));
      return std::unique_ptr<SvtMechanism>(std::move(m));
    }
    case VariantId::kRevisited: {
      SVT_ASSIGN_OR_RETURN(
          std::unique_ptr<RevisitedSvt> m,
          RevisitedSvt::Create(epsilon, sensitivity, cutoff, rng));
      return std::unique_ptr<SvtMechanism>(std::move(m));
    }
  }
  return Status::InvalidArgument("unknown VariantId");
}

}  // namespace svt
