#include "core/variant_spec.h"

#include "common/check.h"

namespace svt {

namespace {

void CheckCommon(double epsilon, double sensitivity) {
  SVT_CHECK(epsilon > 0.0) << "epsilon must be positive, got " << epsilon;
  SVT_CHECK(sensitivity > 0.0)
      << "sensitivity must be positive, got " << sensitivity;
}

}  // namespace

std::string_view PrivacyClassToString(PrivacyClass c) {
  switch (c) {
    case PrivacyClass::kPureDp:
      return "eps-DP";
    case PrivacyClass::kScaledDp:
      return "scaled-eps-DP";
    case PrivacyClass::kInfiniteDp:
      return "inf-DP";
  }
  return "unknown";
}

std::string_view VariantIdToString(VariantId id) {
  switch (id) {
    case VariantId::kAlg1:
      return "Alg1-LyuSuLi";
    case VariantId::kAlg2:
      return "Alg2-DworkRoth";
    case VariantId::kAlg3:
      return "Alg3-RothNotes";
    case VariantId::kAlg4:
      return "Alg4-LeeClifton";
    case VariantId::kAlg5:
      return "Alg5-Stoddard";
    case VariantId::kAlg6:
      return "Alg6-Chen";
    case VariantId::kStandard:
      return "Alg7-Standard";
    case VariantId::kGptt:
      return "GPTT";
    case VariantId::kExpNoise:
      return "ExpSVT-Liu24";
    case VariantId::kRevisited:
      return "RevSVT-KMS20";
  }
  return "unknown";
}

std::string_view NoiseKindToString(NoiseKind k) {
  switch (k) {
    case NoiseKind::kLaplace:
      return "laplace";
    case NoiseKind::kExponential:
      return "exponential";
  }
  return "unknown";
}

VariantSpec MakeAlg1Spec(double epsilon, double sensitivity, int cutoff) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg1-LyuSuLi";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = 2.0 * cutoff * sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.actual_privacy = PrivacyClass::kPureDp;
  return s;
}

VariantSpec MakeAlg2Spec(double epsilon, double sensitivity, int cutoff) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg2-DworkRoth";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  const double c = static_cast<double>(cutoff);
  // Figure 1, Alg. 2: rho ~ Lap(cΔ/ε₁); ν ~ Lap(2cΔ/ε₁); on ⊤ the threshold
  // noise is re-drawn as Lap(cΔ/ε₂). With ε₁ = ε₂ = ε/2 the two rho scales
  // coincide, but we keep them as written.
  s.rho_scale = c * sensitivity / s.budget.epsilon1;
  s.nu_scale = 2.0 * c * sensitivity / s.budget.epsilon1;
  s.resample_rho_after_positive = true;
  s.rho_resample_scale = c * sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.actual_privacy = PrivacyClass::kPureDp;
  return s;
}

VariantSpec MakeAlg3Spec(double epsilon, double sensitivity, int cutoff) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg3-RothNotes";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = cutoff * sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.output_query_value_on_positive = true;
  s.actual_privacy = PrivacyClass::kInfiniteDp;
  return s;
}

VariantSpec MakeAlg4Spec(double epsilon, double sensitivity, int cutoff,
                         bool monotonic) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg4-LeeClifton";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 4.0, 3.0 * epsilon / 4.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.actual_privacy = PrivacyClass::kScaledDp;
  // §3.2: (1+6c)/4 in general; (1+3c)/4 for monotonic counting queries.
  s.privacy_scale_factor =
      monotonic ? (1.0 + 3.0 * cutoff) / 4.0 : (1.0 + 6.0 * cutoff) / 4.0;
  return s;
}

VariantSpec MakeAlg5Spec(double epsilon, double sensitivity) {
  CheckCommon(epsilon, sensitivity);
  VariantSpec s;
  s.name = "Alg5-Stoddard";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = 0.0;  // no query noise at all
  s.cutoff = std::nullopt;
  s.actual_privacy = PrivacyClass::kInfiniteDp;
  return s;
}

VariantSpec MakeAlg6Spec(double epsilon, double sensitivity) {
  CheckCommon(epsilon, sensitivity);
  VariantSpec s;
  s.name = "Alg6-Chen";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = sensitivity / s.budget.epsilon2;
  s.cutoff = std::nullopt;
  s.actual_privacy = PrivacyClass::kInfiniteDp;
  return s;
}

VariantSpec MakeStandardSpec(const BudgetSplit& split, double sensitivity,
                             int cutoff, bool monotonic) {
  SVT_CHECK(split.epsilon1 > 0.0 && split.epsilon2 > 0.0);
  SVT_CHECK(split.epsilon3 >= 0.0);
  SVT_CHECK(sensitivity > 0.0);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg7-Standard";
  s.epsilon = split.total();
  s.sensitivity = sensitivity;
  s.budget = split;
  const double c = static_cast<double>(cutoff);
  s.rho_scale = sensitivity / split.epsilon1;
  const double k = monotonic ? 1.0 : 2.0;
  s.nu_scale = k * c * sensitivity / split.epsilon2;
  s.cutoff = cutoff;
  if (split.epsilon3 > 0.0) {
    s.numeric_scale = c * sensitivity / split.epsilon3;
  }
  s.actual_privacy = PrivacyClass::kPureDp;
  return s;
}

VariantSpec MakeGpttSpec(double epsilon1, double epsilon2,
                         double sensitivity) {
  SVT_CHECK(epsilon1 > 0.0 && epsilon2 > 0.0);
  SVT_CHECK(sensitivity > 0.0);
  VariantSpec s;
  s.name = "GPTT";
  s.epsilon = epsilon1 + epsilon2;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon1, epsilon2, 0.0};
  s.rho_scale = sensitivity / epsilon1;
  s.nu_scale = sensitivity / epsilon2;
  s.cutoff = std::nullopt;
  s.actual_privacy = PrivacyClass::kInfiniteDp;
  return s;
}

VariantSpec MakeExpNoiseSpec(double epsilon, double sensitivity, int cutoff) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "ExpSVT-Liu24";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  // Alg. 1's split, with the threshold noise swapped for one-sided
  // Exp(Δ/ε₁). The SVT privacy argument bounds the ρ-density ratio only
  // through p(z + Δ)/p(z) >= e^{-ε₁}; the exponential density e^{-x/b}/b
  // gives exactly e^{-Δ/b} = e^{-ε₁} on its support (and shifts of the
  // support only help the ⊥-branch factors, which are monotone in z), so
  // the ε accounting of Alg. 1 carries over while sd(ρ) halves:
  // sd(Exp(b)) = b vs sd(Lap(b)) = √2·b — the accuracy enhancement of
  // arXiv 2407.20068.
  s.rho_kind = NoiseKind::kExponential;
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_kind = NoiseKind::kLaplace;
  s.nu_scale = 2.0 * cutoff * sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.actual_privacy = PrivacyClass::kPureDp;
  return s;
}

VariantSpec MakeRevisitedSpec(double epsilon, double sensitivity,
                              int cutoff) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "RevSVT-KMS20";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  const double c = static_cast<double>(cutoff);
  // The ThresholdMonitor shape of arXiv 2010.00917 on the exponential
  // axis: ρ ~ Exp(cΔ/ε₁) re-drawn (same kind, same scale) after every ⊤,
  // ν ~ Exp(2cΔ/ε₂) one-sided. ε-DP in this pure-ε parameterization by
  // adaptive composition of at most c unit-cutoff AboveThreshold segments,
  // each funded ε/c: per segment the ρ-density ratio is bounded by
  // e^{-Δ/(cΔ/ε₁)} = e^{-ε₁/c} and the ⊤-branch survival ratio by
  // S(x + 2Δ)/S(x) >= e^{-2Δ/(2cΔ/ε₂)} = e^{-ε₂/c} (Exp survival
  // S(x) = e^{-x/b} on x >= 0, 1 below). The paper's tighter ~√c analysis
  // requires (ε, δ) accounting, which is outside this library's pure-ε
  // auditor; this spec is the pure-ε member of that family.
  s.rho_kind = NoiseKind::kExponential;
  s.rho_scale = c * sensitivity / s.budget.epsilon1;
  s.resample_rho_after_positive = true;
  s.rho_resample_scale = s.rho_scale;
  s.nu_kind = NoiseKind::kExponential;
  s.nu_scale = 2.0 * c * sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.actual_privacy = PrivacyClass::kPureDp;
  return s;
}

VariantSpec MakeSpec(VariantId id, double epsilon, double sensitivity,
                     int cutoff) {
  switch (id) {
    case VariantId::kAlg1:
      return MakeAlg1Spec(epsilon, sensitivity, cutoff);
    case VariantId::kAlg2:
      return MakeAlg2Spec(epsilon, sensitivity, cutoff);
    case VariantId::kAlg3:
      return MakeAlg3Spec(epsilon, sensitivity, cutoff);
    case VariantId::kAlg4:
      return MakeAlg4Spec(epsilon, sensitivity, cutoff);
    case VariantId::kAlg5:
      return MakeAlg5Spec(epsilon, sensitivity);
    case VariantId::kAlg6:
      return MakeAlg6Spec(epsilon, sensitivity);
    case VariantId::kStandard: {
      const BudgetSplit split =
          BudgetAllocation::Halves().Split(epsilon, /*numeric_fraction=*/0.0);
      return MakeStandardSpec(split, sensitivity, cutoff);
    }
    case VariantId::kGptt:
      return MakeGpttSpec(epsilon / 2.0, epsilon / 2.0, sensitivity);
    case VariantId::kExpNoise:
      return MakeExpNoiseSpec(epsilon, sensitivity, cutoff);
    case VariantId::kRevisited:
      return MakeRevisitedSpec(epsilon, sensitivity, cutoff);
  }
  SVT_CHECK(false) << "unknown VariantId";
  return VariantSpec{};
}

}  // namespace svt
