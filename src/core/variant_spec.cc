#include "core/variant_spec.h"

#include "common/check.h"

namespace svt {

namespace {

void CheckCommon(double epsilon, double sensitivity) {
  SVT_CHECK(epsilon > 0.0) << "epsilon must be positive, got " << epsilon;
  SVT_CHECK(sensitivity > 0.0)
      << "sensitivity must be positive, got " << sensitivity;
}

}  // namespace

std::string_view PrivacyClassToString(PrivacyClass c) {
  switch (c) {
    case PrivacyClass::kPureDp:
      return "eps-DP";
    case PrivacyClass::kScaledDp:
      return "scaled-eps-DP";
    case PrivacyClass::kInfiniteDp:
      return "inf-DP";
  }
  return "unknown";
}

std::string_view VariantIdToString(VariantId id) {
  switch (id) {
    case VariantId::kAlg1:
      return "Alg1-LyuSuLi";
    case VariantId::kAlg2:
      return "Alg2-DworkRoth";
    case VariantId::kAlg3:
      return "Alg3-RothNotes";
    case VariantId::kAlg4:
      return "Alg4-LeeClifton";
    case VariantId::kAlg5:
      return "Alg5-Stoddard";
    case VariantId::kAlg6:
      return "Alg6-Chen";
    case VariantId::kStandard:
      return "Alg7-Standard";
    case VariantId::kGptt:
      return "GPTT";
  }
  return "unknown";
}

VariantSpec MakeAlg1Spec(double epsilon, double sensitivity, int cutoff) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg1-LyuSuLi";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = 2.0 * cutoff * sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.actual_privacy = PrivacyClass::kPureDp;
  return s;
}

VariantSpec MakeAlg2Spec(double epsilon, double sensitivity, int cutoff) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg2-DworkRoth";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  const double c = static_cast<double>(cutoff);
  // Figure 1, Alg. 2: rho ~ Lap(cΔ/ε₁); ν ~ Lap(2cΔ/ε₁); on ⊤ the threshold
  // noise is re-drawn as Lap(cΔ/ε₂). With ε₁ = ε₂ = ε/2 the two rho scales
  // coincide, but we keep them as written.
  s.rho_scale = c * sensitivity / s.budget.epsilon1;
  s.nu_scale = 2.0 * c * sensitivity / s.budget.epsilon1;
  s.resample_rho_after_positive = true;
  s.rho_resample_scale = c * sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.actual_privacy = PrivacyClass::kPureDp;
  return s;
}

VariantSpec MakeAlg3Spec(double epsilon, double sensitivity, int cutoff) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg3-RothNotes";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = cutoff * sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.output_query_value_on_positive = true;
  s.actual_privacy = PrivacyClass::kInfiniteDp;
  return s;
}

VariantSpec MakeAlg4Spec(double epsilon, double sensitivity, int cutoff,
                         bool monotonic) {
  CheckCommon(epsilon, sensitivity);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg4-LeeClifton";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 4.0, 3.0 * epsilon / 4.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = sensitivity / s.budget.epsilon2;
  s.cutoff = cutoff;
  s.actual_privacy = PrivacyClass::kScaledDp;
  // §3.2: (1+6c)/4 in general; (1+3c)/4 for monotonic counting queries.
  s.privacy_scale_factor =
      monotonic ? (1.0 + 3.0 * cutoff) / 4.0 : (1.0 + 6.0 * cutoff) / 4.0;
  return s;
}

VariantSpec MakeAlg5Spec(double epsilon, double sensitivity) {
  CheckCommon(epsilon, sensitivity);
  VariantSpec s;
  s.name = "Alg5-Stoddard";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = 0.0;  // no query noise at all
  s.cutoff = std::nullopt;
  s.actual_privacy = PrivacyClass::kInfiniteDp;
  return s;
}

VariantSpec MakeAlg6Spec(double epsilon, double sensitivity) {
  CheckCommon(epsilon, sensitivity);
  VariantSpec s;
  s.name = "Alg6-Chen";
  s.epsilon = epsilon;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon / 2.0, epsilon / 2.0, 0.0};
  s.rho_scale = sensitivity / s.budget.epsilon1;
  s.nu_scale = sensitivity / s.budget.epsilon2;
  s.cutoff = std::nullopt;
  s.actual_privacy = PrivacyClass::kInfiniteDp;
  return s;
}

VariantSpec MakeStandardSpec(const BudgetSplit& split, double sensitivity,
                             int cutoff, bool monotonic) {
  SVT_CHECK(split.epsilon1 > 0.0 && split.epsilon2 > 0.0);
  SVT_CHECK(split.epsilon3 >= 0.0);
  SVT_CHECK(sensitivity > 0.0);
  SVT_CHECK(cutoff >= 1);
  VariantSpec s;
  s.name = "Alg7-Standard";
  s.epsilon = split.total();
  s.sensitivity = sensitivity;
  s.budget = split;
  const double c = static_cast<double>(cutoff);
  s.rho_scale = sensitivity / split.epsilon1;
  const double k = monotonic ? 1.0 : 2.0;
  s.nu_scale = k * c * sensitivity / split.epsilon2;
  s.cutoff = cutoff;
  if (split.epsilon3 > 0.0) {
    s.numeric_scale = c * sensitivity / split.epsilon3;
  }
  s.actual_privacy = PrivacyClass::kPureDp;
  return s;
}

VariantSpec MakeGpttSpec(double epsilon1, double epsilon2,
                         double sensitivity) {
  SVT_CHECK(epsilon1 > 0.0 && epsilon2 > 0.0);
  SVT_CHECK(sensitivity > 0.0);
  VariantSpec s;
  s.name = "GPTT";
  s.epsilon = epsilon1 + epsilon2;
  s.sensitivity = sensitivity;
  s.budget = BudgetSplit{epsilon1, epsilon2, 0.0};
  s.rho_scale = sensitivity / epsilon1;
  s.nu_scale = sensitivity / epsilon2;
  s.cutoff = std::nullopt;
  s.actual_privacy = PrivacyClass::kInfiniteDp;
  return s;
}

VariantSpec MakeSpec(VariantId id, double epsilon, double sensitivity,
                     int cutoff) {
  switch (id) {
    case VariantId::kAlg1:
      return MakeAlg1Spec(epsilon, sensitivity, cutoff);
    case VariantId::kAlg2:
      return MakeAlg2Spec(epsilon, sensitivity, cutoff);
    case VariantId::kAlg3:
      return MakeAlg3Spec(epsilon, sensitivity, cutoff);
    case VariantId::kAlg4:
      return MakeAlg4Spec(epsilon, sensitivity, cutoff);
    case VariantId::kAlg5:
      return MakeAlg5Spec(epsilon, sensitivity);
    case VariantId::kAlg6:
      return MakeAlg6Spec(epsilon, sensitivity);
    case VariantId::kStandard: {
      const BudgetSplit split =
          BudgetAllocation::Halves().Split(epsilon, /*numeric_fraction=*/0.0);
      return MakeStandardSpec(split, sensitivity, cutoff);
    }
    case VariantId::kGptt:
      return MakeGpttSpec(epsilon / 2.0, epsilon / 2.0, sensitivity);
  }
  SVT_CHECK(false) << "unknown VariantId";
  return VariantSpec{};
}

}  // namespace svt
