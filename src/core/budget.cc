#include "core/budget.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"

namespace svt {

BudgetAllocation::BudgetAllocation(double r1, double r2, std::string name)
    : r1_(r1), r2_(r2), name_(std::move(name)) {
  SVT_CHECK(r1 > 0.0 && r2 > 0.0)
      << "allocation ratio must be positive: " << r1 << ":" << r2;
}

BudgetAllocation BudgetAllocation::Halves() {
  return BudgetAllocation(1.0, 1.0, "1:1");
}

BudgetAllocation BudgetAllocation::Ratio(double r1, double r2) {
  std::ostringstream name;
  name << r1 << ":" << r2;
  return BudgetAllocation(r1, r2, name.str());
}

BudgetAllocation BudgetAllocation::OneToThree() {
  return BudgetAllocation(1.0, 3.0, "1:3");
}

BudgetAllocation BudgetAllocation::OneToC(int cutoff) {
  SVT_CHECK(cutoff >= 1);
  return BudgetAllocation(1.0, static_cast<double>(cutoff), "1:c");
}

BudgetAllocation BudgetAllocation::Optimal(int cutoff, bool monotonic) {
  SVT_CHECK(cutoff >= 1);
  const double c = static_cast<double>(cutoff);
  if (monotonic) {
    return BudgetAllocation(1.0, std::pow(c, 2.0 / 3.0), "1:c^2/3");
  }
  return BudgetAllocation(1.0, std::pow(2.0 * c, 2.0 / 3.0), "1:(2c)^2/3");
}

BudgetSplit BudgetAllocation::Split(double epsilon,
                                    double numeric_fraction) const {
  SVT_CHECK(epsilon > 0.0) << "epsilon must be positive, got " << epsilon;
  SVT_CHECK(numeric_fraction >= 0.0 && numeric_fraction < 1.0)
      << "numeric_fraction must be in [0,1), got " << numeric_fraction;
  BudgetSplit split;
  split.epsilon3 = epsilon * numeric_fraction;
  const double indicator = epsilon - split.epsilon3;
  split.epsilon1 = indicator * r1_ / (r1_ + r2_);
  split.epsilon2 = indicator * r2_ / (r1_ + r2_);
  return split;
}

double ComparisonNoiseVariance(const BudgetSplit& split, double sensitivity,
                               int cutoff, bool monotonic) {
  SVT_CHECK(split.epsilon1 > 0.0 && split.epsilon2 > 0.0);
  SVT_CHECK(sensitivity > 0.0);
  SVT_CHECK(cutoff >= 1);
  const double c = static_cast<double>(cutoff);
  const double k = monotonic ? 1.0 : 2.0;
  const double rho_scale = sensitivity / split.epsilon1;
  const double nu_scale = k * c * sensitivity / split.epsilon2;
  // Var[Lap(b)] = 2 b^2; the two noises are independent, so variances add.
  return 2.0 * rho_scale * rho_scale + 2.0 * nu_scale * nu_scale;
}

double AdvancedCompositionEpsilon(int k, double epsilon, double delta_prime) {
  SVT_CHECK(k >= 1);
  SVT_CHECK(epsilon > 0.0);
  SVT_CHECK(delta_prime > 0.0 && delta_prime < 1.0);
  const double kk = static_cast<double>(k);
  return std::sqrt(2.0 * kk * std::log(1.0 / delta_prime)) * epsilon +
         kk * epsilon * std::expm1(epsilon);
}

double PerStepEpsilonForAdvancedComposition(int k, double target_epsilon,
                                            double delta_prime) {
  SVT_CHECK(k >= 1);
  SVT_CHECK(target_epsilon > 0.0);
  SVT_CHECK(delta_prime > 0.0 && delta_prime < 1.0);
  // eps' is strictly increasing in eps; bisect on [0, target].
  double lo = 0.0;
  double hi = target_epsilon;  // composing never shrinks the budget
  for (int it = 0; it < 200 && (hi - lo) > 1e-15 * (1.0 + hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= 0.0) break;
    if (AdvancedCompositionEpsilon(k, mid, delta_prime) <= target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PrivacyAccountant::PrivacyAccountant(double total_epsilon)
    : total_(total_epsilon) {
  SVT_CHECK(total_epsilon > 0.0);
}

bool PrivacyAccountant::CanCharge(double epsilon) const {
  if (epsilon < 0.0) return false;
  // Tolerate rounding at the boundary: many small charges that sum to the
  // total should not spuriously fail.
  constexpr double kSlack = 1e-9;
  return spent_ + epsilon <= total_ * (1.0 + kSlack);
}

Status PrivacyAccountant::Charge(double epsilon) {
  if (epsilon < 0.0) {
    return Status::InvalidArgument("cannot charge negative epsilon");
  }
  if (!CanCharge(epsilon)) {
    // Round-trip formatting: boundary failures differ from the total in the
    // last few ulps, which std::to_string's fixed 6 digits would hide.
    return Status::Exhausted("privacy budget exhausted: spent " +
                             FormatDouble(spent_) + " + " +
                             FormatDouble(epsilon) + " > total " +
                             FormatDouble(total_));
  }
  spent_ += epsilon;
  return Status::OK();
}

}  // namespace svt
