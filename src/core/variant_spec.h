// VariantSpec: declarative description of an SVT variant's noise structure.
//
// Every SVT-family mechanism in the library exposes a VariantSpec describing
// exactly how it perturbs the threshold and queries, whether it stops after
// c positives, whether it refreshes the threshold noise, and what it emits
// for positives. The audit module (src/audit) evaluates output
// probabilities *from the spec alone*, independently of the sampling code,
// so closed-form analysis and simulation cross-validate each other.
//
// The spec fields line up with the four-step decomposition of §3 of the
// paper and with the rows of its Figure 2.

#ifndef SPARSEVEC_CORE_VARIANT_SPEC_H_
#define SPARSEVEC_CORE_VARIANT_SPEC_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/budget.h"

namespace svt {

/// The privacy property a variant actually satisfies (Figure 2, last row).
enum class PrivacyClass {
  /// ε-DP with the stated ε (Alg. 1, 2, 7).
  kPureDp,
  /// ε'-DP only for ε' = factor·ε with factor > 1 (Alg. 4: (1+6c)/4).
  kScaledDp,
  /// Not ε'-DP for any finite ε' — "∞-DP" in the paper (Alg. 3, 5, 6, GPTT).
  kInfiniteDp,
};

std::string_view PrivacyClassToString(PrivacyClass c);

/// Which of the six published algorithms (plus our standard Alg. 7 and the
/// GPTT abstraction) a spec corresponds to.
enum class VariantId {
  kAlg1,      ///< paper's proposed instantiation (ε-DP)
  kAlg2,      ///< Dwork & Roth 2014 book (ε-DP)
  kAlg3,      ///< Roth's 2011 lecture notes (∞-DP)
  kAlg4,      ///< Lee & Clifton 2014 ((1+6c)/4·ε-DP)
  kAlg5,      ///< Stoddard et al. 2014 (∞-DP)
  kAlg6,      ///< Chen et al. 2015 (∞-DP)
  kStandard,  ///< Alg. 7, the paper's generalized standard SVT (ε-DP)
  kGptt,      ///< generalized private threshold testing ([2], §3.3)
  kExpNoise,  ///< exponential-noise SVT (Liu et al., arXiv 2407.20068)
  kRevisited, ///< revisited SVT monitor (Kaplan et al., arXiv 2010.00917)
};

std::string_view VariantIdToString(VariantId id);

/// Which family a noise role draws from. This is the pluggable
/// distribution axis of the engine: the spec names a kind per role, the
/// streaming/batch engines pick the matching vecmath kernels, and the
/// auditor picks the matching densities/CDFs — no layer hard-codes
/// Laplace.
enum class NoiseKind {
  /// Two-sided Lap(b), density (1/2b) e^{-|x|/b}; two 64-bit draws per
  /// variate (magnitude word + sign word).
  kLaplace,
  /// One-sided Exp(b), density (1/b) e^{-x/b} on [0, +inf); one 64-bit
  /// draw per variate.
  kExponential,
};

std::string_view NoiseKindToString(NoiseKind k);

/// Noise structure of one SVT variant. Each scale is interpreted under its
/// role's NoiseKind: b in Lap(b) for kLaplace, b in Exp(b) (the mean) for
/// kExponential. The numeric-answer noise (numeric_scale) is always
/// Laplace — a one-sided numeric answer would bias the emitted values.
struct VariantSpec {
  std::string name;

  /// Total privacy budget the variant claims to satisfy.
  double epsilon = 1.0;
  /// Query sensitivity Δ.
  double sensitivity = 1.0;

  /// Distribution family of the threshold noise ρ (and of its resamples).
  NoiseKind rho_kind = NoiseKind::kLaplace;
  /// Distribution family of the per-query noise ν_i.
  NoiseKind nu_kind = NoiseKind::kLaplace;

  /// Scale of the threshold noise ρ.
  double rho_scale = 0.0;
  /// Scale of the per-query noise ν_i; 0 means no query noise (Alg. 5).
  double nu_scale = 0.0;

  /// Maximum number of positive outcomes before aborting; nullopt means the
  /// variant answers unbounded ⊤'s (Alg. 5, 6, GPTT) — one of the two
  /// "not private" rows in Figure 2.
  std::optional<int> cutoff;

  /// Alg. 2: re-draw ρ with scale `rho_resample_scale` after each ⊤.
  bool resample_rho_after_positive = false;
  double rho_resample_scale = 0.0;

  /// Alg. 3: emit q_i(D)+ν_i (the comparison noise!) instead of ⊤ — the
  /// other "not private" row in Figure 2.
  bool output_query_value_on_positive = false;

  /// Alg. 7 with ε₃ > 0: emit q_i(D)+Lap(numeric_scale) (fresh noise; this
  /// one is private).
  double numeric_scale = 0.0;

  /// Budget split behind the scales above (informational).
  BudgetSplit budget;

  /// What the variant actually satisfies, per the paper's analysis.
  PrivacyClass actual_privacy = PrivacyClass::kPureDp;
  /// For kScaledDp: the multiplier on ε (e.g. (1+6c)/4 for Alg. 4, or
  /// (1+3c)/4 for monotonic queries).
  double privacy_scale_factor = 1.0;

  /// True when this mechanism emits numeric values for positives.
  bool emits_numeric() const {
    return output_query_value_on_positive || numeric_scale > 0.0;
  }
};

/// Factory functions reproducing Figure 1's parameterizations exactly.
/// All require epsilon > 0, sensitivity > 0, and (where applicable)
/// cutoff >= 1.

/// Alg. 1: ε₁ = ε/2, ρ ~ Lap(Δ/ε₁); ν ~ Lap(2cΔ/ε₂); cutoff c. ε-DP.
VariantSpec MakeAlg1Spec(double epsilon, double sensitivity, int cutoff);

/// Alg. 2 (Dwork & Roth book): ρ ~ Lap(cΔ/ε₁), resampled with scale cΔ/ε₂
/// after each ⊤; ν ~ Lap(2cΔ/ε₁); cutoff c. ε-DP, but the extra factor of
/// c on the threshold noise costs accuracy (§6's SVT-DPBook).
VariantSpec MakeAlg2Spec(double epsilon, double sensitivity, int cutoff);

/// Alg. 3 (Roth's notes): ν ~ Lap(cΔ/ε₂); positives emit q+ν. ∞-DP.
VariantSpec MakeAlg3Spec(double epsilon, double sensitivity, int cutoff);

/// Alg. 4 (Lee & Clifton): ε₁ = ε/4; ν ~ Lap(Δ/ε₂). Only ((1+6c)/4)ε-DP
/// (or ((1+3c)/4)ε for monotonic queries).
VariantSpec MakeAlg4Spec(double epsilon, double sensitivity, int cutoff,
                         bool monotonic = false);

/// Alg. 5 (Stoddard et al.): ν = 0, no cutoff. ∞-DP.
VariantSpec MakeAlg5Spec(double epsilon, double sensitivity);

/// Alg. 6 (Chen et al.): ν ~ Lap(Δ/ε₂), no cutoff. ∞-DP.
VariantSpec MakeAlg6Spec(double epsilon, double sensitivity);

/// Alg. 7, the paper's standard SVT: explicit (ε₁, ε₂, ε₃); ρ ~ Lap(Δ/ε₁);
/// ν ~ Lap(2cΔ/ε₂) (or Lap(cΔ/ε₂) when monotonic, Thm. 5); positives emit
/// ⊤, or q+Lap(cΔ/ε₃) when ε₃ > 0. (ε₁+ε₂+ε₃)-DP.
VariantSpec MakeStandardSpec(const BudgetSplit& split, double sensitivity,
                             int cutoff, bool monotonic = false);

/// GPTT ([2]): ρ ~ Lap(Δ/ε₁), ν ~ Lap(Δ/ε₂), no cutoff. Equals Alg. 6 when
/// ε₁ = ε₂ = ε/2. ∞-DP.
VariantSpec MakeGpttSpec(double epsilon1, double epsilon2,
                         double sensitivity);

/// Exponential-noise SVT (Liu et al., arXiv 2407.20068): ε₁ = ε₂ = ε/2,
/// ρ ~ Exp(Δ/ε₁) one-sided, ν ~ Lap(2cΔ/ε₂); cutoff c. ε-DP — the SVT
/// privacy proof constrains the ρ density only through
/// p(z + Δ) >= e^{-ε₁} p(z), which Exp(Δ/ε₁) satisfies on its support
/// exactly like Lap(Δ/ε₁), at half the standard deviation (the accuracy
/// enhancement).
VariantSpec MakeExpNoiseSpec(double epsilon, double sensitivity, int cutoff);

/// Revisited SVT (Kaplan, Mansour & Stemmer, arXiv 2010.00917) — the
/// ThresholdMonitor shape on the exponential axis: cutoff c, ρ ~ Exp(cΔ/ε₁)
/// re-drawn (same kind and scale) after every ⊤, ν ~ Exp(2cΔ/ε₂) one-sided,
/// ε₁ = ε₂ = ε/2. ε-DP in this pure-ε parameterization via adaptive
/// composition of at most c unit-cutoff AboveThreshold segments, each
/// funded ε/c; the paper's tighter ~√c analysis needs (ε, δ) accounting,
/// outside this library's pure-ε auditor.
VariantSpec MakeRevisitedSpec(double epsilon, double sensitivity, int cutoff);

/// Spec for a variant id with the default paper parameterization.
VariantSpec MakeSpec(VariantId id, double epsilon, double sensitivity,
                     int cutoff);

}  // namespace svt

#endif  // SPARSEVEC_CORE_VARIANT_SPEC_H_
