#include "core/svt_retraversal.h"

#include <cmath>

#include "common/check.h"
#include "common/distributions.h"

namespace svt {

Status RetraversalOptions::Validate() const {
  SVT_RETURN_NOT_OK(svt.Validate());
  if (threshold_boost_devs < 0.0) {
    return Status::InvalidArgument("threshold_boost_devs must be >= 0");
  }
  if (max_passes < 1) {
    return Status::InvalidArgument("max_passes must be >= 1");
  }
  return Status::OK();
}

Result<RetraversalResult> SelectWithRetraversal(
    std::span<const double> scores, double base_threshold,
    const RetraversalOptions& options, Rng& rng) {
  SVT_RETURN_NOT_OK(options.Validate());
  SVT_ASSIGN_OR_RETURN(std::unique_ptr<SparseVector> mech,
                       SparseVector::Create(options.svt, &rng));

  // "kD": one standard deviation of Lap(b) is sqrt(2)*b.
  const double boost = options.threshold_boost_devs * std::sqrt(2.0) *
                       mech->query_noise_scale();
  const double threshold = base_threshold + boost;

  RetraversalResult result;
  result.boosted_threshold = threshold;

  std::vector<size_t> candidates(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) candidates[i] = i;

  const size_t want = static_cast<size_t>(options.svt.cutoff);
  while (result.selected.size() < want &&
         result.passes_used < options.max_passes && !candidates.empty()) {
    ++result.passes_used;
    std::vector<size_t> still_unselected;
    still_unselected.reserve(candidates.size());
    for (size_t idx : candidates) {
      if (mech->exhausted()) {
        still_unselected.push_back(idx);
        continue;
      }
      ++result.comparisons;
      const Response r = mech->Process(scores[idx], threshold);
      if (r.is_positive()) {
        result.selected.push_back(idx);
      } else {
        still_unselected.push_back(idx);
      }
    }
    candidates.swap(still_unselected);
    if (mech->exhausted()) break;
  }
  return result;
}

}  // namespace svt
