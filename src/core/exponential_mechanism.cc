#include "core/exponential_mechanism.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/distributions.h"
#include "common/math_util.h"
#include "common/vecmath.h"

namespace svt {

Status EmOptions::Validate(size_t num_candidates) const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (!(sensitivity > 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument("sensitivity must be positive and finite");
  }
  if (num_selections < 1) {
    return Status::InvalidArgument("num_selections must be >= 1");
  }
  if (static_cast<size_t>(num_selections) > num_candidates) {
    return Status::InvalidArgument(
        "num_selections exceeds number of candidates");
  }
  return Status::OK();
}

Result<size_t> ExponentialMechanism::SelectOne(std::span<const double> scores,
                                               double epsilon,
                                               double sensitivity,
                                               bool monotonic, Rng& rng) {
  if (scores.empty()) {
    return Status::InvalidArgument("SelectOne requires at least one score");
  }
  if (!(epsilon > 0.0) || !(sensitivity > 0.0)) {
    return Status::InvalidArgument("epsilon and sensitivity must be positive");
  }
  const double coef =
      monotonic ? epsilon / sensitivity : epsilon / (2.0 * sensitivity);

  // Inverse-CDF in log space: draw u, find smallest prefix with cumulative
  // log-weight >= log(u) + logZ. Exact regardless of score magnitudes.
  std::vector<double> logw(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) logw[i] = coef * scores[i];
  const double log_z = LogSumExp(logw);

  // The draw-side log goes through vecmath like every other sampler, so
  // this path adds no dispatch-level dependence. (LogSumExp/LogAddExp
  // stay on libm — they evaluate scores, not draws — so unlike the SVT
  // samplers, SelectOne outcomes can still differ across hosts with
  // different libm implementations at ulp-boundary seeds.)
  const double u = rng.NextDoublePositive();
  const double target = vec::Log(u) + log_z;

  double cumulative = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < logw.size(); ++i) {
    cumulative = LogAddExp(cumulative, logw[i]);
    if (cumulative >= target) return i;
  }
  // Rounding can leave the final cumulative infinitesimally below logZ.
  return scores.size() - 1;
}

Result<std::vector<size_t>> ExponentialMechanism::SelectTopCSequential(
    std::span<const double> scores, const EmOptions& options, Rng& rng) {
  SVT_RETURN_NOT_OK(options.Validate(scores.size()));
  const double round_epsilon =
      options.epsilon / static_cast<double>(options.num_selections);

  std::vector<size_t> remaining(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) remaining[i] = i;
  std::vector<double> pool(scores.begin(), scores.end());

  std::vector<size_t> selected;
  selected.reserve(options.num_selections);
  for (int round = 0; round < options.num_selections; ++round) {
    SVT_ASSIGN_OR_RETURN(
        size_t pick, SelectOne(pool, round_epsilon, options.sensitivity,
                               options.monotonic, rng));
    selected.push_back(remaining[pick]);
    // Swap-remove the chosen candidate from the pool.
    remaining[pick] = remaining.back();
    remaining.pop_back();
    pool[pick] = pool.back();
    pool.pop_back();
  }
  return selected;
}

Result<std::vector<size_t>> ExponentialMechanism::SelectTopC(
    std::span<const double> scores, const EmOptions& options, Rng& rng) {
  SVT_RETURN_NOT_OK(options.Validate(scores.size()));
  const double round_epsilon =
      options.epsilon / static_cast<double>(options.num_selections);
  const double coef = options.monotonic
                          ? round_epsilon / options.sensitivity
                          : round_epsilon / (2.0 * options.sensitivity);

  // Gumbel-top-k: keys_i = coef*score_i + Gumbel_i; the indices of the c
  // largest keys are distributed exactly as c rounds of EM without
  // replacement over these scores. The noise is bulk-sampled; the block
  // is draw-for-draw identical to a scalar SampleGumbel loop.
  std::vector<double> gumbels(scores.size());
  SampleGumbelBlock(rng, gumbels);
  std::vector<std::pair<double, size_t>> keys(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    keys[i] = {coef * scores[i] + gumbels[i], i};
  }
  const size_t c = static_cast<size_t>(options.num_selections);
  std::partial_sort(
      keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(c), keys.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<size_t> selected(c);
  for (size_t i = 0; i < c; ++i) selected[i] = keys[i].second;
  return selected;
}

}  // namespace svt
