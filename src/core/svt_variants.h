// The six published SVT variants analyzed in §3 (Figure 1) plus GPTT.
//
// Alg. 1 is realized by SparseVector (core/svt.h) with default options.
// The classes below implement the remaining variants *exactly as published*,
// including the ones that are not differentially private — those exist so
// that the audit module can demonstrate their privacy failures numerically
// (reproducing Theorems 3, 6, 7) and so the benches can reproduce Figure 2.
//
// ┌──────────────────────┬────────┬───────────────┬──────────────┬────────┐
// │ class                │ ε₁     │ ρ scale       │ ν scale      │ DP?    │
// ├──────────────────────┼────────┼───────────────┼──────────────┼────────┤
// │ DworkRothSvt  (Alg2) │ ε/2    │ cΔ/ε₁ (resmpl)│ 2cΔ/ε₁       │ ε-DP   │
// │ RothNotesSvt  (Alg3) │ ε/2    │ Δ/ε₁          │ cΔ/ε₂  (emit)│ ∞-DP   │
// │ LeeCliftonSvt (Alg4) │ ε/4    │ Δ/ε₁          │ Δ/ε₂         │ scaled │
// │ StoddardSvt   (Alg5) │ ε/2    │ Δ/ε₁          │ 0            │ ∞-DP   │
// │ ChenSvt       (Alg6) │ ε/2    │ Δ/ε₁          │ Δ/ε₂         │ ∞-DP   │
// │ Gptt                 │ ε₁     │ Δ/ε₁          │ Δ/ε₂         │ ∞-DP   │
// └──────────────────────┴────────┴───────────────┴──────────────┴────────┘
//
// Post-paper variants on the exponential-noise axis (ROADMAP item 5(b);
// "E" marks a one-sided Exp(b) role, everything above is Laplace):
//
// ┌──────────────────────┬────────┬────────────────┬──────────────┬───────┐
// │ class                │ ε₁     │ ρ scale        │ ν scale      │ DP?   │
// ├──────────────────────┼────────┼────────────────┼──────────────┼───────┤
// │ ExpNoiseSvt          │ ε/2    │ Δ/ε₁ (E)       │ 2cΔ/ε₂       │ ε-DP  │
// │ RevisitedSvt         │ ε/2    │ cΔ/ε₁ (E,rsmpl)│ 2cΔ/ε₂ (E)   │ ε-DP  │
// └──────────────────────┴────────┴────────────────┴──────────────┴───────┘

#ifndef SPARSEVEC_CORE_SVT_VARIANTS_H_
#define SPARSEVEC_CORE_SVT_VARIANTS_H_

#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "core/svt.h"
#include "core/variant_spec.h"

namespace svt {

// The shared SpecDrivenSvt engine (noisy threshold, optional query noise,
// cutoff, ρ resampling, numeric output) lives in core/svt.h so that the
// batch execution engine and SparseVector can build on it too; the classes
// below differ only in their VariantSpec.

/// Alg. 2 — SVT as given in Dwork & Roth's 2014 book. ε-DP, but both noise
/// scales carry an extra factor of c relative to Alg. 1, making it the
/// least accurate private variant (§6's SVT-DPBook curves).
class DworkRothSvt final : public SpecDrivenSvt {
 public:
  static Result<std::unique_ptr<DworkRothSvt>> Create(double epsilon,
                                                      double sensitivity,
                                                      int cutoff, Rng* rng);

 private:
  DworkRothSvt(VariantSpec spec, Rng* rng)
      : SpecDrivenSvt(std::move(spec), rng) {}
};

/// Alg. 3 — Roth's 2011 lecture notes. NOT differentially private for any
/// finite ε (Theorem 6 / Appendix 10.1): it answers positives with
/// q_i(D)+ν_i, and the emitted value upper-bounds the noisy threshold,
/// leaking ρ.
class RothNotesSvt final : public SpecDrivenSvt {
 public:
  static Result<std::unique_ptr<RothNotesSvt>> Create(double epsilon,
                                                      double sensitivity,
                                                      int cutoff, Rng* rng);

 private:
  RothNotesSvt(VariantSpec spec, Rng* rng)
      : SpecDrivenSvt(std::move(spec), rng) {}
};

/// Alg. 4 — Lee & Clifton 2014. Claims ε-DP but satisfies only
/// ((1+6c)/4)ε-DP in general ((1+3c)/4 for monotonic queries): the query
/// noise Lap(Δ/ε₂) does not scale with the cutoff c.
class LeeCliftonSvt final : public SpecDrivenSvt {
 public:
  static Result<std::unique_ptr<LeeCliftonSvt>> Create(
      double epsilon, double sensitivity, int cutoff, Rng* rng,
      bool monotonic = false);

 private:
  LeeCliftonSvt(VariantSpec spec, Rng* rng)
      : SpecDrivenSvt(std::move(spec), rng) {}
};

/// Alg. 5 — Stoddard et al. 2014. NOT differentially private for any finite
/// ε (Theorem 3): adds no query noise and never stops, so a single
/// ⟨⊥,⊤⟩-vs-⟨⊤,⊥⟩ pair of neighboring datasets already has unbounded
/// probability ratio.
class StoddardSvt final : public SpecDrivenSvt {
 public:
  static Result<std::unique_ptr<StoddardSvt>> Create(double epsilon,
                                                     double sensitivity,
                                                     Rng* rng);

 private:
  StoddardSvt(VariantSpec spec, Rng* rng)
      : SpecDrivenSvt(std::move(spec), rng) {}
};

/// Alg. 6 — Chen et al. 2015. NOT differentially private for any finite ε
/// (Theorem 7 / Appendix 10.2): per-query noise without the factor of c and
/// no cutoff on positive outcomes.
class ChenSvt final : public SpecDrivenSvt {
 public:
  static Result<std::unique_ptr<ChenSvt>> Create(double epsilon,
                                                 double sensitivity,
                                                 Rng* rng);

 private:
  ChenSvt(VariantSpec spec, Rng* rng) : SpecDrivenSvt(std::move(spec), rng) {}
};

/// GPTT — the "generalized private threshold testing" abstraction of
/// [Chen & Machanavajjhala 2015] analyzed in §3.3: threshold noise Lap(Δ/ε₁),
/// query noise Lap(Δ/ε₂), no cutoff. Equals Alg. 6 at ε₁ = ε₂ = ε/2.
/// ∞-DP (although, as §3.3 shows, the non-privacy proof in [2] was itself
/// flawed; see audit/counterexamples.h).
class Gptt final : public SpecDrivenSvt {
 public:
  static Result<std::unique_ptr<Gptt>> Create(double epsilon1,
                                              double epsilon2,
                                              double sensitivity, Rng* rng);

 private:
  Gptt(VariantSpec spec, Rng* rng) : SpecDrivenSvt(std::move(spec), rng) {}
};

/// Exponential-noise SVT (Liu et al., arXiv 2407.20068): Alg. 1's budget
/// split with the threshold noise swapped for one-sided Exp(Δ/ε₁) — same
/// ε-DP guarantee, half the threshold-noise standard deviation. ε-DP.
class ExpNoiseSvt final : public SpecDrivenSvt {
 public:
  static Result<std::unique_ptr<ExpNoiseSvt>> Create(double epsilon,
                                                     double sensitivity,
                                                     int cutoff, Rng* rng);

 private:
  ExpNoiseSvt(VariantSpec spec, Rng* rng)
      : SpecDrivenSvt(std::move(spec), rng) {}
};

/// Revisited SVT (Kaplan, Mansour & Stemmer, arXiv 2010.00917), the
/// ThresholdMonitor shape on the exponential axis: ρ ~ Exp(cΔ/ε₁) re-drawn
/// after every ⊤, ν ~ Exp(2cΔ/ε₂), cutoff c. ε-DP in the library's pure-ε
/// parameterization (see MakeRevisitedSpec for the accounting).
class RevisitedSvt final : public SpecDrivenSvt {
 public:
  static Result<std::unique_ptr<RevisitedSvt>> Create(double epsilon,
                                                      double sensitivity,
                                                      int cutoff, Rng* rng);

 private:
  RevisitedSvt(VariantSpec spec, Rng* rng)
      : SpecDrivenSvt(std::move(spec), rng) {}
};

/// Runs an arbitrary VariantSpec directly. This is how the audit module's
/// Monte-Carlo estimator simulates exactly the noise structure whose output
/// probability the closed-form path computes analytically.
class CustomSvt final : public SpecDrivenSvt {
 public:
  CustomSvt(VariantSpec spec, Rng* rng) : SpecDrivenSvt(std::move(spec), rng) {}
};

/// Builds any variant by id with its paper-default parameterization.
/// For kAlg1/kStandard this wraps SparseVector; `cutoff` is ignored by the
/// no-cutoff variants (Alg. 5, 6, GPTT).
Result<std::unique_ptr<SvtMechanism>> MakeVariantMechanism(
    VariantId id, double epsilon, double sensitivity, int cutoff, Rng* rng);

}  // namespace svt

#endif  // SPARSEVEC_CORE_SVT_VARIANTS_H_
