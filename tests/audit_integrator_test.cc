#include "audit/integrator.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/distributions.h"

namespace svt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IntegrateIntervalTest, Polynomial) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(IntegrateInterval(f, 0.0, 1.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(IntegrateInterval(f, -2.0, 2.0), 16.0 / 3.0, 1e-12);
}

TEST(IntegrateIntervalTest, DegenerateInterval) {
  const auto f = [](double) { return 1.0; };
  EXPECT_EQ(IntegrateInterval(f, 1.0, 1.0), 0.0);
  EXPECT_EQ(IntegrateInterval(f, 2.0, 1.0), 0.0);
}

TEST(IntegrateIntervalTest, SmoothExponential) {
  const auto f = [](double x) { return std::exp(-x); };
  EXPECT_NEAR(IntegrateInterval(f, 0.0, 10.0), 1.0 - std::exp(-10.0), 1e-10);
}

TEST(IntegrateIntervalTest, Oscillatory) {
  const auto f = [](double x) { return std::sin(x); };
  EXPECT_NEAR(IntegrateInterval(f, 0.0, M_PI), 2.0, 1e-10);
}

TEST(IntegratePiecewiseTest, AbsKinkWithKnot) {
  const auto f = [](double x) { return std::abs(x); };
  EXPECT_NEAR(IntegratePiecewise(f, -1.0, 1.0, {0.0}), 1.0, 1e-12);
}

TEST(IntegratePiecewiseTest, LaplacePdfTotalMass) {
  const Laplace d(0.0, 1.5);
  const auto f = [&d](double x) { return d.Pdf(x); };
  EXPECT_NEAR(IntegratePiecewise(f, -80.0, 80.0, {0.0}), 1.0, 1e-10);
}

TEST(IntegratePiecewiseTest, StepFunctionSplitAtJump) {
  // f = 1 on [0,1), 3 on [1,2]; knot at the jump keeps Simpson exact.
  const auto f = [](double x) { return x < 1.0 ? 1.0 : 3.0; };
  EXPECT_NEAR(IntegratePiecewise(f, 0.0, 2.0, {1.0}), 4.0, 1e-9);
}

TEST(IntegratePiecewiseTest, IgnoresOutOfRangeAndDuplicateKnots) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(
      IntegratePiecewise(f, 0.0, 1.0, {-5.0, 0.5, 0.5, 0.5, 7.0}), 0.5,
      1e-12);
}

TEST(IntegratePiecewiseTest, ManyKnots) {
  const Laplace d(0.0, 1.0);
  std::vector<double> knots;
  for (int i = -20; i <= 20; ++i) knots.push_back(i * 0.5);
  const auto f = [&d](double x) { return d.Pdf(x); };
  EXPECT_NEAR(IntegratePiecewise(f, -60.0, 60.0, knots), 1.0, 1e-10);
}

TEST(LogIntegrateTest, MatchesLinearIntegrationWhenSafe) {
  const Laplace d(0.0, 2.0);
  const auto log_f = [&d](double x) { return d.LogPdf(x); };
  const double log_mass = LogIntegratePiecewise(log_f, -100.0, 100.0, {0.0});
  EXPECT_NEAR(log_mass, 0.0, 1e-9);  // log(1)
}

TEST(LogIntegrateTest, HandlesExtremeUnderflow) {
  // f(x) = exp(-2000) * LaplacePdf(x): linear integration would be 0.
  const Laplace d(0.0, 1.0);
  const auto log_f = [&d](double x) { return -2000.0 + d.LogPdf(x); };
  const double log_mass = LogIntegratePiecewise(log_f, -60.0, 60.0, {0.0});
  EXPECT_NEAR(log_mass, -2000.0, 1e-8);
}

TEST(LogIntegrateTest, GaussianNormalization) {
  const auto log_f = [](double x) { return -0.5 * x * x; };
  const double expect = 0.5 * std::log(2.0 * M_PI);
  EXPECT_NEAR(LogIntegratePiecewise(log_f, -40.0, 40.0, {}), expect, 1e-9);
}

TEST(LogIntegrateTest, ZeroIntegrandGivesNegInf) {
  const auto log_f = [](double) { return -kInf; };
  EXPECT_EQ(LogIntegratePiecewise(log_f, 0.0, 1.0, {}), -kInf);
}

TEST(LogIntegrateTest, EmptyIntervalGivesNegInf) {
  const auto log_f = [](double) { return 0.0; };
  EXPECT_EQ(LogIntegratePiecewise(log_f, 1.0, 1.0, {}), -kInf);
  EXPECT_EQ(LogIntegratePiecewise(log_f, 2.0, 1.0, {}), -kInf);
}

TEST(LogIntegrateTest, PartiallyInfiniteIntegrand) {
  // exp(log_f) = Laplace pdf restricted to x > 0: mass 1/2, with a hard
  // -inf region the integrator must survive.
  const Laplace d(0.0, 1.0);
  const auto log_f = [&d](double x) {
    return x > 0.0 ? d.LogPdf(x) : -kInf;
  };
  EXPECT_NEAR(LogIntegratePiecewise(log_f, -50.0, 50.0, {0.0}),
              std::log(0.5), 1e-6);
}

TEST(LogIntegrateTest, ProductOfManyCdfsStaysAccurate) {
  // ∫ p(z) F(z)^m dz for Laplace p, F: exact value computable by
  // substitution u = F_rho(z)? Not closed form in general, but m = 0 gives
  // exactly 1, and the value must decrease monotonically with m.
  const Laplace rho(0.0, 2.0);
  const Laplace nu(0.0, 4.0);
  double prev = 1.0;
  for (int m : {1, 2, 4, 8, 16, 32}) {
    const auto log_f = [&](double z) {
      return rho.LogPdf(z) + m * nu.LogCdf(z);
    };
    const double v =
        std::exp(LogIntegratePiecewise(log_f, -400.0, 400.0, {0.0}));
    EXPECT_LT(v, prev) << "m=" << m;
    EXPECT_GT(v, 0.0);
    prev = v;
  }
}

TEST(IntegrationOptionsTest, LooserToleranceStillReasonable) {
  IntegrationOptions loose;
  loose.rel_tol = 1e-4;
  const auto f = [](double x) { return std::exp(-x * x); };
  EXPECT_NEAR(IntegrateInterval(f, -10.0, 10.0, loose), std::sqrt(M_PI),
              1e-3);
}

}  // namespace
}  // namespace svt
