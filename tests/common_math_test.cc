#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/stats.h"

namespace svt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogAddExpTest, MatchesDirectComputation) {
  EXPECT_NEAR(LogAddExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-14);
  EXPECT_NEAR(LogAddExp(0.0, 0.0), std::log(2.0), 1e-14);
}

TEST(LogAddExpTest, HandlesLargeMagnitudes) {
  // exp(1000) overflows; the log-sum must not.
  EXPECT_NEAR(LogAddExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-10);
  EXPECT_NEAR(LogAddExp(-1000.0, -1001.0),
              -1000.0 + std::log1p(std::exp(-1.0)), 1e-10);
}

TEST(LogAddExpTest, NegativeInfinityIsIdentity) {
  EXPECT_DOUBLE_EQ(LogAddExp(-kInf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(LogAddExp(3.0, -kInf), 3.0);
  EXPECT_DOUBLE_EQ(LogAddExp(-kInf, -kInf), -kInf);
}

TEST(LogSumExpTest, EmptyIsNegInf) {
  EXPECT_DOUBLE_EQ(LogSumExp({}), -kInf);
}

TEST(LogSumExpTest, SingletonIsIdentity) {
  const std::vector<double> v = {-3.25};
  EXPECT_DOUBLE_EQ(LogSumExp(v), -3.25);
}

TEST(LogSumExpTest, MatchesPairwise) {
  const std::vector<double> v = {0.1, -2.0, 5.0, 3.3};
  double expect = -kInf;
  for (double x : v) expect = LogAddExp(expect, x);
  EXPECT_NEAR(LogSumExp(v), expect, 1e-12);
}

TEST(KahanTest, CompensatesSmallAdds) {
  KahanAccumulator acc;
  acc.Add(1.0);
  for (int i = 0; i < 10000000; ++i) acc.Add(1e-16);
  EXPECT_NEAR(acc.sum(), 1.0 + 1e-9, 1e-12);
}

TEST(KahanTest, ResetClears) {
  KahanAccumulator acc;
  acc.Add(5.0);
  acc.Reset();
  EXPECT_EQ(acc.sum(), 0.0);
}

TEST(SgnTest, AllCases) {
  EXPECT_EQ(Sgn(3.2), 1);
  EXPECT_EQ(Sgn(-0.001), -1);
  EXPECT_EQ(Sgn(0.0), 0);
}

TEST(ClampTest, Clamps) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(RelativeDifferenceTest, Basics) {
  EXPECT_NEAR(RelativeDifference(100.0, 101.0), 1.0 / 101.0, 1e-12);
  EXPECT_EQ(RelativeDifference(0.0, 0.0), 0.0);
  EXPECT_NEAR(RelativeDifference(-2.0, 2.0), 2.0, 1e-12);
}

TEST(GeneralizedHarmonicTest, KnownValues) {
  EXPECT_NEAR(GeneralizedHarmonic(1, 1.0), 1.0, 1e-15);
  EXPECT_NEAR(GeneralizedHarmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(GeneralizedHarmonic(4, 0.0), 4.0, 1e-14);
  // H_{10000} ≈ ln(10000) + gamma.
  EXPECT_NEAR(GeneralizedHarmonic(10000, 1.0),
              std::log(10000.0) + 0.5772156649, 1e-4);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValueVarianceZero) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, a, b;
  const std::vector<double> xs = {1.0, -2.5, 3.0, 7.0, 0.0, 4.4, -1.1};
  for (size_t i = 0; i < xs.size(); ++i) {
    all.Add(xs[i]);
    (i < 3 ? a : b).Add(xs[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, ToStringFormat) {
  RunningStats s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_EQ(s.ToString(2), "2.00±1.41");
}

TEST(OneShotStatsTest, MeanAndStddev) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(SampleStddev(v), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(BinomialBoundsTest, BracketsTrueProbability) {
  // 300 successes out of 1000 at 99.9%: interval should contain 0.3.
  const double lo = BinomialLowerBound(300, 1000, 0.999);
  const double hi = BinomialUpperBound(300, 1000, 0.999);
  EXPECT_LT(lo, 0.3);
  EXPECT_GT(hi, 0.3);
  EXPECT_GT(lo, 0.25);
  EXPECT_LT(hi, 0.35);
}

TEST(BinomialBoundsTest, ZeroSuccesses) {
  EXPECT_EQ(BinomialLowerBound(0, 1000, 0.999), 0.0);
  EXPECT_GT(BinomialUpperBound(0, 1000, 0.999), 0.0);
  EXPECT_LT(BinomialUpperBound(0, 1000, 0.999), 0.02);
}

TEST(BinomialBoundsTest, AllSuccesses) {
  EXPECT_EQ(BinomialUpperBound(1000, 1000, 0.999), 1.0);
  EXPECT_LT(BinomialLowerBound(1000, 1000, 0.999), 1.0);
  EXPECT_GT(BinomialLowerBound(1000, 1000, 0.999), 0.98);
}

TEST(BinomialBoundsTest, WiderAtHigherConfidence) {
  const double lo99 = BinomialLowerBound(500, 1000, 0.99);
  const double lo999 = BinomialLowerBound(500, 1000, 0.999);
  EXPECT_LT(lo999, lo99);
}

}  // namespace
}  // namespace svt
