#include "core/top_select.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/svt_variants.h"

namespace svt {
namespace {

TEST(TrueTopCTest, FindsLargest) {
  const std::vector<double> scores = {1.0, 9.0, 3.0, 7.0, 5.0};
  const auto top2 = TrueTopC(scores, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1u);
  EXPECT_EQ(top2[1], 3u);
}

TEST(TrueTopCTest, TieBreaksByIndex) {
  const std::vector<double> scores = {5.0, 5.0, 5.0};
  const auto top2 = TrueTopC(scores, 2);
  EXPECT_EQ(top2[0], 0u);
  EXPECT_EQ(top2[1], 1u);
}

TEST(TrueTopCTest, ZeroAndFullC) {
  const std::vector<double> scores = {2.0, 1.0};
  EXPECT_TRUE(TrueTopC(scores, 0).empty());
  EXPECT_EQ(TrueTopC(scores, 2).size(), 2u);
}

TEST(PaperThresholdTest, AveragesBoundaryScores) {
  const std::vector<double> scores = {10.0, 8.0, 6.0, 4.0, 2.0};
  // c = 2: avg of 2nd (8) and 3rd (6) largest = 7.
  EXPECT_DOUBLE_EQ(PaperThreshold(scores, 2), 7.0);
  // c = 1: avg of 10 and 8 = 9.
  EXPECT_DOUBLE_EQ(PaperThreshold(scores, 1), 9.0);
}

TEST(PaperThresholdTest, UnsortedInput) {
  const std::vector<double> scores = {4.0, 10.0, 2.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(PaperThreshold(scores, 2), 7.0);
}

TEST(PaperThresholdTest, WithTies) {
  const std::vector<double> scores = {5.0, 5.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(PaperThreshold(scores, 2), 5.0);
  EXPECT_DOUBLE_EQ(PaperThreshold(scores, 3), 3.0);
}

TEST(CollectPositivesTest, MapsPositiveIndices) {
  Rng rng(1);
  SvtOptions o;
  o.epsilon = 1e6;  // negligible noise: deterministic comparisons
  o.cutoff = 10;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> scores = {10.0, -10.0, 10.0, -10.0, 10.0};
  const auto selected = CollectPositives(*mech, scores, 0.0);
  EXPECT_EQ(selected, (std::vector<size_t>{0, 2, 4}));
}

TEST(CollectPositivesTest, StopsAtCutoff) {
  Rng rng(2);
  SvtOptions o;
  o.epsilon = 1e6;
  o.cutoff = 2;
  auto mech = SparseVector::Create(o, &rng).value();
  const std::vector<double> scores(10, 100.0);
  const auto selected = CollectPositives(*mech, scores, 0.0);
  EXPECT_EQ(selected, (std::vector<size_t>{0, 1}));
}

TEST(SelectTopCWithSvtTest, EndToEnd) {
  Rng rng(3);
  SvtOptions o;
  o.epsilon = 1e5;
  o.cutoff = 3;
  o.monotonic = true;
  std::vector<double> scores(100);
  for (int i = 0; i < 100; ++i) scores[i] = i;
  const double threshold = PaperThreshold(scores, 3);  // between 97 and 96
  const auto selected =
      SelectTopCWithSvt(scores, threshold, o, rng).value();
  // Near-zero noise: the three largest (97, 98, 99) are selected.
  EXPECT_EQ(selected, (std::vector<size_t>{97, 98, 99}));
}

TEST(SelectTopCWithEmTest, EndToEnd) {
  Rng rng(4);
  EmOptions o;
  o.epsilon = 1e5;
  o.num_selections = 3;
  std::vector<double> scores(50);
  for (int i = 0; i < 50; ++i) scores[i] = i;
  const auto selected = SelectTopCWithEm(scores, o, rng).value();
  std::set<size_t> s(selected.begin(), selected.end());
  EXPECT_TRUE(s.count(47) && s.count(48) && s.count(49));
}

TEST(SelectTopCWithSvtTest, PropagatesInvalidOptions) {
  Rng rng(5);
  SvtOptions o;
  o.epsilon = -1.0;
  const std::vector<double> scores = {1.0, 2.0};
  EXPECT_FALSE(SelectTopCWithSvt(scores, 0.0, o, rng).ok());
}

}  // namespace
}  // namespace svt
