// Clock: the injectable time source behind serving deadlines, stalls and
// latency stats. RealClock must be monotonic and actually sleep;
// VirtualClock must move only when told to, from any thread.

#include "common/clock.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace svt {
namespace {

TEST(RealClockTest, MonotonicNonDecreasing) {
  Clock* clock = RealClock();
  int64_t last = clock->NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = clock->NowNanos();
    ASSERT_GE(now, last);
    last = now;
  }
}

TEST(RealClockTest, SleepForAdvancesTime) {
  Clock* clock = RealClock();
  const int64_t before = clock->NowNanos();
  clock->SleepFor(2'000'000);  // 2 ms
  EXPECT_GE(clock->NowNanos() - before, 2'000'000);
}

TEST(RealClockTest, SingletonIdentity) {
  EXPECT_EQ(RealClock(), RealClock());
}

TEST(VirtualClockTest, TimeMovesOnlyWhenAdvanced) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100);
  EXPECT_EQ(clock.NowNanos(), 100);  // reads don't move time
  clock.Advance(50);
  EXPECT_EQ(clock.NowNanos(), 150);
  clock.SleepFor(25);  // a "sleep" is a deterministic jump
  EXPECT_EQ(clock.NowNanos(), 175);
  clock.Advance(0);
  EXPECT_EQ(clock.NowNanos(), 175);
}

TEST(VirtualClockTest, ConcurrentAdvancesSum) {
  // Serving shards advance a shared VirtualClock from ParallelFor slices;
  // advances must never be lost.
  VirtualClock clock;
  const int kThreads = 4;
  const int kAdvancesPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdvancesPerThread; ++i) clock.Advance(3);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(clock.NowNanos(),
            static_cast<int64_t>(kThreads) * kAdvancesPerThread * 3);
}

}  // namespace
}  // namespace svt
