// Block RNG and bulk sampler contracts: (a) every Fill*/SampleBlock output
// is bit-for-bit the corresponding scalar call sequence, at sizes that
// straddle the internal chunking, at every vecmath dispatch level; (b) the
// lane-interleaved stream definition (draw-order contract step 5,
// core/svt.h) is pinned against an independent xoshiro256++ reference
// implementation; (c) golden values lock the SplitMix64 and interleaved
// streams across platforms (pure integer ops, so any compliant
// implementation must reproduce them exactly — the SplitMix64 seed-0
// values also match the published reference outputs).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/distributions.h"
#include "common/rng.h"
#include "common/vecmath.h"
#include "dispatch_test_util.h"

namespace svt {
namespace {

// Sizes chosen to straddle the lane count (4), the Fill* transform block
// (512), and the SampleBlock chunk (256): empty, sub-step, unaligned,
// exact block, block + 1, multi-block.
const size_t kSizes[] = {0, 1, 3, 4, 5, 255, 256, 257, 512, 513, 1000, 1025};

TEST(RngBlockTest, FillUint64MatchesScalarStream) {
  ScopedDispatchLevel restore;
  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    for (size_t size : kSizes) {
      // `pre` scalar draws first, so Fill starts at every lane phase.
      for (size_t pre : {0u, 1u, 2u, 3u}) {
        Rng block_rng(101), scalar_rng(101);
        for (size_t i = 0; i < pre; ++i) {
          ASSERT_EQ(block_rng.NextUint64(), scalar_rng.NextUint64());
        }
        std::vector<uint64_t> block(size);
        block_rng.FillUint64(block);
        for (size_t i = 0; i < size; ++i) {
          ASSERT_EQ(block[i], scalar_rng.NextUint64())
              << vec::DispatchLevelName(level) << " size=" << size
              << " pre=" << pre << " i=" << i;
        }
        // The two generators must land in the same state: interleaving
        // block and scalar draws is seamless.
        ASSERT_EQ(block_rng.NextUint64(), scalar_rng.NextUint64());
      }
    }
  }
}

TEST(RngBlockTest, FillUint64BitIdenticalAcrossDispatchLevels) {
  // The SIMD lockstep kernels are pure integer arithmetic and must emit
  // exactly the scalar reference stream, whatever level dispatch picked.
  ScopedDispatchLevel restore;
  ASSERT_TRUE(vec::SetDispatchLevel(vec::DispatchLevel::kScalar));
  Rng scalar_rng(311);
  std::vector<uint64_t> reference(4099);
  scalar_rng.FillUint64(reference);
  for (vec::DispatchLevel level :
       {vec::DispatchLevel::kAvx2, vec::DispatchLevel::kAvx512}) {
    if (!vec::SetDispatchLevel(level)) continue;
    Rng rng(311);
    std::vector<uint64_t> block(reference.size());
    rng.FillUint64(block);
    ASSERT_EQ(block, reference) << vec::DispatchLevelName(level);
  }
}

// Independent xoshiro256++ reference for the lane-layout contract test:
// a fresh transcription of the published algorithm, deliberately separate
// from the library's lockstep kernels.
struct RefXoshiro {
  uint64_t s[4];

  explicit RefXoshiro(uint64_t key) {
    uint64_t sm = key;
    for (auto& word : s) word = SplitMix64Next(sm);
  }

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s[0] + s[3], 23) + s[0];
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }
};

TEST(RngBlockTest, StreamIsTheDocumentedFourLaneInterleave) {
  // Draw-order contract step 5 (core/svt.h): output k is lane (k mod 4)'s
  // xoshiro256++ output at step floor(k/4), lanes seeded by SplitMix64
  // key-splitting in lane order. Pinned against the independent reference
  // above, so the layout cannot drift silently.
  const uint64_t seed = 20260731;
  uint64_t sm = seed;
  RefXoshiro lanes[4] = {
      RefXoshiro(SplitMix64Next(sm)), RefXoshiro(SplitMix64Next(sm)),
      RefXoshiro(SplitMix64Next(sm)), RefXoshiro(SplitMix64Next(sm))};

  Rng rng(seed);
  std::vector<uint64_t> block(64);
  rng.FillUint64(block);
  for (size_t k = 0; k < block.size(); k += 4) {
    for (size_t lane = 0; lane < 4; ++lane) {
      ASSERT_EQ(block[k + lane], lanes[lane].Next()) << "k=" << k
                                                     << " lane=" << lane;
    }
  }
}

TEST(RngBlockTest, FillDoubleMatchesScalarStream) {
  for (size_t size : kSizes) {
    Rng block_rng(102), scalar_rng(102);
    std::vector<double> block(size);
    block_rng.FillDouble(block);
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(block[i], scalar_rng.NextDouble()) << "size=" << size;
      ASSERT_GE(block[i], 0.0);
      ASSERT_LT(block[i], 1.0);
    }
  }
}

TEST(RngBlockTest, FillDoublePositiveMatchesScalarStream) {
  for (size_t size : kSizes) {
    Rng block_rng(103), scalar_rng(103);
    std::vector<double> block(size);
    block_rng.FillDoublePositive(block);
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(block[i], scalar_rng.NextDoublePositive()) << "size=" << size;
      ASSERT_GT(block[i], 0.0);
      ASSERT_LE(block[i], 1.0);
    }
  }
}

// Golden SplitMix64 stream from state 0 — matches the reference
// implementation's published outputs, so a transcription error in the
// mixing constants cannot survive this test on any platform.
TEST(RngGoldenTest, SplitMix64Seed0) {
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64Next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64Next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64Next(state), 0x06c45d188009454fULL);
  EXPECT_EQ(SplitMix64Next(state), 0xf88bb8a8724c81ecULL);
}

// Golden four-lane interleaved block for seed 42. Locks the seeding
// procedure, the lane layout and the lockstep kernel. Re-recorded in PR 4
// when the stream became the four-lane interleave (a one-time golden
// re-record, like PR 3's libm→vecmath switch).
TEST(RngGoldenTest, FillUint64Seed42) {
  Rng rng(42);
  uint64_t block[8];
  rng.FillUint64(block);
  const uint64_t expected[8] = {
      0xab4c4adfbb450230ULL, 0x2fcd8d44ddf09827ULL, 0xff4b7589576fd0d3ULL,
      0x165093ad8e91298dULL, 0x16c758048460b512ULL, 0x1b035635de0f5d7fULL,
      0x6386aa34f6b9dd80ULL, 0x8898a0928396972eULL};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(block[i], expected[i]) << i;
}

// Golden doubles: exact by construction (integer shift and one exact
// multiply by a power of two), so EXPECT_EQ is portable.
TEST(RngGoldenTest, FillDoubleSeed7) {
  Rng rng(7);
  double block[4];
  rng.FillDouble(block);
  EXPECT_EQ(block[0], 0x1.e1119f1b7fabp-1);
  EXPECT_EQ(block[1], 0x1.e1e6b93c667f9p-1);
  EXPECT_EQ(block[2], 0x1.f442938fa271p-5);
  EXPECT_EQ(block[3], 0x1.871ed46d59698p-4);
}

TEST(SampleBlockTest, LaplaceBlockMatchesScalarSampleLoop) {
  ScopedDispatchLevel restore;
  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    for (size_t size : kSizes) {
      for (const auto& [mu, b] : {std::pair{0.0, 1.0},
                                  std::pair{0.0, 2.5},
                                  std::pair{-3.0, 0.25}}) {
        const Laplace d(mu, b);
        Rng block_rng(104), scalar_rng(104);
        std::vector<double> block(size);
        d.SampleBlock(block_rng, block);
        for (size_t i = 0; i < size; ++i) {
          ASSERT_EQ(block[i], d.Sample(scalar_rng))
              << vec::DispatchLevelName(level) << " size=" << size
              << " b=" << b << " i=" << i;
        }
      }
    }
  }
}

TEST(SampleBlockTest, SampleLaplaceBlockMatchesSampleLaplace) {
  Rng block_rng(105), scalar_rng(105);
  std::vector<double> block(777);
  SampleLaplaceBlock(block_rng, 2.0, block);
  for (double v : block) ASSERT_EQ(v, SampleLaplace(scalar_rng, 2.0));
}

TEST(SampleBlockTest, TransformBlockIsThePureTransform) {
  // SampleBlock == FillUint64 + TransformBlock, by definition.
  const Laplace d(0.0, 1.5);
  Rng rng_a(106), rng_b(106);
  std::vector<double> via_sample(300);
  d.SampleBlock(rng_a, via_sample);
  std::vector<uint64_t> words(600);
  rng_b.FillUint64(words);
  std::vector<double> via_transform(300);
  d.TransformBlock(words, via_transform);
  EXPECT_EQ(via_sample, via_transform);
}

TEST(SampleBlockTest, GumbelBlockMatchesScalarSampleLoop) {
  ScopedDispatchLevel restore;
  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    for (size_t size : kSizes) {
      Rng block_rng(107), scalar_rng(107);
      std::vector<double> block(size);
      SampleGumbelBlock(block_rng, block);
      for (size_t i = 0; i < size; ++i) {
        ASSERT_EQ(block[i], SampleGumbel(scalar_rng))
            << vec::DispatchLevelName(level) << " size=" << size;
      }
    }
  }
}

// Golden Laplace block (libm log() is nearly correctly rounded and these
// particular values are far from rounding boundaries; tolerance 1 ulp-ish
// via EXPECT_DOUBLE_EQ keeps this portable across libms).
TEST(RngGoldenTest, LaplaceBlockSeed9) {
  Rng rng(9);
  double block[4];
  SampleLaplaceBlock(rng, 2.0, block);
  EXPECT_DOUBLE_EQ(block[0], -0x1.19015f68823bdp+2);
  EXPECT_DOUBLE_EQ(block[1], -0x1.99d69309c3b56p-3);
  EXPECT_DOUBLE_EQ(block[2], -0x1.21daf01165948p+0);
  EXPECT_DOUBLE_EQ(block[3], 0x1.383b747bf6f2p+1);
}

TEST(SampleBlockTest, ExponentialBlockMatchesScalarSampleLoop) {
  // One 64-bit word per variate — half the stream of the Laplace path —
  // and still draw-for-draw bit-identical between scalar and block.
  ScopedDispatchLevel restore;
  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    for (size_t size : kSizes) {
      for (double b : {1.0, 2.5, 0.25}) {
        const Exponential d = Exponential::FromScale(b);
        Rng block_rng(104), scalar_rng(104);
        std::vector<double> block(size);
        d.SampleBlock(block_rng, block);
        for (size_t i = 0; i < size; ++i) {
          ASSERT_EQ(block[i], d.Sample(scalar_rng))
              << vec::DispatchLevelName(level) << " size=" << size
              << " b=" << b << " i=" << i;
          ASSERT_FALSE(block[i] < 0.0) << "one-sided support";
        }
        // Interleaving block and scalar draws is seamless.
        ASSERT_EQ(block_rng.NextUint64(), scalar_rng.NextUint64());
      }
    }
  }
}

TEST(SampleBlockTest, SampleExponentialBlockMatchesSampleExponential) {
  Rng block_rng(105), scalar_rng(105);
  std::vector<double> block(777);
  SampleExponentialBlock(block_rng, 2.0, block);
  for (double v : block) ASSERT_EQ(v, SampleExponential(scalar_rng, 2.0));
}

TEST(SampleBlockTest, ExponentialTransformBlockIsThePureTransform) {
  // SampleBlock == FillUint64 + TransformBlock, by definition — with one
  // word per variate, not two.
  const Exponential d = Exponential::FromScale(1.5);
  Rng rng_a(106), rng_b(106);
  std::vector<double> via_sample(300);
  d.SampleBlock(rng_a, via_sample);
  std::vector<uint64_t> words(300);
  rng_b.FillUint64(words);
  std::vector<double> via_transform(300);
  d.TransformBlock(words, via_transform);
  EXPECT_EQ(via_sample, via_transform);
}

// Golden exponential block (same portability note as LaplaceBlockSeed9).
// block[0] is the Laplace golden's |block[0]|: the magnitude word is the
// same seed-9 word 0, and the exponential transform consumes no sign word.
TEST(RngGoldenTest, ExponentialBlockSeed9) {
  Rng rng(9);
  double block[4];
  SampleExponentialBlock(rng, 2.0, block);
  EXPECT_DOUBLE_EQ(block[0], 0x1.19015f68823bdp+2);
  EXPECT_DOUBLE_EQ(block[1], 0x1.acf03f12473abp+1);
  EXPECT_DOUBLE_EQ(block[2], 0x1.99d69309c3b56p-3);
  EXPECT_DOUBLE_EQ(block[3], 0x1.4f4d34c2371dap+1);
}

TEST(SampleBlockTest, BlockStatisticsAreExponential) {
  // Mean ~ b, all non-negative for Exp(b).
  Rng rng(108);
  std::vector<double> block(200000);
  SampleExponentialBlock(rng, 2.0, block);
  double sum = 0.0;
  double min = block[0];
  for (double v : block) {
    sum += v;
    min = std::min(min, v);
  }
  EXPECT_NEAR(sum / block.size(), 2.0, 0.05);
  EXPECT_GE(min, 0.0);
}

TEST(SampleBlockTest, BlockStatisticsAreLaplace) {
  // Mean ~0, mean |x| ~ b for Lap(b): a coarse distribution sanity check on
  // the bulk path itself.
  Rng rng(108);
  std::vector<double> block(200000);
  SampleLaplaceBlock(rng, 2.0, block);
  double sum = 0.0, abs_sum = 0.0;
  for (double v : block) {
    sum += v;
    abs_sum += std::abs(v);
  }
  EXPECT_NEAR(sum / block.size(), 0.0, 0.05);
  EXPECT_NEAR(abs_sum / block.size(), 2.0, 0.05);
}

TEST(FillBoundedTest, PrefixIsTheNextOutputsOfTheStream) {
  // FillBounded writes some prefix of the stream — whatever the length it
  // picks, the words must be exactly the next Next() outputs.
  Rng ref(1234), rng(1234);
  std::vector<uint64_t> buf(4096);
  size_t total = 0;
  while (total < 3000) {
    const size_t got =
        rng.FillUint64Bounded({buf.data(), 1 + total % 613});
    ASSERT_GT(got, 0u) << "bounded fill must always progress";
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(buf[i], ref.NextUint64()) << "word " << total + i;
    }
    total += got;
  }
}

TEST(FillBoundedTest, StopsLaneAlignedAndCatchesUpPhase) {
  // From a lane-aligned position, a fill of 4k+r words stops after the 4k
  // whole lockstep steps (r in 1..3 left unwritten); after scalar draws
  // advanced the phase, the catch-up words count toward the prefix.
  BlockRng rng(42);
  std::vector<uint64_t> buf(64);
  EXPECT_EQ(rng.FillBounded({buf.data(), 11}), 8u);   // phase 0: 2 steps
  // The stream is now at a lane-aligned position again.
  EXPECT_EQ(rng.state().phase, 0u);
  rng.Next();  // phase 1: catch-up is 3 words
  EXPECT_EQ(rng.state().phase, 1u);
  EXPECT_EQ(rng.FillBounded({buf.data(), 12}), 11u);  // 3 catch-up + 2 steps
  EXPECT_EQ(rng.state().phase, 0u);
  // A span smaller than one step at an aligned position fills whole —
  // scalar — so callers looping toward a fixed word count terminate.
  EXPECT_EQ(rng.FillBounded({buf.data(), 3}), 3u);
  EXPECT_EQ(rng.state().phase, 3u);
  // Empty span: no-op.
  EXPECT_EQ(rng.FillBounded({}), 0u);
  EXPECT_EQ(rng.state().phase, 3u);
}

TEST(FillBoundedTest, LoopingToATargetEqualsOneFill) {
  // The batch engine's usage pattern: loop FillBounded until 2m words are
  // consumed. End state and content must equal a single FillUint64.
  for (const size_t target : {size_t{1}, size_t{2}, size_t{7}, size_t{1024},
                              size_t{1226}, size_t{4096}}) {
    Rng a(99), b(99);
    a.NextUint64();  // start both mid-step (phase 1)
    b.NextUint64();
    std::vector<uint64_t> one(target), looped(target);
    a.FillUint64(one);
    size_t filled = 0;
    while (filled < target) {
      filled += b.FillUint64Bounded({looped.data() + filled, target - filled});
    }
    EXPECT_EQ(one, looped) << "target=" << target;
    const Rng::State sa = a.state(), sb = b.state();
    EXPECT_EQ(sa.words, sb.words) << "target=" << target;
    EXPECT_EQ(sa.phase, sb.phase) << "target=" << target;
  }
}

TEST(RestoreTest, RoundTripsTheStreamAtEveryPhase) {
  // Restore is the return half of the megakernel checkpoint seam: a
  // snapshot taken at any phase, restored after arbitrary further draws,
  // replays the stream exactly.
  Rng rng(123);
  for (int pre = 0; pre < 6; ++pre) {
    rng.NextUint64();  // walk through phases 1, 2, 3, 0, 1, ...
    const Rng::State snap = rng.state();
    std::vector<uint64_t> first(37), again(37);
    rng.FillUint64(first);
    rng.RestoreState(snap);
    rng.FillUint64(again);
    EXPECT_EQ(first, again) << "pre=" << pre;
  }
}

TEST(RestoreDeathTest, RejectsAnAllZeroLane) {
  Rng rng(1);
  Rng::State bad = rng.state();
  for (int w = 0; w < 4; ++w) bad.words[w * BlockRng::kLanes + 2] = 0;
  EXPECT_DEATH(rng.RestoreState(bad), "all-zero");
}

TEST(MegakernelStreamTest, MegaScanLeavesRngAtTheFillPosition) {
  // The engine-side contract of the megakernel seam: snapshot state(),
  // let the in-register kernel consume k words, RestoreState the kernel's
  // final State — the Rng must sit exactly where FillUint64 of k words
  // would have left it, so subsequent draws (ρ resamples, the next chunk)
  // continue the one stream. Walk a multi-hit scan and compare against a
  // FillUint64-driven twin after every resume.
  ScopedDispatchLevel restore;
  const size_t n = 517;
  std::vector<double> a(n, 0.0);
  for (vec::DispatchLevel level : vec::kAllDispatchLevels) {
    if (!vec::SetDispatchLevel(level)) continue;
    Rng mega(2024), twin(2024);
    std::vector<uint64_t> scratch;
    size_t from = 0;
    while (from <= n) {
      BlockRng::State st = mega.state();
      const vec::FusedScanHit hit =
          vec::MegaLaplaceScanSumGe(&st, 0.0, 1.0, {a.data() + from, n - from},
                                    0.5);
      mega.RestoreState(st);
      const size_t rem = n - from;
      const size_t consumed = 2 * (hit.index < rem ? hit.index + 1 : rem);
      scratch.resize(consumed);
      twin.FillUint64(scratch);
      const Rng::State sm = mega.state(), st2 = twin.state();
      ASSERT_EQ(sm.phase, st2.phase)
          << vec::DispatchLevelName(level) << " from=" << from;
      ASSERT_EQ(sm.words, st2.words)
          << vec::DispatchLevelName(level) << " from=" << from;
      // Interleave a scalar draw on both streams, as the engine does for
      // a positive's resample, then keep scanning.
      ASSERT_EQ(mega.NextUint64(), twin.NextUint64());
      if (hit.index >= rem) break;
      from += hit.index + 1;
    }
  }
}

}  // namespace
}  // namespace svt
