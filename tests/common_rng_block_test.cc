// Block RNG and bulk sampler contracts: (a) every Fill*/SampleBlock output
// is bit-for-bit the corresponding scalar call sequence, at sizes that
// straddle the internal chunking; (b) golden values lock the SplitMix64 and
// xoshiro256++ streams across platforms (pure integer ops, so any compliant
// implementation must reproduce them exactly — the SplitMix64 seed-0 values
// also match the published reference outputs).

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/distributions.h"
#include "common/rng.h"

namespace svt {
namespace {

// Sizes chosen to straddle the unroll width (4), the Fill* transform block
// (512), and the SampleBlock chunk (256): empty, sub-unroll, unaligned,
// exact block, block + 1, multi-block.
const size_t kSizes[] = {0, 1, 3, 4, 5, 255, 256, 257, 512, 513, 1000, 1025};

TEST(RngBlockTest, FillUint64MatchesScalarStream) {
  for (size_t size : kSizes) {
    Rng block_rng(101), scalar_rng(101);
    std::vector<uint64_t> block(size);
    block_rng.FillUint64(block);
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(block[i], scalar_rng.NextUint64()) << "size=" << size
                                                   << " i=" << i;
    }
    // The two generators must land in the same state: interleaving block
    // and scalar draws is seamless.
    ASSERT_EQ(block_rng.NextUint64(), scalar_rng.NextUint64());
  }
}

TEST(RngBlockTest, FillDoubleMatchesScalarStream) {
  for (size_t size : kSizes) {
    Rng block_rng(102), scalar_rng(102);
    std::vector<double> block(size);
    block_rng.FillDouble(block);
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(block[i], scalar_rng.NextDouble()) << "size=" << size;
      ASSERT_GE(block[i], 0.0);
      ASSERT_LT(block[i], 1.0);
    }
  }
}

TEST(RngBlockTest, FillDoublePositiveMatchesScalarStream) {
  for (size_t size : kSizes) {
    Rng block_rng(103), scalar_rng(103);
    std::vector<double> block(size);
    block_rng.FillDoublePositive(block);
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(block[i], scalar_rng.NextDoublePositive()) << "size=" << size;
      ASSERT_GT(block[i], 0.0);
      ASSERT_LE(block[i], 1.0);
    }
  }
}

// Golden SplitMix64 stream from state 0 — matches the reference
// implementation's published outputs, so a transcription error in the
// mixing constants cannot survive this test on any platform.
TEST(RngGoldenTest, SplitMix64Seed0) {
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64Next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64Next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64Next(state), 0x06c45d188009454fULL);
  EXPECT_EQ(SplitMix64Next(state), 0xf88bb8a8724c81ecULL);
}

// Golden xoshiro256++ block for seed 42 (SplitMix64-seeded). Locks both the
// seeding procedure and the block kernel.
TEST(RngGoldenTest, FillUint64Seed42) {
  Rng rng(42);
  uint64_t block[8];
  rng.FillUint64(block);
  const uint64_t expected[8] = {
      0xd0764d4f4476689fULL, 0x519e4174576f3791ULL, 0xfbe07cfb0c24ed8cULL,
      0xb37d9f600cd835b8ULL, 0xcb231c3874846a73ULL, 0x968d9f004e50de7dULL,
      0x201718ff221a3556ULL, 0x9ae94e070ed8cb46ULL};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(block[i], expected[i]) << i;
}

// Golden doubles: exact by construction (integer shift and one exact
// multiply by a power of two), so EXPECT_EQ is portable.
TEST(RngGoldenTest, FillDoubleSeed7) {
  Rng rng(7);
  double block[4];
  rng.FillDouble(block);
  EXPECT_EQ(block[0], 0x1.c583400555d2p-5);
  EXPECT_EQ(block[1], 0x1.607e46efd274cp-3);
  EXPECT_EQ(block[2], 0x1.6f66236761a8bp-1);
  EXPECT_EQ(block[3], 0x1.b5767da98c6p-2);
}

TEST(SampleBlockTest, LaplaceBlockMatchesScalarSampleLoop) {
  for (size_t size : kSizes) {
    for (const auto& [mu, b] : {std::pair{0.0, 1.0},
                                std::pair{0.0, 2.5},
                                std::pair{-3.0, 0.25}}) {
      const Laplace d(mu, b);
      Rng block_rng(104), scalar_rng(104);
      std::vector<double> block(size);
      d.SampleBlock(block_rng, block);
      for (size_t i = 0; i < size; ++i) {
        ASSERT_EQ(block[i], d.Sample(scalar_rng))
            << "size=" << size << " b=" << b << " i=" << i;
      }
    }
  }
}

TEST(SampleBlockTest, SampleLaplaceBlockMatchesSampleLaplace) {
  Rng block_rng(105), scalar_rng(105);
  std::vector<double> block(777);
  SampleLaplaceBlock(block_rng, 2.0, block);
  for (double v : block) ASSERT_EQ(v, SampleLaplace(scalar_rng, 2.0));
}

TEST(SampleBlockTest, TransformBlockIsThePureTransform) {
  // SampleBlock == FillUint64 + TransformBlock, by definition.
  const Laplace d(0.0, 1.5);
  Rng rng_a(106), rng_b(106);
  std::vector<double> via_sample(300);
  d.SampleBlock(rng_a, via_sample);
  std::vector<uint64_t> words(600);
  rng_b.FillUint64(words);
  std::vector<double> via_transform(300);
  d.TransformBlock(words, via_transform);
  EXPECT_EQ(via_sample, via_transform);
}

TEST(SampleBlockTest, GumbelBlockMatchesScalarSampleLoop) {
  for (size_t size : kSizes) {
    Rng block_rng(107), scalar_rng(107);
    std::vector<double> block(size);
    SampleGumbelBlock(block_rng, block);
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(block[i], SampleGumbel(scalar_rng)) << "size=" << size;
    }
  }
}

// Golden Laplace block (libm log() is nearly correctly rounded and these
// particular values are far from rounding boundaries; tolerance 1 ulp-ish
// via EXPECT_DOUBLE_EQ keeps this portable across libms).
TEST(RngGoldenTest, LaplaceBlockSeed9) {
  Rng rng(9);
  double block[4];
  SampleLaplaceBlock(rng, 2.0, block);
  EXPECT_DOUBLE_EQ(block[0], -0x1.065ea3d43c93ep+0);
  EXPECT_DOUBLE_EQ(block[1], 0x1.9dc00c82778ep+1);
  EXPECT_DOUBLE_EQ(block[2], -0x1.56437e00b36f2p+2);
  EXPECT_DOUBLE_EQ(block[3], -0x1.bbf060281342ep+0);
}

TEST(SampleBlockTest, BlockStatisticsAreLaplace) {
  // Mean ~0, mean |x| ~ b for Lap(b): a coarse distribution sanity check on
  // the bulk path itself.
  Rng rng(108);
  std::vector<double> block(200000);
  SampleLaplaceBlock(rng, 2.0, block);
  double sum = 0.0, abs_sum = 0.0;
  for (double v : block) {
    sum += v;
    abs_sum += std::abs(v);
  }
  EXPECT_NEAR(sum / block.size(), 0.0, 0.05);
  EXPECT_NEAR(abs_sum / block.size(), 2.0, 0.05);
}

}  // namespace
}  // namespace svt
