#include "data/transaction_db.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/queries.h"

namespace svt {
namespace {

TransactionDb SmallDb() {
  // Items 0..4 over 5 transactions.
  TransactionDb db(5);
  db.Add({0, 1, 2});
  db.Add({0, 1});
  db.Add({0, 3});
  db.Add({1, 2, 3});
  db.Add({4});
  return db;
}

TEST(TransactionDbTest, Counts) {
  const TransactionDb db = SmallDb();
  EXPECT_EQ(db.num_transactions(), 5u);
  EXPECT_EQ(db.num_items(), 5u);
  EXPECT_EQ(db.TotalOccurrences(), 11u);
}

TEST(TransactionDbTest, AddSortsAndDedups) {
  TransactionDb db(10);
  db.Add({5, 2, 5, 9, 2});
  EXPECT_EQ(db.transaction(0), (Transaction{2, 5, 9}));
}

TEST(TransactionDbTest, AddRejectsOutOfRangeItem) {
  TransactionDb db(3);
  EXPECT_DEATH(db.Add({0, 3}), "out of range");
}

TEST(TransactionDbTest, ItemSupport) {
  const TransactionDb db = SmallDb();
  EXPECT_EQ(db.ItemSupport(0), 3u);
  EXPECT_EQ(db.ItemSupport(1), 3u);
  EXPECT_EQ(db.ItemSupport(2), 2u);
  EXPECT_EQ(db.ItemSupport(3), 2u);
  EXPECT_EQ(db.ItemSupport(4), 1u);
}

TEST(TransactionDbTest, ItemSupportsBatchMatchesSingles) {
  const TransactionDb db = SmallDb();
  const auto batch = db.ItemSupports();
  ASSERT_EQ(batch.size(), 5u);
  for (ItemId i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[i], db.ItemSupport(i)) << "item " << i;
  }
}

TEST(TransactionDbTest, ItemsetSupport) {
  const TransactionDb db = SmallDb();
  const std::vector<ItemId> s01 = {0, 1};
  const std::vector<ItemId> s123 = {1, 2, 3};
  const std::vector<ItemId> s04 = {0, 4};
  EXPECT_EQ(db.ItemsetSupport(s01), 2u);
  EXPECT_EQ(db.ItemsetSupport(s123), 1u);
  EXPECT_EQ(db.ItemsetSupport(s04), 0u);
}

TEST(TransactionDbTest, WithoutTransactionIsNeighbor) {
  const TransactionDb db = SmallDb();
  const TransactionDb neighbor = db.WithoutTransaction(0);  // removes {0,1,2}
  EXPECT_EQ(neighbor.num_transactions(), 4u);
  EXPECT_EQ(neighbor.ItemSupport(0), 2u);
  EXPECT_EQ(neighbor.ItemSupport(2), 1u);
  // Original untouched.
  EXPECT_EQ(db.ItemSupport(0), 3u);
}

TEST(TransactionDbTest, WithTransactionIsNeighbor) {
  const TransactionDb db = SmallDb();
  const TransactionDb neighbor = db.WithTransaction({2, 4});
  EXPECT_EQ(neighbor.num_transactions(), 6u);
  EXPECT_EQ(neighbor.ItemSupport(2), 3u);
  EXPECT_EQ(neighbor.ItemSupport(4), 2u);
}

// The §4.3 monotonicity property: removing a transaction moves every item
// support in the same (non-increasing) direction by at most 1.
TEST(TransactionDbTest, SupportsAreMonotoneSensitivityOne) {
  const TransactionDb db = SmallDb();
  for (size_t t = 0; t < db.num_transactions(); ++t) {
    const TransactionDb neighbor = db.WithoutTransaction(t);
    const auto before = db.ItemSupports();
    const auto after = neighbor.ItemSupports();
    for (ItemId i = 0; i < db.num_items(); ++i) {
      EXPECT_LE(after[i], before[i]);
      EXPECT_LE(before[i] - after[i], 1u);
    }
  }
}

TEST(ItemSupportQueryTest, EvaluatesSupport) {
  const TransactionDb db = SmallDb();
  ItemSupportQuery q(1);
  EXPECT_DOUBLE_EQ(q.Evaluate(db), 3.0);
  EXPECT_DOUBLE_EQ(q.sensitivity(), 1.0);
  EXPECT_EQ(q.name(), "support(item=1)");
}

TEST(ItemsetSupportQueryTest, EvaluatesAndNormalizes) {
  const TransactionDb db = SmallDb();
  ItemsetSupportQuery q({1, 0, 1});  // dedup + sort -> {0,1}
  EXPECT_DOUBLE_EQ(q.Evaluate(db), 2.0);
  EXPECT_EQ(q.itemset(), (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(q.name(), "support({0,1})");
}

TEST(AllItemSupportQueriesTest, OnePerItem) {
  const auto queries = AllItemSupportQueries(7);
  ASSERT_EQ(queries.size(), 7u);
  EXPECT_EQ(queries[3].item(), 3u);
}

TEST(EvaluateAllItemSupportsTest, MatchesPerQueryEvaluation) {
  const TransactionDb db = SmallDb();
  const auto batch = EvaluateAllItemSupports(db);
  const auto queries = AllItemSupportQueries(db.num_items());
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], queries[i].Evaluate(db));
  }
}

}  // namespace
}  // namespace svt
