// The vecmath layer's two contracts:
//
//  1. Accuracy: the polynomial Log/Exp kernels track libm within a small,
//     documented ULP bound (kMaxUlp below) over dense sweeps and the
//     adversarial inputs the samplers and the batch engine's chunk bound
//     actually produce — subnormals, near-1 arguments, the (0,1] lattice
//     edge values.
//
//  2. Bit-identity across dispatch: every Block kernel emits bitwise the
//     scalar reference lane's outputs at every supported dispatch level.
//     This is the property the batch/streaming equivalence of the SVT
//     engine rests on; it is asserted here against dense random and
//     adversarial inputs, for every kernel in the family.
//
// When no SIMD level is available (non-x86, SVT_DISABLE_AVX2, or an old
// CPU) the cross-dispatch tests reduce to scalar-vs-scalar and still pass.

#include "common/vecmath.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/distributions.h"
#include "common/rng.h"
#include "dispatch_test_util.h"

namespace svt {
namespace vec {
namespace {

// Measured max over the dense sweeps below is 1 ulp for both kernels
// (fdlibm-grade polynomials); 2 leaves headroom for worst-case inputs the
// sweeps miss, and is still far below any statistical relevance for noise
// sampling. Documented in README "Performance".
constexpr int64_t kMaxUlp = 2;

int64_t UlpDiff(double a, double b) {
  if (a == b) return 0;  // covers equal infinities; +0 == -0 on purpose
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<int64_t>::max();
  }
  int64_t ia = std::bit_cast<int64_t>(a);
  int64_t ib = std::bit_cast<int64_t>(b);
  // Map to a monotone integer line so the distance works across zero.
  if (ia < 0) ia = std::numeric_limits<int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<int64_t>::min() - ib;
  return ia > ib ? ia - ib : ib - ia;
}

std::vector<double> LogTestInputs() {
  std::vector<double> xs;
  // Dense geometric sweep across the full normal range.
  for (double x = 1e-300; x < 1e300; x *= 1.001) xs.push_back(x);
  // Near 1, where log loses absolute accuracy: a dense window at the ulp
  // scale (±20k ulps) plus a coarser sweep across ±1e-4.
  double lo = 1.0, hi = 1.0;
  for (int i = 0; i < 20000; ++i) {
    lo = std::nextafter(lo, 0.0);
    hi = std::nextafter(hi, 2.0);
    xs.push_back(lo);
    xs.push_back(hi);
  }
  for (double x = 0.9999; x < 1.0001; x += 1e-8) xs.push_back(x);
  // The (0,1] lattice the samplers draw from: smallest, largest, and the
  // chunk-bound edge values around them.
  xs.push_back(0x1.0p-53);                       // smallest uniform
  xs.push_back(1.0);                             // largest uniform
  xs.push_back(1.0 - 0x1.0p-53);                 // second-largest
  xs.push_back(2.0 * 0x1.0p-53);                 // second-smallest
  // Subnormals, including the very smallest.
  xs.push_back(5e-324);
  xs.push_back(1e-310);
  xs.push_back(std::numeric_limits<double>::denorm_min());
  xs.push_back(std::numeric_limits<double>::min() / 2);
  // Boundaries of the normal range.
  xs.push_back(std::numeric_limits<double>::min());
  xs.push_back(std::numeric_limits<double>::max());
  // Exact powers of two land on the decomposition seams.
  for (int e = -1074; e <= 1023; e += 37) xs.push_back(std::ldexp(1.0, e));
  return xs;
}

TEST(VecmathLogTest, UlpBoundVsLibmDenseAndAdversarial) {
  int64_t max_ulp = 0;
  double worst = 0.0;
  for (double x : LogTestInputs()) {
    const int64_t u = UlpDiff(Log(x), std::log(x));
    if (u > max_ulp) {
      max_ulp = u;
      worst = x;
    }
  }
  EXPECT_LE(max_ulp, kMaxUlp) << "worst input " << worst;
}

TEST(VecmathLogTest, UlpBoundHoldsAtEveryDispatchLevel) {
  // The cross-dispatch bit-identity tests below transfer the scalar ULP
  // bound to every lane; this asserts it directly against libm per level
  // (scalar, AVX2, AVX-512), so an accuracy regression in a SIMD lane
  // cannot hide behind a matching regression in the reference.
  ScopedDispatchLevel restore;
  const std::vector<double> xs = LogTestInputs();
  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    std::vector<double> out(xs.size());
    LogBlock(xs, out);
    int64_t max_ulp = 0;
    double worst = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      const int64_t u = UlpDiff(out[i], std::log(xs[i]));
      if (u > max_ulp) {
        max_ulp = u;
        worst = xs[i];
      }
    }
    EXPECT_LE(max_ulp, kMaxUlp)
        << DispatchLevelName(level) << " worst input " << worst;
  }
}

TEST(VecmathLogTest, SpecialOperands) {
  EXPECT_EQ(Log(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(Log(-0.0), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(Log(-1.0)));
  EXPECT_TRUE(std::isnan(Log(-std::numeric_limits<double>::infinity())));
  EXPECT_EQ(Log(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(Log(std::nan(""))));
  EXPECT_EQ(Log(1.0), 0.0);
}

TEST(VecmathExpTest, UlpBoundVsLibmDense) {
  int64_t max_ulp = 0;
  double worst = 0.0;
  for (double x = -708.0; x < 709.0; x += 0.000717) {
    const int64_t u = UlpDiff(Exp(x), std::exp(x));
    if (u > max_ulp) {
      max_ulp = u;
      worst = x;
    }
  }
  // Tiny arguments (the near-1 outputs).
  for (double x = -1e-3; x < 1e-3; x += 1e-7) {
    max_ulp = std::max(max_ulp, UlpDiff(Exp(x), std::exp(x)));
  }
  EXPECT_LE(max_ulp, kMaxUlp) << "worst input " << worst;
}

TEST(VecmathExpTest, SpecialOperands) {
  EXPECT_EQ(Exp(0.0), 1.0);
  EXPECT_EQ(Exp(710.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(Exp(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(Exp(-800.0), 0.0);
  EXPECT_EQ(Exp(-std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_TRUE(std::isnan(Exp(std::nan(""))));
}

TEST(VecmathDispatchTest, NamesAndScalarAlwaysSupported) {
  EXPECT_STREQ(DispatchLevelName(DispatchLevel::kScalar), "scalar");
  EXPECT_STREQ(DispatchLevelName(DispatchLevel::kAvx2), "avx2");
  EXPECT_STREQ(DispatchLevelName(DispatchLevel::kAvx512), "avx512");
  EXPECT_TRUE(DispatchLevelSupported(DispatchLevel::kScalar));
  // The active level is always a supported one.
  EXPECT_TRUE(DispatchLevelSupported(ActiveDispatchLevel()));
  // Requesting an unsupported level fails and leaves the level unchanged.
  for (DispatchLevel level :
       {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (!DispatchLevelSupported(level)) {
      const DispatchLevel before = ActiveDispatchLevel();
      EXPECT_FALSE(SetDispatchLevel(level));
      EXPECT_EQ(ActiveDispatchLevel(), before);
    }
  }
}

TEST(VecmathDispatchTest, ParseDispatchCap) {
  // The SVT_MAX_DISPATCH environment values; unset/empty = no cap, names
  // are case-insensitive.
  EXPECT_EQ(ParseDispatchCap(nullptr), DispatchLevel::kAvx512);
  EXPECT_EQ(ParseDispatchCap(""), DispatchLevel::kAvx512);
  EXPECT_EQ(ParseDispatchCap("scalar"), DispatchLevel::kScalar);
  EXPECT_EQ(ParseDispatchCap("0"), DispatchLevel::kScalar);
  EXPECT_EQ(ParseDispatchCap("avx2"), DispatchLevel::kAvx2);
  EXPECT_EQ(ParseDispatchCap("AVX2"), DispatchLevel::kAvx2);
  EXPECT_EQ(ParseDispatchCap("1"), DispatchLevel::kAvx2);
  EXPECT_EQ(ParseDispatchCap("avx512"), DispatchLevel::kAvx512);
  EXPECT_EQ(ParseDispatchCap("AVX512"), DispatchLevel::kAvx512);
  EXPECT_EQ(ParseDispatchCap("2"), DispatchLevel::kAvx512);
}

TEST(VecmathDispatchDeathTest, UnrecognizedCapAborts) {
  // A typo in SVT_MAX_DISPATCH must fail loudly, not silently uncap the
  // dispatch (which would hollow out a capped CI leg while it reports
  // green).
  EXPECT_DEATH(ParseDispatchCap("avx-2"), "SVT_MAX_DISPATCH");
  EXPECT_DEATH(ParseDispatchCap("bogus"), "SVT_MAX_DISPATCH");
}

void ExpectBitEqual(const std::vector<double>& a,
                    const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(a[i]), std::bit_cast<uint64_t>(b[i]))
        << what << " diverges at i=" << i << " (" << a[i] << " vs " << b[i]
        << ")";
  }
}

TEST(VecmathDispatchTest, LogBlockBitIdenticalAcrossLevels) {
  ScopedDispatchLevel restore;
  const std::vector<double> xs = LogTestInputs();
  std::vector<double> scalar_ref(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) scalar_ref[i] = Log(xs[i]);

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    std::vector<double> out(xs.size());
    LogBlock(xs, out);
    ExpectBitEqual(out, scalar_ref, DispatchLevelName(level));
    // In-place operation is part of the contract.
    std::vector<double> inplace = xs;
    LogBlock(inplace, inplace);
    ExpectBitEqual(inplace, scalar_ref, "in-place");
  }
}

TEST(VecmathDispatchTest, ExpBlockBitIdenticalAcrossLevels) {
  ScopedDispatchLevel restore;
  std::vector<double> xs;
  for (double x = -745.0; x < 710.0; x += 0.01037) xs.push_back(x);
  xs.push_back(0.0);
  xs.push_back(1e9);                  // overflow lane
  xs.push_back(-1e9);                 // underflow lane
  xs.push_back(std::nan(""));         // NaN lane
  xs.push_back(705.0);                // near the fast-path domain edge
  xs.push_back(-705.0);
  std::vector<double> scalar_ref(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) scalar_ref[i] = Exp(xs[i]);

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    std::vector<double> out(xs.size());
    ExpBlock(xs, out);
    ASSERT_EQ(out.size(), scalar_ref.size());
    for (size_t i = 0; i < out.size(); ++i) {
      if (std::isnan(scalar_ref[i])) {
        ASSERT_TRUE(std::isnan(out[i])) << "i=" << i;
        continue;
      }
      ASSERT_EQ(std::bit_cast<uint64_t>(out[i]),
                std::bit_cast<uint64_t>(scalar_ref[i]))
          << DispatchLevelName(level) << " diverges at i=" << i;
    }
  }
}

TEST(VecmathDispatchTest, SamplingKernelsBitIdenticalAcrossLevels) {
  ScopedDispatchLevel restore;
  // Raw RNG words, including the lattice edges (all-ones word -> u == 1,
  // whose -log is -0.0 and whose Gumbel output is +inf).
  Rng rng(123);
  std::vector<uint64_t> words(4096);
  rng.FillUint64(words);
  words[17] = ~0ull;
  words[2 * 33] = ~0ull;
  words[0] = 0;

  const size_t n = words.size() / 2;
  std::vector<double> ref1(words.size()), ref2(n), ref_lap(n);
  SetDispatchLevel(DispatchLevel::kScalar);
  NegLogUnitPositiveBlock(words, 1, ref1);
  NegLogUnitPositiveBlock(words, 2, ref2);
  LaplaceTransformBlock(words, 0.25, 1.75, ref_lap);
  const uint64_t ref_min1 = MinWordBlock(words, 1);
  const uint64_t ref_min2 = MinWordBlock(words, 2);

  for (DispatchLevel level :
       {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (!SetDispatchLevel(level)) continue;
    std::vector<double> out1(words.size()), out2(n), out_lap(n);
    NegLogUnitPositiveBlock(words, 1, out1);
    NegLogUnitPositiveBlock(words, 2, out2);
    LaplaceTransformBlock(words, 0.25, 1.75, out_lap);
    ExpectBitEqual(out1, ref1, "neg-log stride 1");
    ExpectBitEqual(out2, ref2, "neg-log stride 2");
    ExpectBitEqual(out_lap, ref_lap, "laplace transform");
    EXPECT_EQ(MinWordBlock(words, 1), ref_min1)
        << DispatchLevelName(level);
    EXPECT_EQ(MinWordBlock(words, 2), ref_min2)
        << DispatchLevelName(level);
  }

  // The stride-1 kernel on even words must equal the stride-2 kernel.
  std::vector<uint64_t> evens(n);
  for (size_t i = 0; i < n; ++i) evens[i] = words[2 * i];
  std::vector<double> from_evens(n);
  NegLogUnitPositiveBlock(evens, 1, from_evens);
  ExpectBitEqual(from_evens, ref2, "stride 1 on evens vs stride 2");
}

TEST(VecmathDispatchTest, ReductionsAndScansAcrossLevels) {
  ScopedDispatchLevel restore;
  Rng rng(7);
  std::vector<double> a(1000), b(1000);
  rng.FillDouble(a);
  rng.FillDouble(b);
  a[777] = 3.0;  // guaranteed hit: 3.0 + b >= 3.0

  SetDispatchLevel(DispatchLevel::kScalar);
  const double ref_max = MaxBlock(a);
  const size_t ref_sum_idx = FindFirstSumGe(a, b, 3.0);
  const size_t ref_idx = FindFirstGe(a, 2.5);
  const size_t ref_none = FindFirstGe(a, 1e9);

  for (DispatchLevel level :
       {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (!SetDispatchLevel(level)) continue;
    EXPECT_EQ(std::bit_cast<uint64_t>(MaxBlock(a)),
              std::bit_cast<uint64_t>(ref_max))
        << DispatchLevelName(level);
    EXPECT_EQ(FindFirstSumGe(a, b, 3.0), ref_sum_idx);
    EXPECT_EQ(FindFirstGe(a, 2.5), ref_idx);
    EXPECT_EQ(FindFirstGe(a, 1e9), ref_none);
  }
  EXPECT_EQ(ref_none, a.size());
  EXPECT_LE(ref_sum_idx, 777u);

  // Odd (non-multiple-of-the-SIMD-width) sizes exercise the scalar tails.
  for (size_t len : {1u, 3u, 5u, 7u, 9u, 11u, 15u}) {
    const std::span<const double> head(a.data(), len);
    SetDispatchLevel(DispatchLevel::kScalar);
    const double m_scalar = MaxBlock(head);
    const size_t f_scalar = FindFirstGe(head, 0.5);
    for (DispatchLevel level :
         {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
      if (!SetDispatchLevel(level)) continue;
      EXPECT_EQ(MaxBlock(head), m_scalar)
          << DispatchLevelName(level) << " len=" << len;
      EXPECT_EQ(FindFirstGe(head, 0.5), f_scalar)
          << DispatchLevelName(level) << " len=" << len;
    }
  }
}

TEST(VecmathDispatchTest, MinBlockBitIdenticalAcrossLevels) {
  ScopedDispatchLevel restore;
  Rng rng(11);
  std::vector<double> a(1000);
  rng.FillDouble(a);
  // Adversarial splices: signed zeros, subnormals, infinities, max
  // magnitude — the values the bar-lower reduction meets in practice.
  a[0] = -0.0;
  a[1] = 0.0;
  a[13] = 5e-324;
  a[14] = -5e-324;
  a[500] = -std::numeric_limits<double>::max();
  a[501] = std::numeric_limits<double>::infinity();
  a[502] = -std::numeric_limits<double>::infinity();

  SetDispatchLevel(DispatchLevel::kScalar);
  const double ref_min = MinBlock(a);
  EXPECT_EQ(ref_min, -std::numeric_limits<double>::infinity());
  for (DispatchLevel level :
       {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (!SetDispatchLevel(level)) continue;
    EXPECT_EQ(std::bit_cast<uint64_t>(MinBlock(a)),
              std::bit_cast<uint64_t>(ref_min))
        << DispatchLevelName(level);
  }

  // Odd lengths exercise the scalar tails; finite values check the
  // non-sentinel path too.
  std::vector<double> b(64);
  rng.FillDouble(b);
  for (size_t len : {1u, 2u, 3u, 5u, 7u, 9u, 15u, 31u, 33u, 64u}) {
    const std::span<const double> head(b.data(), len);
    SetDispatchLevel(DispatchLevel::kScalar);
    const double m_scalar = MinBlock(head);
    for (DispatchLevel level :
         {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
      if (!SetDispatchLevel(level)) continue;
      EXPECT_EQ(std::bit_cast<uint64_t>(MinBlock(head)),
                std::bit_cast<uint64_t>(m_scalar))
          << DispatchLevelName(level) << " len=" << len;
    }
  }
}

template <typename Code>
void CheckQuantizedSpanReductions() {
  ScopedDispatchLevel restore;
  Rng rng(17);
  constexpr Code kMax = std::numeric_limits<Code>::max();
  std::vector<Code> codes(1000);
  for (Code& c : codes) {
    c = static_cast<Code>(rng.NextUint64() & kMax);
  }
  codes[3] = kMax;  // sentinel value must surface through Max
  codes[900] = 0;   // and 0 through Min

  // Exact scalar references.
  auto ref_max = [&](std::span<const Code> s) {
    Code m = 0;
    for (Code c : s) m = std::max(m, c);
    return m;
  };
  auto ref_min = [&](std::span<const Code> s) {
    Code m = kMax;
    for (Code c : s) m = std::min(m, c);
    return m;
  };

  for (size_t start : {0u, 1u, 3u}) {
    for (size_t len : {1u, 2u, 15u, 16u, 17u, 31u, 32u, 33u, 128u, 997u}) {
      if (start + len > codes.size()) continue;
      const std::span<const Code> s(codes.data() + start, len);
      for (DispatchLevel level :
           {DispatchLevel::kScalar, DispatchLevel::kAvx2,
            DispatchLevel::kAvx512}) {
        if (!SetDispatchLevel(level)) continue;
        EXPECT_EQ(QuantizedSpanMax(s), ref_max(s))
            << DispatchLevelName(level) << " start=" << start
            << " len=" << len;
        EXPECT_EQ(QuantizedSpanMin(s), ref_min(s))
            << DispatchLevelName(level) << " start=" << start
            << " len=" << len;
      }
    }
  }
}

TEST(VecmathDispatchTest, QuantizedSpanReductionsAcrossLevels) {
  // Integer max/min are exact at every level, so the assertion is equality
  // with a scalar loop — covering both code widths, unaligned starts, and
  // every tail shape of the 128-element bound span and beyond.
  CheckQuantizedSpanReductions<uint8_t>();
  CheckQuantizedSpanReductions<uint16_t>();
}

TEST(VecmathDispatchTest, PairwiseScansAcrossLevels) {
  // The per-query-threshold compare-scan: bars vary per element. Checked
  // against a literal transcription of the streaming positive test, at
  // every level, over random bars, near-threshold bars (ties included:
  // bars[i] + rho == a[i] exactly), odd tails, and NaN patterns.
  ScopedDispatchLevel restore;
  Rng rng(99);
  const size_t n = 1003;  // odd: exercises every lane tail
  std::vector<double> a(n), b(n), bars(n);
  rng.FillDouble(a);
  rng.FillDouble(b);
  rng.FillDouble(bars);
  const double rho = 0.125;
  // Exact ties: the >= must fire on equality, at any lane position.
  for (size_t i : {size_t{37}, size_t{512}, n - 1}) {
    bars[i] = a[i] - rho;  // bars[i] + rho rounds back to exactly a[i]
  }
  // NaN answers and NaN bars must never match (ordered compare).
  a[101] = std::nan("");
  bars[202] = std::nan("");

  const auto ref_ge = [&](size_t from) {
    size_t j = from;
    while (j < n && !(a[j] >= bars[j] + rho)) ++j;
    return j;
  };
  const auto ref_sum_ge = [&](size_t from) {
    size_t j = from;
    while (j < n && !(a[j] + b[j] >= bars[j] + rho)) ++j;
    return j;
  };

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    // Walk every positive like the batch engine's ScanChunk does.
    size_t from = 0;
    while (from <= n) {
      const size_t expect = ref_ge(from);
      const size_t got =
          from + FindFirstGePairwise({a.data() + from, n - from},
                                     {bars.data() + from, n - from}, rho);
      ASSERT_EQ(got, expect)
          << DispatchLevelName(level) << " from=" << from;
      if (expect >= n) break;
      from = expect + 1;
    }
    from = 0;
    while (from <= n) {
      const size_t expect = ref_sum_ge(from);
      const size_t got = from + FindFirstSumGePairwise(
                                    {a.data() + from, n - from},
                                    {b.data() + from, n - from},
                                    {bars.data() + from, n - from}, rho);
      ASSERT_EQ(got, expect)
          << DispatchLevelName(level) << " from=" << from;
      if (expect >= n) break;
      from = expect + 1;
    }
    // No-match scan returns size().
    EXPECT_EQ(FindFirstGePairwise(a, bars, 1e9), n);
    EXPECT_EQ(FindFirstSumGePairwise(a, b, bars, 1e9), n);
    // Empty input.
    EXPECT_EQ(FindFirstGePairwise({}, {}, rho), 0u);
  }
}

TEST(VecmathFusedScanTest, MatchesUnfusedCompositionAtEveryLevel) {
  // The fused sample-and-scan kernels are *defined* as the composition of
  // the unfused pipeline: TransformBlock to materialize ν, then the
  // FindFirst* compare-scan. At every dispatch level, walking every hit
  // must reproduce the oracle's indices exactly and return the oracle's ν
  // bit for bit — this is the contract that lets the batch engine go
  // single-pass with no golden re-record.
  ScopedDispatchLevel restore;
  Rng rng(321);
  const size_t n = 1003;  // odd: exercises every lane tail
  std::vector<uint64_t> words(2 * n);
  rng.FillUint64(words);
  words[0] = ~0ull;        // u == 1 lattice edge: ν == ±0
  words[2 * 500] = 0;      // largest magnitude draw
  const double mu = 0.25, b = 1.75;
  std::vector<double> a(n), bars(n);
  rng.FillDouble(a);
  rng.FillDouble(bars);
  for (size_t i = 0; i < n; ++i) {
    a[i] = (a[i] - 0.5) * 8.0;     // straddle the ν scale
    bars[i] = (bars[i] - 0.5) * 4.0;
  }
  const double rho = 0.125;

  const Laplace dist(mu, b);
  std::vector<double> nu(n);

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    const std::string ctx = DispatchLevelName(level);
    dist.TransformBlock(words, nu);  // the oracle's ν block, same level

    // Walk all hits of all four kernels against the composed oracle.
    const auto walk = [&](auto fused, auto oracle) {
      size_t from = 0;
      while (from <= n) {
        const std::span<const uint64_t> w{words.data() + 2 * from,
                                          2 * (n - from)};
        const FusedScanHit hit = fused(w, from);
        const size_t expect = oracle(from);
        ASSERT_EQ(from + hit.index, expect) << ctx << " from=" << from;
        if (expect >= n) {
          ASSERT_EQ(hit.index, n - from);
          ASSERT_EQ(hit.nu, 0.0) << ctx << " no-hit nu must be 0";
          break;
        }
        ASSERT_EQ(std::bit_cast<uint64_t>(hit.nu),
                  std::bit_cast<uint64_t>(nu[expect]))
            << ctx << " nu diverges at " << expect;
        from = expect + 1;
      }
    };

    const double bar = mu + b;  // plenty of hits, plenty of gaps
    walk(
        [&](std::span<const uint64_t> w, size_t) {
          return FusedLaplaceScanGe(w, mu, b, bar);
        },
        [&](size_t from) {
          size_t j = from;
          while (j < n && !(nu[j] >= bar)) ++j;
          return j;
        });
    walk(
        [&](std::span<const uint64_t> w, size_t from) {
          return FusedLaplaceScanSumGe(w, mu, b, {a.data() + from, n - from},
                                       bar);
        },
        [&](size_t from) {
          return from + FindFirstSumGe({a.data() + from, n - from},
                                       {nu.data() + from, n - from}, bar);
        });
    walk(
        [&](std::span<const uint64_t> w, size_t from) {
          return FusedLaplaceScanGePairwise(
              w, mu, b, {bars.data() + from, n - from}, rho);
        },
        [&](size_t from) {
          size_t j = from;
          while (j < n && !(nu[j] >= bars[j] + rho)) ++j;
          return j;
        });
    walk(
        [&](std::span<const uint64_t> w, size_t from) {
          return FusedLaplaceScanSumGePairwise(
              w, mu, b, {a.data() + from, n - from},
              {bars.data() + from, n - from}, rho);
        },
        [&](size_t from) {
          return from + FindFirstSumGePairwise({a.data() + from, n - from},
                                               {nu.data() + from, n - from},
                                               {bars.data() + from, n - from},
                                               rho);
        });
  }
}

TEST(VecmathFusedScanTest, BitIdenticalAcrossDispatchLevels) {
  // Fused results (index AND ν payload) must not depend on the lane, for
  // hit positions at every lane offset.
  ScopedDispatchLevel restore;
  Rng rng(99);
  const size_t n = 531;
  std::vector<uint64_t> words(2 * n);
  rng.FillUint64(words);
  std::vector<double> a(n), bars(n);
  rng.FillDouble(a);
  rng.FillDouble(bars);

  ASSERT_TRUE(SetDispatchLevel(DispatchLevel::kScalar));
  std::vector<FusedScanHit> ref;
  for (size_t from = 0; from <= n;) {
    const FusedScanHit hit = FusedLaplaceScanSumGePairwise(
        {words.data() + 2 * from, 2 * (n - from)}, 0.0, 2.0,
        {a.data() + from, n - from}, {bars.data() + from, n - from}, 0.5);
    ref.push_back(hit);
    if (from + hit.index >= n) break;
    from += hit.index + 1;
  }
  ASSERT_GT(ref.size(), 2u) << "workload must contain several hits";

  for (DispatchLevel level :
       {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (!SetDispatchLevel(level)) continue;
    size_t k = 0;
    for (size_t from = 0; from <= n;) {
      const FusedScanHit hit = FusedLaplaceScanSumGePairwise(
          {words.data() + 2 * from, 2 * (n - from)}, 0.0, 2.0,
          {a.data() + from, n - from}, {bars.data() + from, n - from}, 0.5);
      ASSERT_LT(k, ref.size());
      ASSERT_EQ(hit.index, ref[k].index) << DispatchLevelName(level);
      ASSERT_EQ(std::bit_cast<uint64_t>(hit.nu),
                std::bit_cast<uint64_t>(ref[k].nu))
          << DispatchLevelName(level);
      ++k;
      if (from + hit.index >= n) break;
      from += hit.index + 1;
    }
    EXPECT_EQ(k, ref.size()) << DispatchLevelName(level);
  }
}

TEST(VecmathFusedScanTest, OddTailsAndEmptySpans) {
  // Chunk tails shorter than one SIMD width delegate to the scalar lane —
  // the same rule as the unfused kernels. Regression-test every length
  // that straddles the AVX2 (4) and AVX-512 (8, plus sub-width) tails,
  // and the empty span, at every level.
  ScopedDispatchLevel restore;
  Rng rng(7);
  std::vector<uint64_t> words(2 * 32);
  rng.FillUint64(words);
  std::vector<double> a(32, -1.0), bars(32, 1e9);
  const Laplace dist(0.0, 1.0);
  std::vector<double> nu(32);

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    dist.TransformBlock(words, nu);
    for (size_t len : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{5},
                       size_t{7}, size_t{9}, size_t{11}, size_t{15},
                       size_t{17}, size_t{31}}) {
      // No-hit scans return {len, 0.0} for every variant.
      EXPECT_EQ(FusedLaplaceScanGe({words.data(), 2 * len}, 0.0, 1.0, 1e9)
                    .index,
                len)
          << DispatchLevelName(level) << " len=" << len;
      EXPECT_EQ(FusedLaplaceScanSumGe({words.data(), 2 * len}, 0.0, 1.0,
                                      {a.data(), len}, 1e9)
                    .index,
                len);
      EXPECT_EQ(FusedLaplaceScanGePairwise({words.data(), 2 * len}, 0.0, 1.0,
                                           {bars.data(), len}, 0.0)
                    .index,
                len);
      EXPECT_EQ(
          FusedLaplaceScanSumGePairwise({words.data(), 2 * len}, 0.0, 1.0,
                                        {a.data(), len}, {bars.data(), len},
                                        0.0)
              .index,
          len);
      if (len == 0) continue;
      // A hit in the very last element of an odd tail is found with the
      // oracle's ν.
      const size_t last = len - 1;
      const double bar = nu[last];  // ties fire the ordered >=
      const FusedScanHit hit =
          FusedLaplaceScanGe({words.data(), 2 * len}, 0.0, 1.0, bar);
      ASSERT_LE(hit.index, last);
      ASSERT_EQ(std::bit_cast<uint64_t>(hit.nu),
                std::bit_cast<uint64_t>(nu[hit.index]))
          << DispatchLevelName(level) << " len=" << len;
    }
  }
}

TEST(VecmathExpNoiseTest, NegLogUnitPositiveScalarMatchesBlock) {
  // The scalar form is the single-element contract of the block kernel —
  // this is what makes streaming exponential draws and block transforms
  // draw-for-draw bit-identical.
  Rng rng(4242);
  std::vector<uint64_t> words(257);
  rng.FillUint64(words);
  words[0] = 0;        // largest −log on the lattice
  words[1] = ~0ull;    // u == 1 → −log == -0.0
  ScopedDispatchLevel restore;
  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    std::vector<double> block(words.size());
    NegLogUnitPositiveBlock(words, 1, block);
    for (size_t i = 0; i < words.size(); ++i) {
      ASSERT_EQ(std::bit_cast<uint64_t>(NegLogUnitPositive(words[i])),
                std::bit_cast<uint64_t>(block[i]))
          << DispatchLevelName(level) << " i=" << i;
      ASSERT_EQ(
          std::bit_cast<uint64_t>(NegLogUnitPositive(words[i])),
          std::bit_cast<uint64_t>(-Log(Rng::ToUnitDoublePositive(words[i]))))
          << "i=" << i;
    }
  }
}

TEST(VecmathExpNoiseTest, ExponentialTransformUlpBoundVsLibm) {
  // The one-word exponential transform tracks the libm composition
  // b·(−std::log(u)) within the documented kernel bound over a dense random
  // sweep plus the lattice edges.
  Rng rng(17);
  std::vector<uint64_t> words(65536);
  rng.FillUint64(words);
  words[0] = 0;
  words[1] = ~0ull;
  words[2] = 1;
  const double b = 1.75;
  std::vector<double> out(words.size());
  ExponentialTransformBlock(words, b, out);
  int64_t max_ulp = 0;
  for (size_t i = 0; i < words.size(); ++i) {
    const double u = Rng::ToUnitDoublePositive(words[i]);
    max_ulp = std::max(max_ulp, UlpDiff(out[i], b * (-std::log(u))));
  }
  EXPECT_LE(max_ulp, kMaxUlp);
  // One-sided support: every variate is ≥ 0 (u == 1 gives -0.0, which the
  // IEEE product with b keeps as -0.0 — still "not a negative noise").
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_FALSE(out[i] < 0.0) << "i=" << i;
  }
}

TEST(VecmathExpNoiseTest, TransformBitIdenticalAcrossLevels) {
  // ExponentialTransformBlock is defined as the b·NegLogUnitPositiveBlock
  // composition at stride 1; pin the definition at the scalar level and the
  // bit-identity of every SIMD lane against it.
  ScopedDispatchLevel restore;
  Rng rng(123);
  std::vector<uint64_t> words(4099);  // odd: exercises every lane tail
  rng.FillUint64(words);
  words[17] = ~0ull;
  words[33] = 0;
  const double b = 0.625;

  SetDispatchLevel(DispatchLevel::kScalar);
  std::vector<double> ref(words.size());
  ExponentialTransformBlock(words, b, ref);
  for (size_t i = 0; i < words.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(ref[i]),
              std::bit_cast<uint64_t>(b * NegLogUnitPositive(words[i])))
        << "composition definition diverges at i=" << i;
  }

  for (DispatchLevel level :
       {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (!SetDispatchLevel(level)) continue;
    std::vector<double> out(words.size());
    ExponentialTransformBlock(words, b, out);
    ExpectBitEqual(out, ref, DispatchLevelName(level));
  }
}

TEST(VecmathFusedExpScanTest, MatchesUnfusedCompositionAtEveryLevel) {
  // Exponential mirror of the Laplace fused-vs-composition walk: the fused
  // kernels must reproduce TransformBlock + FindFirst* exactly — indices
  // and ν payload bits — at every dispatch level. One word per variate.
  ScopedDispatchLevel restore;
  Rng rng(321);
  const size_t n = 1003;  // odd: exercises every lane tail
  std::vector<uint64_t> words(n);
  rng.FillUint64(words);
  words[0] = ~0ull;   // u == 1 lattice edge: ν == -0.0
  words[500] = 0;     // largest draw
  const double b = 1.75;
  std::vector<double> a(n), bars(n);
  rng.FillDouble(a);
  rng.FillDouble(bars);
  for (size_t i = 0; i < n; ++i) {
    a[i] = (a[i] - 0.5) * 8.0;     // straddle the ν scale
    bars[i] = bars[i] * 4.0;       // one-sided ν: keep bars in reach
  }
  const double rho = 0.125;

  const Exponential dist = Exponential::FromScale(b);
  std::vector<double> nu(n);

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    const std::string ctx = DispatchLevelName(level);
    dist.TransformBlock(words, nu);  // the oracle's ν block, same level

    const auto walk = [&](auto fused, auto oracle) {
      size_t from = 0;
      while (from <= n) {
        const std::span<const uint64_t> w{words.data() + from, n - from};
        const FusedScanHit hit = fused(w, from);
        const size_t expect = oracle(from);
        ASSERT_EQ(from + hit.index, expect) << ctx << " from=" << from;
        if (expect >= n) {
          ASSERT_EQ(hit.index, n - from);
          ASSERT_EQ(hit.nu, 0.0) << ctx << " no-hit nu must be 0";
          break;
        }
        ASSERT_EQ(std::bit_cast<uint64_t>(hit.nu),
                  std::bit_cast<uint64_t>(nu[expect]))
            << ctx << " nu diverges at " << expect;
        from = expect + 1;
      }
    };

    const double bar = b;  // plenty of hits, plenty of gaps
    walk(
        [&](std::span<const uint64_t> w, size_t) {
          return FusedExpScanGe(w, b, bar);
        },
        [&](size_t from) {
          size_t j = from;
          while (j < n && !(nu[j] >= bar)) ++j;
          return j;
        });
    walk(
        [&](std::span<const uint64_t> w, size_t from) {
          return FusedExpScanSumGe(w, b, {a.data() + from, n - from}, bar);
        },
        [&](size_t from) {
          return from + FindFirstSumGe({a.data() + from, n - from},
                                       {nu.data() + from, n - from}, bar);
        });
    walk(
        [&](std::span<const uint64_t> w, size_t from) {
          return FusedExpScanGePairwise(w, b, {bars.data() + from, n - from},
                                        rho);
        },
        [&](size_t from) {
          size_t j = from;
          while (j < n && !(nu[j] >= bars[j] + rho)) ++j;
          return j;
        });
    walk(
        [&](std::span<const uint64_t> w, size_t from) {
          return FusedExpScanSumGePairwise(
              w, b, {a.data() + from, n - from},
              {bars.data() + from, n - from}, rho);
        },
        [&](size_t from) {
          return from + FindFirstSumGePairwise({a.data() + from, n - from},
                                               {nu.data() + from, n - from},
                                               {bars.data() + from, n - from},
                                               rho);
        });
  }
}

TEST(VecmathFusedExpScanTest, BitIdenticalAcrossDispatchLevels) {
  // Fused exponential results (index AND ν payload) must not depend on the
  // lane, for hit positions at every lane offset.
  ScopedDispatchLevel restore;
  Rng rng(99);
  const size_t n = 531;
  std::vector<uint64_t> words(n);
  rng.FillUint64(words);
  std::vector<double> a(n), bars(n);
  rng.FillDouble(a);
  rng.FillDouble(bars);

  ASSERT_TRUE(SetDispatchLevel(DispatchLevel::kScalar));
  std::vector<FusedScanHit> ref;
  for (size_t from = 0; from <= n;) {
    const FusedScanHit hit = FusedExpScanSumGePairwise(
        {words.data() + from, n - from}, 2.0, {a.data() + from, n - from},
        {bars.data() + from, n - from}, 0.5);
    ref.push_back(hit);
    if (from + hit.index >= n) break;
    from += hit.index + 1;
  }
  ASSERT_GT(ref.size(), 2u) << "workload must contain several hits";

  for (DispatchLevel level :
       {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (!SetDispatchLevel(level)) continue;
    size_t k = 0;
    for (size_t from = 0; from <= n;) {
      const FusedScanHit hit = FusedExpScanSumGePairwise(
          {words.data() + from, n - from}, 2.0, {a.data() + from, n - from},
          {bars.data() + from, n - from}, 0.5);
      ASSERT_LT(k, ref.size());
      ASSERT_EQ(hit.index, ref[k].index) << DispatchLevelName(level);
      ASSERT_EQ(std::bit_cast<uint64_t>(hit.nu),
                std::bit_cast<uint64_t>(ref[k].nu))
          << DispatchLevelName(level);
      ++k;
      if (from + hit.index >= n) break;
      from += hit.index + 1;
    }
    EXPECT_EQ(k, ref.size()) << DispatchLevelName(level);
  }
}

TEST(VecmathFusedExpScanTest, OddTailsAndEmptySpans) {
  // Same tail rule as the Laplace kernels: sub-SIMD-width tails delegate to
  // the scalar lane. One word per element here.
  ScopedDispatchLevel restore;
  Rng rng(7);
  std::vector<uint64_t> words(32);
  rng.FillUint64(words);
  std::vector<double> a(32, -1.0), bars(32, 1e9);
  const Exponential dist = Exponential::FromScale(1.0);
  std::vector<double> nu(32);

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    dist.TransformBlock(words, nu);
    for (size_t len : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{5},
                       size_t{7}, size_t{9}, size_t{11}, size_t{15},
                       size_t{17}, size_t{31}}) {
      // No-hit scans return {len, 0.0} for every variant.
      EXPECT_EQ(FusedExpScanGe({words.data(), len}, 1.0, 1e9).index, len)
          << DispatchLevelName(level) << " len=" << len;
      EXPECT_EQ(
          FusedExpScanSumGe({words.data(), len}, 1.0, {a.data(), len}, 1e9)
              .index,
          len);
      EXPECT_EQ(FusedExpScanGePairwise({words.data(), len}, 1.0,
                                       {bars.data(), len}, 0.0)
                    .index,
                len);
      EXPECT_EQ(FusedExpScanSumGePairwise({words.data(), len}, 1.0,
                                          {a.data(), len}, {bars.data(), len},
                                          0.0)
                    .index,
                len);
      if (len == 0) continue;
      // A hit in the very last element of an odd tail is found with the
      // oracle's ν.
      const size_t last = len - 1;
      const double bar = nu[last];  // ties fire the ordered >=
      const FusedScanHit hit = FusedExpScanGe({words.data(), len}, 1.0, bar);
      ASSERT_LE(hit.index, last);
      ASSERT_EQ(std::bit_cast<uint64_t>(hit.nu),
                std::bit_cast<uint64_t>(nu[hit.index]))
          << DispatchLevelName(level) << " len=" << len;
    }
  }
}

TEST(VecmathDispatchTest, ScalarKernelMatchesComposedDefinition) {
  // The fused sampling kernels are *defined* by composition of Log and the
  // lattice map; pin that definition at the scalar level.
  Rng rng(99);
  std::vector<uint64_t> words(64);
  rng.FillUint64(words);
  ScopedDispatchLevel restore;
  SetDispatchLevel(DispatchLevel::kScalar);
  std::vector<double> out(64);
  NegLogUnitPositiveBlock(words, 1, out);
  for (size_t i = 0; i < words.size(); ++i) {
    const double expected = -Log(Rng::ToUnitDoublePositive(words[i]));
    ASSERT_EQ(std::bit_cast<uint64_t>(out[i]),
              std::bit_cast<uint64_t>(expected))
        << "i=" << i;
  }
}

// --- Megakernel equivalence: in-register generation vs composition -------

bool StatesEqual(const BlockRng::State& a, const BlockRng::State& b) {
  return a.phase == b.phase && a.words == b.words;
}

// Walks every hit of a megakernel against its FillUint64 + fused-scan
// composition oracle: hit indices, ν payloads bit for bit, and — after
// every single call — the stream position, by advancing a shadow Rng with
// FillUint64 over exactly the words the megakernel claims to have
// consumed and comparing States. This is the "in-kernel generation is
// stream-neutral" contract, including mid-chunk positive resume (each
// loop iteration resumes the same State the previous hit left behind).
// `pre_draws` > 0 enters the kernels at an unaligned phase, covering the
// SIMD lanes' whole-call scalar delegation.
template <typename MegaFn, typename FusedFn>
void WalkMegaVsComposition(uint64_t seed, size_t n, size_t wpv,
                           uint32_t pre_draws, MegaFn mega_fn,
                           FusedFn fused_fn, const std::string& ctx,
                           size_t* hits_out = nullptr) {
  Rng comp_rng(seed), mega_rng(seed), shadow(seed);
  for (uint32_t i = 0; i < pre_draws; ++i) {
    comp_rng.NextUint64();
    mega_rng.NextUint64();
    shadow.NextUint64();
  }
  std::vector<uint64_t> words(wpv * n);
  comp_rng.FillUint64(words);
  BlockRng::State st = mega_rng.state();
  std::vector<uint64_t> scratch;
  size_t hits = 0;
  size_t from = 0;
  while (from <= n) {
    const size_t rem = n - from;
    const FusedScanHit want =
        fused_fn(std::span<const uint64_t>{words.data() + wpv * from,
                                           wpv * rem},
                 from);
    const FusedScanHit got = mega_fn(&st, from);
    ASSERT_EQ(got.index, want.index) << ctx << " from=" << from;
    ASSERT_EQ(std::bit_cast<uint64_t>(got.nu),
              std::bit_cast<uint64_t>(want.nu))
        << ctx << " nu diverges, from=" << from;
    const size_t consumed =
        (want.index < rem ? want.index + 1 : rem) * wpv;
    scratch.resize(consumed);
    shadow.FillUint64(scratch);
    const BlockRng::State expect = shadow.state();
    ASSERT_TRUE(StatesEqual(st, expect))
        << ctx << " stream position diverges after scan from=" << from;
    if (want.index >= rem) break;
    ++hits;
    from += want.index + 1;
  }
  // The full walk consumed exactly the words the composition filled.
  ASSERT_TRUE(StatesEqual(st, comp_rng.state())) << ctx;
  if (hits_out) *hits_out = hits;
}

TEST(VecmathMegaScanTest, MatchesFillPlusFusedCompositionAtEveryLevel) {
  ScopedDispatchLevel restore;
  const size_t n = 1003;  // odd: exercises every lane tail
  std::vector<double> a(n), bars(n);
  Rng setup(555);
  setup.FillDouble(a);
  setup.FillDouble(bars);
  for (size_t i = 0; i < n; ++i) {
    a[i] = (a[i] - 0.5) * 8.0;     // straddle the ν scale
    bars[i] = (bars[i] - 0.5) * 4.0;
  }
  const double mu = 0.25, b = 1.75, rho = 0.125;
  const double bar = mu + b;  // plenty of hits, plenty of gaps

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    for (uint32_t pre : {0u, 1u, 3u}) {
      const std::string ctx =
          std::string(DispatchLevelName(level)) + " pre=" + std::to_string(pre);
      size_t hits = 0;
      WalkMegaVsComposition(
          17, n, 2, pre,
          [&](BlockRng::State* st, size_t from) {
            return MegaLaplaceScanSumGe(st, mu, b, {a.data() + from, n - from},
                                        bar);
          },
          [&](std::span<const uint64_t> w, size_t from) {
            return FusedLaplaceScanSumGe(w, mu, b, {a.data() + from, n - from},
                                         bar);
          },
          ctx + " laplace", &hits);
      EXPECT_GT(hits, 2u) << ctx << " workload must contain several hits";
      WalkMegaVsComposition(
          17, n, 2, pre,
          [&](BlockRng::State* st, size_t from) {
            return MegaLaplaceScanSumGePairwise(
                st, mu, b, {a.data() + from, n - from},
                {bars.data() + from, n - from}, rho);
          },
          [&](std::span<const uint64_t> w, size_t from) {
            return FusedLaplaceScanSumGePairwise(
                w, mu, b, {a.data() + from, n - from},
                {bars.data() + from, n - from}, rho);
          },
          ctx + " laplace-pairwise");
      WalkMegaVsComposition(
          17, n, 1, pre,
          [&](BlockRng::State* st, size_t from) {
            return MegaExpScanSumGe(st, b, {a.data() + from, n - from}, bar);
          },
          [&](std::span<const uint64_t> w, size_t from) {
            return FusedExpScanSumGe(w, b, {a.data() + from, n - from}, bar);
          },
          ctx + " exp", &hits);
      EXPECT_GT(hits, 2u) << ctx << " workload must contain several hits";
      WalkMegaVsComposition(
          17, n, 1, pre,
          [&](BlockRng::State* st, size_t from) {
            return MegaExpScanSumGePairwise(st, b, {a.data() + from, n - from},
                                            {bars.data() + from, n - from},
                                            rho);
          },
          [&](std::span<const uint64_t> w, size_t from) {
            return FusedExpScanSumGePairwise(w, b, {a.data() + from, n - from},
                                             {bars.data() + from, n - from},
                                             rho);
          },
          ctx + " exp-pairwise");
    }
  }
}

TEST(VecmathMegaScanTest, OddTailsEmptySpansAndEdgeBars) {
  // Lengths straddling the AVX2 (4) and AVX-512 (8) group widths, the
  // empty span, a bar no element reaches (pure miss: full-span state
  // advance), a bar every element clears (immediate hit: one-element
  // advance every call), and a moderate bar in between — all walked
  // against the composition at every level.
  ScopedDispatchLevel restore;
  constexpr size_t kMaxLen = 33;
  std::vector<double> a(kMaxLen, 0.0);
  const double mu = 0.0, b = 1.0;

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    for (size_t len : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{5},
                       size_t{7}, size_t{9}, size_t{11}, size_t{15},
                       size_t{17}, size_t{31}, size_t{33}}) {
      for (double bar : {1e9, -1e9, 0.5}) {
        const std::string ctx = std::string(DispatchLevelName(level)) +
                                " len=" + std::to_string(len) +
                                " bar=" + std::to_string(bar);
        WalkMegaVsComposition(
            7, len, 2, 0,
            [&](BlockRng::State* st, size_t from) {
              return MegaLaplaceScanSumGe(st, mu, b,
                                          {a.data() + from, len - from}, bar);
            },
            [&](std::span<const uint64_t> w, size_t from) {
              return FusedLaplaceScanSumGe(w, mu, b,
                                           {a.data() + from, len - from}, bar);
            },
            ctx + " laplace");
        WalkMegaVsComposition(
            7, len, 1, 0,
            [&](BlockRng::State* st, size_t from) {
              return MegaExpScanSumGe(st, b, {a.data() + from, len - from},
                                      bar);
            },
            [&](std::span<const uint64_t> w, size_t from) {
              return FusedExpScanSumGe(w, b, {a.data() + from, len - from},
                                       bar);
            },
            ctx + " exp");
      }
    }
  }
}

TEST(VecmathMegaFillMinSpansTest, MatchesFillAndMinAtEveryLevel) {
  // MegaFillMinSpans is defined as FillUint64 + per-span minimum over the
  // magnitude words (every wpv-th word). Check, at every level and for
  // both word widths: every span minimum, the recorded span-entry States
  // (each must equal a shadow Rng advanced to the span's first word), the
  // returned total, and the final stream position — across aligned spans,
  // a short final span, single-span calls, and unaligned entry.
  ScopedDispatchLevel restore;
  std::vector<uint64_t> scratch;

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    for (size_t wpv : {size_t{1}, size_t{2}}) {
      for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                           size_t{96}, size_t{257}}) {
        for (size_t span : {size_t{8}, size_t{16}, size_t{32}, size_t{512}}) {
          for (uint32_t pre : {0u, 1u}) {
            const std::string ctx =
                std::string(DispatchLevelName(level)) + " wpv=" +
                std::to_string(wpv) + " count=" + std::to_string(count) +
                " span=" + std::to_string(span) + " pre=" +
                std::to_string(pre);
            Rng comp_rng(33), mega_rng(33), shadow(33);
            for (uint32_t i = 0; i < pre; ++i) {
              comp_rng.NextUint64();
              mega_rng.NextUint64();
              shadow.NextUint64();
            }
            std::vector<uint64_t> words(wpv * count);
            comp_rng.FillUint64(words);
            const size_t nspans = (count + span - 1) / span;
            std::vector<uint64_t> smin(nspans + 1, 0xdecafbadull);
            std::vector<BlockRng::State> sstates(nspans + 1);
            BlockRng::State st = mega_rng.state();
            const uint64_t total = MegaFillMinSpans(&st, count, wpv, span,
                                                    smin.data(),
                                                    sstates.data());
            uint64_t want_total = ~0ull;
            for (size_t s = 0; s < nspans; ++s) {
              ASSERT_TRUE(StatesEqual(sstates[s], shadow.state()))
                  << ctx << " span-entry state, span " << s;
              const size_t lo = s * span;
              const size_t hi = std::min(count, lo + span);
              scratch.resize(wpv * (hi - lo));
              shadow.FillUint64(scratch);
              uint64_t m = ~0ull;
              for (size_t i = lo; i < hi; ++i) {
                m = std::min(m, words[wpv * i]);
              }
              ASSERT_EQ(smin[s], m) << ctx << " span " << s;
              want_total = std::min(want_total, m);
            }
            EXPECT_EQ(total, want_total) << ctx;
            EXPECT_EQ(smin[nspans], 0xdecafbadull)
                << ctx << " wrote past the last span";
            ASSERT_TRUE(StatesEqual(st, shadow.state()))
                << ctx << " final stream position";
          }
        }
      }
    }
  }
}

TEST(VecmathMegaScanTest, BitIdenticalAcrossDispatchLevels) {
  // Megakernel hit sequences (index AND ν payload) and final stream
  // positions must not depend on the lane.
  ScopedDispatchLevel restore;
  const size_t n = 531;
  std::vector<double> a(n), bars(n);
  Rng setup(99);
  setup.FillDouble(a);
  setup.FillDouble(bars);

  ASSERT_TRUE(SetDispatchLevel(DispatchLevel::kScalar));
  std::vector<FusedScanHit> ref;
  BlockRng::State ref_state;
  {
    Rng rng(99);
    BlockRng::State st = rng.state();
    for (size_t from = 0; from <= n;) {
      const FusedScanHit hit = MegaLaplaceScanSumGePairwise(
          &st, 0.0, 2.0, {a.data() + from, n - from},
          {bars.data() + from, n - from}, 0.5);
      ref.push_back(hit);
      if (from + hit.index >= n) break;
      from += hit.index + 1;
    }
    ref_state = st;
  }
  ASSERT_GT(ref.size(), 2u) << "workload must contain several hits";

  for (DispatchLevel level : {DispatchLevel::kAvx2, DispatchLevel::kAvx512}) {
    if (!SetDispatchLevel(level)) continue;
    Rng rng(99);
    BlockRng::State st = rng.state();
    size_t k = 0;
    for (size_t from = 0; from <= n;) {
      const FusedScanHit hit = MegaLaplaceScanSumGePairwise(
          &st, 0.0, 2.0, {a.data() + from, n - from},
          {bars.data() + from, n - from}, 0.5);
      ASSERT_LT(k, ref.size());
      ASSERT_EQ(hit.index, ref[k].index) << DispatchLevelName(level);
      ASSERT_EQ(std::bit_cast<uint64_t>(hit.nu),
                std::bit_cast<uint64_t>(ref[k].nu))
          << DispatchLevelName(level);
      ++k;
      if (from + hit.index >= n) break;
      from += hit.index + 1;
    }
    EXPECT_EQ(k, ref.size()) << DispatchLevelName(level);
    EXPECT_TRUE(StatesEqual(st, ref_state)) << DispatchLevelName(level);
  }
}

TEST(VecmathMegaBoundedTest, SkipWordThresholdShape) {
  // No sound threshold exists when some answer reaches the bar (gap <= 0)
  // or the inputs are degenerate; otherwise the threshold shrinks (skips
  // more) as the gap grows, and a huge gap skips everything but word 0's
  // neighborhood. All returns stay at or below the sentinel + 1, the
  // AVX2 signed-compare cap.
  EXPECT_GE(MegaSkipWordThreshold(5.0, 5.0, 1.0), kMegaNeverSkipWord);
  EXPECT_GE(MegaSkipWordThreshold(7.0, 5.0, 1.0), kMegaNeverSkipWord);
  EXPECT_GE(MegaSkipWordThreshold(0.0, 1.0, 0.0), kMegaNeverSkipWord);
  uint64_t prev = UINT64_MAX;
  for (double gap : {0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0}) {
    const uint64_t w = MegaSkipWordThreshold(0.0, gap, 1.7);
    EXPECT_LE(w, kMegaNeverSkipWord + 1) << "gap=" << gap;
    EXPECT_LE(w, prev) << "gap=" << gap;
    prev = w;
  }
  EXPECT_LT(MegaSkipWordThreshold(0.0, 40.0, 1.0), uint64_t{1} << 11);
}

TEST(VecmathMegaBoundedTest, BoundedScanMatchesUnboundedAtEveryLevel) {
  // The bounded scans must be bit-identical to the unbounded megakernels
  // — same hit indices, same ν payloads, same end states — at every
  // dispatch level, both with the production word threshold (near-bar
  // answers keep boundary pressure on its soundness) and with the
  // never-skip sentinel (pure pass-through).
  ScopedDispatchLevel restore;
  const size_t n = 1003;
  std::vector<double> a(n);
  Rng setup(321);
  setup.FillDouble(a);
  const double b = 1.75;
  const double bar = 1.0;
  double a_max = a[0];
  for (size_t i = 0; i < n; ++i) {
    a[i] = bar - 12.0 * a[i];  // gaps in (bar - 12, bar]: rare hits
    a_max = std::max(a_max, a[i]);
  }
  const uint64_t tight = MegaSkipWordThreshold(a_max, bar, b);
  ASSERT_LT(tight, kMegaNeverSkipWord) << "workload must allow skipping";

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    for (uint32_t pre : {0u, 1u, 3u}) {
      for (uint64_t skip : {tight, kMegaNeverSkipWord}) {
        const std::string ctx = std::string(DispatchLevelName(level)) +
                                " pre=" + std::to_string(pre) +
                                " skip=" + std::to_string(skip);
        size_t hits = 0;
        WalkMegaVsComposition(
            41, n, 2, pre,
            [&](BlockRng::State* st, size_t from) {
              return MegaLaplaceScanSumGeBounded(
                  st, 0.0, b, {a.data() + from, n - from}, bar, skip);
            },
            [&](std::span<const uint64_t> w, size_t from) {
              return FusedLaplaceScanSumGe(w, 0.0, b,
                                           {a.data() + from, n - from}, bar);
            },
            ctx + " laplace", &hits);
        EXPECT_GT(hits, 1u) << ctx << " workload must contain hits";
        WalkMegaVsComposition(
            41, n, 1, pre,
            [&](BlockRng::State* st, size_t from) {
              return MegaExpScanSumGeBounded(st, b, {a.data() + from, n - from},
                                             bar, skip);
            },
            [&](std::span<const uint64_t> w, size_t from) {
              return FusedExpScanSumGe(w, b, {a.data() + from, n - from}, bar);
            },
            ctx + " exp", &hits);
        EXPECT_GT(hits, 1u) << ctx << " workload must contain hits";
      }
    }
  }
}

TEST(VecmathMegaBoundedTest, FillMinScanSpansMatchesCompositionAtEveryLevel) {
  // The fused generate-bound-and-scan pass is defined as MegaFillMinSpans
  // (identical minima, span states, end state) plus the complete set of
  // positives a bounded-scan walk from the same origin finds — indices
  // and ν payloads bit for bit, in order. Also pins the overflow
  // contract: with a tiny max_hits the return value still counts every
  // positive and the stored prefix is unchanged.
  ScopedDispatchLevel restore;
  const double b = 2.25;
  const double bar = 0.5;
  std::vector<uint64_t> scratch;

  for (DispatchLevel level : kAllDispatchLevels) {
    if (!SetDispatchLevel(level)) continue;
    for (size_t n : {size_t{37}, size_t{128}, size_t{1000}, size_t{2048}}) {
      for (int exp_nu = 0; exp_nu <= 1; ++exp_nu) {
        const std::string ctx = std::string(DispatchLevelName(level)) +
                                " n=" + std::to_string(n) +
                                " exp=" + std::to_string(exp_nu);
        const size_t wpv = exp_nu ? 1 : 2;
        std::vector<double> a(n);
        Rng setup(n * 7 + exp_nu);
        setup.FillDouble(a);
        double a_max = -1e300;
        for (size_t i = 0; i < n; ++i) {
          a[i] = bar - 10.0 * a[i];
          a_max = std::max(a_max, a[i]);
        }
        const uint64_t skip = MegaSkipWordThreshold(a_max, bar, b);
        ASSERT_LT(skip, kMegaNeverSkipWord) << ctx;
        const size_t span = 128;
        const size_t nspans = (n + span - 1) / span;

        Rng ref_rng(77), fused_rng(77);
        const BlockRng::State s0 = ref_rng.state();

        // Reference: generate-and-bound pass, then a bounded-scan walk
        // from the same origin for the hit list.
        BlockRng::State ref_st = s0;
        std::vector<uint64_t> ref_min(nspans);
        std::vector<BlockRng::State> ref_states(nspans);
        const uint64_t ref_total = MegaFillMinSpans(
            &ref_st, n, wpv, span, ref_min.data(), ref_states.data());
        std::vector<FusedScanHit> ref_hits;
        {
          BlockRng::State sc = s0;
          size_t from = 0;
          while (from < n) {
            const FusedScanHit h =
                exp_nu ? MegaExpScanSumGeBounded(
                             &sc, b, {a.data() + from, n - from}, bar, skip)
                       : MegaLaplaceScanSumGeBounded(
                             &sc, 0.0, b, {a.data() + from, n - from}, bar,
                             skip);
            if (h.index >= n - from) break;
            ref_hits.push_back({from + h.index, h.nu});
            from += h.index + 1;
          }
        }
        ASSERT_GT(ref_hits.size(), 1u) << ctx << " workload must contain hits";

        BlockRng::State st = s0;
        std::vector<uint64_t> smin(nspans);
        std::vector<BlockRng::State> sstates(nspans);
        std::vector<FusedScanHit> hits(n);
        uint64_t total = 0;
        const size_t found =
            exp_nu ? MegaExpFillMinScanSpans(&st, b, a, bar, skip, span,
                                             smin.data(), sstates.data(),
                                             hits.data(), n, &total)
                   : MegaLaplaceFillMinScanSpans(&st, 0.0, b, a, bar, skip,
                                                 span, smin.data(),
                                                 sstates.data(), hits.data(),
                                                 n, &total);
        EXPECT_EQ(total, ref_total) << ctx;
        ASSERT_EQ(found, ref_hits.size()) << ctx;
        for (size_t k = 0; k < found; ++k) {
          ASSERT_EQ(hits[k].index, ref_hits[k].index) << ctx << " k=" << k;
          ASSERT_EQ(std::bit_cast<uint64_t>(hits[k].nu),
                    std::bit_cast<uint64_t>(ref_hits[k].nu))
              << ctx << " k=" << k;
        }
        for (size_t j = 0; j < nspans; ++j) {
          ASSERT_EQ(smin[j], ref_min[j]) << ctx << " span " << j;
          ASSERT_TRUE(StatesEqual(sstates[j], ref_states[j]))
              << ctx << " span state " << j;
        }
        ASSERT_TRUE(StatesEqual(st, ref_st)) << ctx << " end state";

        // Overflow: max_hits = 1 stores only the first hit but still
        // counts them all and leaves reductions and states unchanged.
        BlockRng::State st2 = s0;
        FusedScanHit first{};
        uint64_t total2 = 0;
        const size_t found2 =
            exp_nu ? MegaExpFillMinScanSpans(&st2, b, a, bar, skip, span,
                                             smin.data(), sstates.data(),
                                             &first, 1, &total2)
                   : MegaLaplaceFillMinScanSpans(&st2, 0.0, b, a, bar, skip,
                                                 span, smin.data(),
                                                 sstates.data(), &first, 1,
                                                 &total2);
        EXPECT_EQ(found2, found) << ctx;
        EXPECT_EQ(total2, ref_total) << ctx;
        EXPECT_EQ(first.index, ref_hits[0].index) << ctx;
        ASSERT_TRUE(StatesEqual(st2, ref_st)) << ctx << " overflow end state";
      }
    }
  }
}

}  // namespace
}  // namespace vec
}  // namespace svt
