// Determinism and correctness of the parallel Monte-Carlo estimator:
// fixed (seed, num_workers) must reproduce identical hit counts regardless
// of scheduling, num_workers = 1 must match the legacy serial loop draw for
// draw, and the parallel estimate must agree statistically with the serial
// one (it uses different streams, so only the distribution matches).

#include "audit/monte_carlo.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/svt_variants.h"
#include "core/variant_spec.h"

namespace svt {
namespace {

McOptions Opts(int64_t trials, int workers) {
  McOptions o;
  o.trials = trials;
  o.confidence = 0.999;
  o.num_workers = workers;
  return o;
}

// Replicates the legacy serial estimator loop against the public API with
// num_workers = 1: every trial must draw from the caller's rng directly.
TEST(McParallelTest, OneWorkerMatchesLegacySerialPath) {
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 2);
  const std::vector<double> answers = {0.5, -0.5, 0.2};
  const std::string pattern = "_T_";
  const int64_t trials = 20000;

  Rng rng_api(42);
  const McEstimate est = EstimateOutputProbability(spec, answers, 0.0,
                                                   pattern, rng_api,
                                                   Opts(trials, 1));

  Rng rng_legacy(42);
  CustomSvt mech(spec, &rng_legacy);
  int64_t hits = 0;
  for (int64_t t = 0; t < trials; ++t) {
    mech.Reset();
    bool match = true;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (mech.exhausted()) {
        match = false;
        break;
      }
      const Response r = mech.Process(answers[i], 0.0);
      if (r.is_positive() != (pattern[i] == 'T')) {
        match = false;
        break;
      }
    }
    if (match) ++hits;
  }
  EXPECT_EQ(est.hits, hits);
  // And the two rngs must land in the same state.
  EXPECT_EQ(rng_api.NextUint64(), rng_legacy.NextUint64());
}

TEST(McParallelTest, FixedSeedAndWorkersReproduceIdenticalHits) {
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 2);
  const std::vector<double> answers = {0.5, -0.5, 0.2, 0.9};
  for (int workers : {2, 3, 4, 8}) {
    Rng rng_a(7), rng_b(7);
    const McEstimate a = EstimateOutputProbability(spec, answers, 0.0, "_T_T",
                                                   rng_a, Opts(30000, workers));
    const McEstimate b = EstimateOutputProbability(spec, answers, 0.0, "_T_T",
                                                   rng_b, Opts(30000, workers));
    EXPECT_EQ(a.hits, b.hits) << "workers=" << workers;
    EXPECT_EQ(a.p_hat, b.p_hat) << "workers=" << workers;
    EXPECT_EQ(a.lower, b.lower) << "workers=" << workers;
    EXPECT_EQ(a.upper, b.upper) << "workers=" << workers;
    // The caller-visible rng state advances identically too (one Fork per
    // worker).
    EXPECT_EQ(rng_a.NextUint64(), rng_b.NextUint64());
  }
}

TEST(McParallelTest, ParallelAgreesWithSerialStatistically) {
  // Different worker counts use different streams, so only the estimates —
  // not the draws — must agree, within joint Wilson bounds.
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> answers = {0.0};
  Rng rng_serial(11), rng_par(11);
  const McEstimate serial = EstimateOutputProbability(
      spec, answers, 0.0, "T", rng_serial, Opts(60000, 1));
  const McEstimate par = EstimateOutputProbability(spec, answers, 0.0, "T",
                                                   rng_par, Opts(60000, 4));
  // True p is 0.5; both intervals must cover each other's point estimate.
  EXPECT_LE(serial.lower, par.p_hat);
  EXPECT_GE(serial.upper, par.p_hat);
  EXPECT_LE(par.lower, serial.p_hat);
  EXPECT_GE(par.upper, serial.p_hat);
  EXPECT_NEAR(par.p_hat, 0.5, 0.02);
}

TEST(McParallelTest, WorkerCountClampedToTrials) {
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> answers = {0.0};
  Rng rng(13);
  // 8 workers, 3 trials: must not deadlock or divide by zero, and trial
  // count must be exact.
  const McEstimate est =
      EstimateOutputProbability(spec, answers, 0.0, "T", rng, Opts(3, 8));
  EXPECT_EQ(est.trials, 3);
  EXPECT_GE(est.hits, 0);
  EXPECT_LE(est.hits, 3);
}

TEST(McParallelTest, HardwareWorkerAutoSelection) {
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> answers = {0.0};
  Rng rng(17);
  const McEstimate est =
      EstimateOutputProbability(spec, answers, 0.0, "T", rng, Opts(10000, 0));
  EXPECT_EQ(est.trials, 10000);
  EXPECT_NEAR(est.p_hat, 0.5, 0.05);
}

TEST(McParallelTest, StringViewPatternBinding) {
  // The pattern parameter is a string_view: literals, strings and
  // substrings bind without copies.
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> answers = {0.0, 0.0};
  const std::string long_pattern = "_T__";
  Rng rng(19);
  const McEstimate est = EstimateOutputProbability(
      spec, answers, 0.0, std::string_view(long_pattern).substr(0, 2), rng,
      Opts(5000, 2));
  EXPECT_EQ(est.trials, 5000);
}

}  // namespace
}  // namespace svt
