#include "common/flags.h"

#include <gtest/gtest.h>

namespace svt {
namespace {

// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (auto& s : storage_) argv_.push_back(s.data());
  }
  int argc() { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

TEST(FlagsTest, ParsesEqualsSyntax) {
  FlagSet flags;
  int64_t runs = 10;
  double eps = 1.0;
  std::string name = "x";
  bool verbose = false;
  flags.AddInt64("runs", &runs, "");
  flags.AddDouble("epsilon", &eps, "");
  flags.AddString("name", &name, "");
  flags.AddBool("verbose", &verbose, "");

  ArgvBuilder args({"--runs=50", "--epsilon=0.25", "--name=kosarak",
                    "--verbose=true"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(runs, 50);
  EXPECT_DOUBLE_EQ(eps, 0.25);
  EXPECT_EQ(name, "kosarak");
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, ParsesSpaceSyntax) {
  FlagSet flags;
  int64_t c = 0;
  flags.AddInt64("c", &c, "");
  ArgvBuilder args({"--c", "300"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(c, 300);
}

TEST(FlagsTest, BareBoolEnables) {
  FlagSet flags;
  bool csv = false;
  flags.AddBool("csv", &csv, "");
  ArgvBuilder args({"--csv"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(csv);
}

TEST(FlagsTest, BoolAcceptsNumericForms) {
  FlagSet flags;
  bool a = false, b = true;
  flags.AddBool("a", &a, "");
  flags.AddBool("b", &b, "");
  ArgvBuilder args({"--a=1", "--b=0"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags;
  ArgvBuilder args({"--mystery=1"});
  const Status s = flags.Parse(args.argc(), args.argv());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntFails) {
  FlagSet flags;
  int64_t x = 0;
  flags.AddInt64("x", &x, "");
  ArgvBuilder args({"--x=12abc"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadDoubleFails) {
  FlagSet flags;
  double x = 0;
  flags.AddDouble("x", &x, "");
  ArgvBuilder args({"--x=not-a-number"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags;
  int64_t x = 0;
  flags.AddInt64("x", &x, "");
  ArgvBuilder args({"--x"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, PositionalArgumentFails) {
  FlagSet flags;
  ArgvBuilder args({"stray"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, NegativeNumbersParse) {
  FlagSet flags;
  int64_t i = 0;
  double d = 0;
  flags.AddInt64("i", &i, "");
  flags.AddDouble("d", &d, "");
  ArgvBuilder args({"--i=-5", "--d=-2.5e-3"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(i, -5);
  EXPECT_DOUBLE_EQ(d, -2.5e-3);
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagSet flags;
  int64_t runs = 30;
  flags.AddInt64("runs", &runs, "number of repetitions");
  const std::string usage = flags.Usage("bench");
  EXPECT_NE(usage.find("--runs"), std::string::npos);
  EXPECT_NE(usage.find("30"), std::string::npos);
  EXPECT_NE(usage.find("number of repetitions"), std::string::npos);
}

TEST(FlagsTest, DefaultsSurviveWhenNotPassed) {
  FlagSet flags;
  int64_t runs = 30;
  double eps = 0.1;
  flags.AddInt64("runs", &runs, "");
  flags.AddDouble("epsilon", &eps, "");
  ArgvBuilder args({"--runs=7"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(runs, 7);
  EXPECT_DOUBLE_EQ(eps, 0.1);
}

}  // namespace
}  // namespace svt
