#include "data/dataset_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace svt {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("svt_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, LoadsFimiFormat) {
  WriteFile("basket.dat", "1 2 5\n0 2\n\n5\n");
  const auto db = LoadFimiTransactions(Path("basket.dat"));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->num_transactions(), 3u);  // blank line skipped
  EXPECT_EQ(db->num_items(), 6u);         // max id 5 => 6 items
  EXPECT_EQ(db->ItemSupport(2), 2u);
  EXPECT_EQ(db->ItemSupport(5), 2u);
  EXPECT_EQ(db->ItemSupport(3), 0u);
}

TEST_F(DatasetIoTest, MinItemsExtendsDomain) {
  WriteFile("small.dat", "0 1\n");
  const auto db = LoadFimiTransactions(Path("small.dat"), /*min_items=*/10);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_items(), 10u);
}

TEST_F(DatasetIoTest, RejectsMissingFile) {
  const auto db = LoadFimiTransactions(Path("nonexistent.dat"));
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, RejectsGarbageTokens) {
  WriteFile("bad.dat", "1 2 three\n");
  const auto db = LoadFimiTransactions(Path("bad.dat"));
  EXPECT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("bad item id"), std::string::npos);
}

TEST_F(DatasetIoTest, RejectsEmptyFile) {
  WriteFile("empty.dat", "\n\n");
  const auto db = LoadFimiTransactions(Path("empty.dat"));
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kOutOfRange);
}

TEST_F(DatasetIoTest, TransactionsRoundTrip) {
  Rng rng(1);
  std::vector<double> profile(20);
  for (int i = 0; i < 20; ++i) profile[i] = 100.0 / (i + 1);
  const TransactionDb original =
      GenerateTransactions(ScoreVector(profile), 150, rng);

  ASSERT_TRUE(SaveFimiTransactions(original, Path("round.dat")).ok());
  const auto loaded =
      LoadFimiTransactions(Path("round.dat"), original.num_items());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_transactions(), original.num_transactions());
  EXPECT_EQ(loaded->ItemSupports(), original.ItemSupports());
  for (size_t t = 0; t < original.num_transactions(); ++t) {
    ASSERT_EQ(loaded->transaction(t), original.transaction(t)) << t;
  }
}

TEST_F(DatasetIoTest, ScoresRoundTrip) {
  Rng rng(2);
  DatasetSpec spec = ZipfSpec();
  spec.num_items = 500;
  const ScoreVector original = GenerateScores(spec, rng);
  ASSERT_TRUE(SaveScores(original, Path("scores.txt")).ok());
  const auto loaded = LoadScores(Path("scores.txt"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    ASSERT_DOUBLE_EQ((*loaded)[i], original[i]) << i;
  }
}

TEST_F(DatasetIoTest, LoadScoresSkipsComments) {
  WriteFile("scores.txt", "# header\n0 10.5\n2 3.25\n");
  const auto scores = LoadScores(Path("scores.txt"));
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 3u);
  EXPECT_DOUBLE_EQ((*scores)[0], 10.5);
  EXPECT_DOUBLE_EQ((*scores)[1], 0.0);  // missing id defaults to 0
  EXPECT_DOUBLE_EQ((*scores)[2], 3.25);
}

TEST_F(DatasetIoTest, LoadScoresRejectsNegative) {
  WriteFile("neg.txt", "0 -5\n");
  EXPECT_FALSE(LoadScores(Path("neg.txt")).ok());
}

TEST_F(DatasetIoTest, LoadScoresRejectsMalformedLine) {
  WriteFile("malformed.txt", "0\n");
  EXPECT_FALSE(LoadScores(Path("malformed.txt")).ok());
}

TEST_F(DatasetIoTest, SaveRejectsUnwritablePath) {
  const TransactionDb db = [] {
    TransactionDb d(2);
    d.Add({0});
    return d;
  }();
  EXPECT_FALSE(
      SaveFimiTransactions(db, "/nonexistent_dir_xyz/file.dat").ok());
}

}  // namespace
}  // namespace svt
