#include "eval/experiment.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/reporting.h"

namespace svt {
namespace {

ScoreVector LinearScores(size_t n) {
  std::vector<double> s(n);
  for (size_t i = 0; i < n; ++i) s[i] = static_cast<double>(n - i);
  return ScoreVector(std::move(s));
}

SweepConfig SmallSweep() {
  SweepConfig cfg;
  cfg.c_values = {5, 10};
  cfg.epsilon = 1.0;
  cfg.runs = 5;
  cfg.seed = 7;
  return cfg;
}

TEST(MethodConfigTest, LabelsMatchPaper) {
  EXPECT_EQ(MethodConfig::SvtDpBook().label, "SVT-DPBook");
  EXPECT_EQ(MethodConfig::SvtStandard(AllocationPolicy::kOneToOne).label,
            "SVT-S-1:1");
  EXPECT_EQ(MethodConfig::SvtStandard(AllocationPolicy::kOneToThree).label,
            "SVT-S-1:3");
  EXPECT_EQ(MethodConfig::SvtStandard(AllocationPolicy::kOneToC).label,
            "SVT-S-1:c");
  EXPECT_EQ(MethodConfig::SvtStandard(AllocationPolicy::kOptimal).label,
            "SVT-S-1:c^2/3");
  EXPECT_EQ(MethodConfig::SvtRetraversal(3.0).label, "SVT-ReTr-1:c^2/3-3D");
  EXPECT_EQ(MethodConfig::Em().label, "EM");
}

TEST(MethodLineupsTest, FigureRosters) {
  EXPECT_EQ(Figure4Methods().size(), 5u);   // DPBook + 4 allocations
  EXPECT_EQ(Figure5Methods().size(), 7u);   // SVT-S + 5 ReTr + EM
}

TEST(RunMethodOnceTest, EveryKindRuns) {
  Rng rng(1);
  const ScoreVector scores = LinearScores(100);
  const double threshold = 90.0;
  for (const MethodConfig& m :
       {MethodConfig::SvtDpBook(),
        MethodConfig::SvtStandard(AllocationPolicy::kOptimal),
        MethodConfig::SvtRetraversal(2.0), MethodConfig::Em()}) {
    const auto selected = RunMethodOnce(scores.scores(), threshold, 10, 1.0,
                                        true, m, rng);
    ASSERT_TRUE(selected.ok()) << m.label;
    EXPECT_LE(selected.value().size(), 10u) << m.label;
  }
}

TEST(RunMethodOnceTest, EmAlwaysReturnsExactlyC) {
  Rng rng(2);
  const ScoreVector scores = LinearScores(50);
  const auto selected = RunMethodOnce(scores.scores(), 40.0, 12, 0.5, true,
                                      MethodConfig::Em(), rng);
  EXPECT_EQ(selected.value().size(), 12u);
}

TEST(RunSelectionSweepTest, ShapesAreConsistent) {
  const ScoreVector scores = LinearScores(64);
  const SweepConfig cfg = SmallSweep();
  const auto methods = Figure4Methods();
  const auto series = RunSelectionSweep(scores, cfg, methods).value();
  ASSERT_EQ(series.size(), methods.size());
  for (const MethodSeries& s : series) {
    ASSERT_EQ(s.cells.size(), cfg.c_values.size());
    for (const CellStats& cell : s.cells) {
      EXPECT_EQ(cell.ser.count(), cfg.runs);
      EXPECT_EQ(cell.fnr.count(), cfg.runs);
      EXPECT_GE(cell.ser.min(), -1e-9);
      EXPECT_LE(cell.ser.max(), 1.0 + 1e-9);
      EXPECT_GE(cell.fnr.min(), -1e-9);
      EXPECT_LE(cell.fnr.max(), 1.0 + 1e-9);
    }
  }
}

TEST(RunSelectionSweepTest, DeterministicGivenSeed) {
  const ScoreVector scores = LinearScores(64);
  const SweepConfig cfg = SmallSweep();
  const auto methods = std::vector<MethodConfig>{MethodConfig::Em()};
  const auto a = RunSelectionSweep(scores, cfg, methods).value();
  const auto b = RunSelectionSweep(scores, cfg, methods).value();
  for (size_t ci = 0; ci < cfg.c_values.size(); ++ci) {
    EXPECT_DOUBLE_EQ(a[0].cells[ci].ser.mean(), b[0].cells[ci].ser.mean());
    EXPECT_DOUBLE_EQ(a[0].cells[ci].fnr.mean(), b[0].cells[ci].fnr.mean());
  }
}

TEST(RunSelectionSweepTest, ValidatesInputs) {
  const ScoreVector scores = LinearScores(10);
  SweepConfig cfg = SmallSweep();
  cfg.c_values = {10};  // c == size: invalid (need c < size)
  EXPECT_FALSE(
      RunSelectionSweep(scores, cfg, {MethodConfig::Em()}).ok());
  cfg = SmallSweep();
  cfg.runs = 0;
  EXPECT_FALSE(
      RunSelectionSweep(scores, cfg, {MethodConfig::Em()}).ok());
}

// With a generous budget every method should be near-perfect; with a
// minuscule one, errors grow. (The qualitative ε-sensitivity of Fig. 4.)
TEST(RunSelectionSweepTest, BudgetMonotonicity) {
  const ScoreVector scores = LinearScores(128);
  SweepConfig generous = SmallSweep();
  generous.epsilon = 50.0;
  SweepConfig tiny = SmallSweep();
  tiny.epsilon = 0.001;
  const std::vector<MethodConfig> methods = {
      MethodConfig::SvtStandard(AllocationPolicy::kOptimal)};
  const auto good = RunSelectionSweep(scores, generous, methods).value();
  const auto bad = RunSelectionSweep(scores, tiny, methods).value();
  EXPECT_LT(good[0].cells[0].ser.mean(), bad[0].cells[0].ser.mean());
}

TEST(ReportingTest, TablePrinterAlignsColumns) {
  TablePrinter printer({"c", "EM"});
  printer.AddRow({"25", "0.1"});
  printer.AddRow({"300", "0.95"});
  std::ostringstream os;
  printer.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("c"), std::string::npos);
  EXPECT_NE(out.find("300"), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
}

TEST(ReportingTest, TablePrinterRejectsRaggedRows) {
  TablePrinter printer({"a", "b"});
  EXPECT_DEATH(printer.AddRow({"only-one"}), "row width");
}

TEST(ReportingTest, SeriesTableAndCsv) {
  const ScoreVector scores = LinearScores(64);
  const SweepConfig cfg = SmallSweep();
  const std::vector<MethodConfig> methods = {MethodConfig::Em()};
  const auto series = RunSelectionSweep(scores, cfg, methods).value();

  std::ostringstream table;
  PrintSeriesTable(table, "test", cfg.c_values, series, Metric::kSer);
  EXPECT_NE(table.str().find("EM"), std::string::npos);
  EXPECT_NE(table.str().find("== test =="), std::string::npos);

  std::ostringstream csv;
  WriteSeriesCsv(csv, "linear", cfg.c_values, series, Metric::kFnr);
  EXPECT_NE(csv.str().find("dataset,metric,c,method,mean,std"),
            std::string::npos);
  EXPECT_NE(csv.str().find("linear,FNR,5,EM,"), std::string::npos);
}

TEST(ReportingTest, MetricNames) {
  EXPECT_EQ(MetricName(Metric::kSer), "SER");
  EXPECT_EQ(MetricName(Metric::kFnr), "FNR");
}

TEST(ReportingTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

}  // namespace
}  // namespace svt
