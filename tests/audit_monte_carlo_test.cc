// Cross-validation of the two independent probability paths: the sampled
// mechanism (CustomSvt) vs. the closed-form quadrature.

#include "audit/monte_carlo.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/closed_form.h"
#include "audit/privacy_auditor.h"
#include "common/rng.h"
#include "core/variant_spec.h"

namespace svt {
namespace {

McOptions FastMc() {
  McOptions o;
  o.trials = 60000;
  o.confidence = 0.9999;
  return o;
}

void ExpectAgreement(const VariantSpec& spec,
                     const std::vector<double>& answers, double threshold,
                     const std::string& pattern, Rng& rng) {
  const McEstimate mc = EstimateOutputProbability(spec, answers, threshold,
                                                  pattern, rng, FastMc());
  const double closed = OutputProbability(spec, answers, threshold,
                                          PatternFromString(pattern));
  EXPECT_GE(closed, mc.lower - 0.003)
      << spec.name << " pattern=" << pattern << " mc=" << mc.p_hat;
  EXPECT_LE(closed, mc.upper + 0.003)
      << spec.name << " pattern=" << pattern << " mc=" << mc.p_hat;
}

TEST(McCrossCheckTest, Alg1SmallInstances) {
  Rng rng(1);
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  ExpectAgreement(spec, {0.0}, 0.0, "T", rng);
  ExpectAgreement(spec, {0.0}, 0.0, "_", rng);
  ExpectAgreement(spec, {0.5, -0.5}, 0.0, "_T", rng);
  ExpectAgreement(spec, {0.5, -0.5}, 0.0, "__", rng);
  ExpectAgreement(spec, {2.0, 1.0}, 1.5, "T", rng);
}

TEST(McCrossCheckTest, Alg1CutoffTwo) {
  Rng rng(2);
  const VariantSpec spec = MakeAlg1Spec(2.0, 1.0, 2);
  ExpectAgreement(spec, {1.0, 0.0, -1.0}, 0.0, "__T", rng);
  ExpectAgreement(spec, {1.0, 0.0, -1.0}, 0.0, "T_T", rng);
  ExpectAgreement(spec, {1.0, 0.0, -1.0}, 0.0, "___", rng);
  ExpectAgreement(spec, {1.0, 0.0}, 0.0, "TT", rng);
}

TEST(McCrossCheckTest, Alg2Resampling) {
  Rng rng(3);
  const VariantSpec spec = MakeAlg2Spec(2.0, 1.0, 2);
  ExpectAgreement(spec, {0.4, -0.2, 0.1}, 0.0, "T__", rng);
  ExpectAgreement(spec, {0.4, -0.2}, 0.0, "TT", rng);
  ExpectAgreement(spec, {0.4, -0.2, 0.3}, 0.0, "_T_", rng);
}

TEST(McCrossCheckTest, Alg4) {
  Rng rng(4);
  const VariantSpec spec = MakeAlg4Spec(1.0, 1.0, 2);
  ExpectAgreement(spec, {0.0, 0.5, -0.5}, 0.2, "_T_", rng);
  ExpectAgreement(spec, {0.0, 0.5}, 0.2, "TT", rng);
}

TEST(McCrossCheckTest, Alg5DegenerateNoise) {
  Rng rng(5);
  const VariantSpec spec = MakeAlg5Spec(1.0, 1.0);
  ExpectAgreement(spec, {0.0, 1.0}, 0.0, "_T", rng);
  ExpectAgreement(spec, {0.0, 1.0}, 0.0, "TT", rng);
  ExpectAgreement(spec, {0.0, 1.0}, 0.0, "__", rng);
  // The Theorem 3 zero-probability event: MC must see zero hits.
  const std::vector<double> swapped = {1.0, 0.0};
  const McEstimate mc = EstimateOutputProbability(spec, swapped, 0.0, "_T",
                                                  rng, FastMc());
  EXPECT_EQ(mc.hits, 0);
}

TEST(McCrossCheckTest, Alg6NoCutoff) {
  Rng rng(6);
  const VariantSpec spec = MakeAlg6Spec(1.0, 1.0);
  ExpectAgreement(spec, {0.5, -0.5, 0.0, 1.0}, 0.0, "T_TT", rng);
  ExpectAgreement(spec, {0.5, -0.5}, 0.0, "__", rng);
}

TEST(McCrossCheckTest, GpttSkewed) {
  Rng rng(7);
  const VariantSpec spec = MakeGpttSpec(0.7, 0.3, 1.0);
  ExpectAgreement(spec, {0.0, 0.3}, 0.1, "_T", rng);
}

TEST(McCrossCheckTest, StandardMonotone) {
  Rng rng(8);
  const BudgetSplit split =
      BudgetAllocation::Optimal(2, true).Split(1.0);
  const VariantSpec spec = MakeStandardSpec(split, 1.0, 2, true);
  ExpectAgreement(spec, {0.3, 0.6, -0.3}, 0.0, "_T_", rng);
}

TEST(McCrossCheckTest, ExpNoiseLiu) {
  // Exponential threshold noise, Laplace query noise: both auditor paths
  // must track the one-sided ρ support (the MC estimator from raw
  // sampling, the closed form from the clamped integration window).
  Rng rng(13);
  const VariantSpec spec = MakeExpNoiseSpec(1.0, 1.0, 2);
  ExpectAgreement(spec, {0.0}, 0.0, "T", rng);
  ExpectAgreement(spec, {0.0}, 0.0, "_", rng);
  ExpectAgreement(spec, {0.5, -0.5}, 0.0, "_T", rng);
  ExpectAgreement(spec, {1.0, 0.0, -1.0}, 0.0, "T_T", rng);
  ExpectAgreement(spec, {1.0, 0.0, -1.0}, 0.0, "___", rng);
  ExpectAgreement(spec, {2.0, 1.0}, 1.5, "T", rng);
}

TEST(McCrossCheckTest, RevisitedKaplan) {
  // All-exponential monitor with ρ resampling after each ⊤: the pattern
  // factorizes into per-segment integrals over one-sided ρ, each ⊥ factor
  // contributing an extra support clamp.
  Rng rng(14);
  const VariantSpec spec = MakeRevisitedSpec(2.0, 1.0, 2);
  ExpectAgreement(spec, {0.4, -0.2, 0.1}, 0.0, "T__", rng);
  ExpectAgreement(spec, {0.4, -0.2}, 0.0, "TT", rng);
  ExpectAgreement(spec, {0.4, -0.2, 0.3}, 0.0, "_T_", rng);
  ExpectAgreement(spec, {1.0, 0.5, -1.0}, 0.5, "___", rng);
}

TEST(McCrossCheckTest, ExpNoiseOneSidedImpossibleEvent) {
  // Under exponential ν with threshold far above the answer, a ⊤ needs
  // ν ≥ gap + ρ ≥ gap: at gap = 50 on scale 8 that is ~e^-6 ≈ 0.2% — but at
  // a gap of 500 it is below 6e-28: MC must see zero hits and the closed
  // form must agree it is (numerically) impossible.
  Rng rng(15);
  const VariantSpec spec = MakeRevisitedSpec(2.0, 1.0, 1);
  const std::vector<double> answers = {-500.0};
  const McEstimate mc =
      EstimateOutputProbability(spec, answers, 0.0, "T", rng, FastMc());
  EXPECT_EQ(mc.hits, 0);
  EXPECT_LT(OutputProbability(spec, answers, 0.0, PatternFromString("T")),
            1e-20);
}

TEST(McEstimateTest, BoundsBracketPointEstimate) {
  Rng rng(9);
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> one = {0.0};
  const McEstimate mc =
      EstimateOutputProbability(spec, one, 0.0, "T", rng, FastMc());
  EXPECT_LE(mc.lower, mc.p_hat);
  EXPECT_GE(mc.upper, mc.p_hat);
  EXPECT_NEAR(mc.p_hat, 0.5, 0.02);
}

TEST(McEstimateTest, PatternLongerMeansRarer) {
  Rng rng(10);
  const VariantSpec spec = MakeAlg6Spec(1.0, 1.0);
  const std::vector<double> one = {0.0};
  const std::vector<double> three = {0.0, 0.0, 0.0};
  const McEstimate short_pattern =
      EstimateOutputProbability(spec, one, 0.0, "T", rng, FastMc());
  const McEstimate long_pattern =
      EstimateOutputProbability(spec, three, 0.0, "TTT", rng, FastMc());
  EXPECT_LT(long_pattern.p_hat, short_pattern.p_hat);
}

TEST(McEstimateTest, RejectsBadPattern) {
  Rng rng(11);
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const std::vector<double> one = {0.0};
  EXPECT_DEATH(
      EstimateOutputProbability(spec, one, 0.0, "X", rng, FastMc()),
      "invalid pattern");
}

TEST(McEpsilonBoundTest, CertifiesAlg6ViolationBlackBox) {
  // Black-box certification: without any closed-form analysis, the MC
  // bound must certify that Alg. 6 is not eps-DP at its claimed eps = 1 on
  // a small Theorem 7 instance (the true log-ratio at m = 4 is ~3.5).
  Rng rng(20);
  const VariantSpec spec = MakeAlg6Spec(1.0, 1.0);
  const McEpsilonBound bound = EstimateEpsilonLowerBoundMc(
      spec, Alg6Counterexample(4), /*trials=*/400000, /*confidence=*/0.999,
      rng);
  EXPECT_GT(bound.certified_lower, 1.0) << "point=" << bound.point_estimate;
}

TEST(McEpsilonBoundTest, DoesNotFalselyAccuseAlg1) {
  Rng rng(21);
  const VariantSpec spec = MakeAlg1Spec(1.0, 1.0, 1);
  const NeighborInstance inst = ShiftInstance(2, "_T");
  const McEpsilonBound bound = EstimateEpsilonLowerBoundMc(
      spec, inst, /*trials=*/200000, /*confidence=*/0.999, rng);
  // Certified lower bound must stay below eps for an actually-private
  // mechanism (with overwhelming probability at this confidence).
  EXPECT_LT(bound.certified_lower, 1.0);
}

TEST(McEpsilonBoundTest, Alg5ZeroSideGivesZeroCertificate) {
  // On Theorem 3's instance Pr[D'] = 0, so p-hat on D' is 0 and the Wilson
  // upper bound is small but positive: the certificate is finite but the
  // point estimate diverges.
  Rng rng(22);
  const VariantSpec spec = MakeAlg5Spec(1.0, 1.0);
  const McEpsilonBound bound = EstimateEpsilonLowerBoundMc(
      spec, Alg5Counterexample(), /*trials=*/100000, /*confidence=*/0.999,
      rng);
  EXPECT_EQ(bound.hits_dprime, 0);
  EXPECT_TRUE(std::isinf(bound.point_estimate));
  EXPECT_GT(bound.certified_lower, 1.0);  // still a strong certificate
}

// Monte-Carlo validation of the total-probability identity: frequencies of
// all observed patterns sum to 1 (trivially) AND each matches closed form.
TEST(McCrossCheckTest, FullDistributionAlg1) {
  Rng rng(12);
  const VariantSpec spec = MakeAlg1Spec(1.5, 1.0, 2);
  const std::vector<double> answers = {0.5, -0.5, 0.2};
  double closed_total = 0.0;
  for (const std::string& pattern :
       EnumerateOutputPatterns(answers.size(), 2)) {
    const std::vector<double> prefix(answers.begin(),
                                     answers.begin() + pattern.size());
    const double p =
        OutputProbability(spec, prefix, 0.0, PatternFromString(pattern));
    closed_total += p;
    const McEstimate mc =
        EstimateOutputProbability(spec, prefix, 0.0, pattern, rng, FastMc());
    EXPECT_GE(p, mc.lower - 0.004) << pattern;
    EXPECT_LE(p, mc.upper + 0.004) << pattern;
  }
  EXPECT_NEAR(closed_total, 1.0, 1e-6);
}

}  // namespace
}  // namespace svt
