// The privacy properties of Figure 2, verified numerically.
//
// These tests reproduce the paper's central claims:
//   * Alg. 1, 2, 7 are ε-DP (max log-ratio over all output patterns ≤ ε);
//   * Lemma 1's tighter bound ε₁ for all-⊥ patterns;
//   * Alg. 3's ratio equals e^{(m−1)ε/2} on the Appendix 10.1 instance;
//   * Alg. 4 exceeds ε but respects ((1+6c)/4)ε;
//   * Alg. 5's ratio is literally infinite (Theorem 3);
//   * Alg. 6's ratio is ≥ e^{mε/2} (Theorem 7), unbounded in m;
//   * GPTT's ratio grows without bound (§3.3);
//   * the §4.3 monotone refinement is tight: monotone noise is private for
//     one-directional neighbors and violates ε for adversarial
//     two-directional ones.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "audit/counterexamples.h"
#include "audit/privacy_auditor.h"
#include "core/variant_spec.h"

namespace svt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTol = 1e-6;

TEST(EnumerateOutputPatternsTest, NoCutoffIsAllStrings) {
  const auto patterns = EnumerateOutputPatterns(3, std::nullopt);
  EXPECT_EQ(patterns.size(), 8u);
}

TEST(EnumerateOutputPatternsTest, CutoffTruncatesAtLastPositive) {
  // c = 1, length 2: valid outputs are "T", "_T", "__".
  const auto patterns = EnumerateOutputPatterns(2, 1);
  EXPECT_EQ(patterns.size(), 3u);
  for (const auto& p : patterns) {
    EXPECT_TRUE(p == "T" || p == "_T" || p == "__") << p;
  }
}

TEST(EnumerateOutputPatternsTest, CountsForCutoffTwo) {
  // c = 2, length 3: full-length with ≤1 positive: ___, T__, _T_, __T
  // (3 choose ≤1 = 4); aborting with 2 positives: TT, T_T, _TT; plus the
  // boundary __T has 1 positive (full length ok). Total 7.
  const auto patterns = EnumerateOutputPatterns(3, 2);
  EXPECT_EQ(patterns.size(), 7u);
}

// ---------------------------------------------------------------------------
// Private variants: the ε-DP bound holds over every output pattern.
// ---------------------------------------------------------------------------

class PrivateVariantSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(PrivateVariantSweep, Alg1SatisfiesEpsilonDp) {
  const double epsilon = std::get<0>(GetParam());
  const int cutoff = std::get<1>(GetParam());
  const VariantSpec spec = MakeAlg1Spec(epsilon, 1.0, cutoff);
  // Worst-case neighboring families: uniform shifts in both directions and
  // a mixed (non-monotone) instance.
  const std::vector<double> qd = {0.0, 0.4, -0.3, 0.9, 0.1};
  const std::vector<double> up = {1.0, 1.4, 0.7, 1.9, 1.1};
  const std::vector<double> mixed = {1.0, -0.6, 0.7, -0.1, 1.1};
  for (const auto& qdp : {up, mixed}) {
    const auto result = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.5);
    EXPECT_LE(result.max_abs_log_ratio, epsilon + kTol)
        << "eps=" << epsilon << " c=" << cutoff
        << " worst pattern: " << result.argmax_pattern;
    EXPECT_FALSE(result.found_infinite);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PrivateVariantSweep,
    ::testing::Combine(::testing::Values(0.2, 1.0, 4.0),
                       ::testing::Values(1, 2, 3)));

TEST(PrivacyTest, Alg2SatisfiesEpsilonDp) {
  const double epsilon = 1.0;
  const VariantSpec spec = MakeAlg2Spec(epsilon, 1.0, 2);
  const std::vector<double> qd = {0.0, 0.5, -0.2, 0.8};
  const std::vector<double> qdp = {1.0, -0.5, 0.8, 1.8};
  const auto result = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.3);
  EXPECT_LE(result.max_abs_log_ratio, epsilon + kTol)
      << "worst pattern: " << result.argmax_pattern;
}

TEST(PrivacyTest, StandardWithOptimalAllocationSatisfiesEpsilonDp) {
  const double epsilon = 1.0;
  const BudgetSplit split =
      BudgetAllocation::Optimal(2, /*monotonic=*/false).Split(epsilon);
  const VariantSpec spec = MakeStandardSpec(split, 1.0, 2, false);
  const std::vector<double> qd = {0.2, -0.4, 0.6, 0.0};
  const std::vector<double> qdp = {1.2, -1.4, 1.6, -1.0};  // mixed directions
  const auto result = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.1);
  EXPECT_LE(result.max_abs_log_ratio, epsilon + kTol);
}

// Lemma 1: all-negative patterns cost only ε₁.
TEST(PrivacyTest, Lemma1AllBottomCostsEpsilonOne) {
  const double epsilon = 1.0;
  const VariantSpec spec = MakeAlg1Spec(epsilon, 1.0, 2);
  const int ell = 8;
  const std::vector<double> qd(ell, 0.0);
  const std::vector<double> qdp(ell, 1.0);
  const auto pattern = PatternFromString(std::string(ell, '_'));
  const double log_d = LogOutputProbability(spec, qd, 0.0, pattern);
  const double log_dp = LogOutputProbability(spec, qdp, 0.0, pattern);
  EXPECT_LE(std::abs(log_d - log_dp), spec.budget.epsilon1 + kTol);
}

// The same bound holds for all-positive patterns (the paper's remark after
// Lemma 1) — here with the cutoff made irrelevant by using c = ell... the
// pattern ⊤^c aborting at c.
TEST(PrivacyTest, AllTopPatternBounded) {
  const double epsilon = 1.0;
  const int c = 3;
  const VariantSpec spec = MakeAlg1Spec(epsilon, 1.0, c);
  const std::vector<double> qd(c, 0.0);
  const std::vector<double> qdp(c, 1.0);
  const auto pattern = PatternFromString(std::string(c, 'T'));
  const double log_d = LogOutputProbability(spec, qd, 0.0, pattern);
  const double log_dp = LogOutputProbability(spec, qdp, 0.0, pattern);
  EXPECT_LE(std::abs(log_d - log_dp), epsilon + kTol);
}

// ---------------------------------------------------------------------------
// §4.3: monotone noise scale.
// ---------------------------------------------------------------------------

TEST(PrivacyTest, MonotoneNoiseIsPrivateForMonotoneNeighbors) {
  const double epsilon = 1.0;
  const BudgetSplit split{0.5, 0.5, 0.0};
  const VariantSpec spec = MakeStandardSpec(split, 1.0, 2, /*monotonic=*/true);
  // One-directional change: every answer grows by exactly Δ or stays.
  const std::vector<double> qd = {0.0, 0.5, -0.2, 0.7};
  const std::vector<double> qdp = {1.0, 1.5, -0.2, 1.7};
  const auto result = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.4);
  EXPECT_LE(result.max_abs_log_ratio, epsilon + kTol)
      << result.argmax_pattern;
}

TEST(PrivacyTest, MonotoneNoiseViolatesEpsilonForMixedNeighbors) {
  // Applying the §4.3 monotone scale to a NON-monotone neighbor pair must
  // exceed ε somewhere — otherwise the 2c vs c distinction would be
  // unnecessary. This is the flip side of Theorem 5.
  const double epsilon = 1.0;
  const BudgetSplit split{0.5, 0.5, 0.0};
  const VariantSpec spec = MakeStandardSpec(split, 1.0, 2, /*monotonic=*/true);
  // Strong two-directional instance: many ⊥-queries moving up by Δ (forcing
  // the proof's z → z+Δ shift) while the ⊤-queries move down and sit deep
  // in the noise tail, paying the full 2Δ shift against Lap(cΔ/ε₂) noise.
  std::vector<double> qd(10, 0.0);
  std::vector<double> qdp(10, 1.0);
  qd.insert(qd.end(), {-40.0, -40.0});
  qdp.insert(qdp.end(), {-41.0, -41.0});
  const auto result = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.0);
  EXPECT_GT(result.max_abs_log_ratio, epsilon + 0.01)
      << result.argmax_pattern;
}

// ---------------------------------------------------------------------------
// Alg. 3 (Theorem 6 / Appendix 10.1): ratio e^{(m−1)ε/2}, unbounded.
// ---------------------------------------------------------------------------

TEST(PrivacyTest, Alg3RatioMatchesPaperFormula) {
  const double epsilon = 1.0;
  for (int m : {2, 3, 5, 8}) {
    const NeighborInstance inst = Alg3Counterexample(m);
    const VariantSpec spec = MakeAlg3Spec(epsilon, inst.sensitivity, 1);
    const AuditReport report = AuditInstance(spec, inst);
    // Paper: Pr[A(D)=a] / Pr[A(D')=a] = e^{(m−1)ε/2}.
    EXPECT_NEAR(report.log_p_d - report.log_p_dprime,
                (m - 1) * epsilon / 2.0, 1e-5)
        << "m=" << m;
  }
}

TEST(PrivacyTest, Alg3RatioUnboundedInM) {
  const double epsilon = 0.5;
  const VariantSpec spec = MakeAlg3Spec(epsilon, 1.0, 1);
  double prev = 0.0;
  for (int m : {2, 6, 12}) {
    const AuditReport report = AuditInstance(spec, Alg3Counterexample(m));
    const double ratio = report.log_p_d - report.log_p_dprime;
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
  EXPECT_GT(prev, 2.0);  // far beyond the claimed ε = 0.5
}

// ---------------------------------------------------------------------------
// Alg. 4: not ε-DP, but ((1+6c)/4)ε-DP.
// ---------------------------------------------------------------------------

TEST(PrivacyTest, Alg4ExceedsClaimedEpsilon) {
  const double epsilon = 1.0;
  const int c = 2;
  const VariantSpec spec = MakeAlg4Spec(epsilon, 1.0, c);
  const NeighborInstance inst = Alg4StressInstance(c, /*below_queries=*/6,
                                                   /*depth=*/60.0);
  const AuditReport report = AuditInstance(spec, inst);
  EXPECT_GT(report.abs_log_ratio(), epsilon + 0.2);
}

TEST(PrivacyTest, Alg4RespectsScaledBound) {
  const double epsilon = 1.0;
  for (int c : {1, 2, 3}) {
    const VariantSpec spec = MakeAlg4Spec(epsilon, 1.0, c);
    const double bound = spec.privacy_scale_factor * epsilon;  // (1+6c)/4 ε
    const NeighborInstance inst =
        Alg4StressInstance(c, /*below_queries=*/6, /*depth=*/60.0);
    const AuditReport report = AuditInstance(spec, inst);
    EXPECT_LE(report.abs_log_ratio(), bound + kTol) << "c=" << c;

    // Also across enumerated patterns on a moderate mixed instance.
    const std::vector<double> qd = {0.0, -20.0, 0.3, -20.0};
    const std::vector<double> qdp = {1.0, -21.0, 1.3, -21.0};
    const auto search = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.1);
    EXPECT_LE(search.max_abs_log_ratio, bound + kTol) << "c=" << c;
  }
}

TEST(PrivacyTest, Alg4StressApproachesScaledBound) {
  // With many ⊥ queries and deep-tail positives the ratio should come
  // close to ((1+6c)/4)ε — evidence the paper's bound is tight.
  const double epsilon = 1.0;
  const int c = 2;
  const VariantSpec spec = MakeAlg4Spec(epsilon, 1.0, c);
  const double bound = spec.privacy_scale_factor * epsilon;  // 3.25
  const NeighborInstance inst =
      Alg4StressInstance(c, /*below_queries=*/40, /*depth=*/120.0);
  const AuditReport report = AuditInstance(spec, inst);
  EXPECT_GT(report.abs_log_ratio(), 0.8 * bound);
  EXPECT_LE(report.abs_log_ratio(), bound + kTol);
}

// ---------------------------------------------------------------------------
// Alg. 5 (Theorem 3): infinite ratio.
// ---------------------------------------------------------------------------

TEST(PrivacyTest, Alg5InfinitelyNonPrivate) {
  const VariantSpec spec = MakeAlg5Spec(1.0, 1.0);
  const AuditReport report = AuditInstance(spec, Alg5Counterexample());
  EXPECT_TRUE(report.infinite());
  EXPECT_GT(report.log_p_d, -kInf);       // positive probability on D
  EXPECT_EQ(report.log_p_dprime, -kInf);  // zero on D'
}

TEST(PrivacyTest, Alg5PatternSearchFindsInfiniteWitness) {
  const VariantSpec spec = MakeAlg5Spec(1.0, 1.0);
  const NeighborInstance inst = Alg5Counterexample();
  const auto result = MaxAbsLogRatioOverPatterns(
      spec, inst.answers_d, inst.answers_dprime, inst.threshold);
  EXPECT_TRUE(result.found_infinite);
  EXPECT_EQ(result.max_abs_log_ratio, kInf);
}

// ---------------------------------------------------------------------------
// Alg. 6 (Theorem 7): ratio ≥ e^{mε/2}, unbounded.
// ---------------------------------------------------------------------------

TEST(PrivacyTest, Alg6RatioAtLeastTheoremSevenBound) {
  const double epsilon = 1.0;
  const VariantSpec spec = MakeAlg6Spec(epsilon, 1.0);
  for (int m : {1, 2, 4, 6}) {
    const AuditReport report = AuditInstance(spec, Alg6Counterexample(m));
    const double log_ratio = report.log_p_d - report.log_p_dprime;
    EXPECT_GE(log_ratio, m * epsilon / 2.0 - 1e-6) << "m=" << m;
  }
}

TEST(PrivacyTest, Alg6RatioUnboundedInM) {
  const VariantSpec spec = MakeAlg6Spec(1.0, 1.0);
  const double r2 =
      AuditInstance(spec, Alg6Counterexample(2)).abs_log_ratio();
  const double r8 =
      AuditInstance(spec, Alg6Counterexample(8)).abs_log_ratio();
  EXPECT_GT(r8, r2 + 2.0);
}

// ---------------------------------------------------------------------------
// GPTT (§3.3): the instance from [2] exhibits unbounded growth.
// ---------------------------------------------------------------------------

TEST(PrivacyTest, GpttRatioGrowsWithoutBound) {
  const VariantSpec spec = MakeGpttSpec(0.5, 0.5, 1.0);
  double prev = 0.0;
  for (int t : {1, 3, 6, 10}) {
    const AuditReport report = AuditInstance(spec, GpttCounterexample(t));
    const double ratio = report.abs_log_ratio();
    EXPECT_GT(ratio, prev) << "t=" << t;
    prev = ratio;
  }
  EXPECT_GT(prev, 1.0 + 0.5);  // far beyond the claimed total ε = 1
}

TEST(PrivacyTest, GpttSkewedBudgetsStillNonPrivate) {
  const VariantSpec spec = MakeGpttSpec(0.8, 0.2, 1.0);
  const double r = AuditInstance(spec, GpttCounterexample(8)).abs_log_ratio();
  EXPECT_GT(r, spec.epsilon + 0.5);
}

// ---------------------------------------------------------------------------
// Figure 2's full privacy row in one test.
// ---------------------------------------------------------------------------

TEST(PrivacyTest, ExponentialVariantsWithinClaimedEpsilon) {
  // The exponential-noise variants claim pure ε-DP. The classic SVT proof's
  // z → z + Δ substitution stays inside the one-sided ρ support (shifting
  // [0, ∞) upward), so the density ratio stays e^(Δ/b) — the audit must
  // measure at most ε on worst-case shift instances.
  const double epsilon = 1.0;
  const std::vector<double> qd = {0.0, 0.2, -0.5, 0.8};
  const std::vector<double> up = {1.0, 1.2, 0.5, 1.8};
  const std::vector<double> mixed = {1.0, -0.8, 0.5, 1.8};
  for (VariantId id : {VariantId::kExpNoise, VariantId::kRevisited}) {
    const VariantSpec spec = MakeSpec(id, epsilon, 1.0, 2);
    EXPECT_EQ(spec.actual_privacy, PrivacyClass::kPureDp) << spec.name;
    for (const auto& qdp : {up, mixed}) {
      const auto r = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.1);
      EXPECT_LE(r.max_abs_log_ratio, epsilon + kTol)
          << spec.name << " worst=" << r.argmax_pattern;
    }
  }
}

TEST(PrivacyTest, FigureTwoPrivacyRowNumerically) {
  const double epsilon = 1.0;
  const int c = 2;

  // Row entries "ε-DP": bounded on the worst shift instance.
  for (VariantId id : {VariantId::kAlg1, VariantId::kAlg2}) {
    const VariantSpec spec = MakeSpec(id, epsilon, 1.0, c);
    const std::vector<double> qd = {0.0, 0.2, -0.5, 0.8};
    const std::vector<double> qdp = {1.0, -0.8, 0.5, 1.8};
    const auto r = MaxAbsLogRatioOverPatterns(spec, qd, qdp, 0.1);
    EXPECT_LE(r.max_abs_log_ratio, epsilon + kTol) << spec.name;
  }

  // Row entry "(1+6c)/4 ε": Alg. 4 exceeds ε on its stress instance.
  {
    const VariantSpec spec = MakeSpec(VariantId::kAlg4, epsilon, 1.0, c);
    const AuditReport r =
        AuditInstance(spec, Alg4StressInstance(c, 8, 60.0));
    EXPECT_GT(r.abs_log_ratio(), epsilon);
    EXPECT_LE(r.abs_log_ratio(), spec.privacy_scale_factor * epsilon + kTol);
  }

  // Row entries "∞-DP": unbounded or infinite.
  EXPECT_TRUE(AuditInstance(MakeSpec(VariantId::kAlg5, epsilon, 1.0, c),
                            Alg5Counterexample())
                  .infinite());
  EXPECT_GT(AuditInstance(MakeSpec(VariantId::kAlg6, epsilon, 1.0, c),
                          Alg6Counterexample(8))
                .abs_log_ratio(),
            4.0 * epsilon);
  EXPECT_GT(AuditInstance(MakeSpec(VariantId::kAlg3, epsilon, 1.0, 1),
                          Alg3Counterexample(12))
                .abs_log_ratio(),
            5.0 * epsilon);
}

}  // namespace
}  // namespace svt
